//! End-to-end audit of the fault-injection harness: a seeded plan
//! injects panics, store corruption, an interrupted export and budget
//! starvation into the batch workload; every fault must land in exactly
//! one recovery counter, no drain may lose a request, and the whole run
//! must be deterministic under its seed.
//!
//! This file holds a single `#[test]` on purpose: it installs a
//! process-global panic hook (to keep the *injected* panics out of the
//! test log) and must not race another test doing the same.

use vliw_experiments::{run_faults, ExperimentContext, FaultOptions};

#[test]
fn fault_plan_is_contained_counted_and_deterministic() {
    let mut ctx = ExperimentContext::quick();
    ctx.benchmarks = vec!["gsmdec".into()];
    ctx.sim.iteration_cap = 48;
    ctx.profile.iteration_cap = 48;
    let opts = FaultOptions {
        target_requests: 96,
        ..FaultOptions::quick()
    };

    // silence the planned panics; anything else still prints
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let planned = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("fault plan:"));
        if !planned {
            default_hook(info);
        }
    }));
    let a = run_faults(&ctx, &opts);
    let b = run_faults(&ctx, &opts);
    let _ = std::panic::take_hook();

    assert!(a.deterministic, "drain digests diverged under faults");
    assert_eq!(a.failures, 0, "every injected fault must heal");
    assert_eq!(a.worker_panics, 0, "no panic may reach the worker loop");
    assert_eq!(a.unrecovered_slots, 0, "no failed slot may survive");
    assert!(a.panics_contained > 0, "the panic lane must fire");
    assert_eq!(a.panics_contained, a.injected_panics);
    assert_eq!(a.slots_recovered, a.injected_panics);
    assert!(a.panic_retries > 0, "retries heal the contained panics");
    assert!(a.salvage.recovered > 0, "salvage must serve survivors");
    assert_eq!(a.salvage.dropped_corrupt, a.injected_flips);
    assert_eq!(a.salvage.dropped_truncated, a.injected_truncations);
    assert!(a.version_tamper_rejected);
    assert!(a.atomic_export_ok);
    assert_eq!(a.degraded, a.starved_requests, "starvation must be counted");
    assert!(
        a.quality_roundtrip_ok,
        "degraded quality survives the store"
    );
    assert!(a.accounted(), "every fault in exactly one counter");

    // the harness itself is deterministic under its seed
    assert_eq!(a.injected_panics, b.injected_panics);
    assert_eq!(a.panics_contained, b.panics_contained);
    assert_eq!(a.salvage, b.salvage);
    assert_eq!(a.degraded, b.degraded);
    assert_eq!(a.injected_flips, b.injected_flips);

    // report surfaces
    let m = a.metrics();
    for key in [
        "panics_contained",
        "salvaged_records",
        "failures",
        "deterministic",
        "accounted",
    ] {
        assert!(m.iter().any(|(k, _)| k == key), "metric `{key}` missing");
    }
    let rendered = format!("{a}");
    assert!(rendered.contains("every fault accounted"), "{rendered}");
    assert_eq!(a.table().to_csv().lines().count(), 2 + 7);
}
