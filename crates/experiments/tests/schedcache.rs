//! Integration tests of the sharded schedule cache: concurrency safety
//! (exactly one preparation per key under thread storms), persistence
//! (byte-exact round-trips, rebuilds from disk, staleness rejection) and
//! the structural key (same-name kernels with different bodies never
//! collide — the failure mode of name-keyed memoization).

use std::path::PathBuf;
use std::sync::Arc;

use vliw_experiments::{
    ExperimentContext, PreparedLoop, RunConfig, SchedCache, ScheduleStore, UnrollMode,
};
use vliw_ir::{kernel_fingerprint, LoopKernel};
use vliw_sched::ClusterPolicy;

fn ctx() -> ExperimentContext {
    let mut ctx = ExperimentContext::quick();
    ctx.benchmarks = vec!["gsmdec".into()];
    ctx.sim.iteration_cap = 48;
    ctx.profile.iteration_cap = 48;
    ctx
}

fn kernels(ctx: &ExperimentContext) -> Vec<LoopKernel> {
    ctx.models()
        .into_iter()
        .flat_map(|m| m.loops.into_iter().map(|l| l.kernel))
        .collect()
}

fn configs() -> Vec<RunConfig> {
    vec![
        RunConfig {
            unroll: UnrollMode::NoUnroll,
            ..RunConfig::ipbc()
        },
        RunConfig {
            policy: ClusterPolicy::BuildChains,
            unroll: UnrollMode::NoUnroll,
            ..RunConfig::ipbc()
        },
    ]
}

fn identical(a: &PreparedLoop, b: &PreparedLoop) -> bool {
    a.schedule.to_compact_text() == b.schedule.to_compact_text()
        && kernel_fingerprint(&a.kernel) == kernel_fingerprint(&b.kernel)
        && a.factor == b.factor
        && a.choice == b.choice
}

/// M threads race on the same request list: each key is prepared exactly
/// once, every other request is a hit, and every thread observes answers
/// bit-identical to a serial reference.
#[test]
fn thread_storm_prepares_each_key_exactly_once() {
    let ctx = ctx();
    let kernels = kernels(&ctx);
    let configs = configs();
    let n_keys = kernels.len() * configs.len();
    assert!(n_keys >= 4, "suite too small to stress");

    // serial reference
    let reference: Vec<Arc<PreparedLoop>> = {
        let cache = SchedCache::new();
        configs
            .iter()
            .flat_map(|cfg| {
                let machine = ctx.machine_for(cfg);
                kernels
                    .iter()
                    .map(|k| cache.prepare(k, &machine, cfg, &ctx).expect("schedules"))
                    .collect::<Vec<_>>()
            })
            .collect()
    };

    const THREADS: usize = 8;
    let cache = SchedCache::with_shards(4);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (cache, ctx, kernels, configs, reference) =
                (&cache, &ctx, &kernels, &configs, &reference);
            s.spawn(move || {
                // every thread walks the requests in a different rotation
                // so first-preparers vary per key
                for i in 0..n_keys {
                    let j = (i + t * 3) % n_keys;
                    let cfg = &configs[j / kernels.len()];
                    let kernel = &kernels[j % kernels.len()];
                    let machine = ctx.machine_for(cfg);
                    let got = cache
                        .prepare(kernel, &machine, cfg, ctx)
                        .expect("schedules");
                    assert!(
                        identical(&got, &reference[j]),
                        "thread {t} got a non-reference answer for request {j}"
                    );
                }
            });
        }
    });

    assert_eq!(cache.len(), n_keys, "one completed cell per key");
    assert_eq!(
        cache.prepares(),
        n_keys as u64,
        "each key prepared exactly once"
    );
    assert_eq!(
        cache.hits(),
        THREADS * n_keys - n_keys,
        "every non-first request is an in-memory hit"
    );
    assert_eq!(cache.store_hits(), 0);
    assert_eq!(cache.stale(), 0);
}

/// A capped cache evicts the least-recently-used completed cell (a hit
/// refreshes recency), counts every eviction, and simply re-prepares an
/// evicted key on its next request; the unbounded default never evicts.
#[test]
fn capped_cache_evicts_least_recently_used() {
    let ctx = ctx();
    let base = kernels(&ctx)[0].clone();
    let cfg = configs()[0];
    let machine = ctx.machine_for(&cfg);
    // distinct bodies → distinct structural keys, all in the one shard
    let variants: Vec<LoopKernel> = (0..4)
        .map(|i| {
            let mut k = base.clone();
            k.avg_trip = base.avg_trip + 8.0 * (i + 1) as f64;
            k
        })
        .collect();
    let prep = |cache: &SchedCache, i: usize| {
        cache
            .prepare(&variants[i], &machine, &cfg, &ctx)
            .expect("schedules")
    };

    let cache = SchedCache::with_shards(1).into_capped(2);
    assert_eq!(cache.per_shard_capacity(), Some(2));
    prep(&cache, 0);
    prep(&cache, 1);
    assert_eq!(cache.len(), 2);
    assert_eq!(cache.evictions(), 0, "at cap, nothing evicts");
    // touch v0 so v1 becomes the LRU victim of the next insertion
    prep(&cache, 0);
    assert_eq!(cache.hits(), 1);
    prep(&cache, 2);
    assert_eq!(cache.len(), 2, "the cap holds");
    assert_eq!(cache.evictions(), 1);
    // v0 survived (recently used) …
    prep(&cache, 0);
    assert_eq!(cache.hits(), 2);
    // … and the evicted v1 is prepared afresh, displacing the LRU v2
    let before = cache.prepares();
    prep(&cache, 1);
    assert_eq!(cache.prepares(), before + 1, "evicted keys re-prepare");
    assert_eq!(cache.evictions(), 2);
    let per_shard: u64 = cache.shard_counters().iter().map(|s| s.evictions).sum();
    assert_eq!(per_shard, cache.evictions(), "counters surface evictions");

    let unbounded = SchedCache::with_shards(1);
    assert_eq!(unbounded.per_shard_capacity(), None);
    for i in 0..variants.len() {
        prep(&unbounded, i);
    }
    assert_eq!(unbounded.len(), variants.len());
    assert_eq!(unbounded.evictions(), 0, "the default never evicts");

    // cap 0 caches nothing but still answers correctly
    let nothing = SchedCache::with_shards(1).into_capped(0);
    prep(&nothing, 0);
    prep(&nothing, 0);
    assert_eq!(nothing.len(), 0);
    assert_eq!(nothing.hits(), 0);
    assert_eq!(nothing.prepares(), 2);
    assert_eq!(nothing.evictions(), 2);
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vliw-schedcache-{}-{name}", std::process::id()))
}

/// Persist → reload is byte-identical, and a fresh cache fed by the
/// reloaded store answers every request by rebuild (no scheduling), with
/// answers bit-identical to the cold ones.
#[test]
fn store_round_trips_and_serves_rebuilds() {
    let ctx = ctx();
    let kernels = kernels(&ctx);
    let cfg = configs()[0];
    let machine = ctx.machine_for(&cfg);

    let cache = SchedCache::new();
    let cold: Vec<Arc<PreparedLoop>> = kernels
        .iter()
        .map(|k| cache.prepare(k, &machine, &cfg, &ctx).expect("schedules"))
        .collect();

    let store = cache.export_store();
    assert_eq!(store.len(), kernels.len());
    let path = temp_path("roundtrip.store");
    store.save(&path).expect("store saves");
    let reloaded = ScheduleStore::load(&path).expect("store loads");
    std::fs::remove_file(&path).ok();
    assert_eq!(
        store.to_text(),
        reloaded.to_text(),
        "byte-identical round-trip"
    );

    let warm_cache = SchedCache::with_store(reloaded);
    for (k, cold_p) in kernels.iter().zip(&cold) {
        let warm_p = warm_cache
            .prepare(k, &machine, &cfg, &ctx)
            .expect("rebuilds");
        assert!(
            identical(&warm_p, cold_p),
            "{}: warm answer drifted",
            k.name
        );
    }
    assert_eq!(warm_cache.store_hits(), kernels.len() as u64);
    assert_eq!(
        warm_cache.prepares(),
        0,
        "no request fell back to scheduling"
    );
    assert_eq!(warm_cache.stale(), 0);
}

/// A store whose prepared-kernel fingerprints no longer match (the kernel
/// changed since the store was written) is rejected entry by entry: the
/// cache falls back to cold preparation, counts the staleness, and still
/// produces correct answers.
#[test]
fn stale_fingerprints_are_rejected() {
    let ctx = ctx();
    let kernels = kernels(&ctx);
    let cfg = configs()[0];
    let machine = ctx.machine_for(&cfg);

    let cache = SchedCache::new();
    let cold: Vec<Arc<PreparedLoop>> = kernels
        .iter()
        .map(|k| cache.prepare(k, &machine, &cfg, &ctx).expect("schedules"))
        .collect();

    // corrupt every stored prepared-kernel fingerprint through the text
    // form (the shape of a stale committed store after a kernel change)
    let tampered = cache
        .export_store()
        .to_text()
        .lines()
        .map(|line| {
            if let Some(tag) = line.find(" pfp ") {
                let rest = &line[tag + 5..];
                let end = rest.find(' ').unwrap_or(rest.len());
                let fp: u64 = rest[..end].parse().expect("pfp is an integer");
                format!(
                    "{} pfp {}{}",
                    &line[..tag],
                    fp.wrapping_add(1),
                    &rest[end..]
                )
            } else {
                line.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    let stale_store = ScheduleStore::from_text(&tampered).expect("tampered store still parses");

    let warm_cache = SchedCache::with_store(stale_store);
    for (k, cold_p) in kernels.iter().zip(&cold) {
        let p = warm_cache
            .prepare(k, &machine, &cfg, &ctx)
            .expect("schedules");
        assert!(identical(&p, cold_p), "{}: stale fallback drifted", k.name);
    }
    assert_eq!(
        warm_cache.stale(),
        kernels.len() as u64,
        "every entry rejected"
    );
    assert_eq!(warm_cache.store_hits(), 0);
    assert_eq!(
        warm_cache.prepares(),
        kernels.len() as u64,
        "all fell back cold"
    );
}

/// A version bump is stale wholesale: the loader refuses the file rather
/// than reinterpreting another format's framing.
#[test]
fn store_version_mismatch_is_an_error() {
    let text = "vliw-sched-store 999\nentries 0\n";
    let err = ScheduleStore::from_text(text).expect_err("future version must not parse");
    assert!(err.contains("version"), "unhelpful error: {err}");
}

/// The key is structural, not nominal: two kernels sharing a name but
/// differing in body get distinct cache cells — the collision a
/// name-keyed (or `Debug`-string-keyed) memo would suffer.
#[test]
fn same_name_different_body_never_collides() {
    let ctx = ctx();
    let kernels = kernels(&ctx);
    let cfg = configs()[0];
    let machine = ctx.machine_for(&cfg);

    let a = kernels[0].clone();
    let mut b = a.clone();
    b.avg_trip *= 2.0; // same name, different body
    assert_eq!(a.name, b.name);
    assert_ne!(kernel_fingerprint(&a), kernel_fingerprint(&b));

    let cache = SchedCache::new();
    let pa = cache.prepare(&a, &machine, &cfg, &ctx).expect("schedules");
    let pb = cache.prepare(&b, &machine, &cfg, &ctx).expect("schedules");
    assert_eq!(cache.len(), 2, "distinct bodies must occupy distinct cells");
    assert_eq!(
        cache.hits(),
        0,
        "the second kernel must not hit the first's cell"
    );
    assert_ne!(
        kernel_fingerprint(&pa.kernel),
        kernel_fingerprint(&pb.kernel),
        "each cell serves its own kernel"
    );
}
