//! Integration tests of the sharded schedule cache: concurrency safety
//! (exactly one preparation per key under thread storms), persistence
//! (byte-exact round-trips, rebuilds from disk, staleness rejection) and
//! the structural key (same-name kernels with different bodies never
//! collide — the failure mode of name-keyed memoization).

use std::path::PathBuf;
use std::sync::Arc;

use vliw_experiments::{
    ExperimentContext, PreparedLoop, RunConfig, SchedCache, ScheduleStore, UnrollMode,
};
use vliw_ir::{kernel_fingerprint, LoopKernel};
use vliw_sched::ClusterPolicy;

fn ctx() -> ExperimentContext {
    let mut ctx = ExperimentContext::quick();
    ctx.benchmarks = vec!["gsmdec".into()];
    ctx.sim.iteration_cap = 48;
    ctx.profile.iteration_cap = 48;
    ctx
}

fn kernels(ctx: &ExperimentContext) -> Vec<LoopKernel> {
    ctx.models()
        .into_iter()
        .flat_map(|m| m.loops.into_iter().map(|l| l.kernel))
        .collect()
}

fn configs() -> Vec<RunConfig> {
    vec![
        RunConfig {
            unroll: UnrollMode::NoUnroll,
            ..RunConfig::ipbc()
        },
        RunConfig {
            policy: ClusterPolicy::BuildChains,
            unroll: UnrollMode::NoUnroll,
            ..RunConfig::ipbc()
        },
    ]
}

fn identical(a: &PreparedLoop, b: &PreparedLoop) -> bool {
    a.schedule.to_compact_text() == b.schedule.to_compact_text()
        && kernel_fingerprint(&a.kernel) == kernel_fingerprint(&b.kernel)
        && a.factor == b.factor
        && a.choice == b.choice
}

/// M threads race on the same request list: each key is prepared exactly
/// once, every other request is a hit, and every thread observes answers
/// bit-identical to a serial reference.
#[test]
fn thread_storm_prepares_each_key_exactly_once() {
    let ctx = ctx();
    let kernels = kernels(&ctx);
    let configs = configs();
    let n_keys = kernels.len() * configs.len();
    assert!(n_keys >= 4, "suite too small to stress");

    // serial reference
    let reference: Vec<Arc<PreparedLoop>> = {
        let cache = SchedCache::new();
        configs
            .iter()
            .flat_map(|cfg| {
                let machine = ctx.machine_for(cfg);
                kernels
                    .iter()
                    .map(|k| cache.prepare(k, &machine, cfg, &ctx).expect("schedules"))
                    .collect::<Vec<_>>()
            })
            .collect()
    };

    const THREADS: usize = 8;
    let cache = SchedCache::with_shards(4);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (cache, ctx, kernels, configs, reference) =
                (&cache, &ctx, &kernels, &configs, &reference);
            s.spawn(move || {
                // every thread walks the requests in a different rotation
                // so first-preparers vary per key
                for i in 0..n_keys {
                    let j = (i + t * 3) % n_keys;
                    let cfg = &configs[j / kernels.len()];
                    let kernel = &kernels[j % kernels.len()];
                    let machine = ctx.machine_for(cfg);
                    let got = cache
                        .prepare(kernel, &machine, cfg, ctx)
                        .expect("schedules");
                    assert!(
                        identical(&got, &reference[j]),
                        "thread {t} got a non-reference answer for request {j}"
                    );
                }
            });
        }
    });

    assert_eq!(cache.len(), n_keys, "one completed cell per key");
    assert_eq!(
        cache.prepares(),
        n_keys as u64,
        "each key prepared exactly once"
    );
    assert_eq!(
        cache.hits(),
        THREADS * n_keys - n_keys,
        "every non-first request is an in-memory hit"
    );
    assert_eq!(cache.store_hits(), 0);
    assert_eq!(cache.stale(), 0);
}

/// A capped cache evicts the least-recently-used completed cell (a hit
/// refreshes recency), counts every eviction, and simply re-prepares an
/// evicted key on its next request; the unbounded default never evicts.
#[test]
fn capped_cache_evicts_least_recently_used() {
    let ctx = ctx();
    let base = kernels(&ctx)[0].clone();
    let cfg = configs()[0];
    let machine = ctx.machine_for(&cfg);
    // distinct bodies → distinct structural keys, all in the one shard
    let variants: Vec<LoopKernel> = (0..4)
        .map(|i| {
            let mut k = base.clone();
            k.avg_trip = base.avg_trip + 8.0 * (i + 1) as f64;
            k
        })
        .collect();
    let prep = |cache: &SchedCache, i: usize| {
        cache
            .prepare(&variants[i], &machine, &cfg, &ctx)
            .expect("schedules")
    };

    let cache = SchedCache::with_shards(1).into_capped(2);
    assert_eq!(cache.per_shard_capacity(), Some(2));
    prep(&cache, 0);
    prep(&cache, 1);
    assert_eq!(cache.len(), 2);
    assert_eq!(cache.evictions(), 0, "at cap, nothing evicts");
    // touch v0 so v1 becomes the LRU victim of the next insertion
    prep(&cache, 0);
    assert_eq!(cache.hits(), 1);
    prep(&cache, 2);
    assert_eq!(cache.len(), 2, "the cap holds");
    assert_eq!(cache.evictions(), 1);
    // v0 survived (recently used) …
    prep(&cache, 0);
    assert_eq!(cache.hits(), 2);
    // … and the evicted v1 is prepared afresh, displacing the LRU v2
    let before = cache.prepares();
    prep(&cache, 1);
    assert_eq!(cache.prepares(), before + 1, "evicted keys re-prepare");
    assert_eq!(cache.evictions(), 2);
    let per_shard: u64 = cache.shard_counters().iter().map(|s| s.evictions).sum();
    assert_eq!(per_shard, cache.evictions(), "counters surface evictions");

    let unbounded = SchedCache::with_shards(1);
    assert_eq!(unbounded.per_shard_capacity(), None);
    for i in 0..variants.len() {
        prep(&unbounded, i);
    }
    assert_eq!(unbounded.len(), variants.len());
    assert_eq!(unbounded.evictions(), 0, "the default never evicts");

    // cap 0 caches nothing but still answers correctly
    let nothing = SchedCache::with_shards(1).into_capped(0);
    prep(&nothing, 0);
    prep(&nothing, 0);
    assert_eq!(nothing.len(), 0);
    assert_eq!(nothing.hits(), 0);
    assert_eq!(nothing.prepares(), 2);
    assert_eq!(nothing.evictions(), 2);
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vliw-schedcache-{}-{name}", std::process::id()))
}

/// Persist → reload is byte-identical, and a fresh cache fed by the
/// reloaded store answers every request by rebuild (no scheduling), with
/// answers bit-identical to the cold ones.
#[test]
fn store_round_trips_and_serves_rebuilds() {
    let ctx = ctx();
    let kernels = kernels(&ctx);
    let cfg = configs()[0];
    let machine = ctx.machine_for(&cfg);

    let cache = SchedCache::new();
    let cold: Vec<Arc<PreparedLoop>> = kernels
        .iter()
        .map(|k| cache.prepare(k, &machine, &cfg, &ctx).expect("schedules"))
        .collect();

    let store = cache.export_store();
    assert_eq!(store.len(), kernels.len());
    let path = temp_path("roundtrip.store");
    store.save(&path).expect("store saves");
    let reloaded = ScheduleStore::load(&path).expect("store loads");
    std::fs::remove_file(&path).ok();
    assert_eq!(
        store.to_text(),
        reloaded.to_text(),
        "byte-identical round-trip"
    );

    let warm_cache = SchedCache::with_store(reloaded);
    for (k, cold_p) in kernels.iter().zip(&cold) {
        let warm_p = warm_cache
            .prepare(k, &machine, &cfg, &ctx)
            .expect("rebuilds");
        assert!(
            identical(&warm_p, cold_p),
            "{}: warm answer drifted",
            k.name
        );
    }
    assert_eq!(warm_cache.store_hits(), kernels.len() as u64);
    assert_eq!(
        warm_cache.prepares(),
        0,
        "no request fell back to scheduling"
    );
    assert_eq!(warm_cache.stale(), 0);
}

/// A store whose prepared-kernel fingerprints no longer match (the kernel
/// changed since the store was written) is rejected entry by entry: the
/// cache falls back to cold preparation, counts the staleness, and still
/// produces correct answers.
#[test]
fn stale_fingerprints_are_rejected() {
    let ctx = ctx();
    let kernels = kernels(&ctx);
    let cfg = configs()[0];
    let machine = ctx.machine_for(&cfg);

    let cache = SchedCache::new();
    let cold: Vec<Arc<PreparedLoop>> = kernels
        .iter()
        .map(|k| cache.prepare(k, &machine, &cfg, &ctx).expect("schedules"))
        .collect();

    // shift every stored prepared-kernel fingerprint and re-serialize
    // (the shape of a stale committed store after a kernel change: it
    // was *validly written* — checksums intact — against kernels that
    // no longer exist)
    let mut shifted = ScheduleStore::new();
    for e in cache.export_store().entries() {
        let mut e = e.clone();
        e.prepared_fp = e.prepared_fp.wrapping_add(1);
        shifted.insert(e);
    }
    let stale_store =
        ScheduleStore::from_text(&shifted.to_text()).expect("stale store still parses");

    let warm_cache = SchedCache::with_store(stale_store);
    for (k, cold_p) in kernels.iter().zip(&cold) {
        let p = warm_cache
            .prepare(k, &machine, &cfg, &ctx)
            .expect("schedules");
        assert!(identical(&p, cold_p), "{}: stale fallback drifted", k.name);
    }
    assert_eq!(
        warm_cache.stale(),
        kernels.len() as u64,
        "every entry rejected"
    );
    assert_eq!(warm_cache.store_hits(), 0);
    assert_eq!(
        warm_cache.prepares(),
        kernels.len() as u64,
        "all fell back cold"
    );
}

/// A version bump is stale wholesale: the loader refuses the file rather
/// than reinterpreting another format's framing.
#[test]
fn store_version_mismatch_is_an_error() {
    let text = "vliw-sched-store 999\nentries 0\n";
    let err = ScheduleStore::from_text(text).expect_err("future version must not parse");
    assert!(err.contains("version"), "unhelpful error: {err}");
}

/// The key is structural, not nominal: two kernels sharing a name but
/// differing in body get distinct cache cells — the collision a
/// name-keyed (or `Debug`-string-keyed) memo would suffer.
#[test]
fn same_name_different_body_never_collides() {
    let ctx = ctx();
    let kernels = kernels(&ctx);
    let cfg = configs()[0];
    let machine = ctx.machine_for(&cfg);

    let a = kernels[0].clone();
    let mut b = a.clone();
    b.avg_trip *= 2.0; // same name, different body
    assert_eq!(a.name, b.name);
    assert_ne!(kernel_fingerprint(&a), kernel_fingerprint(&b));

    let cache = SchedCache::new();
    let pa = cache.prepare(&a, &machine, &cfg, &ctx).expect("schedules");
    let pb = cache.prepare(&b, &machine, &cfg, &ctx).expect("schedules");
    assert_eq!(cache.len(), 2, "distinct bodies must occupy distinct cells");
    assert_eq!(
        cache.hits(),
        0,
        "the second kernel must not hit the first's cell"
    );
    assert_ne!(
        kernel_fingerprint(&pa.kernel),
        kernel_fingerprint(&pb.kernel),
        "each cell serves its own kernel"
    );
}

/// An export that dies before the atomic rename (simulated through the
/// [`ScheduleStore::save_interrupted`] fault seam) leaves the previously
/// committed store byte-intact and loadable; the next healthy export
/// replaces it atomically.
#[test]
fn interrupted_export_never_touches_the_destination() {
    let ctx = ctx();
    let kernels = kernels(&ctx);
    let configs = configs();
    let path = temp_path("interrupted.store");

    // commit a first-generation store
    let cache = SchedCache::new();
    let machine = ctx.machine_for(&configs[0]);
    for k in &kernels {
        cache
            .prepare(k, &machine, &configs[0], &ctx)
            .expect("schedules");
    }
    let committed = cache.export_store();
    committed.save(&path).expect("first export commits");
    let committed_text = committed.to_text();

    // grow a second generation, then kill its export partway — at every
    // interesting cut point the destination must stay the committed text
    let machine1 = ctx.machine_for(&configs[1]);
    for k in &kernels {
        cache
            .prepare(k, &machine1, &configs[1], &ctx)
            .expect("schedules");
    }
    let grown = cache.export_store();
    assert!(grown.len() > committed.len());
    let grown_text = grown.to_text();
    for cut in [0, 1, grown_text.len() / 2, grown_text.len() - 1] {
        grown
            .save_interrupted(&path, cut)
            .expect_err("the simulated crash must surface as an error");
        assert_eq!(
            std::fs::read_to_string(&path).expect("destination still readable"),
            committed_text,
            "cut at {cut} corrupted the committed store"
        );
        let reloaded = ScheduleStore::load(&path).expect("destination still loads strictly");
        assert_eq!(reloaded.to_text(), committed_text);
    }

    // the next healthy export atomically replaces the old generation
    grown.save(&path).expect("healthy export commits");
    assert_eq!(
        std::fs::read_to_string(&path).expect("readable"),
        grown_text
    );
    // no temp debris left behind by either the crash or the commit
    let debris: Vec<_> = std::fs::read_dir(path.parent().expect("parent"))
        .expect("listable")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| {
            n.starts_with(&format!(
                "{}.tmp.",
                path.file_name().expect("name").to_string_lossy()
            ))
        })
        .collect();
    std::fs::remove_file(&path).ok();
    for d in &debris {
        std::fs::remove_file(path.parent().expect("parent").join(d)).ok();
    }
    assert!(
        debris.len() <= 1,
        "at most the one interrupted temp file may remain: {debris:?}"
    );
}

/// Eight threads storm a cache whose preparer panics once on a victim
/// key: the panic is contained (no worker dies, no mutex poisons, no
/// deadlock), the slot is marked failed, the next request recovers it,
/// and every thread converges on answers bit-identical to a clean
/// serial reference.
#[test]
fn panic_storm_is_contained_and_recovered() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use vliw_experiments::prepare_loop;
    use vliw_sched::ScheduleError;

    let ctx = ctx();
    let kernels = kernels(&ctx);
    let configs = configs();
    let n_keys = kernels.len() * configs.len();
    let victim = kernels[0].name.clone();

    // clean serial reference
    let reference: Vec<Arc<PreparedLoop>> = {
        let cache = SchedCache::new();
        configs
            .iter()
            .flat_map(|cfg| {
                let machine = ctx.machine_for(cfg);
                kernels
                    .iter()
                    .map(|k| cache.prepare(k, &machine, cfg, &ctx).expect("schedules"))
                    .collect::<Vec<_>>()
            })
            .collect()
    };

    let armed = AtomicBool::new(true);
    let cache = SchedCache::with_shards(4).into_preparer(Arc::new(
        move |k: &_, m: &_, cfg: &_, ctx: &_| {
            if k.name == victim && armed.swap(false, Ordering::SeqCst) {
                panic!("fault plan: injected preparation panic");
            }
            prepare_loop(k, m, cfg, ctx)
        },
    ));

    const THREADS: usize = 8;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (cache, ctx, kernels, configs, reference) =
                (&cache, &ctx, &kernels, &configs, &reference);
            s.spawn(move || {
                for i in 0..n_keys {
                    let j = (i + t * 3) % n_keys;
                    let cfg = &configs[j / kernels.len()];
                    let kernel = &kernels[j % kernels.len()];
                    let machine = ctx.machine_for(cfg);
                    let mut attempts = 0;
                    let got = loop {
                        match cache.prepare(kernel, &machine, cfg, ctx) {
                            Ok(p) => break p,
                            Err(ScheduleError::PreparationPanicked { reason, .. }) => {
                                attempts += 1;
                                assert!(attempts <= 2, "panic must not recur: {reason}");
                            }
                            Err(e) => panic!("unexpected failure: {e}"),
                        }
                    };
                    assert!(
                        identical(&got, &reference[j]),
                        "thread {t} got a non-reference answer for request {j}"
                    );
                }
            });
        }
    });

    assert_eq!(cache.panics_contained(), 1, "exactly the injected panic");
    assert_eq!(
        cache.slots_recovered(),
        1,
        "the failed slot is adopted exactly once"
    );
    assert_eq!(cache.failed_slots(), 0, "no unrecovered slot survives");
    assert!(cache.failed_slot_reasons().is_empty());
    assert_eq!(
        cache.prepares(),
        n_keys as u64 + 1,
        "every key prepared once, plus the panicked attempt"
    );
    assert_eq!(cache.len(), n_keys, "every cell completed");
}

/// Truncation property: for *every* byte boundary of a healthy store,
/// the salvage loader never panics, recovers exactly the records whose
/// lines survived whole, serves them bit-identical to the originals,
/// and accounts for every declared record once the prelude is intact.
#[test]
fn salvage_recovers_exactly_the_intact_prefix() {
    use vliw_experiments::schedcache::SalvageReport;

    let ctx = ctx();
    let kernels = kernels(&ctx);
    let configs = configs();
    let cache = SchedCache::new();
    for cfg in &configs {
        let machine = ctx.machine_for(cfg);
        for k in &kernels {
            cache.prepare(k, &machine, cfg, &ctx).expect("schedules");
        }
    }
    let text = cache.export_store().to_text();
    // compare against the round-tripped form: serialization drops the
    // latency-assignment derivation trace, so the persisted record is
    // the baseline a salvaged record must match bit-for-bit
    let store = ScheduleStore::from_text(&text).expect("healthy store parses");
    let n_records = store.len();
    assert!(n_records >= 4, "population too small to exercise salvage");

    // byte offsets: end of each line (incl. newline), then per record
    let lines: Vec<&str> = text.lines().collect();
    let mut ends = Vec::with_capacity(lines.len());
    let mut off = 0usize;
    for l in &lines {
        off += l.len() + 1;
        ends.push(off);
    }
    const REC_LINES: usize = 7; // entry + 4 sched + check + endentry
    assert_eq!(lines.len(), 2 + n_records * REC_LINES);
    let prelude_end = ends[1];
    let record_end = |r: usize| ends[2 + r * REC_LINES + (REC_LINES - 1)];

    let verify_served = |salvaged: &ScheduleStore, rep: &SalvageReport| {
        assert_eq!(salvaged.len(), rep.recovered);
        for e in salvaged.entries() {
            let orig = store.get(&e.key).expect("salvage invented a record");
            assert_eq!(e, orig, "served record drifted from the original");
        }
    };

    for cut in 0..=text.len() {
        let (salvaged, rep) = ScheduleStore::from_text_salvage(&text[..cut]);
        verify_served(&salvaged, &rep);
        let expected = if cut < prelude_end {
            0
        } else {
            (0..n_records).filter(|&r| cut + 1 >= record_end(r)).count()
        };
        assert_eq!(rep.recovered, expected, "cut at byte {cut}");
        if cut >= prelude_end {
            assert_eq!(
                rep.recovered + rep.dropped(),
                n_records,
                "cut at byte {cut}: every declared record must be accounted for"
            );
            assert!(!rep.version_rejected);
        }
    }

    // seeded random single-bit flips over the record region: salvage
    // must never panic and never serve a record that fails its checksum
    let mut rng = vliw_workloads::rng::StdRng::seed_from_u64(0xFAA57);
    for _ in 0..200 {
        let byte = rng.random_range(prelude_end..text.len());
        let bit = rng.random_range(0..8u32);
        let mut damaged = text.clone().into_bytes();
        damaged[byte] ^= 1 << bit;
        let damaged = String::from_utf8_lossy(&damaged).into_owned();
        let (salvaged, rep) = ScheduleStore::from_text_salvage(&damaged);
        verify_served(&salvaged, &rep);
        assert!(rep.recovered < n_records || rep.dropped() == 0);
    }

    // deterministic corrupt-middle check: flip one digit inside the
    // first record's schedule block — that record alone drops as
    // corrupt, everything after it still loads
    let target = ends[2]; // first byte of the first sched line
    let mut damaged = text.clone().into_bytes();
    let digit = (target..ends[3])
        .find(|&i| damaged[i].is_ascii_digit())
        .expect("schedule lines carry digits");
    damaged[digit] = if damaged[digit] == b'9' { b'8' } else { b'9' };
    let damaged = String::from_utf8(damaged).expect("still utf8");
    let (salvaged, rep) = ScheduleStore::from_text_salvage(&damaged);
    verify_served(&salvaged, &rep);
    assert_eq!(
        rep.dropped_corrupt, 1,
        "the flipped record drops as corrupt"
    );
    assert_eq!(rep.dropped_truncated, 0);
    assert_eq!(rep.recovered, n_records - 1, "the scan continues past it");
}

/// Version-1 stores (no per-record checksum) are still read by both
/// loaders: the strict parser accepts them wholesale and the salvage
/// parser recovers every record with the shorter framing.
#[test]
fn version1_store_still_loads() {
    let ctx = ctx();
    let kernels = kernels(&ctx);
    let cfg = configs()[0];
    let machine = ctx.machine_for(&cfg);
    let cache = SchedCache::new();
    for k in &kernels {
        cache.prepare(k, &machine, &cfg, &ctx).expect("schedules");
    }
    let v2_text = cache.export_store().to_text();
    // the persisted (round-tripped) records are the comparison baseline:
    // serialization drops the latency-assignment derivation trace
    let store = ScheduleStore::from_text(&v2_text).expect("v2 store parses");

    // rewrite the v2 text in v1 form: drop the check lines, bump the
    // version token down
    let v1_text = v2_text
        .lines()
        .filter(|l| !l.starts_with("check "))
        .map(|l| {
            if l.starts_with("vliw-sched-store ") {
                "vliw-sched-store 1".to_string()
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";

    let strict = ScheduleStore::from_text(&v1_text).expect("v1 store still parses strictly");
    assert_eq!(strict.len(), store.len());
    for e in store.entries() {
        assert_eq!(strict.get(&e.key), Some(e), "v1 record drifted");
    }

    let (salvaged, rep) = ScheduleStore::from_text_salvage(&v1_text);
    assert_eq!(rep.recovered, store.len());
    assert_eq!(rep.dropped(), 0);
    assert!(!rep.version_rejected);
    assert_eq!(salvaged.len(), store.len());

    // a v1 cache still serves: rebuilds hit, nothing is stale
    let warm = SchedCache::with_store(strict);
    for k in &kernels {
        warm.prepare(k, &machine, &cfg, &ctx).expect("rebuilds");
    }
    assert_eq!(warm.store_hits(), kernels.len() as u64);
    assert_eq!(warm.stale(), 0);
}
