//! Satellite check for the stream-derivation optimization: on the quick
//! suite, profiles of unrolled variants are *derived* from the factor-1
//! measurement stream instead of re-measured per variant.
//!
//! What the derivation guarantees — and what this test pins end-to-end
//! through layout, bootstrap scheduling and the timing simulator:
//!
//! 1. at factor 1 the derived profile is **identical** to direct
//!    measurement (same run, re-aggregated);
//! 2. for every quick-suite loop and every factor the pipeline would
//!    pick, the derivation **succeeds** (the fast path is actually taken;
//!    the re-measurement fallback stays dormant);
//! 3. the slicing is **exact**: copy `k` of a `U`-unrolled kernel gets
//!    precisely the samples of base iterations `≡ k (mod U)`, so the
//!    per-copy profiles reconstruct the factor-1 aggregate
//!    count-for-count.
//!
//! What it deliberately does *not* assert: equality with a fresh
//! `measure_kernel_on_input` of the unrolled kernel. That measurement
//! answers a different question — it simulates the variant's *own*
//! bootstrap schedule over `iteration_cap` unrolled iterations (U× the
//! base window), and the synthetic address generator treats the rewritten
//! kernel as a different program (indirect streams hash op names, which
//! unroll rewrites to `name#k`; strided wrap periods rescale with the
//! U× stride). The derivation is the faithful model of "the same program,
//! unrolled": copy `k` sees exactly the original program's base
//! iterations `≡ k (mod U)`. See DESIGN.md §"Schedule cache & batch
//! service" for the full argument.

use vliw_experiments::ExperimentContext;
use vliw_ir::unroll;
use vliw_profile::{measure_kernel_on_input, measure_kernel_stream_on_input, MeasureOptions};
use vliw_sched::optimal_unroll_factor;

#[test]
fn stream_derivation_is_exact_on_quick_suite() {
    let ctx = ExperimentContext::quick();
    let machine = &ctx.machine;
    let opts = MeasureOptions {
        policy: vliw_sched::ClusterPolicy::PreBuildChains,
        enum_limits: ctx.enum_limits,
        sim: ctx.sim,
    };
    let mut variants = 0usize;
    for model in ctx.models() {
        for lw in &model.loops {
            let stream = match measure_kernel_stream_on_input(
                &lw.kernel,
                machine,
                false,
                ctx.workloads.profile_input,
                &opts,
            ) {
                Ok(s) => s,
                Err(_) => continue, // no bootstrap schedule: nothing to derive either
            };

            // (1) factor-1 identity: the stream re-aggregated == the
            // direct measurement of the same run
            let direct1 = measure_kernel_on_input(
                &lw.kernel,
                machine,
                false,
                ctx.workloads.profile_input,
                &opts,
            )
            .expect("stream measurement succeeded, so direct must too");
            assert_eq!(
                stream.to_loop_profile(&lw.kernel, machine),
                direct1,
                "{}: stream aggregate != direct factor-1 measurement",
                lw.kernel.name
            );
            let base = stream
                .derive_unrolled(&lw.kernel, 1, machine)
                .expect("factor-1 derivation");
            assert_eq!(
                base, direct1,
                "{}: factor-1 derivation drifted",
                lw.kernel.name
            );

            let ouf = optimal_unroll_factor(&lw.kernel, machine);
            let mut factors = vec![2, 4, ouf];
            factors.sort_unstable();
            factors.dedup();
            for factor in factors.into_iter().filter(|&f| f > 1) {
                let unrolled = unroll(&lw.kernel, factor);
                // (2) the fast path is taken on the real suite
                let derived = stream
                    .derive_unrolled(&unrolled, factor, machine)
                    .unwrap_or_else(|e| {
                        panic!("{} x{factor}: derivation rejected: {e}", lw.kernel.name)
                    });
                // (3) exact residue slicing: per-copy counts and the
                // copy-sum reconstruction of the factor-1 aggregate
                let n = lw.kernel.ops.len();
                let samples = stream.samples[stream
                    .samples
                    .iter()
                    .position(|s| !s.is_empty())
                    .expect("suite loops have memory ops")]
                .len() as u64;
                for (idx, op) in derived.ops.iter() {
                    let copy = (idx / n) as u64;
                    let expect =
                        samples / factor as u64 + u64::from(samples % factor as u64 > copy);
                    assert_eq!(
                        op.classes.iter().sum::<u64>(),
                        expect,
                        "{} x{factor} op {idx}: residue slice has wrong sample count",
                        lw.kernel.name
                    );
                }
                for (orig, op1) in direct1.ops.iter() {
                    let mut summed = [0u64; 4];
                    for copy in 0..factor as usize {
                        let (_, opc) = derived
                            .ops
                            .iter()
                            .find(|(i, _)| *i == copy * n + orig)
                            .expect("every copy derived");
                        for (s, c) in summed.iter_mut().zip(opc.classes.iter()) {
                            *s += c;
                        }
                    }
                    assert_eq!(
                        summed.as_slice(),
                        op1.classes.as_slice(),
                        "{} x{factor} op {orig}: copies do not reconstruct the factor-1 classes",
                        lw.kernel.name
                    );
                }
                variants += 1;
            }
        }
    }
    assert!(
        variants >= 8,
        "quick suite verified only {variants} variants"
    );
}
