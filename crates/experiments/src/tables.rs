//! Tables 1 and 2 of the paper.

use std::fmt;

use crate::context::ExperimentContext;
use crate::grid::RunGrid;
use crate::report::Table;

/// Table 1: benchmarks, inputs and dominant data sizes — both the spec
/// values (from the paper) and the shares measured on the synthesized
/// suite.
#[derive(Debug, Clone)]
pub struct Table1 {
    rows: Vec<(String, String, String, u8, f64, f64)>,
}

impl Table1 {
    /// The measured dominant-granularity share of `bench`.
    pub fn measured_share(&self, bench: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.0 == bench).map(|r| r.5)
    }

    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Table 1: benchmarks and inputs",
            &[
                "bench",
                "profile input",
                "exec input",
                "main size",
                "paper share",
                "measured",
            ],
        );
        for (name, pi, ei, gran, paper, measured) in &self.rows {
            t.row(vec![
                name.clone(),
                pi.clone(),
                ei.clone(),
                format!("{gran} bytes"),
                format!("{:.0}%", 100.0 * paper),
                format!("{:.0}%", 100.0 * measured),
            ]);
        }
        t
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table().render())
    }
}

/// Builds Table 1 from the context's models (synthesized through the same
/// [`RunGrid`] model-building step the figure drivers use).
pub fn table1(ctx: &ExperimentContext) -> Table1 {
    let mut rows = Vec::new();
    for model in RunGrid::new("table1").models(ctx) {
        let spec = &model.spec;
        let (mut dominant, mut total) = (0.0f64, 0.0f64);
        for l in &model.loops {
            for op in l.kernel.mem_ops() {
                let w = l.kernel.avg_trip * l.kernel.invocations;
                total += w;
                if op.mem.as_ref().expect("mem").granularity == spec.main_gran {
                    dominant += w;
                }
            }
        }
        rows.push((
            model.name.clone(),
            spec.profile_input.to_string(),
            spec.exec_input.to_string(),
            spec.main_gran,
            spec.main_share,
            if total > 0.0 { dominant / total } else { 0.0 },
        ));
    }
    Table1 { rows }
}

/// Table 2: the machine configuration.
#[derive(Debug, Clone)]
pub struct Table2 {
    machine: vliw_machine::MachineConfig,
}

impl Table2 {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let m = &self.machine;
        let mut t = Table::new("Table 2: configuration parameters", &["parameter", "value"]);
        let mut kv = |k: &str, v: String| {
            t.row(vec![k.into(), v]);
        };
        kv("number of clusters", m.clusters.n_clusters.to_string());
        kv(
            "functional units",
            format!(
                "{} FP / {} integer / {} memory per cluster",
                m.clusters.fp_units, m.clusters.int_units, m.clusters.mem_units
            ),
        );
        kv(
            "cache",
            format!(
                "{} KB total ({} x {} KB modules), {}-byte blocks, {}-way",
                m.cache.total_bytes / 1024,
                m.clusters.n_clusters,
                m.cache.module_bytes(m.clusters.n_clusters) / 1024,
                m.cache.block_bytes,
                m.cache.associativity
            ),
        );
        kv(
            "latencies",
            format!(
                "{} / {} / {} / {} cycles (LH/RH/LM/RM)",
                m.mem_latencies.local_hit,
                m.mem_latencies.remote_hit,
                m.mem_latencies.local_miss,
                m.mem_latencies.remote_miss
            ),
        );
        kv(
            "register buses",
            format!("{} at 1/2 core frequency", m.buses.reg_buses),
        );
        kv(
            "memory buses",
            format!("{} at 1/2 core frequency", m.buses.mem_buses),
        );
        kv(
            "next memory level",
            format!(
                "{} ports, {} cycles, always hit",
                m.next_level.ports, m.next_level.latency
            ),
        );
        kv(
            "interleaving factor",
            format!("{} bytes", m.cache.interleave_bytes),
        );
        t
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table().render())
    }
}

/// Builds Table 2 from the context's machine.
pub fn table2(ctx: &ExperimentContext) -> Table2 {
    Table2 {
        machine: ctx.machine.clone(),
    }
}
