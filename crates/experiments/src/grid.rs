//! Declarative experiment grids: enumerate `RunConfig` cross-products,
//! execute every `(benchmark, config)` cell — in parallel, with schedules
//! memoized across cells — and feed the shared aggregation backbone every
//! figure driver sits on.
//!
//! A [`RunGrid`] is built from labeled configurations (figure bars) or a
//! [`GridAxes`] cross-product, then executed with [`RunGrid::run`]
//! (parallel) or [`RunGrid::run_serial`]. Cells are independent and
//! deterministic, and the schedule memo only *shares* results, so a
//! parallel run is bit-identical to a serial one —
//! [`GridResult::fingerprint`] makes that checkable.
//!
//! ```no_run
//! use vliw_experiments::{ExperimentContext, RunConfig, RunGrid};
//!
//! let ctx = ExperimentContext::quick();
//! let result = RunGrid::new("demo")
//!     .config("IPBC", RunConfig::ipbc())
//!     .config("IPBC+AB", RunConfig::ipbc().with_buffers())
//!     .run(&ctx);
//! for (bench, runs) in result.by_bench() {
//!     println!("{bench}: {:.0} vs {:.0} cycles", runs[0].total_cycles(), runs[1].total_cycles());
//! }
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use vliw_sched::{ClusterPolicy, SchedBackend};
use vliw_workloads::{spec_by_name, synthesize, BenchmarkModel};

use crate::context::{
    run_benchmark_memo, ArchVariant, BenchRun, ExperimentContext, ProfileSource, RunConfig,
    ScheduleMemo, UnrollMode,
};
use crate::report::amean;

/// Axes of a declarative `RunConfig` cross-product. Every axis defaults to
/// the corresponding value of a base configuration; widened axes multiply.
///
/// ```
/// use vliw_experiments::{GridAxes, RunConfig, UnrollMode};
///
/// let configs = GridAxes::from(RunConfig::ipbc())
///     .unrolls(&[UnrollMode::NoUnroll, UnrollMode::Ouf])
///     .paddings(&[false, true])
///     .enumerate();
/// assert_eq!(configs.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct GridAxes {
    arches: Vec<ArchVariant>,
    policies: Vec<ClusterPolicy>,
    backends: Vec<SchedBackend>,
    sources: Vec<ProfileSource>,
    unrolls: Vec<UnrollMode>,
    paddings: Vec<bool>,
    buffers: Vec<Option<(usize, usize)>>,
    hints: Vec<bool>,
}

impl GridAxes {
    /// Axes fixed to `base`'s values; widen individual axes from here.
    pub fn from(base: RunConfig) -> Self {
        GridAxes {
            arches: vec![base.arch],
            policies: vec![base.policy],
            backends: vec![base.backend],
            sources: vec![base.source],
            unrolls: vec![base.unroll],
            paddings: vec![base.padding],
            buffers: vec![base.attraction_buffers],
            hints: vec![base.use_hints],
        }
    }

    /// Sweeps the architecture axis.
    pub fn arches(mut self, values: &[ArchVariant]) -> Self {
        self.arches = values.to_vec();
        self
    }

    /// Sweeps the cluster-assignment policy axis.
    pub fn policies(mut self, values: &[ClusterPolicy]) -> Self {
        self.policies = values.to_vec();
        self
    }

    /// Sweeps the scheduler-backend axis.
    pub fn backends(mut self, values: &[SchedBackend]) -> Self {
        self.backends = values.to_vec();
        self
    }

    /// Sweeps the profile-source axis (none / synthetic / measured).
    pub fn sources(mut self, values: &[ProfileSource]) -> Self {
        self.sources = values.to_vec();
        self
    }

    /// Sweeps the unrolling-mode axis.
    pub fn unrolls(mut self, values: &[UnrollMode]) -> Self {
        self.unrolls = values.to_vec();
        self
    }

    /// Sweeps the §4.3.4 alignment (padding) axis.
    pub fn paddings(mut self, values: &[bool]) -> Self {
        self.paddings = values.to_vec();
        self
    }

    /// Sweeps the Attraction-Buffer axis (`None` = no buffers).
    pub fn buffers(mut self, values: &[Option<(usize, usize)>]) -> Self {
        self.buffers = values.to_vec();
        self
    }

    /// Sweeps the §5.2 compiler-hints axis.
    pub fn hints(mut self, values: &[bool]) -> Self {
        self.hints = values.to_vec();
        self
    }

    /// Enumerates the full cross-product, architecture-major, in axis
    /// order (arch × policy × backend × source × unroll × padding ×
    /// buffers × hints).
    pub fn enumerate(&self) -> Vec<RunConfig> {
        let mut out = Vec::new();
        for &arch in &self.arches {
            for &policy in &self.policies {
                for &backend in &self.backends {
                    for &source in &self.sources {
                        for &unroll in &self.unrolls {
                            for &padding in &self.paddings {
                                for &attraction_buffers in &self.buffers {
                                    for &use_hints in &self.hints {
                                        out.push(RunConfig {
                                            arch,
                                            policy,
                                            backend,
                                            source,
                                            unroll,
                                            padding,
                                            attraction_buffers,
                                            use_hints,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// How a grid's cells are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// One cell at a time, in declaration order.
    Serial,
    /// A fixed number of worker threads.
    Threads(usize),
    /// One worker per available core.
    Auto,
}

impl Parallelism {
    /// [`Parallelism::Auto`], unless the `VLIW_GRID_SERIAL` environment
    /// variable is set (the `repro --serial` determinism check).
    pub fn from_env() -> Self {
        if std::env::var_os("VLIW_GRID_SERIAL").is_some() {
            Parallelism::Serial
        } else {
            Parallelism::Auto
        }
    }

    fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// A declarative experiment grid: labeled configurations × benchmarks.
#[derive(Debug, Clone)]
pub struct RunGrid {
    label: String,
    configs: Vec<(String, RunConfig)>,
    benchmarks: Option<Vec<String>>,
}

impl RunGrid {
    /// An empty grid named `label` (the label shows up in diagnostics).
    pub fn new(label: impl Into<String>) -> Self {
        RunGrid {
            label: label.into(),
            configs: Vec::new(),
            benchmarks: None,
        }
    }

    /// Adds one labeled configuration (one figure bar).
    pub fn config(mut self, label: impl Into<String>, cfg: RunConfig) -> Self {
        self.configs.push((label.into(), cfg));
        self
    }

    /// Adds every configuration of a cross-product, with generated labels.
    pub fn cross(mut self, axes: &GridAxes) -> Self {
        for cfg in axes.enumerate() {
            let label = format!(
                "{:?}/{:?}/{}/{:?}/{:?}/pad={}/ab={:?}/hints={}",
                cfg.arch,
                cfg.policy,
                cfg.backend.name(),
                cfg.source,
                cfg.unroll,
                cfg.padding,
                cfg.attraction_buffers,
                cfg.use_hints
            );
            self.configs.push((label, cfg));
        }
        self
    }

    /// Restricts the grid to the named benchmarks (default: the context's).
    pub fn benchmarks(mut self, names: &[&str]) -> Self {
        self.benchmarks = Some(names.iter().map(|s| s.to_string()).collect());
        self
    }

    /// The grid's name.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The labeled configurations, in declaration order.
    pub fn configs(&self) -> &[(String, RunConfig)] {
        &self.configs
    }

    /// Synthesizes the benchmark models this grid runs over — the shared
    /// model-building step every driver (including the tables) goes
    /// through.
    /// # Panics
    ///
    /// Panics if a name passed to [`RunGrid::benchmarks`] is not in the
    /// suite — a typo must fail loudly, not produce a blank report.
    pub fn models(&self, ctx: &ExperimentContext) -> Vec<BenchmarkModel> {
        match &self.benchmarks {
            None => ctx.models(),
            Some(names) => names
                .iter()
                .map(|n| {
                    let spec = spec_by_name(n).unwrap_or_else(|| {
                        panic!("grid '{}': unknown benchmark '{n}'", self.label)
                    });
                    synthesize(&spec, &ctx.workloads, &ctx.machine)
                })
                .collect(),
        }
    }

    /// Executes every cell in parallel (one worker per core; serial when
    /// `VLIW_GRID_SERIAL` is set).
    pub fn run(&self, ctx: &ExperimentContext) -> GridResult {
        self.run_with(ctx, Parallelism::from_env())
    }

    /// Executes every cell serially, in declaration order.
    pub fn run_serial(&self, ctx: &ExperimentContext) -> GridResult {
        self.run_with(ctx, Parallelism::Serial)
    }

    /// Executes every cell with the given parallelism.
    pub fn run_with(&self, ctx: &ExperimentContext, par: Parallelism) -> GridResult {
        let models = self.models(ctx);
        self.run_on_models(&models, ctx, par)
    }

    /// Executes the grid over explicit (possibly filtered or synthetic)
    /// models instead of synthesizing them from the context.
    pub fn run_on_models(
        &self,
        models: &[BenchmarkModel],
        ctx: &ExperimentContext,
        par: Parallelism,
    ) -> GridResult {
        let n_cfg = self.configs.len();
        let n_models = models.len();
        let cells_total = n_models * n_cfg;
        let memo = ScheduleMemo::new();
        let slots: Vec<Mutex<Option<BenchRun>>> =
            (0..cells_total).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = par.workers().min(cells_total.max(1));

        // The work queue, sharded by per-cell cost: heavy cells (the
        // exact search, and any cell whose measured profile source runs
        // a whole profiling simulation per loop) are dispatched first
        // and cheap heuristic cells back-fill the workers, so a sweep
        // over `SchedBackend::ALL` does not end on a long tail of one
        // worker grinding exact cells while the rest sit idle. The sort
        // is stable, so within a shard the claim order stays
        // config-major: concurrent workers start on *different*
        // benchmarks, rarely contending on a memo slot, and a benchmark's
        // later configs hit warm entries (or block on the in-flight
        // computation instead of repeating it). Cells are independent and
        // land in their own slots, so the dispatch order cannot change
        // any result — serial and parallel runs stay bit-identical.
        let cell_cost = |cfg: &RunConfig| {
            let measure = match cfg.source {
                ProfileSource::Measured => 3,
                ProfileSource::Synthetic | ProfileSource::None => 0,
            };
            cfg.backend.cost_rank() + measure
        };
        let mut queue: Vec<usize> = (0..cells_total).collect();
        queue.sort_by_key(|&i| std::cmp::Reverse(cell_cost(&self.configs[i / n_models].1)));

        let work = |_worker: usize| loop {
            let q = next.fetch_add(1, Ordering::Relaxed);
            if q >= cells_total {
                break;
            }
            let i = queue[q];
            let (b, c) = (i % n_models, i / n_models);
            let run = run_benchmark_memo(&models[b], &self.configs[c].1, ctx, Some(&memo));
            *slots[b * n_cfg + c].lock().expect("cell slot") = Some(run);
        };

        if workers <= 1 {
            work(0);
        } else {
            thread::scope(|s| {
                for w in 0..workers {
                    s.spawn(move || work(w));
                }
            });
        }

        let cells: Vec<BenchRun> = slots
            .into_iter()
            .map(|m| m.into_inner().expect("cell lock").expect("cell computed"))
            .collect();
        GridResult {
            benches: models.iter().map(|m| m.name.clone()).collect(),
            configs: self.configs.clone(),
            cells,
            memoized_schedules: memo.len(),
            memo_hits: memo.hits(),
        }
    }
}

/// The outcome of a grid run: one [`BenchRun`] per `(benchmark, config)`
/// cell, bench-major, plus the aggregation backbone the figure drivers
/// share.
#[derive(Debug)]
pub struct GridResult {
    benches: Vec<String>,
    configs: Vec<(String, RunConfig)>,
    cells: Vec<BenchRun>,
    memoized_schedules: usize,
    memo_hits: usize,
}

impl GridResult {
    /// Benchmark names, in model order.
    pub fn benches(&self) -> &[String] {
        &self.benches
    }

    /// The labeled configurations, in declaration order.
    pub fn configs(&self) -> &[(String, RunConfig)] {
        &self.configs
    }

    /// Number of distinct schedules the run actually computed (the rest
    /// were memo hits across cells).
    pub fn memoized_schedules(&self) -> usize {
        self.memoized_schedules
    }

    /// Number of loop preparations served from the schedule memo instead
    /// of being recomputed — the scheduling work the grid skipped.
    pub fn memo_hits(&self) -> usize {
        self.memo_hits
    }

    /// The cell for benchmark index `b` under config index `c`.
    pub fn cell(&self, b: usize, c: usize) -> &BenchRun {
        &self.cells[b * self.configs.len() + c]
    }

    /// Iterates `(benchmark name, its runs in config order)`.
    pub fn by_bench(&self) -> impl Iterator<Item = (&str, &[BenchRun])> {
        let n = self.configs.len();
        self.benches
            .iter()
            .enumerate()
            .map(move |(b, name)| (name.as_str(), &self.cells[b * n..(b + 1) * n]))
    }

    /// All runs of config index `c`, one per benchmark.
    pub fn by_config(&self, c: usize) -> impl Iterator<Item = &BenchRun> {
        let n = self.configs.len();
        self.cells.iter().skip(c).step_by(n.max(1))
    }

    /// Arithmetic mean of `f` over benchmarks, per configuration.
    pub fn amean_by_config(&self, f: impl Fn(&BenchRun) -> f64) -> Vec<f64> {
        (0..self.configs.len())
            .map(|c| amean(self.by_config(c).map(&f)))
            .collect()
    }

    /// Per-configuration MSHR activity summed over benchmarks:
    /// `[fills, merged waiters, full-stall cycles]` (scaled counts, like
    /// [`BenchRun::mshr_mix`]).
    pub fn mshr_by_config(&self) -> Vec<[f64; 3]> {
        (0..self.configs.len())
            .map(|c| {
                let mut out = [0.0; 3];
                for run in self.by_config(c) {
                    let m = run.mshr_mix();
                    for (o, v) in out.iter_mut().zip(m) {
                        *o += v;
                    }
                }
                out
            })
            .collect()
    }

    /// Highest per-cluster MSHR occupancy any cell of config `c` observed.
    pub fn mshr_peak_by_config(&self, c: usize) -> u64 {
        self.by_config(c)
            .map(|r| r.mshr_peak_occupancy())
            .max()
            .unwrap_or(0)
    }

    /// Per-configuration schedule-quality counts
    /// `[heuristic, proven optimal, cutoff, degraded]`, summed over
    /// benchmarks — how the backend axis surfaces in aggregation. A
    /// nonzero cutoff or degraded column is the visible record of
    /// exact-search budget exhaustion.
    pub fn quality_by_config(&self) -> Vec<[usize; 4]> {
        (0..self.configs.len())
            .map(|c| {
                let mut out = [0usize; 4];
                for run in self.by_config(c) {
                    let q = run.quality_counts();
                    for (o, v) in out.iter_mut().zip(q) {
                        *o += v;
                    }
                }
                out
            })
            .collect()
    }

    /// A canonical, bit-exact digest of every cell: per loop, the II, the
    /// cluster of every operation, and the exact bits of the cycle
    /// counters. Two runs produce equal fingerprints iff their reports are
    /// bit-identical — the serial/parallel determinism contract.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (b, bench) in self.benches.iter().enumerate() {
            for (c, (label, _)) in self.configs.iter().enumerate() {
                let run = self.cell(b, c);
                let _ = write!(out, "{bench}|{label}:");
                for l in &run.loops {
                    let clusters: Vec<usize> =
                        l.prepared.schedule.ops.iter().map(|o| o.cluster).collect();
                    let _ = write!(
                        out,
                        "{}#ii={},f={},cl={:?},cc={:016x},sc={:016x};",
                        l.name,
                        l.prepared.schedule.ii,
                        l.prepared.factor,
                        clusters,
                        l.sim.compute_cycles.to_bits(),
                        l.sim.stall_cycles.to_bits(),
                    );
                }
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axes_cross_product_enumerates_in_order() {
        let configs = GridAxes::from(RunConfig::ipbc())
            .policies(&[ClusterPolicy::PreBuildChains, ClusterPolicy::BuildChains])
            .paddings(&[true, false])
            .enumerate();
        assert_eq!(configs.len(), 4);
        assert_eq!(configs[0].policy, ClusterPolicy::PreBuildChains);
        assert!(configs[0].padding);
        assert!(!configs[1].padding);
        assert_eq!(configs[2].policy, ClusterPolicy::BuildChains);
        // untouched axes keep the base value everywhere
        assert!(configs.iter().all(|c| c.unroll == UnrollMode::Selective));
    }

    #[test]
    fn backend_axis_multiplies_and_reaches_cells() {
        let configs = GridAxes::from(RunConfig::ipbc())
            .backends(&[SchedBackend::SwingModulo, SchedBackend::ExactBnB])
            .paddings(&[true, false])
            .enumerate();
        assert_eq!(configs.len(), 4);
        assert_eq!(configs[0].backend, SchedBackend::SwingModulo);
        assert_eq!(configs[2].backend, SchedBackend::ExactBnB);
        // untouched axes keep the base value everywhere
        assert!(configs.iter().all(|c| c.policy == RunConfig::ipbc().policy));
    }

    #[test]
    fn quality_aggregation_distinguishes_backends() {
        let mut ctx = ExperimentContext::quick();
        ctx.sim.iteration_cap = 32;
        ctx.sim.warmup_iterations = 32;
        ctx.profile.iteration_cap = 32;
        let base = RunConfig {
            unroll: crate::UnrollMode::NoUnroll,
            ..RunConfig::ipbc()
        };
        let grid = RunGrid::new("t")
            .benchmarks(&["gsmdec"])
            .config("swing", base)
            .config("bnb", base.with_backend(SchedBackend::ExactBnB));
        let res = grid.run_serial(&ctx);
        let q = res.quality_by_config();
        let n_loops = res.cell(0, 0).loops.len();
        assert_eq!(q[0], [n_loops, 0, 0, 0], "heuristic cells claim nothing");
        assert_eq!(q[1][0], 0, "exact cells never claim Heuristic");
        assert_eq!(q[1][1] + q[1][2], n_loops, "proven + cutoff covers all");
        assert_eq!(q[1][3], 0, "default fallback policy never degrades");
        // distinct backends must not have shared a memo slot
        for (a, b) in res.cell(0, 0).loops.iter().zip(&res.cell(0, 1).loops) {
            assert!(!std::sync::Arc::ptr_eq(&a.prepared, &b.prepared));
            assert!(b.prepared.schedule.ii <= a.prepared.schedule.ii);
        }
    }

    #[test]
    fn grid_runs_and_indexes_cells() {
        let mut ctx = ExperimentContext::quick();
        ctx.sim.iteration_cap = 32;
        ctx.sim.warmup_iterations = 32;
        ctx.profile.iteration_cap = 32;
        let grid = RunGrid::new("t")
            .benchmarks(&["gsmdec"])
            .config("IPBC", RunConfig::ipbc())
            .config("IBC", RunConfig::ibc());
        let res = grid.run_serial(&ctx);
        assert_eq!(res.benches(), ["gsmdec"]);
        assert_eq!(res.configs().len(), 2);
        assert!(res.cell(0, 0).total_cycles() > 0.0);
        assert_eq!(res.by_bench().count(), 1);
        assert_eq!(res.by_config(1).count(), 1);
        assert_eq!(res.amean_by_config(|r| r.total_cycles()).len(), 2);
    }

    #[test]
    fn memo_shares_schedules_across_buffer_axis() {
        let mut ctx = ExperimentContext::quick();
        ctx.sim.iteration_cap = 32;
        ctx.sim.warmup_iterations = 32;
        ctx.profile.iteration_cap = 32;
        let grid = RunGrid::new("t")
            .benchmarks(&["gsmdec"])
            .config("IPBC", RunConfig::ipbc())
            .config("IPBC+AB", RunConfig::ipbc().with_buffers());
        let res = grid.run_serial(&ctx);
        let n_loops = res.cell(0, 0).loops.len();
        // both configs share one preparation per loop
        assert_eq!(res.memoized_schedules(), n_loops);
        // ...so exactly one prepare per loop was a memo hit
        assert_eq!(res.memo_hits(), n_loops);
        // ...and the shared schedule is literally the same allocation
        for (a, b) in res.cell(0, 0).loops.iter().zip(&res.cell(0, 1).loops) {
            assert!(std::sync::Arc::ptr_eq(&a.prepared, &b.prepared));
        }
    }
}
