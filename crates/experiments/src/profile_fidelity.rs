//! The profile-fidelity study: what does *measuring* profiles buy over
//! inventing them?
//!
//! The study closes the feedback-directed scheduling loop end to end and
//! quantifies every link:
//!
//! 1. **Collection** ([`collect_suite`]): every factor-1 loop of the
//!    context's suite is profiled synthetically (the functional-cache
//!    pass), then *measured* — its synthetic-pipeline schedule runs in
//!    the timing simulator on the profile input while a `vliw-profile`
//!    collector records per-load class mixes, home-cluster histograms and
//!    latency distributions. The measurements land in a versioned
//!    [`ProfileStore`] (persisted under `results/profiles/` by the
//!    `repro … profile` target, and diffed against a fresh collection in
//!    CI).
//! 2. **Divergence**: per benchmark, how far the synthetic profiles sit
//!    from the measured truth — hit-rate deltas, preferred-cluster
//!    agreement, locality deltas, and the measured expected latencies the
//!    class model never sees.
//! 3. **Cycle deltas per policy**: each §4 cluster policy runs the
//!    factor-1 suite under [`ProfileSource::Synthetic`] and
//!    [`ProfileSource::Measured`], plus the
//!    [`DelayTracking`](vliw_sched::DelayTracking) backend on measured
//!    profiles — the simulated total cycles of feedback-directed
//!    scheduling vs the synthetic baseline.
//! 4. **Delay-tracking suite check**: the `DelayTracking` backend
//!    schedules every measured factor-1 kernel, every schedule is
//!    verified, and its II is compared against the swing pipeline on the
//!    same measured kernels.

use std::fmt;

use vliw_ir::LoopKernel;
use vliw_profile::{attach_measurements, measure_kernel_on_input, MeasureOptions, ProfileStore};
use vliw_sched::{schedule_kernel, schedule_outcome, ClusterPolicy, SchedBackend, ScheduleOptions};
use vliw_workloads::{profile_kernel, ArrayLayout};

use crate::context::{ExperimentContext, ProfileSource, RunConfig, UnrollMode};
use crate::grid::RunGrid;
use crate::report::{f3, fcycles, Table};

/// One factor-1 loop in both profile worlds.
#[derive(Debug, Clone)]
pub struct MeasuredLoop {
    /// The benchmark the loop belongs to.
    pub bench: String,
    /// The kernel with synthetic (functional-cache) profiles.
    pub synthetic: LoopKernel,
    /// The same kernel with measured profiles attached.
    pub measured: LoopKernel,
}

/// The collection result: the store plus both kernel populations.
#[derive(Debug, Clone)]
pub struct CollectedSuite {
    /// Every loop's measurements, keyed and sorted.
    pub store: ProfileStore,
    /// The loops, in model order.
    pub loops: Vec<MeasuredLoop>,
    /// Loops whose bootstrap schedule failed (no measurement possible).
    pub skipped: usize,
}

/// Collects measured profiles for every factor-1 loop of the context's
/// suite (bootstrap policy: IPBC, the paper's headline configuration, so
/// one canonical store describes the whole suite).
pub fn collect_suite(ctx: &ExperimentContext) -> CollectedSuite {
    let opts = MeasureOptions {
        policy: ClusterPolicy::PreBuildChains,
        enum_limits: ctx.enum_limits,
        sim: ctx.sim,
    };
    let mut store = ProfileStore::new();
    let mut loops = Vec::new();
    let mut skipped = 0;
    for model in ctx.models() {
        for lw in &model.loops {
            let mut synthetic = lw.kernel.clone();
            let layout =
                ArrayLayout::new(&synthetic, &ctx.machine, true, ctx.workloads.profile_input);
            profile_kernel(&mut synthetic, &ctx.machine, &layout, &ctx.profile);
            match measure_kernel_on_input(
                &synthetic,
                &ctx.machine,
                true,
                ctx.workloads.profile_input,
                &opts,
            ) {
                Ok(profile) => {
                    let mut measured = synthetic.clone();
                    attach_measurements(&mut measured, &profile)
                        .expect("fresh measurement attaches");
                    store.insert(profile);
                    loops.push(MeasuredLoop {
                        bench: model.name.clone(),
                        synthetic,
                        measured,
                    });
                }
                Err(_) => skipped += 1,
            }
        }
    }
    CollectedSuite {
        store,
        loops,
        skipped,
    }
}

/// The measured factor-1 kernel population (the `optgap` study's
/// delay-tracking rows schedule these).
pub fn measured_factor1_kernels(ctx: &ExperimentContext) -> Vec<LoopKernel> {
    collect_suite(ctx)
        .loops
        .into_iter()
        .map(|l| l.measured)
        .collect()
}

/// Per-benchmark synthetic-vs-measured profile divergence over loads.
#[derive(Debug, Clone)]
pub struct DivergenceRow {
    /// Benchmark name.
    pub bench: String,
    /// Loads compared.
    pub loads: usize,
    /// Mean `|synthetic hit rate − measured hit rate|`.
    pub mean_hit_delta: f64,
    /// Fraction of loads whose preferred cluster agrees.
    pub pref_agreement: f64,
    /// Mean `|synthetic concentration − measured concentration|`.
    pub mean_local_delta: f64,
    /// Mean measured expected latency (cycles) — the quantity the class
    /// model approximates with 1/5/10/15.
    pub mean_expected_latency: f64,
}

/// One policy's simulated cycles under each profile source.
#[derive(Debug, Clone)]
pub struct PolicyDelta {
    /// Policy name.
    pub policy: &'static str,
    /// Arithmetic-mean total cycles, synthetic profiles.
    pub synthetic_cycles: f64,
    /// Arithmetic-mean total cycles, measured profiles.
    pub measured_cycles: f64,
    /// Arithmetic-mean total cycles, measured profiles + delay-tracking
    /// backend.
    pub delay_cycles: f64,
}

impl PolicyDelta {
    /// `(measured − synthetic) / synthetic`, in percent (negative =
    /// measurement helped).
    pub fn measured_delta_pct(&self) -> f64 {
        100.0 * (self.measured_cycles - self.synthetic_cycles) / self.synthetic_cycles
    }

    /// `(delay-tracking − synthetic) / synthetic`, in percent.
    pub fn delay_delta_pct(&self) -> f64 {
        100.0 * (self.delay_cycles - self.synthetic_cycles) / self.synthetic_cycles
    }
}

/// The percentiles the delay-tracking sweep schedules at.
pub const DELAY_PERCENTILES: [f64; 5] = [0.5, 0.75, 0.9, 0.95, 0.99];

/// One point of the delay-percentile sweep: the `DelayTracking` backend
/// re-schedules the measured factor-1 suite (IPBC) promising each load
/// its *p*-th observed-latency percentile instead of the expectation —
/// the knob trading stall risk against II.
#[derive(Debug, Clone)]
pub struct PercentileRow {
    /// The percentile fed to [`ScheduleOptions::delay_percentile`].
    pub p: f64,
    /// Arithmetic-mean simulated total cycles at that percentile.
    pub cycles: f64,
}

/// The delay-tracking backend over the whole measured factor-1 suite.
#[derive(Debug, Clone)]
pub struct DelaySuiteSummary {
    /// Kernels scheduled.
    pub kernels: usize,
    /// Schedules that failed verification (must be 0).
    pub verify_failures: usize,
    /// Kernels where delay-tracking achieved a smaller II than swing on
    /// the same measured kernel.
    pub better: usize,
    /// Kernels where it needed a larger II.
    pub worse: usize,
    /// Measured kernels dropped because one of the two backends failed
    /// to schedule them (0 on the shipped suite; nonzero must be
    /// visible, never silently shrinking the population).
    pub skipped: usize,
    /// Mean `delay II / swing II` (1.0 = parity, < 1 = delay wins).
    pub mean_ii_ratio: f64,
}

/// The whole study.
#[derive(Debug)]
pub struct ProfileFidelityResult {
    /// Per-benchmark profile divergence.
    pub divergence: Vec<DivergenceRow>,
    /// Per-policy cycle deltas.
    pub policies: Vec<PolicyDelta>,
    /// Delay-percentile sweep, one row per [`DELAY_PERCENTILES`] entry.
    pub percentiles: Vec<PercentileRow>,
    /// The expectation-based delay-tracking cycles the sweep compares
    /// against (the IPBC `delay-tracking` cell of the policy table).
    pub percentile_baseline: f64,
    /// Delay-tracking suite summary.
    pub delay: DelaySuiteSummary,
    /// The collected store (persisted by the repro driver).
    pub store: ProfileStore,
    /// Whether serialize → parse reproduced the store exactly.
    pub roundtrip_ok: bool,
    /// Loops skipped during collection (bootstrap failures).
    pub skipped: usize,
}

impl ProfileFidelityResult {
    /// The divergence table.
    pub fn divergence_table(&self) -> Table {
        let mut t = Table::new(
            "Profile divergence: synthetic vs measured (factor-1 loads)",
            &[
                "bench",
                "loads",
                "|d hit|",
                "pref agree",
                "|d local|",
                "E[lat] meas",
            ],
        );
        for r in &self.divergence {
            t.row(vec![
                r.bench.clone(),
                r.loads.to_string(),
                f3(r.mean_hit_delta),
                f3(r.pref_agreement),
                f3(r.mean_local_delta),
                f3(r.mean_expected_latency),
            ]);
        }
        t
    }

    /// The delay-percentile sweep table (`profile_percentiles.csv`).
    pub fn percentile_table(&self) -> Table {
        let mut t = Table::new(
            "Delay-tracking latency percentile sweep (IPBC, measured, factor-1, amean)",
            &["percentile", "cycles", "d vs E[lat] %"],
        );
        for r in &self.percentiles {
            let delta = 100.0 * (r.cycles - self.percentile_baseline) / self.percentile_baseline;
            t.row(vec![f3(r.p), fcycles(r.cycles), f3(delta)]);
        }
        t
    }

    /// The per-policy cycle table (the headline `profile_fidelity.csv`).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Cycles by policy and profile source (factor-1, amean)",
            &[
                "policy",
                "synthetic",
                "measured",
                "d meas %",
                "delay-tracking",
                "d delay %",
            ],
        );
        for p in &self.policies {
            t.row(vec![
                p.policy.to_string(),
                fcycles(p.synthetic_cycles),
                fcycles(p.measured_cycles),
                f3(p.measured_delta_pct()),
                fcycles(p.delay_cycles),
                f3(p.delay_delta_pct()),
            ]);
        }
        t
    }
}

impl fmt::Display for ProfileFidelityResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.divergence_table().render())?;
        f.write_str(&self.table().render())?;
        f.write_str(&self.percentile_table().render())?;
        writeln!(
            f,
            "store: {} loops ({} skipped), round-trip {}",
            self.store.len(),
            self.skipped,
            if self.roundtrip_ok { "exact" } else { "BROKEN" }
        )?;
        writeln!(
            f,
            "delay-tracking suite: {} kernels, {} verify failures, \
             {} better / {} worse II vs swing (mean ratio {:.3}), {} dropped",
            self.delay.kernels,
            self.delay.verify_failures,
            self.delay.better,
            self.delay.worse,
            self.delay.mean_ii_ratio,
            self.delay.skipped
        )
    }
}

fn divergence_rows(suite: &CollectedSuite) -> Vec<DivergenceRow> {
    let mut rows: Vec<DivergenceRow> = Vec::new();
    for l in &suite.loops {
        let row = match rows.iter_mut().find(|r| r.bench == l.bench) {
            Some(r) => r,
            None => {
                rows.push(DivergenceRow {
                    bench: l.bench.clone(),
                    loads: 0,
                    mean_hit_delta: 0.0,
                    pref_agreement: 0.0,
                    mean_local_delta: 0.0,
                    mean_expected_latency: 0.0,
                });
                rows.last_mut().expect("just pushed")
            }
        };
        for (syn_op, meas_op) in l.synthetic.ops.iter().zip(&l.measured.ops) {
            if !syn_op.is_load() {
                continue;
            }
            let (Some(sm), Some(mm)) = (&syn_op.mem, &meas_op.mem) else {
                continue;
            };
            let (Some(sp), Some(mp)) = (&sm.profile, &mm.profile) else {
                continue;
            };
            row.loads += 1;
            row.mean_hit_delta += (sp.hit_rate - mp.hit_rate).abs();
            if sp.preferred_cluster() == mp.preferred_cluster() {
                row.pref_agreement += 1.0;
            }
            row.mean_local_delta += (sp.concentration() - mp.concentration()).abs();
            row.mean_expected_latency += mp
                .latency
                .as_ref()
                .and_then(|lp| lp.expected())
                .unwrap_or(0.0);
        }
    }
    for r in &mut rows {
        if r.loads > 0 {
            let n = r.loads as f64;
            r.mean_hit_delta /= n;
            r.pref_agreement /= n;
            r.mean_local_delta /= n;
            r.mean_expected_latency /= n;
        }
    }
    rows
}

fn delay_suite(suite: &CollectedSuite, ctx: &ExperimentContext) -> DelaySuiteSummary {
    let swing_opts = ScheduleOptions {
        enum_limits: ctx.enum_limits,
        ..ScheduleOptions::new(ClusterPolicy::PreBuildChains)
    };
    let delay_opts = swing_opts.with_backend(SchedBackend::DelayTracking);
    let mut out = DelaySuiteSummary {
        kernels: 0,
        verify_failures: 0,
        better: 0,
        worse: 0,
        skipped: 0,
        mean_ii_ratio: f64::NAN,
    };
    let mut ratio_sum = 0.0;
    for l in &suite.loops {
        let Ok(swing) = schedule_kernel(&l.measured, &ctx.machine, swing_opts) else {
            out.skipped += 1;
            continue;
        };
        let Ok(delay) = schedule_outcome(&l.measured, &ctx.machine, delay_opts) else {
            out.skipped += 1;
            continue;
        };
        out.kernels += 1;
        if !delay.schedule.verify(&l.measured, &ctx.machine).is_empty() {
            out.verify_failures += 1;
        }
        match delay.schedule.ii.cmp(&swing.ii) {
            std::cmp::Ordering::Less => out.better += 1,
            std::cmp::Ordering::Greater => out.worse += 1,
            std::cmp::Ordering::Equal => {}
        }
        ratio_sum += delay.schedule.ii as f64 / swing.ii as f64;
    }
    if out.kernels > 0 {
        out.mean_ii_ratio = ratio_sum / out.kernels as f64;
    }
    out
}

/// Schedules the restricted delay-tracking cell (IPBC, measured
/// profiles, factor 1) once per sweep percentile. The percentile lives on
/// the *context* (not [`RunConfig`], which stays `Copy + Hash` for the
/// schedule cache), so each point clones the context.
fn percentile_sweep(ctx: &ExperimentContext) -> Vec<PercentileRow> {
    let cfg = RunConfig {
        unroll: UnrollMode::NoUnroll,
        ..RunConfig::ipbc()
    }
    .with_source(ProfileSource::Measured)
    .with_backend(SchedBackend::DelayTracking);
    DELAY_PERCENTILES
        .iter()
        .map(|&p| {
            let mut pctx = ctx.clone();
            pctx.delay_percentile = Some(p);
            let res = RunGrid::new("delay-percentile")
                .config(format!("p{p}"), cfg)
                .run(&pctx);
            PercentileRow {
                p,
                cycles: res.amean_by_config(|r| r.total_cycles())[0],
            }
        })
        .collect()
}

/// Runs the whole study on the context's suite.
pub fn profile_fidelity(ctx: &ExperimentContext) -> ProfileFidelityResult {
    let suite = collect_suite(ctx);
    let roundtrip_ok = ProfileStore::from_text(&suite.store.to_text()).as_ref() == Ok(&suite.store);

    // per-policy cycles through the grid, one config triple per policy
    // (factor-1 so the simulated kernels match the collected store)
    let mut grid = RunGrid::new("profile-fidelity");
    for policy in ClusterPolicy::ALL {
        let name = policy.assigner().name();
        let base = RunConfig {
            policy,
            unroll: UnrollMode::NoUnroll,
            ..RunConfig::ipbc()
        };
        grid = grid
            .config(format!("{name}/synthetic"), base)
            .config(
                format!("{name}/measured"),
                base.with_source(ProfileSource::Measured),
            )
            .config(
                format!("{name}/delay"),
                base.with_source(ProfileSource::Measured)
                    .with_backend(SchedBackend::DelayTracking),
            );
    }
    let res = grid.run(ctx);
    let means = res.amean_by_config(|r| r.total_cycles());
    let policies = ClusterPolicy::ALL
        .iter()
        .enumerate()
        .map(|(i, policy)| PolicyDelta {
            policy: policy.assigner().name(),
            synthetic_cycles: means[3 * i],
            measured_cycles: means[3 * i + 1],
            delay_cycles: means[3 * i + 2],
        })
        .collect();

    let ipbc = ClusterPolicy::ALL
        .iter()
        .position(|p| *p == ClusterPolicy::PreBuildChains)
        .expect("IPBC is a suite policy");

    ProfileFidelityResult {
        divergence: divergence_rows(&suite),
        percentiles: percentile_sweep(ctx),
        percentile_baseline: means[3 * ipbc + 2],
        policies,
        delay: delay_suite(&suite, ctx),
        roundtrip_ok,
        skipped: suite.skipped,
        store: suite.store,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExperimentContext {
        let mut ctx = ExperimentContext::quick();
        ctx.benchmarks = vec!["gsmdec".into()];
        ctx.sim.iteration_cap = 48;
        ctx.sim.warmup_iterations = 48;
        ctx.profile.iteration_cap = 48;
        ctx
    }

    #[test]
    fn fidelity_study_runs_and_round_trips() {
        let ctx = tiny_ctx();
        let r = profile_fidelity(&ctx);
        assert!(r.roundtrip_ok, "store must round-trip exactly");
        assert_eq!(r.skipped, 0, "factor-1 loops always measure");
        assert!(!r.store.is_empty());
        assert_eq!(r.policies.len(), 4);
        for p in &r.policies {
            assert!(p.synthetic_cycles > 0.0);
            assert!(p.measured_cycles > 0.0);
            assert!(p.delay_cycles > 0.0);
        }
        assert_eq!(r.percentiles.len(), DELAY_PERCENTILES.len());
        assert!(r.percentile_baseline > 0.0);
        for row in &r.percentiles {
            assert!(row.cycles > 0.0, "p={} produced no cycles", row.p);
        }
        assert_eq!(r.delay.verify_failures, 0, "delay schedules must verify");
        assert_eq!(r.delay.kernels, r.store.len());
        assert_eq!(r.delay.skipped, 0, "no kernel silently dropped");
        // divergence rows cover the benchmark and found its loads
        assert_eq!(r.divergence.len(), 1);
        assert!(r.divergence[0].loads > 0);
        assert!(r.divergence[0].mean_expected_latency >= 1.0);
    }

    #[test]
    fn collection_is_deterministic() {
        let ctx = tiny_ctx();
        let a = collect_suite(&ctx);
        let b = collect_suite(&ctx);
        assert_eq!(a.store, b.store);
        assert_eq!(a.store.to_text(), b.store.to_text());
    }
}
