//! The `trace` repro target: one deterministic, fully-instrumented pass
//! of the scheduling service recorded through `vliw-trace`.
//!
//! The run is shaped to light up every instrumented stage while staying
//! byte-reproducible:
//!
//! 1. a **cold drain** of a small batch queue through a fresh
//!    [`SchedCache`] with one worker (serial order ⇒ the logical-clock
//!    event stream is identical across runs) — `cache.miss`/`cache.fill`,
//!    the full `prepare.*` pipeline, `backend.swing`, and the worker's
//!    `batch.queue_depth` samples on track 1;
//! 2. a **warm drain** of the same queue — `cache.hit` instants;
//! 3. one **traced simulation** of a prepared loop — the `sim.loop` span
//!    and `sim.window` stall-attribution instants;
//! 4. one **exact branch-and-bound** preparation on the smallest kernel —
//!    `backend.bnb`, `bnb.solve`, `bnb.memo_depth` and the `bnb.nodes`
//!    counter.
//!
//! Everything is recorded by a [`RecordingSink`] in logical-clock mode:
//! two identical runs export byte-identical Chrome trace JSON (pinned by
//! `tests/trace_overhead.rs`). The wall-clock [`ClockMode::Profile`]
//! variant exists for interactive profiling but is never used here —
//! deterministic artifacts must not see wall time.
//!
//! [`ClockMode::Profile`]: vliw_trace::ClockMode::Profile

use vliw_sched::{AttractionHints, SchedBackend};
use vliw_sim::simulate_loop_traced;
use vliw_trace::{RecordingSink, Trace};
use vliw_workloads::ArrayLayout;

use crate::batch::{build_requests, drain};
use crate::context::{prepare_loop_traced, ExperimentContext, RunConfig, UnrollMode};
use crate::schedcache::SchedCache;

/// The artifact of one instrumented run: the Chrome trace export and the
/// flat metrics snapshot derived from the same event stream.
#[derive(Debug, Clone)]
pub struct TraceRun {
    /// Requests in the drained queue.
    pub requests: usize,
    /// Events recorded across the whole run.
    pub events: usize,
    /// Chrome trace-event JSON array (one event per line; loadable in
    /// `chrome://tracing` / Perfetto). Byte-identical across runs.
    pub chrome_json: String,
    /// The folded metrics (`span_count/…`, `span_ticks/…`,
    /// `instant_count/…`, `counter_last/…`, `events_total`, `requests`)
    /// in deterministic order — the `trace` section of
    /// `BENCH_repro.json`.
    pub metrics: Vec<(String, f64)>,
}

impl std::fmt::Display for TraceRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "trace: {} requests drained twice, {} events, {} metrics",
            self.requests,
            self.events,
            self.metrics.len()
        )
    }
}

/// Runs the instrumented pass described in the module docs.
///
/// `target_requests` sizes the batch queue exactly as
/// [`build_requests`] does (the queue is
/// never smaller than one variant of the whole suite).
pub fn run_trace(ctx: &ExperimentContext, target_requests: usize) -> TraceRun {
    let sink = RecordingSink::logical();
    let trace = Trace::new(&sink);
    let (requests, _variants) = build_requests(ctx, target_requests);

    // 1 + 2: cold then warm drain, one worker — deterministic event order
    let cache = SchedCache::new();
    let _cold = drain(&cache, &requests, ctx, 1, trace);
    let _warm = drain(&cache, &requests, ctx, 1, trace);

    // 3: simulate one prepared loop with the trace attached
    let sim_req = &requests[0];
    let machine = ctx.machine_for(&sim_req.cfg);
    if let Ok(prepared) = cache.prepare_traced(&sim_req.kernel, &machine, &sim_req.cfg, ctx, trace)
    {
        let hints = AttractionHints::allow_all(&prepared.kernel);
        let layout = ArrayLayout::new(
            &prepared.kernel,
            &machine,
            sim_req.cfg.padding,
            ctx.workloads.exec_input,
        );
        let mut mem = vliw_mem::build_cache(&machine);
        let kernel_for_addr = prepared.kernel.clone();
        let mut addresses = move |op: vliw_ir::OpId, iter: u64| {
            vliw_workloads::address_for(&kernel_for_addr, &layout, op, iter)
        };
        let _ = simulate_loop_traced(
            &prepared.kernel,
            &prepared.schedule,
            &machine,
            mem.as_mut(),
            &mut addresses,
            &hints,
            &ctx.sim,
            trace,
        );
    }

    // 4: one exact branch-and-bound preparation on the smallest kernel
    let smallest = requests
        .iter()
        .min_by_key(|r| (r.kernel.ops.len(), r.kernel.name.clone()))
        .expect("queue is never empty");
    let bnb_cfg = RunConfig {
        backend: SchedBackend::ExactBnB,
        unroll: UnrollMode::NoUnroll,
        ..RunConfig::ipbc()
    };
    let bnb_machine = ctx.machine_for(&bnb_cfg);
    let _ = prepare_loop_traced(&smallest.kernel, &bnb_machine, &bnb_cfg, ctx, trace);

    let mut reg = sink.metrics();
    reg.set("requests", requests.len() as f64);
    TraceRun {
        requests: requests.len(),
        events: sink.len(),
        chrome_json: sink.chrome_trace_json(),
        metrics: reg.to_vec(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test assertions may unwrap
mod tests {
    use super::*;

    fn tiny_ctx() -> ExperimentContext {
        let mut ctx = ExperimentContext::quick();
        ctx.benchmarks = vec!["gsmdec".into()];
        ctx.sim.iteration_cap = 48;
        ctx.profile.iteration_cap = 48;
        ctx
    }

    #[test]
    fn trace_run_is_deterministic_and_covers_stages() {
        let ctx = tiny_ctx();
        let a = run_trace(&ctx, 1);
        let b = run_trace(&ctx, 1);
        assert_eq!(a.chrome_json, b.chrome_json, "logical-clock export drifted");
        assert_eq!(a.metrics, b.metrics);
        assert!(a.events > 0);
        let get = |name: &str| {
            a.metrics
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        for span in [
            "span_count/prepare.ddg",
            "span_count/prepare.pins",
            "span_count/prepare.latency",
            "span_count/prepare.order",
            "span_count/backend.swing",
            "span_count/backend.bnb",
            "span_count/cache.fill",
            "span_count/prepare_loop",
            "span_count/sim.loop",
        ] {
            assert!(get(span) > 0.0, "{span} never recorded");
        }
        assert!(get("instant_count/cache.miss") > 0.0);
        assert!(get("instant_count/cache.hit") > 0.0, "warm drain must hit");
        assert!(get("instant_count/sim.window") > 0.0);
    }
}
