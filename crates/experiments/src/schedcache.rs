//! The schedule cache: sharded in memory, versioned on disk.
//!
//! This is the orchestration layer of "scheduling as a service": the
//! single-map `ScheduleMemo` of earlier revisions, promoted to a
//! content-addressed cache that (a) scales across worker threads by lock
//! striping, and (b) outlives a process via a persistent store in the
//! same integers-only text discipline as the measured-profile store.
//!
//! * **Key** ([`CacheKey`]): `kernel_fingerprint × env fingerprint ×
//!   (arch, policy, backend, profile source, unroll, padding)`. Both
//!   fingerprints are structural FNV-1a digests
//!   ([`vliw_ir::StableHasher`]) — no `Debug`-string hashing, no
//!   per-lookup formatting allocation, stable across toolchains. The env
//!   fingerprint masks Attraction Buffers and MSHRs (consumed by the
//!   cache timing model, downstream of scheduling), so buffer/hint/MSHR
//!   sweeps share preparations exactly as before.
//! * **Shards** ([`SchedCache`]): the key's stable hash picks one of N
//!   independently locked shards; a shard's map lock is held only to
//!   resolve the key to a slot. Each slot's own mutex doubles as the
//!   in-flight guard: concurrent requests for the *same* cell block on
//!   the first computer (one preparation per key, ever), while requests
//!   for other cells — even in the same shard — proceed as soon as the
//!   map lock is released. `try_lock` front-ends count real contention
//!   per shard.
//! * **Capacity** ([`SchedCache::into_capped`]): optionally each shard
//!   keeps at most N *completed* entries, evicting the least recently
//!   used (per-shard logical clock; hits count as use) after every
//!   insertion. The default is unbounded — exactly the historical
//!   behavior — and eviction never touches an in-flight preparation, so
//!   the one-preparation-per-key-at-a-time guarantee is unaffected;
//!   an evicted key simply prepares again on its next request.
//! * **Store** ([`ScheduleStore`]): completed cells can be exported to a
//!   versioned text form and fed back into a fresh cache. A warm hit
//!   rebuilds the prepared kernel (unroll + profile — no candidate
//!   scheduling) and accepts the stored schedule only if the rebuilt
//!   kernel's fingerprint matches the stored one *and* the schedule
//!   verifies against it; anything else counts as stale and falls
//!   through to a cold preparation. Schedules therefore survive across
//!   runs, and a stale store can only cost time, never correctness.

use std::collections::HashMap;
use std::hash::Hash;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, TryLockError};

use vliw_ir::{kernel_fingerprint, LoopKernel, StableHasher};
use vliw_machine::MachineConfig;
use vliw_sched::{
    ClusterPolicy, SchedBackend, SchedQuality, Schedule, ScheduleError, UnrollChoice,
};

use crate::context::{
    prepare_loop, ArchVariant, ExperimentContext, PreparedLoop, ProfileSource, RunConfig,
    UnrollMode, VariantBuilder,
};

/// On-disk format version of [`ScheduleStore`].
pub const SCHED_STORE_VERSION: u32 = 1;

/// Default shard count of a [`SchedCache`].
pub const DEFAULT_SHARDS: usize = 16;

/// The preparation-relevant identity of one cache cell.
///
/// `kernel_fp` is the structural fingerprint of the *original* (factor-1,
/// profile-blind) kernel; `env_fp` digests the masked machine and every
/// context knob preparation reads (workload seeds/inputs, profiling and
/// simulation caps, enumeration limits, the delay percentile). The
/// remaining axes are the `RunConfig` fields preparation depends on —
/// not Attraction Buffers, MSHRs or hints, which act downstream of
/// scheduling. Backend and source are part of the key: two backends on
/// the same cell produce different schedules and must never share a slot
/// (`backends_never_share_a_memo_slot` pins this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`kernel_fingerprint`] of the original kernel.
    pub kernel_fp: u64,
    /// Stable digest of the masked machine + context knobs.
    pub env_fp: u64,
    /// Target cache organization.
    pub arch: ArchVariant,
    /// Cluster-assignment policy.
    pub policy: ClusterPolicy,
    /// Scheduler backend.
    pub backend: SchedBackend,
    /// Profile source.
    pub source: ProfileSource,
    /// Unrolling mode.
    pub unroll: UnrollMode,
    /// §4.3.4 padding flag.
    pub padding: bool,
}

/// The environment fingerprint: masked machine (buffers and MSHRs zeroed
/// — they do not affect preparation) plus every context knob the
/// preparation pipeline reads. Computed with the derived `Hash` of
/// `MachineConfig` fed into a [`StableHasher`], so it is structural and
/// toolchain-stable.
fn env_fingerprint(machine: &MachineConfig, ctx: &ExperimentContext) -> u64 {
    let mut masked = machine.clone();
    masked.attraction_buffers = None;
    masked.mshrs = Default::default();
    let mut h = StableHasher::new();
    masked.hash(&mut h);
    ctx.workloads.hash(&mut h);
    ctx.profile.hash(&mut h);
    ctx.sim.hash(&mut h);
    ctx.enum_limits.hash(&mut h);
    h.write_opt_u64(ctx.delay_percentile.map(f64::to_bits));
    h.finish()
}

fn arch_token(arch: ArchVariant) -> String {
    match arch {
        ArchVariant::WordInterleaved => "wi".into(),
        ArchVariant::MultiVliw => "mv".into(),
        ArchVariant::Unified(lat) => format!("uni{lat}"),
    }
}

fn parse_arch(tok: &str) -> Result<ArchVariant, String> {
    match tok {
        "wi" => Ok(ArchVariant::WordInterleaved),
        "mv" => Ok(ArchVariant::MultiVliw),
        _ => tok
            .strip_prefix("uni")
            .and_then(|l| l.parse().ok())
            .map(ArchVariant::Unified)
            .ok_or_else(|| format!("unknown arch token `{tok}`")),
    }
}

fn policy_token(policy: ClusterPolicy) -> &'static str {
    match policy {
        ClusterPolicy::Free => "base",
        ClusterPolicy::BuildChains => "ibc",
        ClusterPolicy::PreBuildChains => "ipbc",
        ClusterPolicy::NoChains => "nochains",
    }
}

fn parse_policy(tok: &str) -> Result<ClusterPolicy, String> {
    match tok {
        "base" => Ok(ClusterPolicy::Free),
        "ibc" => Ok(ClusterPolicy::BuildChains),
        "ipbc" => Ok(ClusterPolicy::PreBuildChains),
        "nochains" => Ok(ClusterPolicy::NoChains),
        _ => Err(format!("unknown policy token `{tok}`")),
    }
}

fn backend_token(backend: SchedBackend) -> &'static str {
    match backend {
        SchedBackend::SwingModulo => "swing",
        SchedBackend::ExactBnB => "bnb",
        SchedBackend::DelayTracking => "delay",
    }
}

fn parse_backend(tok: &str) -> Result<SchedBackend, String> {
    match tok {
        "swing" => Ok(SchedBackend::SwingModulo),
        "bnb" => Ok(SchedBackend::ExactBnB),
        "delay" => Ok(SchedBackend::DelayTracking),
        _ => Err(format!("unknown backend token `{tok}`")),
    }
}

fn source_token(source: ProfileSource) -> &'static str {
    match source {
        ProfileSource::None => "none",
        ProfileSource::Synthetic => "syn",
        ProfileSource::Measured => "meas",
    }
}

fn parse_source(tok: &str) -> Result<ProfileSource, String> {
    match tok {
        "none" => Ok(ProfileSource::None),
        "syn" => Ok(ProfileSource::Synthetic),
        "meas" => Ok(ProfileSource::Measured),
        _ => Err(format!("unknown source token `{tok}`")),
    }
}

fn unroll_token(unroll: UnrollMode) -> &'static str {
    match unroll {
        UnrollMode::NoUnroll => "no",
        UnrollMode::Ouf => "ouf",
        UnrollMode::Selective => "sel",
    }
}

fn parse_unroll(tok: &str) -> Result<UnrollMode, String> {
    match tok {
        "no" => Ok(UnrollMode::NoUnroll),
        "ouf" => Ok(UnrollMode::Ouf),
        "sel" => Ok(UnrollMode::Selective),
        _ => Err(format!("unknown unroll token `{tok}`")),
    }
}

fn choice_token(choice: UnrollChoice) -> &'static str {
    match choice {
        UnrollChoice::None => "none",
        UnrollChoice::TimesN => "xn",
        UnrollChoice::Ouf => "ouf",
    }
}

fn parse_choice(tok: &str) -> Result<UnrollChoice, String> {
    match tok {
        "none" => Ok(UnrollChoice::None),
        "xn" => Ok(UnrollChoice::TimesN),
        "ouf" => Ok(UnrollChoice::Ouf),
        _ => Err(format!("unknown choice token `{tok}`")),
    }
}

fn quality_token(quality: SchedQuality) -> &'static str {
    match quality {
        SchedQuality::Heuristic => "heur",
        SchedQuality::ProvenOptimal => "opt",
        SchedQuality::CutoffFeasible => "cutoff",
    }
}

fn parse_quality(tok: &str) -> Result<SchedQuality, String> {
    match tok {
        "heur" => Ok(SchedQuality::Heuristic),
        "opt" => Ok(SchedQuality::ProvenOptimal),
        "cutoff" => Ok(SchedQuality::CutoffFeasible),
        _ => Err(format!("unknown quality token `{tok}`")),
    }
}

impl CacheKey {
    /// The key of `(original, machine, cfg, ctx)`.
    pub fn of(
        original: &LoopKernel,
        machine: &MachineConfig,
        cfg: &RunConfig,
        ctx: &ExperimentContext,
    ) -> Self {
        CacheKey {
            kernel_fp: kernel_fingerprint(original),
            env_fp: env_fingerprint(machine, ctx),
            arch: cfg.arch,
            policy: cfg.policy,
            backend: cfg.backend,
            source: cfg.source,
            unroll: cfg.unroll,
            padding: cfg.padding,
        }
    }

    /// A toolchain-stable hash of the key (used for shard selection, so
    /// shard assignment — and with it the per-shard counters — is
    /// reproducible across runs).
    pub fn stable_hash(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.kernel_fp);
        h.write_u64(self.env_fp);
        h.write_str(&arch_token(self.arch));
        h.write_str(policy_token(self.policy));
        h.write_str(backend_token(self.backend));
        h.write_str(source_token(self.source));
        h.write_str(unroll_token(self.unroll));
        h.write_u8(u8::from(self.padding));
        h.finish()
    }
}

use std::hash::Hasher as _;

/// One key's entry: empty while the first preparation is in flight. The
/// slot's own mutex is the in-flight guard.
#[derive(Debug, Default)]
struct Slot {
    data: Mutex<Option<Arc<PreparedLoop>>>,
    /// Logical timestamp of the last touch (hit or insert), drawn from
    /// the owning shard's clock — the LRU rank under a capacity cap.
    last_used: AtomicU64,
}

#[derive(Debug, Default)]
struct ShardStats {
    hits: AtomicU64,
    store_hits: AtomicU64,
    prepares: AtomicU64,
    stale: AtomicU64,
    inflight_waits: AtomicU64,
    map_contended: AtomicU64,
    evictions: AtomicU64,
}

#[derive(Debug, Default)]
struct Shard {
    map: Mutex<HashMap<CacheKey, Arc<Slot>>>,
    stats: ShardStats,
    /// Monotonic logical clock stamping [`Slot::last_used`] on every
    /// touch; per shard, so stamping never crosses shard cache lines.
    clock: AtomicU64,
}

/// A per-shard counter snapshot (see [`SchedCache::shard_counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Completed cells resident in the shard.
    pub entries: u64,
    /// Prepares served from a completed in-memory slot.
    pub hits: u64,
    /// Prepares served by rebuilding a persistent-store entry.
    pub store_hits: u64,
    /// Cold preparations computed.
    pub prepares: u64,
    /// Store entries rejected as stale (fingerprint/verify mismatch).
    pub stale: u64,
    /// Times a thread blocked on another's in-flight preparation of the
    /// same cell (work deduplicated, not duplicated).
    pub inflight_waits: u64,
    /// Times the shard's map lock was busy on arrival (real lock-striping
    /// contention; the map lock is only held to resolve key → slot).
    pub map_contended: u64,
    /// Completed cells evicted to honor the shard's capacity cap (always
    /// 0 for an unbounded cache).
    pub evictions: u64,
}

/// The sharded, persistable schedule cache. See the module docs.
#[derive(Debug)]
pub struct SchedCache {
    shards: Vec<Shard>,
    store: Option<ScheduleStore>,
    /// Completed-entry cap per shard; `None` (the default) never evicts.
    per_shard_cap: Option<usize>,
}

impl Default for SchedCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedCache {
    /// An empty cache with [`DEFAULT_SHARDS`] shards and no backing
    /// store.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// An empty cache with `n` shards (`n ≥ 1`).
    pub fn with_shards(n: usize) -> Self {
        SchedCache {
            shards: (0..n.max(1)).map(|_| Shard::default()).collect(),
            store: None,
            per_shard_cap: None,
        }
    }

    /// An empty cache ([`DEFAULT_SHARDS`] shards) that keeps at most
    /// `per_shard_cap` completed entries per shard, evicting the least
    /// recently used beyond that. See [`SchedCache::into_capped`].
    pub fn with_capacity(per_shard_cap: usize) -> Self {
        Self::new().into_capped(per_shard_cap)
    }

    /// A cache warmed by `store`: lookups that miss in memory consult the
    /// store and rebuild its schedules instead of re-scheduling.
    pub fn with_store(store: ScheduleStore) -> Self {
        Self::new().into_stored(store)
    }

    /// This cache, backed by `store` (keeps the shard layout).
    pub fn into_stored(mut self, store: ScheduleStore) -> Self {
        self.store = Some(store);
        self
    }

    /// This cache, capped at `per_shard_cap` *completed* entries per
    /// shard. After each insertion the shard evicts least-recently-used
    /// completed cells (a hit counts as use) until it is back at the cap;
    /// in-flight preparations are never evicted. A cap of 0 caches
    /// nothing while still deduplicating concurrent same-key work.
    pub fn into_capped(mut self, per_shard_cap: usize) -> Self {
        self.per_shard_cap = Some(per_shard_cap);
        self
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The completed-entry cap per shard (`None` = unbounded).
    pub fn per_shard_capacity(&self) -> Option<usize> {
        self.per_shard_cap
    }

    fn shard_of(&self, key: &CacheKey) -> &Shard {
        let idx = (key.stable_hash() % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Number of cached schedules (completed preparations).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let map = s.map.lock().expect("shard map lock");
                map.values()
                    .filter(|slot| slot.data.lock().expect("cache slot").is_some())
                    .count()
            })
            .sum()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn sum(&self, f: impl Fn(&ShardStats) -> &AtomicU64) -> u64 {
        self.shards
            .iter()
            .map(|s| f(&s.stats).load(Ordering::Relaxed))
            .sum()
    }

    /// Prepares served from a completed in-memory slot — the scheduler
    /// work the cache saved within this run.
    pub fn hits(&self) -> usize {
        self.sum(|s| &s.hits) as usize
    }

    /// Prepares served by rebuilding persistent-store entries — the
    /// scheduler work a previous run saved this one.
    pub fn store_hits(&self) -> u64 {
        self.sum(|s| &s.store_hits)
    }

    /// Cold preparations computed.
    pub fn prepares(&self) -> u64 {
        self.sum(|s| &s.prepares)
    }

    /// Persistent-store entries rejected as stale.
    pub fn stale(&self) -> u64 {
        self.sum(|s| &s.stale)
    }

    /// Completed cells evicted under the capacity cap.
    pub fn evictions(&self) -> u64 {
        self.sum(|s| &s.evictions)
    }

    /// Per-shard counter snapshots, in shard order.
    pub fn shard_counters(&self) -> Vec<ShardCounters> {
        self.shards
            .iter()
            .map(|s| {
                let entries = {
                    let map = s.map.lock().expect("shard map lock");
                    map.values()
                        .filter(|slot| slot.data.lock().expect("cache slot").is_some())
                        .count() as u64
                };
                ShardCounters {
                    entries,
                    hits: s.stats.hits.load(Ordering::Relaxed),
                    store_hits: s.stats.store_hits.load(Ordering::Relaxed),
                    prepares: s.stats.prepares.load(Ordering::Relaxed),
                    stale: s.stats.stale.load(Ordering::Relaxed),
                    inflight_waits: s.stats.inflight_waits.load(Ordering::Relaxed),
                    map_contended: s.stats.map_contended.load(Ordering::Relaxed),
                    evictions: s.stats.evictions.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Looks up or computes the prepared loop for `(original, cfg)` —
    /// the service entry point. Same-key requests dedupe onto one
    /// preparation; different keys never serialize against each other
    /// beyond their shard's key→slot resolution.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures (pathological kernels only).
    /// Failures are not cached: they are deterministic and rare, so a
    /// retry by a later waiter is harmless.
    pub fn prepare(
        &self,
        original: &LoopKernel,
        machine: &MachineConfig,
        cfg: &RunConfig,
        ctx: &ExperimentContext,
    ) -> Result<Arc<PreparedLoop>, ScheduleError> {
        let key = CacheKey::of(original, machine, cfg, ctx);
        let shard = self.shard_of(&key);
        let slot = {
            let mut map = match shard.map.try_lock() {
                Ok(g) => g,
                Err(TryLockError::WouldBlock) => {
                    shard.stats.map_contended.fetch_add(1, Ordering::Relaxed);
                    shard.map.lock().expect("shard map lock")
                }
                Err(TryLockError::Poisoned(e)) => panic!("shard map lock poisoned: {e}"),
            };
            Arc::clone(map.entry(key).or_default())
        };
        // the slot lock is held across the computation: waiters for the
        // same key block here (instead of duplicating the dominant cost),
        // while cells with other keys proceed untouched
        let mut guard = match slot.data.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                shard.stats.inflight_waits.fetch_add(1, Ordering::Relaxed);
                slot.data.lock().expect("cache slot lock")
            }
            Err(TryLockError::Poisoned(e)) => panic!("cache slot poisoned: {e}"),
        };
        let touch = || {
            let stamp = shard.clock.fetch_add(1, Ordering::Relaxed) + 1;
            slot.last_used.store(stamp, Ordering::Relaxed);
        };
        if let Some(hit) = guard.as_ref() {
            shard.stats.hits.fetch_add(1, Ordering::Relaxed);
            touch();
            return Ok(Arc::clone(hit));
        }
        if let Some(entry) = self.store.as_ref().and_then(|s| s.get(&key)) {
            match rebuild(entry, original, machine, cfg, ctx) {
                Ok(p) => {
                    shard.stats.store_hits.fetch_add(1, Ordering::Relaxed);
                    let p = Arc::new(p);
                    *guard = Some(Arc::clone(&p));
                    touch();
                    drop(guard);
                    self.enforce_capacity(shard);
                    return Ok(p);
                }
                Err(_) => {
                    shard.stats.stale.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        shard.stats.prepares.fetch_add(1, Ordering::Relaxed);
        let prepared = Arc::new(prepare_loop(original, machine, cfg, ctx)?);
        *guard = Some(Arc::clone(&prepared));
        touch();
        // the slot guard must be released before the map lock is taken:
        // every other path orders map → slot, and eviction keeps that
        // order by only ever try-locking slot data under the map lock
        drop(guard);
        self.enforce_capacity(shard);
        Ok(prepared)
    }

    /// Evicts least-recently-used completed cells until `shard` is back
    /// at the capacity cap. In-flight slots (data lock held elsewhere)
    /// are skipped — they are about to become the most recent anyway.
    /// Outstanding `Arc`s keep an evicted preparation alive for holders;
    /// eviction only drops the cache's reference.
    fn enforce_capacity(&self, shard: &Shard) {
        let Some(cap) = self.per_shard_cap else {
            return;
        };
        let mut map = shard.map.lock().expect("shard map lock");
        loop {
            let mut completed = 0usize;
            let mut victim: Option<(CacheKey, u64)> = None;
            for (k, slot) in map.iter() {
                let Ok(g) = slot.data.try_lock() else {
                    continue;
                };
                if g.is_some() {
                    completed += 1;
                    let used = slot.last_used.load(Ordering::Relaxed);
                    if victim.is_none_or(|(_, u)| used < u) {
                        victim = Some((*k, used));
                    }
                }
            }
            if completed <= cap {
                break;
            }
            let (k, _) = victim.expect("completed > cap implies a victim");
            map.remove(&k);
            shard.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Exports every completed cell into a [`ScheduleStore`].
    pub fn export_store(&self) -> ScheduleStore {
        let mut store = ScheduleStore::new();
        for shard in &self.shards {
            let map = shard.map.lock().expect("shard map lock");
            for (key, slot) in map.iter() {
                if let Some(p) = slot.data.lock().expect("cache slot").as_ref() {
                    store.insert(StoreEntry {
                        name: p.kernel.name.clone(),
                        key: *key,
                        choice: p.choice,
                        factor: p.factor,
                        prepared_fp: kernel_fingerprint(&p.kernel),
                        quality: p.quality,
                        schedule: p.schedule.clone(),
                    });
                }
            }
        }
        store
    }
}

/// Rebuilds a [`PreparedLoop`] from a store entry: re-derives the
/// prepared kernel (unroll + profile at the stored factor — no candidate
/// scheduling), then accepts the stored schedule only if the rebuilt
/// kernel's fingerprint matches and the schedule verifies against it.
fn rebuild(
    entry: &StoreEntry,
    original: &LoopKernel,
    machine: &MachineConfig,
    cfg: &RunConfig,
    ctx: &ExperimentContext,
) -> Result<PreparedLoop, String> {
    let mut builder = VariantBuilder::new(original, machine, cfg, ctx);
    let kernel = builder.build(entry.factor).map_err(|e| e.to_string())?;
    let fp = kernel_fingerprint(&kernel);
    if fp != entry.prepared_fp {
        return Err(format!(
            "stale: rebuilt kernel fingerprint {fp} != stored {}",
            entry.prepared_fp
        ));
    }
    if !entry.schedule.verify(&kernel, machine).is_empty() {
        return Err("stale: stored schedule fails verification".into());
    }
    Ok(PreparedLoop {
        kernel,
        schedule: entry.schedule.clone(),
        quality: entry.quality,
        choice: entry.choice,
        factor: entry.factor,
    })
}

/// One persisted cell: its key, the unrolling decision, the fingerprint
/// of the prepared (unrolled) kernel the schedule belongs to, and the
/// schedule itself.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreEntry {
    /// Original kernel name (readability + sort key; no whitespace).
    pub name: String,
    /// The cache key.
    pub key: CacheKey,
    /// Which unrolling variant won.
    pub choice: UnrollChoice,
    /// The unroll factor applied.
    pub factor: u32,
    /// [`kernel_fingerprint`] of the prepared (unrolled) kernel — the
    /// staleness gate: a rebuilt kernel must hash to this before the
    /// stored schedule is trusted.
    pub prepared_fp: u64,
    /// The backend's quality claim.
    pub quality: SchedQuality,
    /// The schedule.
    pub schedule: Schedule,
}

impl StoreEntry {
    fn header_line(&self) -> String {
        format!(
            "entry {} kfp {} efp {} arch {} policy {} backend {} source {} unroll {} pad {} \
             choice {} factor {} pfp {} quality {}",
            self.name,
            self.key.kernel_fp,
            self.key.env_fp,
            arch_token(self.key.arch),
            policy_token(self.key.policy),
            backend_token(self.key.backend),
            source_token(self.key.source),
            unroll_token(self.key.unroll),
            u8::from(self.key.padding),
            choice_token(self.choice),
            self.factor,
            self.prepared_fp,
            quality_token(self.quality),
        )
    }

    fn parse_header(line: &str) -> Result<Self, String> {
        let t: Vec<&str> = line.split_whitespace().collect();
        if t.len() != 26 || t[0] != "entry" {
            return Err(format!("bad entry header: `{line}`"));
        }
        let field = |tag: usize, name: &str| -> Result<&str, String> {
            if t[tag] != name {
                return Err(format!(
                    "entry header: expected `{name}`, found `{}`",
                    t[tag]
                ));
            }
            Ok(t[tag + 1])
        };
        let int = |s: &str| s.parse::<u64>().map_err(|e| format!("entry header: {e}"));
        let key = CacheKey {
            kernel_fp: int(field(2, "kfp")?)?,
            env_fp: int(field(4, "efp")?)?,
            arch: parse_arch(field(6, "arch")?)?,
            policy: parse_policy(field(8, "policy")?)?,
            backend: parse_backend(field(10, "backend")?)?,
            source: parse_source(field(12, "source")?)?,
            unroll: parse_unroll(field(14, "unroll")?)?,
            padding: match field(16, "pad")? {
                "0" => false,
                "1" => true,
                other => return Err(format!("bad pad flag `{other}`")),
            },
        };
        Ok(StoreEntry {
            name: t[1].to_string(),
            key,
            choice: parse_choice(field(18, "choice")?)?,
            factor: int(field(20, "factor")?)? as u32,
            prepared_fp: int(field(22, "pfp")?)?,
            quality: parse_quality(field(24, "quality")?)?,
            // placeholder; the caller parses the schedule block next
            schedule: Schedule::from_compact_text(
                "sched ii 1 mii 1 res 1 rec 1 tmii 1 nops 0 ncopies 0\nops\nlats\ncopies\n",
            )
            .expect("placeholder schedule parses"),
        })
    }
}

/// The versioned on-disk form of a [`SchedCache`] — same discipline as
/// the measured-profile store: plain text, integers only, deterministic
/// (entries sorted), byte-exact round-trips, committed-file diffable.
///
/// Format:
///
/// ```text
/// vliw-sched-store 1
/// entries <N>
/// entry <name> kfp <u64> efp <u64> arch <tok> policy <tok> backend <tok>
///       source <tok> unroll <tok> pad <0|1> choice <tok> factor <k>
///       pfp <u64> quality <tok>          (one line)
/// sched ii … (4 lines, `Schedule::to_compact_text`)
/// endentry
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScheduleStore {
    entries: Vec<StoreEntry>,
    index: HashMap<CacheKey, usize>,
}

impl ScheduleStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry under `key`, if present.
    pub fn get(&self, key: &CacheKey) -> Option<&StoreEntry> {
        self.index.get(key).map(|&i| &self.entries[i])
    }

    /// Inserts (or replaces) an entry.
    pub fn insert(&mut self, entry: StoreEntry) {
        match self.index.get(&entry.key) {
            Some(&i) => self.entries[i] = entry,
            None => {
                self.index.insert(entry.key, self.entries.len());
                self.entries.push(entry);
            }
        }
    }

    /// Serializes the store (entries sorted by header line, so the text
    /// is deterministic regardless of insertion or shard order).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut sorted: Vec<&StoreEntry> = self.entries.iter().collect();
        sorted.sort_by_key(|e| e.header_line());
        let mut out = String::new();
        let _ = writeln!(out, "vliw-sched-store {SCHED_STORE_VERSION}");
        let _ = writeln!(out, "entries {}", sorted.len());
        for e in sorted {
            assert!(
                !e.name.chars().any(char::is_whitespace),
                "kernel names must not contain whitespace"
            );
            out.push_str(&e.header_line());
            out.push('\n');
            out.push_str(&e.schedule.to_compact_text());
            out.push_str("endentry\n");
        }
        out
    }

    /// Parses a store serialized by [`ScheduleStore::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first framing or token error; a
    /// version mismatch is an error (stale major format, not silently
    /// reinterpreted).
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty store")?;
        let mut it = header.split_whitespace();
        if it.next() != Some("vliw-sched-store") {
            return Err(format!("bad header: `{header}`"));
        }
        let version: u32 = it
            .next()
            .ok_or("missing version")?
            .parse()
            .map_err(|e| format!("bad version: {e}"))?;
        if version != SCHED_STORE_VERSION {
            return Err(format!(
                "store version {version}, this build reads {SCHED_STORE_VERSION}"
            ));
        }
        let counts = lines.next().ok_or("missing entry count")?;
        let n: usize = counts
            .strip_prefix("entries ")
            .ok_or_else(|| format!("bad count line: `{counts}`"))?
            .parse()
            .map_err(|e| format!("bad count: {e}"))?;
        let mut store = ScheduleStore::new();
        for _ in 0..n {
            let head = lines.next().ok_or("missing entry header")?;
            let mut entry = StoreEntry::parse_header(head)?;
            let sched_lines: Vec<&str> = (0..4)
                .map(|_| lines.next().ok_or("truncated schedule block"))
                .collect::<Result<_, _>>()?;
            entry.schedule = Schedule::from_compact_text(&sched_lines.join("\n"))
                .map_err(|e| format!("entry `{}`: {e}", entry.name))?;
            if lines.next() != Some("endentry") {
                return Err(format!("entry `{}`: missing endentry", entry.name));
            }
            store.insert(entry);
        }
        if store.len() != n {
            return Err(format!(
                "store declares {n} entries but {} distinct keys",
                store.len()
            ));
        }
        Ok(store)
    }

    /// Writes the store to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_text())
    }

    /// Reads a store from `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and parse failures as strings.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_text(&text)
    }
}
