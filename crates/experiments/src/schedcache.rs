//! The schedule cache: sharded in memory, versioned on disk.
//!
//! This is the orchestration layer of "scheduling as a service": the
//! single-map `ScheduleMemo` of earlier revisions, promoted to a
//! content-addressed cache that (a) scales across worker threads by lock
//! striping, and (b) outlives a process via a persistent store in the
//! same integers-only text discipline as the measured-profile store.
//!
//! * **Key** ([`CacheKey`]): `kernel_fingerprint × env fingerprint ×
//!   (arch, policy, backend, profile source, unroll, padding)`. Both
//!   fingerprints are structural FNV-1a digests
//!   ([`vliw_ir::StableHasher`]) — no `Debug`-string hashing, no
//!   per-lookup formatting allocation, stable across toolchains. The env
//!   fingerprint masks Attraction Buffers and MSHRs (consumed by the
//!   cache timing model, downstream of scheduling), so buffer/hint/MSHR
//!   sweeps share preparations exactly as before.
//! * **Shards** ([`SchedCache`]): the key's stable hash picks one of N
//!   independently locked shards; a shard's map lock is held only to
//!   resolve the key to a slot. Each slot's own mutex doubles as the
//!   in-flight guard: concurrent requests for the *same* cell block on
//!   the first computer (one preparation per key, ever), while requests
//!   for other cells — even in the same shard — proceed as soon as the
//!   map lock is released. `try_lock` front-ends count real contention
//!   per shard.
//! * **Capacity** ([`SchedCache::into_capped`]): optionally each shard
//!   keeps at most N *completed* entries, evicting the least recently
//!   used (per-shard logical clock; hits count as use) after every
//!   insertion. The default is unbounded — exactly the historical
//!   behavior — and eviction never touches an in-flight preparation, so
//!   the one-preparation-per-key-at-a-time guarantee is unaffected;
//!   an evicted key simply prepares again on its next request.
//! * **Store** ([`ScheduleStore`]): completed cells can be exported to a
//!   versioned text form and fed back into a fresh cache. A warm hit
//!   rebuilds the prepared kernel (unroll + profile — no candidate
//!   scheduling) and accepts the stored schedule only if the rebuilt
//!   kernel's fingerprint matches the stored one *and* the schedule
//!   verifies against it; anything else counts as stale and falls
//!   through to a cold preparation. Schedules therefore survive across
//!   runs, and a stale store can only cost time, never correctness.
//! * **Failure containment**: a slot fill runs under `catch_unwind`, so
//!   a panicking preparation fails its own request
//!   ([`ScheduleError::PreparationPanicked`]), marks the slot `Failed`
//!   (counted in [`ShardCounters::panics_contained`]) and leaves the
//!   mutex clean; the next request for the key recovers the slot
//!   ([`ShardCounters::slots_recovered`]) and re-attempts. Store records
//!   carry per-record checksums (format v2) and exports are atomic
//!   (temp file + rename), so a torn file is salvageable record by
//!   record — see [`ScheduleStore::from_text_salvage`]. DESIGN.md
//!   ("Failure model & degradation ladder") walks the full lifecycle.

use std::collections::HashMap;
use std::hash::Hash;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, TryLockError};

use vliw_ir::{kernel_fingerprint, LoopKernel, StableHasher};
use vliw_machine::MachineConfig;
use vliw_sched::{
    ClusterPolicy, SchedBackend, SchedQuality, Schedule, ScheduleError, UnrollChoice,
};

use vliw_trace::Trace;

use crate::context::{
    prepare_loop_traced, ArchVariant, ExperimentContext, PreparedLoop, ProfileSource, RunConfig,
    UnrollMode, VariantBuilder,
};

/// On-disk format version of [`ScheduleStore`]. Version 2 adds one
/// `check <u64>` line per record (a [`StableHasher`] digest of the header
/// and schedule lines) so the salvage loader can tell a torn or
/// bit-flipped record from a good one. Version-1 stores (no check lines)
/// are still read by both loaders.
pub const SCHED_STORE_VERSION: u32 = 2;

/// Oldest store version [`ScheduleStore::from_text`] still reads.
pub const SCHED_STORE_MIN_VERSION: u32 = 1;

/// Default shard count of a [`SchedCache`].
pub const DEFAULT_SHARDS: usize = 16;

/// The preparation-relevant identity of one cache cell.
///
/// `kernel_fp` is the structural fingerprint of the *original* (factor-1,
/// profile-blind) kernel; `env_fp` digests the masked machine and every
/// context knob preparation reads (workload seeds/inputs, profiling and
/// simulation caps, enumeration limits, the delay percentile). The
/// remaining axes are the `RunConfig` fields preparation depends on —
/// not Attraction Buffers, MSHRs or hints, which act downstream of
/// scheduling. Backend and source are part of the key: two backends on
/// the same cell produce different schedules and must never share a slot
/// (`backends_never_share_a_memo_slot` pins this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`kernel_fingerprint`] of the original kernel.
    pub kernel_fp: u64,
    /// Stable digest of the masked machine + context knobs.
    pub env_fp: u64,
    /// Target cache organization.
    pub arch: ArchVariant,
    /// Cluster-assignment policy.
    pub policy: ClusterPolicy,
    /// Scheduler backend.
    pub backend: SchedBackend,
    /// Profile source.
    pub source: ProfileSource,
    /// Unrolling mode.
    pub unroll: UnrollMode,
    /// §4.3.4 padding flag.
    pub padding: bool,
}

/// The environment fingerprint: masked machine (buffers and MSHRs zeroed
/// — they do not affect preparation) plus every context knob the
/// preparation pipeline reads. Computed with the derived `Hash` of
/// `MachineConfig` fed into a [`StableHasher`], so it is structural and
/// toolchain-stable.
fn env_fingerprint(machine: &MachineConfig, ctx: &ExperimentContext) -> u64 {
    let mut masked = machine.clone();
    masked.attraction_buffers = None;
    masked.mshrs = Default::default();
    let mut h = StableHasher::new();
    masked.hash(&mut h);
    ctx.workloads.hash(&mut h);
    ctx.profile.hash(&mut h);
    ctx.sim.hash(&mut h);
    ctx.enum_limits.hash(&mut h);
    h.write_opt_u64(ctx.delay_percentile.map(f64::to_bits));
    h.write_opt_u64(ctx.cost_ceiling);
    ctx.fallback.hash(&mut h);
    h.finish()
}

fn arch_token(arch: ArchVariant) -> String {
    match arch {
        ArchVariant::WordInterleaved => "wi".into(),
        ArchVariant::MultiVliw => "mv".into(),
        ArchVariant::Unified(lat) => format!("uni{lat}"),
    }
}

fn parse_arch(tok: &str) -> Result<ArchVariant, String> {
    match tok {
        "wi" => Ok(ArchVariant::WordInterleaved),
        "mv" => Ok(ArchVariant::MultiVliw),
        _ => tok
            .strip_prefix("uni")
            .and_then(|l| l.parse().ok())
            .map(ArchVariant::Unified)
            .ok_or_else(|| format!("unknown arch token `{tok}`")),
    }
}

fn policy_token(policy: ClusterPolicy) -> &'static str {
    match policy {
        ClusterPolicy::Free => "base",
        ClusterPolicy::BuildChains => "ibc",
        ClusterPolicy::PreBuildChains => "ipbc",
        ClusterPolicy::NoChains => "nochains",
    }
}

fn parse_policy(tok: &str) -> Result<ClusterPolicy, String> {
    match tok {
        "base" => Ok(ClusterPolicy::Free),
        "ibc" => Ok(ClusterPolicy::BuildChains),
        "ipbc" => Ok(ClusterPolicy::PreBuildChains),
        "nochains" => Ok(ClusterPolicy::NoChains),
        _ => Err(format!("unknown policy token `{tok}`")),
    }
}

fn backend_token(backend: SchedBackend) -> &'static str {
    match backend {
        SchedBackend::SwingModulo => "swing",
        SchedBackend::ExactBnB => "bnb",
        SchedBackend::DelayTracking => "delay",
    }
}

fn parse_backend(tok: &str) -> Result<SchedBackend, String> {
    match tok {
        "swing" => Ok(SchedBackend::SwingModulo),
        "bnb" => Ok(SchedBackend::ExactBnB),
        "delay" => Ok(SchedBackend::DelayTracking),
        _ => Err(format!("unknown backend token `{tok}`")),
    }
}

fn source_token(source: ProfileSource) -> &'static str {
    match source {
        ProfileSource::None => "none",
        ProfileSource::Synthetic => "syn",
        ProfileSource::Measured => "meas",
    }
}

fn parse_source(tok: &str) -> Result<ProfileSource, String> {
    match tok {
        "none" => Ok(ProfileSource::None),
        "syn" => Ok(ProfileSource::Synthetic),
        "meas" => Ok(ProfileSource::Measured),
        _ => Err(format!("unknown source token `{tok}`")),
    }
}

fn unroll_token(unroll: UnrollMode) -> &'static str {
    match unroll {
        UnrollMode::NoUnroll => "no",
        UnrollMode::Ouf => "ouf",
        UnrollMode::Selective => "sel",
    }
}

fn parse_unroll(tok: &str) -> Result<UnrollMode, String> {
    match tok {
        "no" => Ok(UnrollMode::NoUnroll),
        "ouf" => Ok(UnrollMode::Ouf),
        "sel" => Ok(UnrollMode::Selective),
        _ => Err(format!("unknown unroll token `{tok}`")),
    }
}

fn choice_token(choice: UnrollChoice) -> &'static str {
    match choice {
        UnrollChoice::None => "none",
        UnrollChoice::TimesN => "xn",
        UnrollChoice::Ouf => "ouf",
    }
}

fn parse_choice(tok: &str) -> Result<UnrollChoice, String> {
    match tok {
        "none" => Ok(UnrollChoice::None),
        "xn" => Ok(UnrollChoice::TimesN),
        "ouf" => Ok(UnrollChoice::Ouf),
        _ => Err(format!("unknown choice token `{tok}`")),
    }
}

fn quality_token(quality: SchedQuality) -> &'static str {
    match quality {
        SchedQuality::Heuristic => "heur",
        SchedQuality::ProvenOptimal => "opt",
        SchedQuality::CutoffFeasible => "cutoff",
        SchedQuality::DegradedFallback => "degraded",
    }
}

fn parse_quality(tok: &str) -> Result<SchedQuality, String> {
    match tok {
        "heur" => Ok(SchedQuality::Heuristic),
        "opt" => Ok(SchedQuality::ProvenOptimal),
        "cutoff" => Ok(SchedQuality::CutoffFeasible),
        "degraded" => Ok(SchedQuality::DegradedFallback),
        _ => Err(format!("unknown quality token `{tok}`")),
    }
}

impl CacheKey {
    /// The key of `(original, machine, cfg, ctx)`.
    pub fn of(
        original: &LoopKernel,
        machine: &MachineConfig,
        cfg: &RunConfig,
        ctx: &ExperimentContext,
    ) -> Self {
        CacheKey {
            kernel_fp: kernel_fingerprint(original),
            env_fp: env_fingerprint(machine, ctx),
            arch: cfg.arch,
            policy: cfg.policy,
            backend: cfg.backend,
            source: cfg.source,
            unroll: cfg.unroll,
            padding: cfg.padding,
        }
    }

    /// A toolchain-stable hash of the key (used for shard selection, so
    /// shard assignment — and with it the per-shard counters — is
    /// reproducible across runs).
    pub fn stable_hash(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.kernel_fp);
        h.write_u64(self.env_fp);
        h.write_str(&arch_token(self.arch));
        h.write_str(policy_token(self.policy));
        h.write_str(backend_token(self.backend));
        h.write_str(source_token(self.source));
        h.write_str(unroll_token(self.unroll));
        h.write_u8(u8::from(self.padding));
        h.finish()
    }
}

use std::hash::Hasher as _;

/// Locks `m`, recovering from poison: a mutex poisoned by some panic
/// elsewhere still holds coherent data here, because every fill path
/// contains its panics *inside* the guard scope (`catch_unwind` around
/// the computation, never around the lock) and writes a whole
/// [`SlotState`] or nothing. Recovery is therefore always safe, and no
/// waiter ever sees `PoisonError`.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The lifecycle of one cache cell.
#[derive(Debug, Default)]
enum SlotState {
    /// No completed preparation; the slot mutex being held is what marks
    /// a fill in flight.
    #[default]
    Empty,
    /// A completed preparation, served to every later request.
    Ready(Arc<PreparedLoop>),
    /// The last filler panicked (contained at the slot boundary). The
    /// next thread to take the slot observes this, counts the recovery,
    /// resets the slot to [`SlotState::Empty`] and re-attempts — a panic
    /// can fail its own request but never wedges the cell.
    Failed(String),
}

/// One key's entry. The slot's own mutex is the in-flight guard.
#[derive(Debug, Default)]
struct Slot {
    data: Mutex<SlotState>,
    /// Logical timestamp of the last touch (hit or insert), drawn from
    /// the owning shard's clock — the LRU rank under a capacity cap.
    last_used: AtomicU64,
}

#[derive(Debug, Default)]
struct ShardStats {
    hits: AtomicU64,
    store_hits: AtomicU64,
    prepares: AtomicU64,
    stale: AtomicU64,
    inflight_waits: AtomicU64,
    map_contended: AtomicU64,
    evictions: AtomicU64,
    panics_contained: AtomicU64,
    slots_recovered: AtomicU64,
}

#[derive(Debug, Default)]
struct Shard {
    map: Mutex<HashMap<CacheKey, Arc<Slot>>>,
    stats: ShardStats,
    /// Monotonic logical clock stamping [`Slot::last_used`] on every
    /// touch; per shard, so stamping never crosses shard cache lines.
    clock: AtomicU64,
}

/// A per-shard counter snapshot (see [`SchedCache::shard_counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Completed cells resident in the shard.
    pub entries: u64,
    /// Prepares served from a completed in-memory slot.
    pub hits: u64,
    /// Prepares served by rebuilding a persistent-store entry.
    pub store_hits: u64,
    /// Cold preparations computed.
    pub prepares: u64,
    /// Store entries rejected as stale (fingerprint/verify mismatch).
    pub stale: u64,
    /// Times a thread blocked on another's in-flight preparation of the
    /// same cell (work deduplicated, not duplicated).
    pub inflight_waits: u64,
    /// Times the shard's map lock was busy on arrival (real lock-striping
    /// contention; the map lock is only held to resolve key → slot).
    pub map_contended: u64,
    /// Completed cells evicted to honor the shard's capacity cap (always
    /// 0 for an unbounded cache).
    pub evictions: u64,
    /// Preparation panics contained at the slot boundary (`catch_unwind`):
    /// each one failed its own request with
    /// [`ScheduleError::PreparationPanicked`] and marked the slot
    /// `Failed` instead of poisoning it.
    pub panics_contained: u64,
    /// Times a thread found a slot a previous filler had marked failed,
    /// reset it, and re-attempted the preparation.
    pub slots_recovered: u64,
}

/// Signature of the function a cache invokes to fill a cold slot —
/// the preparation seam. The default is
/// [`prepare_loop`](crate::context::prepare_loop); the
/// fault-injection harness (and the panic-storm test) swap in shims that
/// panic or starve on selected keys, exercising exactly the containment
/// paths production code runs.
pub type PrepareFn = dyn Fn(
        &LoopKernel,
        &MachineConfig,
        &RunConfig,
        &ExperimentContext,
    ) -> Result<PreparedLoop, ScheduleError>
    + Send
    + Sync;

/// The sharded, persistable schedule cache. See the module docs.
pub struct SchedCache {
    shards: Vec<Shard>,
    store: Option<ScheduleStore>,
    /// Completed-entry cap per shard; `None` (the default) never evicts.
    per_shard_cap: Option<usize>,
    /// Slot-fill override (`None` =
    /// [`prepare_loop`](crate::context::prepare_loop)).
    preparer: Option<Arc<PrepareFn>>,
}

impl std::fmt::Debug for SchedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedCache")
            .field("shards", &self.shards.len())
            .field("store", &self.store.as_ref().map(ScheduleStore::len))
            .field("per_shard_cap", &self.per_shard_cap)
            .field("custom_preparer", &self.preparer.is_some())
            .finish()
    }
}

impl Default for SchedCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedCache {
    /// An empty cache with [`DEFAULT_SHARDS`] shards and no backing
    /// store.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// An empty cache with `n` shards (`n ≥ 1`).
    pub fn with_shards(n: usize) -> Self {
        SchedCache {
            shards: (0..n.max(1)).map(|_| Shard::default()).collect(),
            store: None,
            per_shard_cap: None,
            preparer: None,
        }
    }

    /// An empty cache ([`DEFAULT_SHARDS`] shards) that keeps at most
    /// `per_shard_cap` completed entries per shard, evicting the least
    /// recently used beyond that. See [`SchedCache::into_capped`].
    pub fn with_capacity(per_shard_cap: usize) -> Self {
        Self::new().into_capped(per_shard_cap)
    }

    /// A cache warmed by `store`: lookups that miss in memory consult the
    /// store and rebuild its schedules instead of re-scheduling.
    pub fn with_store(store: ScheduleStore) -> Self {
        Self::new().into_stored(store)
    }

    /// This cache, backed by `store` (keeps the shard layout).
    pub fn into_stored(mut self, store: ScheduleStore) -> Self {
        self.store = Some(store);
        self
    }

    /// This cache, capped at `per_shard_cap` *completed* entries per
    /// shard. After each insertion the shard evicts least-recently-used
    /// completed cells (a hit counts as use) until it is back at the cap;
    /// in-flight preparations are never evicted. A cap of 0 caches
    /// nothing while still deduplicating concurrent same-key work.
    pub fn into_capped(mut self, per_shard_cap: usize) -> Self {
        self.per_shard_cap = Some(per_shard_cap);
        self
    }

    /// This cache, filling cold slots through `preparer` instead of
    /// [`prepare_loop`](crate::context::prepare_loop) — the
    /// fault-injection seam. Panics thrown by the
    /// preparer are contained exactly like panics from the real pipeline.
    pub fn into_preparer(mut self, preparer: Arc<PrepareFn>) -> Self {
        self.preparer = Some(preparer);
        self
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The completed-entry cap per shard (`None` = unbounded).
    pub fn per_shard_capacity(&self) -> Option<usize> {
        self.per_shard_cap
    }

    /// Number of cached schedules (completed preparations).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let map = lock_recover(&s.map);
                map.values()
                    .filter(|slot| matches!(*lock_recover(&slot.data), SlotState::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn sum(&self, f: impl Fn(&ShardStats) -> &AtomicU64) -> u64 {
        self.shards
            .iter()
            .map(|s| f(&s.stats).load(Ordering::Relaxed))
            .sum()
    }

    /// Prepares served from a completed in-memory slot — the scheduler
    /// work the cache saved within this run.
    pub fn hits(&self) -> usize {
        self.sum(|s| &s.hits) as usize
    }

    /// Prepares served by rebuilding persistent-store entries — the
    /// scheduler work a previous run saved this one.
    pub fn store_hits(&self) -> u64 {
        self.sum(|s| &s.store_hits)
    }

    /// Cold preparations computed.
    pub fn prepares(&self) -> u64 {
        self.sum(|s| &s.prepares)
    }

    /// Persistent-store entries rejected as stale.
    pub fn stale(&self) -> u64 {
        self.sum(|s| &s.stale)
    }

    /// Completed cells evicted under the capacity cap.
    pub fn evictions(&self) -> u64 {
        self.sum(|s| &s.evictions)
    }

    /// Preparation panics contained at the slot boundary.
    pub fn panics_contained(&self) -> u64 {
        self.sum(|s| &s.panics_contained)
    }

    /// Failed slots observed, reset and re-attempted by a later request.
    pub fn slots_recovered(&self) -> u64 {
        self.sum(|s| &s.slots_recovered)
    }

    /// Slots still marked failed (no request has come back to recover
    /// them). The batch driver drains every request to completion, so
    /// after a batch this must be 0 — the "zero unrecovered slots"
    /// acceptance gate.
    pub fn failed_slots(&self) -> usize {
        self.failed_slot_reasons().len()
    }

    /// The panic reasons of every slot still marked failed — the
    /// diagnostic surface for post-mortems ([`failed_slots`] is its
    /// length).
    ///
    /// [`failed_slots`]: SchedCache::failed_slots
    pub fn failed_slot_reasons(&self) -> Vec<String> {
        self.shards
            .iter()
            .flat_map(|s| {
                let map = lock_recover(&s.map);
                map.values()
                    .filter_map(|slot| match &*lock_recover(&slot.data) {
                        SlotState::Failed(reason) => Some(reason.clone()),
                        _ => None,
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Per-shard counter snapshots, in shard order.
    pub fn shard_counters(&self) -> Vec<ShardCounters> {
        self.shards
            .iter()
            .map(|s| {
                let entries = {
                    let map = lock_recover(&s.map);
                    map.values()
                        .filter(|slot| matches!(*lock_recover(&slot.data), SlotState::Ready(_)))
                        .count() as u64
                };
                ShardCounters {
                    entries,
                    hits: s.stats.hits.load(Ordering::Relaxed),
                    store_hits: s.stats.store_hits.load(Ordering::Relaxed),
                    prepares: s.stats.prepares.load(Ordering::Relaxed),
                    stale: s.stats.stale.load(Ordering::Relaxed),
                    inflight_waits: s.stats.inflight_waits.load(Ordering::Relaxed),
                    map_contended: s.stats.map_contended.load(Ordering::Relaxed),
                    evictions: s.stats.evictions.load(Ordering::Relaxed),
                    panics_contained: s.stats.panics_contained.load(Ordering::Relaxed),
                    slots_recovered: s.stats.slots_recovered.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Looks up or computes the prepared loop for `(original, cfg)` —
    /// the service entry point. Same-key requests dedupe onto one
    /// preparation; different keys never serialize against each other
    /// beyond their shard's key→slot resolution.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures (pathological kernels only), and
    /// reports a contained preparation panic as
    /// [`ScheduleError::PreparationPanicked`]. Failures are not cached:
    /// they are deterministic and rare, so a retry by a later waiter is
    /// harmless. A panic marks the slot `Failed` — the next request for
    /// the key observes that, counts the recovery and re-attempts.
    pub fn prepare(
        &self,
        original: &LoopKernel,
        machine: &MachineConfig,
        cfg: &RunConfig,
        ctx: &ExperimentContext,
    ) -> Result<Arc<PreparedLoop>, ScheduleError> {
        self.prepare_traced(original, machine, cfg, ctx, Trace::off())
    }

    /// [`prepare`](SchedCache::prepare) with an attached [`Trace`] handle:
    /// the slot lifecycle becomes visible as events. A served request emits
    /// exactly one of `cache.hit`, `cache.store_hit` or a `cache.miss`
    /// followed by a `cache.fill` span around the cold preparation; waiting
    /// on another thread's in-flight fill is a `cache.wait` span; observing
    /// and resetting a failed slot is `cache.recovered`; a contained panic
    /// is `cache.failed`; a rejected store entry is `cache.stale`. Every
    /// instant carries the shard index.
    ///
    /// # Errors
    ///
    /// As [`prepare`](SchedCache::prepare).
    pub fn prepare_traced(
        &self,
        original: &LoopKernel,
        machine: &MachineConfig,
        cfg: &RunConfig,
        ctx: &ExperimentContext,
        trace: Trace<'_>,
    ) -> Result<Arc<PreparedLoop>, ScheduleError> {
        let key = CacheKey::of(original, machine, cfg, ctx);
        let shard_idx = (key.stable_hash() % self.shards.len() as u64) as usize;
        let shard = &self.shards[shard_idx];
        let sh = shard_idx as f64;
        let slot = {
            let mut map = match shard.map.try_lock() {
                Ok(g) => g,
                Err(TryLockError::WouldBlock) => {
                    shard.stats.map_contended.fetch_add(1, Ordering::Relaxed);
                    lock_recover(&shard.map)
                }
                Err(TryLockError::Poisoned(e)) => e.into_inner(),
            };
            Arc::clone(map.entry(key).or_default())
        };
        // the slot lock is held across the computation: waiters for the
        // same key block here (instead of duplicating the dominant cost),
        // while cells with other keys proceed untouched
        let mut guard = match slot.data.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                shard.stats.inflight_waits.fetch_add(1, Ordering::Relaxed);
                // the wait span brackets blocking on another thread's fill
                // of the same cell — waiter wake latency in trace time
                let _wait = if trace.on() {
                    Some(trace.span("cache.wait"))
                } else {
                    None
                };
                lock_recover(&slot.data)
            }
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
        };
        let touch = || {
            let stamp = shard.clock.fetch_add(1, Ordering::Relaxed) + 1;
            slot.last_used.store(stamp, Ordering::Relaxed);
        };
        match &*guard {
            SlotState::Ready(hit) => {
                shard.stats.hits.fetch_add(1, Ordering::Relaxed);
                trace.instant("cache.hit", &[("shard", sh)]);
                let hit = Arc::clone(hit);
                touch();
                return Ok(hit);
            }
            SlotState::Failed(_) => {
                // a previous filler panicked; this request adopts the
                // cell and re-attempts from scratch
                shard.stats.slots_recovered.fetch_add(1, Ordering::Relaxed);
                trace.instant("cache.recovered", &[("shard", sh)]);
                *guard = SlotState::Empty;
            }
            SlotState::Empty => {}
        }
        if let Some(entry) = self.store.as_ref().and_then(|s| s.get(&key)) {
            match rebuild(entry, original, machine, cfg, ctx) {
                Ok(p) => {
                    shard.stats.store_hits.fetch_add(1, Ordering::Relaxed);
                    trace.instant("cache.store_hit", &[("shard", sh)]);
                    let p = Arc::new(p);
                    *guard = SlotState::Ready(Arc::clone(&p));
                    touch();
                    drop(guard);
                    self.enforce_capacity(shard);
                    return Ok(p);
                }
                Err(_) => {
                    shard.stats.stale.fetch_add(1, Ordering::Relaxed);
                    trace.instant("cache.stale", &[("shard", sh)]);
                }
            }
        }
        shard.stats.prepares.fetch_add(1, Ordering::Relaxed);
        trace.instant("cache.miss", &[("shard", sh)]);
        let fill_span = if trace.on() {
            Some(trace.span("cache.fill"))
        } else {
            None
        };
        // the panic boundary: the computation — and only the computation —
        // runs under `catch_unwind`, inside the guard scope, so a panic
        // can neither unwind through (poisoning the mutex and wedging
        // every waiter) nor kill the calling worker thread. The shared
        // state a panic could have left half-written is the closure's
        // own; the slot is updated only from a completed result.
        let computed =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &self.preparer {
                // custom preparers (fault-injection shims) take no trace
                Some(f) => f(original, machine, cfg, ctx),
                None => prepare_loop_traced(original, machine, cfg, ctx, trace),
            }));
        drop(fill_span);
        let prepared = match computed {
            Ok(Ok(p)) => Arc::new(p),
            Ok(Err(e)) => return Err(e),
            Err(payload) => {
                let reason = panic_reason(payload.as_ref());
                shard.stats.panics_contained.fetch_add(1, Ordering::Relaxed);
                trace.instant("cache.failed", &[("shard", sh)]);
                *guard = SlotState::Failed(reason.clone());
                return Err(ScheduleError::PreparationPanicked {
                    loop_name: original.name.clone(),
                    reason,
                });
            }
        };
        *guard = SlotState::Ready(Arc::clone(&prepared));
        touch();
        // the slot guard must be released before the map lock is taken:
        // every other path orders map → slot, and eviction keeps that
        // order by only ever try-locking slot data under the map lock
        drop(guard);
        self.enforce_capacity(shard);
        Ok(prepared)
    }

    /// Evicts least-recently-used completed cells until `shard` is back
    /// at the capacity cap. In-flight slots (data lock held elsewhere)
    /// are skipped — they are about to become the most recent anyway.
    /// Outstanding `Arc`s keep an evicted preparation alive for holders;
    /// eviction only drops the cache's reference.
    fn enforce_capacity(&self, shard: &Shard) {
        let Some(cap) = self.per_shard_cap else {
            return;
        };
        let mut map = lock_recover(&shard.map);
        loop {
            let mut completed = 0usize;
            let mut victim: Option<(CacheKey, u64)> = None;
            for (k, slot) in map.iter() {
                let g = match slot.data.try_lock() {
                    Ok(g) => g,
                    Err(TryLockError::Poisoned(e)) => e.into_inner(),
                    Err(TryLockError::WouldBlock) => continue,
                };
                if matches!(*g, SlotState::Ready(_)) {
                    completed += 1;
                    let used = slot.last_used.load(Ordering::Relaxed);
                    if victim.is_none_or(|(_, u)| used < u) {
                        victim = Some((*k, used));
                    }
                }
            }
            if completed <= cap {
                break;
            }
            let (k, _) = victim.expect("completed > cap implies a victim");
            map.remove(&k);
            shard.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Exports every completed cell into a [`ScheduleStore`].
    pub fn export_store(&self) -> ScheduleStore {
        let mut store = ScheduleStore::new();
        for shard in &self.shards {
            let map = lock_recover(&shard.map);
            for (key, slot) in map.iter() {
                if let SlotState::Ready(p) = &*lock_recover(&slot.data) {
                    store.insert(StoreEntry {
                        name: p.kernel.name.clone(),
                        key: *key,
                        choice: p.choice,
                        factor: p.factor,
                        prepared_fp: kernel_fingerprint(&p.kernel),
                        quality: p.quality,
                        schedule: p.schedule.clone(),
                    });
                }
            }
        }
        store
    }
}

/// Rebuilds a [`PreparedLoop`] from a store entry: re-derives the
/// prepared kernel (unroll + profile at the stored factor — no candidate
/// scheduling), then accepts the stored schedule only if the rebuilt
/// kernel's fingerprint matches and the schedule verifies against it.
fn rebuild(
    entry: &StoreEntry,
    original: &LoopKernel,
    machine: &MachineConfig,
    cfg: &RunConfig,
    ctx: &ExperimentContext,
) -> Result<PreparedLoop, String> {
    let mut builder = VariantBuilder::new(original, machine, cfg, ctx);
    let kernel = builder.build(entry.factor).map_err(|e| e.to_string())?;
    let fp = kernel_fingerprint(&kernel);
    if fp != entry.prepared_fp {
        return Err(format!(
            "stale: rebuilt kernel fingerprint {fp} != stored {}",
            entry.prepared_fp
        ));
    }
    if !entry.schedule.verify(&kernel, machine).is_empty() {
        return Err("stale: stored schedule fails verification".into());
    }
    Ok(PreparedLoop {
        kernel,
        schedule: entry.schedule.clone(),
        quality: entry.quality,
        choice: entry.choice,
        factor: entry.factor,
    })
}

/// Renders a caught panic payload as text (the common `&str` / `String`
/// payloads; anything else gets a placeholder).
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One persisted cell: its key, the unrolling decision, the fingerprint
/// of the prepared (unrolled) kernel the schedule belongs to, and the
/// schedule itself.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreEntry {
    /// Original kernel name (readability + sort key; no whitespace).
    pub name: String,
    /// The cache key.
    pub key: CacheKey,
    /// Which unrolling variant won.
    pub choice: UnrollChoice,
    /// The unroll factor applied.
    pub factor: u32,
    /// [`kernel_fingerprint`] of the prepared (unrolled) kernel — the
    /// staleness gate: a rebuilt kernel must hash to this before the
    /// stored schedule is trusted.
    pub prepared_fp: u64,
    /// The backend's quality claim.
    pub quality: SchedQuality,
    /// The schedule.
    pub schedule: Schedule,
}

impl StoreEntry {
    fn header_line(&self) -> String {
        format!(
            "entry {} kfp {} efp {} arch {} policy {} backend {} source {} unroll {} pad {} \
             choice {} factor {} pfp {} quality {}",
            self.name,
            self.key.kernel_fp,
            self.key.env_fp,
            arch_token(self.key.arch),
            policy_token(self.key.policy),
            backend_token(self.key.backend),
            source_token(self.key.source),
            unroll_token(self.key.unroll),
            u8::from(self.key.padding),
            choice_token(self.choice),
            self.factor,
            self.prepared_fp,
            quality_token(self.quality),
        )
    }

    fn parse_header(line: &str) -> Result<Self, String> {
        let t: Vec<&str> = line.split_whitespace().collect();
        if t.len() != 26 || t[0] != "entry" {
            return Err(format!("bad entry header: `{line}`"));
        }
        let field = |tag: usize, name: &str| -> Result<&str, String> {
            if t[tag] != name {
                return Err(format!(
                    "entry header: expected `{name}`, found `{}`",
                    t[tag]
                ));
            }
            Ok(t[tag + 1])
        };
        let int = |s: &str| s.parse::<u64>().map_err(|e| format!("entry header: {e}"));
        let key = CacheKey {
            kernel_fp: int(field(2, "kfp")?)?,
            env_fp: int(field(4, "efp")?)?,
            arch: parse_arch(field(6, "arch")?)?,
            policy: parse_policy(field(8, "policy")?)?,
            backend: parse_backend(field(10, "backend")?)?,
            source: parse_source(field(12, "source")?)?,
            unroll: parse_unroll(field(14, "unroll")?)?,
            padding: match field(16, "pad")? {
                "0" => false,
                "1" => true,
                other => return Err(format!("bad pad flag `{other}`")),
            },
        };
        Ok(StoreEntry {
            name: t[1].to_string(),
            key,
            choice: parse_choice(field(18, "choice")?)?,
            factor: int(field(20, "factor")?)? as u32,
            prepared_fp: int(field(22, "pfp")?)?,
            quality: parse_quality(field(24, "quality")?)?,
            // placeholder; the caller parses the schedule block next
            schedule: Schedule::from_compact_text(
                "sched ii 1 mii 1 res 1 rec 1 tmii 1 nops 0 ncopies 0\nops\nlats\ncopies\n",
            )
            .expect("placeholder schedule parses"),
        })
    }
}

/// The versioned on-disk form of a [`SchedCache`] — same discipline as
/// the measured-profile store: plain text, integers only, deterministic
/// (entries sorted), byte-exact round-trips, committed-file diffable.
///
/// Format (version 2; version-1 stores lack the `check` line and are
/// still read):
///
/// ```text
/// vliw-sched-store 2
/// entries <N>
/// entry <name> kfp <u64> efp <u64> arch <tok> policy <tok> backend <tok>
///       source <tok> unroll <tok> pad <0|1> choice <tok> factor <k>
///       pfp <u64> quality <tok>          (one line)
/// sched ii … (4 lines, `Schedule::to_compact_text`)
/// check <u64>                            (digest of the 5 lines above)
/// endentry
/// ```
///
/// Two loaders share the format: [`ScheduleStore::from_text`] is strict
/// (any framing, token or checksum error rejects the file — the loader
/// for stores this build wrote), while [`ScheduleStore::from_text_salvage`]
/// never errors — it skips records that fail their checksum or parse,
/// stops at broken framing, counts everything it dropped in a
/// [`SalvageReport`], and serves the surviving records. A torn or
/// bit-flipped store therefore degrades hit rate, never correctness or
/// availability.
#[derive(Debug, Clone, Default)]
pub struct ScheduleStore {
    entries: Vec<StoreEntry>,
    index: HashMap<CacheKey, usize>,
}

/// What [`ScheduleStore::from_text_salvage`] recovered and dropped.
/// Every record of the damaged file lands in exactly one bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SalvageReport {
    /// Records recovered intact (checksum and parse both good).
    pub recovered: usize,
    /// Records skipped because their checksum or parse failed while the
    /// record framing was still intact (bit flips, tampered fields).
    pub dropped_corrupt: usize,
    /// Records lost to truncation or broken framing: the partial record
    /// at the damage point plus every declared record after it.
    pub dropped_truncated: usize,
    /// The store prelude named a version this build does not read (or
    /// was itself damaged); nothing was salvaged.
    pub version_rejected: bool,
}

impl SalvageReport {
    /// Total records dropped (everything except `recovered`).
    pub fn dropped(&self) -> usize {
        self.dropped_corrupt + self.dropped_truncated
    }
}

/// The per-record integrity digest: a [`StableHasher`] pass over the
/// header line and the schedule block exactly as serialized.
fn record_checksum(header: &str, sched_text: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(header);
    h.write_str(sched_text);
    h.finish()
}

impl ScheduleStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry under `key`, if present.
    pub fn get(&self, key: &CacheKey) -> Option<&StoreEntry> {
        self.index.get(key).map(|&i| &self.entries[i])
    }

    /// All entries, in insertion order.
    pub fn entries(&self) -> impl Iterator<Item = &StoreEntry> {
        self.entries.iter()
    }

    /// Inserts (or replaces) an entry.
    pub fn insert(&mut self, entry: StoreEntry) {
        match self.index.get(&entry.key) {
            Some(&i) => self.entries[i] = entry,
            None => {
                self.index.insert(entry.key, self.entries.len());
                self.entries.push(entry);
            }
        }
    }

    /// Serializes the store (entries sorted by header line, so the text
    /// is deterministic regardless of insertion or shard order).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut sorted: Vec<&StoreEntry> = self.entries.iter().collect();
        sorted.sort_by_key(|e| e.header_line());
        let mut out = String::new();
        let _ = writeln!(out, "vliw-sched-store {SCHED_STORE_VERSION}");
        let _ = writeln!(out, "entries {}", sorted.len());
        for e in sorted {
            assert!(
                !e.name.chars().any(char::is_whitespace),
                "kernel names must not contain whitespace"
            );
            let header = e.header_line();
            let sched = e.schedule.to_compact_text();
            let check = record_checksum(&header, &sched);
            out.push_str(&header);
            out.push('\n');
            out.push_str(&sched);
            let _ = writeln!(out, "check {check}");
            out.push_str("endentry\n");
        }
        out
    }

    /// Parses a store serialized by [`ScheduleStore::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first framing or token error; a
    /// version mismatch is an error (stale major format, not silently
    /// reinterpreted).
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty store")?;
        let mut it = header.split_whitespace();
        if it.next() != Some("vliw-sched-store") {
            return Err(format!("bad header: `{header}`"));
        }
        let version: u32 = it
            .next()
            .ok_or("missing version")?
            .parse()
            .map_err(|e| format!("bad version: {e}"))?;
        if !(SCHED_STORE_MIN_VERSION..=SCHED_STORE_VERSION).contains(&version) {
            return Err(format!(
                "store version {version}, this build reads versions \
                 {SCHED_STORE_MIN_VERSION}..={SCHED_STORE_VERSION}"
            ));
        }
        let counts = lines.next().ok_or("missing entry count")?;
        let n: usize = counts
            .strip_prefix("entries ")
            .ok_or_else(|| format!("bad count line: `{counts}`"))?
            .parse()
            .map_err(|e| format!("bad count: {e}"))?;
        let mut store = ScheduleStore::new();
        for _ in 0..n {
            let head = lines.next().ok_or("missing entry header")?;
            let mut entry = StoreEntry::parse_header(head)?;
            let sched_lines: Vec<&str> = (0..4)
                .map(|_| lines.next().ok_or("truncated schedule block"))
                .collect::<Result<_, _>>()?;
            let sched_text = sched_lines.join("\n") + "\n";
            entry.schedule = Schedule::from_compact_text(&sched_text)
                .map_err(|e| format!("entry `{}`: {e}", entry.name))?;
            if version >= 2 {
                let check_line = lines.next().ok_or("missing check line")?;
                let stored: u64 = check_line
                    .strip_prefix("check ")
                    .ok_or_else(|| format!("entry `{}`: bad check line", entry.name))?
                    .parse()
                    .map_err(|e| format!("entry `{}`: bad checksum: {e}", entry.name))?;
                let computed = record_checksum(head, &sched_text);
                if stored != computed {
                    return Err(format!(
                        "entry `{}`: checksum mismatch (stored {stored}, computed {computed})",
                        entry.name
                    ));
                }
            }
            if lines.next() != Some("endentry") {
                return Err(format!("entry `{}`: missing endentry", entry.name));
            }
            store.insert(entry);
        }
        if store.len() != n {
            return Err(format!(
                "store declares {n} entries but {} distinct keys",
                store.len()
            ));
        }
        Ok(store)
    }

    /// Parses a (possibly damaged) store, recovering every record whose
    /// framing, checksum and tokens are intact. Never errors: damage is
    /// counted, not propagated.
    ///
    /// Rules:
    ///
    /// * A prelude naming an unreadable version — or too damaged to parse
    ///   — salvages nothing (`version_rejected`; a reinterpreted framing
    ///   would be worse than an empty cache).
    /// * A record whose framing is intact but whose checksum or tokens
    ///   fail is skipped (`dropped_corrupt`) and the scan continues —
    ///   later records survive.
    /// * Broken framing (a line where `entry`/`endentry` should be, or
    ///   end-of-file mid-record) ends the scan: alignment downstream of
    ///   the break cannot be trusted. The partial record and every
    ///   declared record after it count as `dropped_truncated`.
    ///
    /// Version-1 records carry no checksum, so for them only parse
    /// failures count as corrupt; the serving path still verifies every
    /// schedule against the rebuilt kernel before trusting it
    /// (`rebuild`), for either version.
    pub fn from_text_salvage(text: &str) -> (Self, SalvageReport) {
        let mut rep = SalvageReport::default();
        let mut store = ScheduleStore::new();
        let lines: Vec<&str> = text.lines().collect();
        let version: Option<u32> = lines
            .first()
            .and_then(|l| l.strip_prefix("vliw-sched-store "))
            .and_then(|v| v.parse().ok())
            .filter(|v| (SCHED_STORE_MIN_VERSION..=SCHED_STORE_VERSION).contains(v));
        let Some(version) = version else {
            rep.version_rejected = true;
            return (store, rep);
        };
        let declared: Option<usize> = lines
            .get(1)
            .and_then(|l| l.strip_prefix("entries "))
            .and_then(|n| n.parse().ok());
        // entry + 4 sched lines + (v2: check) + endentry
        let rec_lines = if version >= 2 { 7 } else { 6 };
        let mut i = 2;
        while i < lines.len() {
            if i + rec_lines > lines.len() {
                rep.dropped_truncated += 1; // partial record at the tail
                break;
            }
            let header = lines[i];
            if !header.starts_with("entry ") || lines[i + rec_lines - 1] != "endentry" {
                rep.dropped_truncated += 1; // framing broken: stop here
                break;
            }
            let sched_text = lines[i + 1..i + 5].join("\n") + "\n";
            let checksum_ok = if version >= 2 {
                lines[i + 5]
                    .strip_prefix("check ")
                    .and_then(|c| c.parse::<u64>().ok())
                    .is_some_and(|stored| stored == record_checksum(header, &sched_text))
            } else {
                true
            };
            let entry = checksum_ok
                .then(|| {
                    let mut e = StoreEntry::parse_header(header).ok()?;
                    e.schedule = Schedule::from_compact_text(&sched_text).ok()?;
                    Some(e)
                })
                .flatten();
            match entry {
                Some(e) => {
                    store.insert(e);
                    rep.recovered += 1;
                }
                None => rep.dropped_corrupt += 1,
            }
            i += rec_lines;
        }
        // records the damage swallowed wholesale (truncation past whole
        // records): the declared count still names them
        if let Some(n) = declared {
            let seen = rep.recovered + rep.dropped_corrupt + rep.dropped_truncated;
            if seen < n {
                rep.dropped_truncated += n - seen;
            }
        }
        (store, rep)
    }

    /// Writes the store to `path`, creating parent directories. The
    /// write is crash-safe: the text goes to a temporary file in the
    /// same directory which is then atomically renamed over `path`, so a
    /// crash mid-export leaves either the old store or the new one —
    /// never a torn hybrid.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (the temporary file is cleaned up).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let tmp = Self::temp_sibling(path);
        let result =
            std::fs::write(&tmp, self.to_text()).and_then(|()| std::fs::rename(&tmp, path));
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Fault-injection seam for the crash-mid-export regression test:
    /// performs [`ScheduleStore::save`]'s first phase but dies before the
    /// rename, leaving only `truncate_at` bytes of the temporary file
    /// behind (the debris a real crash would leave). The destination is
    /// never touched. Always returns the interruption as an error.
    ///
    /// # Errors
    ///
    /// Always — the simulated crash.
    pub fn save_interrupted(&self, path: &Path, truncate_at: usize) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let text = self.to_text();
        let cut = truncate_at.min(text.len());
        std::fs::write(Self::temp_sibling(path), &text.as_bytes()[..cut])?;
        Err(std::io::Error::other("export interrupted by fault plan"))
    }

    /// The temporary-file path [`ScheduleStore::save`] writes before the
    /// rename: a sibling of `path` (same filesystem, so the rename is
    /// atomic), suffixed with the process id.
    fn temp_sibling(path: &Path) -> std::path::PathBuf {
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(format!(".tmp.{}", std::process::id()));
        path.with_file_name(name)
    }

    /// Reads a store from `path` with the strict parser.
    ///
    /// # Errors
    ///
    /// Propagates I/O and parse failures as strings.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_text(&text)
    }

    /// Reads a store from `path` with the salvage parser: parse damage
    /// is absorbed into the [`SalvageReport`], only I/O failure errors.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures as strings.
    pub fn load_salvage(path: &Path) -> Result<(Self, SalvageReport), String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(Self::from_text_salvage(&text))
    }
}
