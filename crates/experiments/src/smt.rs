//! SMT-LIB serialization of the modulo-scheduling problem — the "SMT
//! yardstick" export.
//!
//! The exact branch-and-bound backend is one in-tree referee; this module
//! provides a second, *independent* one: it restates the front-end's
//! output ([`vliw_sched::schedule_problem`]) as an SMT-LIB2 (`QF_LIA`)
//! decision problem at a chosen II, one deterministic `.smt2` file per
//! factor-1 suite kernel, so any off-the-shelf SMT solver can corroborate
//! (or refute) feasibility at the MII without trusting a single line of
//! the Rust search code.
//!
//! # Encoding
//!
//! Per operation `i`: an integer start cycle `t<i>` (bounded to one
//! normalization horizon, `[0, II × n_ops)`) and a cluster `c<i>` in
//! `[0, n_clusters)`. Then:
//!
//! * **Dependences.** For every edge `(from → to, latency L, distance d)`
//!   — priced by the same latency assignment the backends schedule
//!   against — `t_to ≥ t_from + L + X − II·d`, where `X` is
//!   `transfer_cycles` iff the edge carries a register flow between
//!   different clusters (an `ite` on the cluster variables), else 0.
//! * **Functional units.** For every `(cluster, kind, modulo slot)`
//!   cell: the number of ops of that kind with `c = cluster` and
//!   `t mod II = slot` is at most the per-cluster unit count — the
//!   reservation-table constraint, stated whole.
//! * **Cluster pins.** The policy's precomputed pins become equality
//!   constraints, so the exported problem is the *policy's* problem,
//!   exactly as the in-tree backends see it.
//! * **Register buses** are an *aggregate relaxation*, documented in the
//!   file header: each producer with at least one register-flow consumer
//!   on another cluster contributes one `transfer_cycles`-slot transfer,
//!   and the sum is bounded by `reg_buses × II`. This undercounts a
//!   producer feeding several remote clusters (one copy per destination
//!   in the real machine), so `unsat` at some II remains a sound
//!   infeasibility proof while `sat` is necessary-but-not-sufficient —
//!   the gap between this relaxation and the exact backend's full bus
//!   routing is precisely what makes two independent referees
//!   interesting.
//!
//! `repro [quick|full] smt` writes the files under `results/smt/`.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use vliw_ir::{DepKind, FuKind, LoopKernel, OpId};
use vliw_machine::MachineConfig;
use vliw_sched::{schedule_problem, ClusterPolicy, ScheduleOptions, ScheduleProblem};

use crate::context::ExperimentContext;

/// What one export run produced.
#[derive(Debug, Clone)]
pub struct SmtExport {
    /// Files written, in kernel order.
    pub files: Vec<PathBuf>,
    /// Kernels serialized (== `files.len()` when every write succeeded).
    pub n_kernels: usize,
    /// Total bytes of SMT-LIB written.
    pub bytes: usize,
}

/// An SMT integer literal (negative numbers need the unary-minus form).
fn lit(v: i64) -> String {
    if v < 0 {
        format!("(- {})", -v)
    } else {
        v.to_string()
    }
}

/// Serializes `kernel`'s scheduling problem at `ii` as one SMT-LIB2
/// (`QF_LIA`) script. Deterministic: ops and edges are emitted in kernel
/// index order.
pub fn kernel_to_smt(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    problem: &ScheduleProblem,
    ii: u32,
) -> String {
    let n_ops = kernel.ops.len();
    let n_clusters = machine.clusters.n_clusters;
    let transfer = i64::from(machine.buses.transfer_cycles);
    let horizon = i64::from(ii) * n_ops as i64;
    let mut s = String::new();
    let _ = writeln!(s, "; kernel: {}", kernel.name);
    let _ = writeln!(
        s,
        "; ops: {n_ops}  edges: {}  clusters: {n_clusters}  buses: {} (transfer {transfer})",
        kernel.edges.len(),
        machine.buses.reg_buses
    );
    let _ = writeln!(
        s,
        "; mii: {} (res {}, rec {})  max_ii: {}  encoded ii: {ii}",
        problem.mii, problem.res_mii, problem.rec_mii, problem.max_ii
    );
    s.push_str("; buses are an aggregate relaxation: one transfer per producer with a\n");
    s.push_str("; remote register-flow consumer, summed against reg_buses * ii --\n");
    s.push_str("; unsat proves infeasibility, sat does not prove full routability\n");
    s.push_str("(set-logic QF_LIA)\n");
    let _ = writeln!(s, "(set-info :source \"interleaved-vliw factor-1 suite\")");
    s.push_str("(set-info :status unknown)\n");

    for i in 0..n_ops {
        let _ = writeln!(s, "(declare-const t{i} Int)");
        let _ = writeln!(s, "(declare-const c{i} Int)");
        let _ = writeln!(s, "(assert (and (<= 0 t{i}) (< t{i} {})))", lit(horizon));
        let _ = writeln!(s, "(assert (and (<= 0 c{i}) (< c{i} {n_clusters})))");
    }
    for (i, pin) in problem.pins.iter().enumerate() {
        if let Some(p) = pin {
            let _ = writeln!(s, "(assert (= c{i} {p})) ; policy pin");
        }
    }

    s.push_str("; dependences: t_to >= t_from + latency [+ transfer] - ii*distance\n");
    for e in &kernel.edges {
        let (f, t) = (e.from.index(), e.to.index());
        let lat = i64::from(problem.latencies.edge_latency(e, kernel));
        let slack = lit(-(i64::from(ii) * i64::from(e.distance)));
        if e.kind == DepKind::RegFlow && f != t {
            let _ = writeln!(
                s,
                "(assert (>= t{t} (+ t{f} {} (ite (= c{f} c{t}) 0 {transfer}) {slack})))",
                lit(lat)
            );
        } else {
            let _ = writeln!(s, "(assert (>= t{t} (+ t{f} {} {slack})))", lit(lat));
        }
    }

    s.push_str("; reservation table: per (cluster, kind, modulo slot) capacity\n");
    for kind in FuKind::ALL {
        let members: Vec<usize> = (0..n_ops)
            .filter(|&i| kernel.op(OpId::new(i)).fu_kind() == kind)
            .collect();
        if members.is_empty() {
            continue;
        }
        let cap = match kind {
            FuKind::Int => machine.clusters.int_units,
            FuKind::Fp => machine.clusters.fp_units,
            FuKind::Mem => machine.clusters.mem_units,
        };
        for cl in 0..n_clusters {
            for slot in 0..ii {
                let terms: Vec<String> = members
                    .iter()
                    .map(|&i| format!("(ite (and (= c{i} {cl}) (= (mod t{i} {ii}) {slot})) 1 0)"))
                    .collect();
                let sum = if terms.len() == 1 {
                    terms.into_iter().next().expect("nonempty")
                } else {
                    format!("(+ {})", terms.join(" "))
                };
                let _ = writeln!(s, "(assert (<= {sum} {cap}))");
            }
        }
    }

    s.push_str("; aggregate bus relaxation (see header)\n");
    let mut producer_terms: Vec<String> = Vec::new();
    for i in 0..n_ops {
        let consumers: Vec<usize> = kernel
            .edges
            .iter()
            .filter(|e| e.kind == DepKind::RegFlow && e.from.index() == i && e.to.index() != i)
            .map(|e| e.to.index())
            .collect();
        if consumers.is_empty() {
            continue;
        }
        let remote: Vec<String> = consumers
            .iter()
            .map(|&t| format!("(distinct c{i} c{t})"))
            .collect();
        let any = if remote.len() == 1 {
            remote.into_iter().next().expect("nonempty")
        } else {
            format!("(or {})", remote.join(" "))
        };
        producer_terms.push(format!("(ite {any} {transfer} 0)"));
    }
    if !producer_terms.is_empty() {
        let capacity = machine.buses.reg_buses as i64 * i64::from(ii);
        let sum = if producer_terms.len() == 1 {
            producer_terms.into_iter().next().expect("nonempty")
        } else {
            format!("(+ {})", producer_terms.join(" "))
        };
        let _ = writeln!(s, "(assert (<= {sum} {capacity}))");
    }

    s.push_str("(check-sat)\n");
    s
}

/// Builds the problem snapshot and serializes one kernel at its MII.
pub fn export_kernel(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    options: &ScheduleOptions,
) -> String {
    let problem = schedule_problem(kernel, machine, options);
    let ii = problem.mii;
    kernel_to_smt(kernel, machine, &problem, ii)
}

/// Exports the context's factor-1 suite under the BASE (free) policy,
/// one `<index>_<loop>.smt2` per kernel under `dir`, each encoded at its
/// own MII.
///
/// # Errors
///
/// Propagates the first filesystem error (directory creation or file
/// write).
pub fn export_suite(ctx: &ExperimentContext, dir: &Path) -> std::io::Result<SmtExport> {
    let kernels = crate::optgap::factor1_kernels(ctx);
    let options = ScheduleOptions {
        enum_limits: ctx.enum_limits,
        ..ScheduleOptions::new(ClusterPolicy::Free)
    };
    fs::create_dir_all(dir)?;
    let mut out = SmtExport {
        files: Vec::new(),
        n_kernels: kernels.len(),
        bytes: 0,
    };
    for (i, kernel) in kernels.iter().enumerate() {
        let text = export_kernel(kernel, &ctx.machine, &options);
        let path = dir.join(format!("{i:02}_{}.smt2", kernel.name));
        fs::write(&path, &text)?;
        out.bytes += text.len();
        out.files.push(path);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{ArrayKind, KernelBuilder, Opcode};

    fn saxpy() -> LoopKernel {
        let mut b = KernelBuilder::new("saxpy");
        let x = b.array("x", 4096, ArrayKind::Heap);
        let (_, xv) = b.load("ld_x", x, 0, 4, 4);
        let (_, p) = b.int_op("mul", Opcode::Mul, &[xv.into()]);
        b.store("st", x, 2048, 4, 4, p);
        b.finish(64.0)
    }

    #[test]
    fn export_is_wellformed_and_deterministic() {
        let k = saxpy();
        let m = MachineConfig::word_interleaved_4();
        let o = ScheduleOptions::new(ClusterPolicy::Free);
        let a = export_kernel(&k, &m, &o);
        let b = export_kernel(&k, &m, &o);
        assert_eq!(a, b, "export must be deterministic");
        assert!(a.starts_with("; kernel: saxpy"));
        assert!(a.contains("(set-logic QF_LIA)"));
        assert!(a.trim_end().ends_with("(check-sat)"));
        // one start-cycle and one cluster variable per op
        for i in 0..k.ops.len() {
            assert!(a.contains(&format!("(declare-const t{i} Int)")));
            assert!(a.contains(&format!("(declare-const c{i} Int)")));
        }
        // balanced parentheses — the cheapest full-script sanity check
        let depth = a.chars().try_fold(0i64, |d, ch| match ch {
            '(' => Some(d + 1),
            ')' => {
                if d == 0 {
                    None
                } else {
                    Some(d - 1)
                }
            }
            _ => Some(d),
        });
        assert_eq!(depth, Some(0), "unbalanced parentheses");
    }

    #[test]
    fn pinned_policies_export_their_pins() {
        // the §4.3.3 worked example carries per-op cluster preferences, so
        // the pinning policies produce real pins for it
        let (k, _) = vliw_sched::examples_443::figure3_kernel();
        let m = vliw_sched::examples_443::figure3_machine();
        let o = ScheduleOptions::new(ClusterPolicy::NoChains);
        let text = export_kernel(&k, &m, &o);
        assert!(
            text.contains("; policy pin"),
            "ablation pins must reach the export"
        );
        // the free policy pins nothing on the same kernel
        let free = export_kernel(&k, &m, &ScheduleOptions::new(ClusterPolicy::Free));
        assert!(!free.contains("; policy pin"));
    }

    #[test]
    fn dependence_constraints_price_cross_cluster_transfers() {
        let k = saxpy();
        let m = MachineConfig::word_interleaved_4();
        let o = ScheduleOptions::new(ClusterPolicy::Free);
        let text = export_kernel(&k, &m, &o);
        // the register-flow edges carry the conditional transfer term
        assert!(text.contains("(ite (= c0 c1) 0 2)"), "{text}");
        // and the bus relaxation is present
        assert!(text.contains("; aggregate bus relaxation"));
    }
}
