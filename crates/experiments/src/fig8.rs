//! Figure 8: cycle counts across architectures.
//!
//! Four bars per benchmark, all normalized to a unified cache with 5 ports
//! at an optimistic 1-cycle latency:
//!
//! 1. word-interleaved, IPBC + 16-entry Attraction Buffers;
//! 2. word-interleaved, IBC + 16-entry Attraction Buffers;
//! 3. multiVLIW (coherent caches), scheduled with IBC;
//! 4. unified cache at a realistic 5-cycle latency (BASE).
//!
//! Each bar splits into compute time and stall time. Paper headlines: the
//! interleaved organization is ~7% behind the multiVLIW, 5%/10% ahead of
//! unified L=5 (IPBC/IBC) and 18%/11% behind the optimistic unified L=1.

use std::fmt;

use crate::context::{ExperimentContext, RunConfig};
use crate::grid::{GridResult, RunGrid};
use crate::report::{amean, f3, Table};

/// The bar labels, in the paper's order.
pub const BAR_LABELS: [&str; 4] = ["IPBC", "IBC", "MultiVLIW", "Unified(L=5)"];

/// One normalized cycle-count bar.
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleBar {
    /// Compute (schedule-determined) cycles / unified-L1 total.
    pub compute: f64,
    /// Stall cycles / unified-L1 total.
    pub stall: f64,
}

impl CycleBar {
    /// Total normalized height.
    pub fn total(&self) -> f64 {
        self.compute + self.stall
    }
}

/// One benchmark's bars.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Benchmark name.
    pub bench: String,
    /// Bars in [`BAR_LABELS`] order.
    pub bars: [CycleBar; 4],
    /// Absolute cycles of the unified-L=1 normalizer.
    pub unified1_cycles: f64,
}

/// Figure 8 data.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Per-benchmark rows.
    pub rows: Vec<Fig8Row>,
    /// Mean bars.
    pub amean: [CycleBar; 4],
}

impl Fig8 {
    /// Mean speedup of bar `a` over bar `b` (`total_b / total_a − 1`).
    pub fn speedup(&self, a: usize, b: usize) -> f64 {
        amean(
            self.rows
                .iter()
                .map(|r| r.bars[b].total() / r.bars[a].total()),
        ) - 1.0
    }

    /// Mean slowdown of bar `a` versus the unified-L=1 baseline
    /// (`total_a − 1`, since bars are normalized to that baseline).
    pub fn slowdown_vs_unified1(&self, a: usize) -> f64 {
        amean(self.rows.iter().map(|r| r.bars[a].total())) - 1.0
    }

    /// Mean cycle-count degradation of the interleaved IPBC bar versus the
    /// multiVLIW bar.
    pub fn vs_multivliw(&self) -> f64 {
        amean(
            self.rows
                .iter()
                .map(|r| r.bars[0].total() / r.bars[2].total()),
        ) - 1.0
    }

    /// Renders the paper-style table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 8: cycle counts normalized to unified (5 ports, 1-cycle)",
            &["bench", "bar", "compute", "stall", "total"],
        );
        let mut push = |name: &str, label: &str, b: &CycleBar| {
            t.row(vec![
                name.into(),
                label.into(),
                f3(b.compute),
                f3(b.stall),
                f3(b.total()),
            ]);
        };
        for r in &self.rows {
            for (i, b) in r.bars.iter().enumerate() {
                push(&r.bench, BAR_LABELS[i], b);
            }
        }
        for (i, b) in self.amean.iter().enumerate() {
            push("AMEAN", BAR_LABELS[i], b);
        }
        t
    }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table().render())?;
        writeln!(
            f,
            "IPBC vs unified(L=5): {:+.1}%  IBC vs unified(L=5): {:+.1}%  IPBC vs multiVLIW: {:+.1}%  \
             vs unified(L=1): IPBC {:+.1}%, IBC {:+.1}%",
            100.0 * self.speedup(0, 3),
            100.0 * self.speedup(1, 3),
            100.0 * self.vs_multivliw(),
            100.0 * self.slowdown_vs_unified1(0),
            100.0 * self.slowdown_vs_unified1(1),
        )
    }
}

/// The Figure 8 grid: the four bars plus the unified-L=1 normalizer as a
/// fifth column.
pub fn fig8_grid() -> RunGrid {
    let configs = [
        RunConfig::ipbc().with_buffers(),
        RunConfig::ibc().with_buffers(),
        RunConfig::multivliw(),
        RunConfig::unified(5),
    ];
    let mut grid = RunGrid::new("fig8");
    for (label, cfg) in BAR_LABELS.iter().zip(configs) {
        grid = grid.config(*label, cfg);
    }
    grid.config("Unified(L=1)", RunConfig::unified(1))
}

/// Runs the Figure 8 experiment (parallel grid).
pub fn fig8(ctx: &ExperimentContext) -> Fig8 {
    fig8_from(&fig8_grid().run(ctx))
}

/// Aggregates Figure 8 from an executed grid.
pub fn fig8_from(result: &GridResult) -> Fig8 {
    let mut rows = Vec::new();
    for (bench, runs) in result.by_bench() {
        let baseline = &runs[4];
        let norm = baseline.total_cycles().max(1.0);
        let mut bars = [CycleBar::default(); 4];
        for (i, run) in runs[..4].iter().enumerate() {
            bars[i] = CycleBar {
                compute: run.compute_cycles() / norm,
                stall: run.stall_cycles() / norm,
            };
        }
        rows.push(Fig8Row {
            bench: bench.to_string(),
            bars,
            unified1_cycles: norm,
        });
    }
    let mut mean = [CycleBar::default(); 4];
    for (i, m) in mean.iter_mut().enumerate() {
        m.compute = amean(rows.iter().map(|r| r.bars[i].compute));
        m.stall = amean(rows.iter().map(|r| r.bars[i].stall));
    }
    Fig8 { rows, amean: mean }
}
