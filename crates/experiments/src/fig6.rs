//! Figure 6: stall time by access type, with and without Attraction
//! Buffers.
//!
//! Four bars per benchmark — IBC, IBC+AB, IPBC, IPBC+AB (16-entry 2-way
//! buffers, selective unrolling) — normalized to the first bar. Stall time
//! splits into remote-hit, local-miss, remote-miss and combined components
//! (local hits never cause class stalls; the rare copy-timing residue is
//! reported in the `other` column for honesty).
//!
//! Paper headlines: remote hits cause ~76% (IBC) / ~72% (IPBC) of stall;
//! Attraction Buffers cut stall by ~34% / ~29%.

use std::fmt;

use vliw_machine::AccessClass;

use crate::context::{ExperimentContext, RunConfig};
use crate::grid::{GridResult, RunGrid};
use crate::report::{amean, f3, Table};

/// The four bar labels.
pub const BAR_LABELS: [&str; 4] = ["IBC", "IBC+AB", "IPBC", "IPBC+AB"];

/// One stall bar: components normalized to the benchmark's first bar.
#[derive(Debug, Clone, Copy, Default)]
pub struct StallBar {
    /// Remote-hit stall share.
    pub remote_hit: f64,
    /// Local-miss stall share.
    pub local_miss: f64,
    /// Remote-miss stall share.
    pub remote_miss: f64,
    /// Combined-access stall share.
    pub combined: f64,
    /// Copy/local/MSHR-back-pressure residue (not part of the paper's
    /// four categories).
    pub other: f64,
}

impl StallBar {
    /// Total bar height.
    pub fn total(&self) -> f64 {
        self.remote_hit + self.local_miss + self.remote_miss + self.combined + self.other
    }
}

/// One benchmark's four bars.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Benchmark name.
    pub bench: String,
    /// Bars in [`BAR_LABELS`] order.
    pub bars: [StallBar; 4],
    /// Absolute (scaled) stall cycles of the IBC bar (the normalizer).
    pub ibc_stall: f64,
}

/// Figure 6 data.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Per-benchmark rows.
    pub rows: Vec<Fig6Row>,
    /// Arithmetic-mean bars.
    pub amean: [StallBar; 4],
}

impl Fig6 {
    /// Remote-hit share of stall time for a no-buffer bar
    /// (0 = IBC, 2 = IPBC), AMEAN over benchmarks with stall.
    pub fn remote_hit_share(&self, bar: usize) -> f64 {
        amean(
            self.rows
                .iter()
                .filter(|r| r.bars[bar].total() > 0.0)
                .map(|r| {
                    let b = &r.bars[bar];
                    b.remote_hit / b.total()
                }),
        )
    }

    /// Average stall reduction of Attraction Buffers for a heuristic
    /// (`0` = IBC bar pair, `2` = IPBC bar pair).
    pub fn ab_reduction(&self, no_ab_bar: usize) -> f64 {
        amean(
            self.rows
                .iter()
                .filter(|r| r.bars[no_ab_bar].total() > 1e-9)
                .map(|r| 1.0 - r.bars[no_ab_bar + 1].total() / r.bars[no_ab_bar].total()),
        )
    }

    /// Renders the paper-style table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 6: stall time by access type (normalized to IBC)",
            &[
                "bench",
                "bar",
                "remote hit",
                "local miss",
                "remote miss",
                "combined",
                "other",
                "total",
            ],
        );
        let mut push = |name: &str, label: &str, b: &StallBar| {
            t.row(vec![
                name.into(),
                label.into(),
                f3(b.remote_hit),
                f3(b.local_miss),
                f3(b.remote_miss),
                f3(b.combined),
                f3(b.other),
                f3(b.total()),
            ]);
        };
        for r in &self.rows {
            for (i, b) in r.bars.iter().enumerate() {
                push(&r.bench, BAR_LABELS[i], b);
            }
        }
        for (i, b) in self.amean.iter().enumerate() {
            push("AMEAN", BAR_LABELS[i], b);
        }
        t
    }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table().render())?;
        writeln!(
            f,
            "remote-hit share of stall: IBC {:.0}%, IPBC {:.0}%; AB stall reduction: IBC {:.0}%, IPBC {:.0}%",
            100.0 * self.remote_hit_share(0),
            100.0 * self.remote_hit_share(2),
            100.0 * self.ab_reduction(0),
            100.0 * self.ab_reduction(2),
        )
    }
}

/// The Figure 6 grid: IBC and IPBC, each with and without 16-entry 2-way
/// Attraction Buffers. The buffer axis shares schedules through the grid
/// memo — only the simulation differs between the paired bars.
pub fn fig6_grid() -> RunGrid {
    let configs = [
        RunConfig::ibc(),
        RunConfig::ibc().with_buffers(),
        RunConfig::ipbc(),
        RunConfig::ipbc().with_buffers(),
    ];
    let mut grid = RunGrid::new("fig6");
    for (label, cfg) in BAR_LABELS.iter().zip(configs) {
        grid = grid.config(*label, cfg);
    }
    grid
}

/// Runs the Figure 6 experiment (parallel grid).
pub fn fig6(ctx: &ExperimentContext) -> Fig6 {
    fig6_from(&fig6_grid().run(ctx))
}

/// Aggregates Figure 6 from an executed grid.
pub fn fig6_from(result: &GridResult) -> Fig6 {
    let mut rows = Vec::new();
    for (bench, runs) in result.by_bench() {
        let mut bars = [StallBar::default(); 4];
        let mut ibc_total = 0.0;
        for (i, run) in runs.iter().enumerate() {
            let b = run.stall_breakdown();
            let bar = StallBar {
                remote_hit: b.of(AccessClass::RemoteHit),
                local_miss: b.of(AccessClass::LocalMiss),
                remote_miss: b.of(AccessClass::RemoteMiss),
                combined: b.combined,
                other: b.of(AccessClass::LocalHit) + b.mshr_full,
            };
            if i == 0 {
                ibc_total = bar.total();
            }
            bars[i] = bar;
        }
        // normalize all four bars to the IBC total
        if ibc_total > 0.0 {
            for b in &mut bars {
                b.remote_hit /= ibc_total;
                b.local_miss /= ibc_total;
                b.remote_miss /= ibc_total;
                b.combined /= ibc_total;
                b.other /= ibc_total;
            }
        }
        rows.push(Fig6Row {
            bench: bench.to_string(),
            bars,
            ibc_stall: ibc_total,
        });
    }
    let mut mean = [StallBar::default(); 4];
    for (i, m) in mean.iter_mut().enumerate() {
        m.remote_hit = amean(rows.iter().map(|r| r.bars[i].remote_hit));
        m.local_miss = amean(rows.iter().map(|r| r.bars[i].local_miss));
        m.remote_miss = amean(rows.iter().map(|r| r.bars[i].remote_miss));
        m.combined = amean(rows.iter().map(|r| r.bars[i].combined));
        m.other = amean(rows.iter().map(|r| r.bars[i].other));
    }
    Fig6 { rows, amean: mean }
}
