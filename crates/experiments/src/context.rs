//! The experiment pipeline: profile → unroll → schedule → simulate.

use std::sync::Arc;

use vliw_ir::{unroll, LoopKernel, OpId};
use vliw_machine::MachineConfig;
use vliw_mem::build_cache;
use vliw_sched::{
    attraction_hints, schedule_outcome_traced, unroll_candidates, AttractionHints, ClusterPolicy,
    EnumLimits, FallbackPolicy, SchedBackend, SchedQuality, Schedule, ScheduleError,
    ScheduleOptions, UnrollChoice,
};
use vliw_sim::{simulate_loop, LoopSimResult, SimOptions};
use vliw_trace::Trace;
use vliw_workloads::{
    profile_kernel, suite, synthesize, ArrayLayout, BenchmarkModel, ProfileOptions, WorkloadConfig,
};

/// How loops are unrolled in an experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnrollMode {
    /// No unrolling (factor 1).
    NoUnroll,
    /// Always the optimal unrolling factor.
    Ouf,
    /// The paper's selective unrolling: evaluate no-unroll / ×N / OUF and
    /// keep the variant with the lowest `Texec` estimate.
    Selective,
}

/// Which of the three cache organizations a run targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchVariant {
    /// The word-interleaved distributed cache.
    WordInterleaved,
    /// The multiVLIW (coherent per-cluster caches).
    MultiVliw,
    /// The unified cache at the given access latency (1 or 5).
    Unified(u32),
}

/// Where the per-load profiles the scheduler consumes come from — the
/// feedback-directed axis of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfileSource {
    /// No profile information at all: loads carry no hit rates, no
    /// preferred clusters. The ablation measuring what profiling buys.
    None,
    /// The functional-cache profiling pass (`vliw-workloads`): timeless
    /// hit/miss replay of the profile input. The historical default —
    /// selecting it keeps every schedule bit-identical to the
    /// pre-measurement pipeline.
    Synthetic,
    /// Measured profiles (`vliw-profile`): the synthetic pipeline's
    /// schedule is executed in the *timing* simulator on the profile
    /// input, per-load class mixes / home-cluster histograms / latency
    /// distributions are collected, and the scheduler re-runs against the
    /// measurements — the closed feedback loop.
    Measured,
}

/// One experiment configuration: architecture, scheduling policy,
/// unrolling, alignment and Attraction Buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunConfig {
    /// Target cache organization.
    pub arch: ArchVariant,
    /// Cluster-assignment policy (IPBC / IBC / no-chains / BASE).
    pub policy: ClusterPolicy,
    /// Scheduler backend (the paper's heuristic pipeline or the exact
    /// branch-and-bound reference).
    pub backend: SchedBackend,
    /// Where the per-load profiles the scheduler consumes come from.
    pub source: ProfileSource,
    /// Unrolling mode.
    pub unroll: UnrollMode,
    /// Variable alignment (§4.3.4 padding) on or off.
    pub padding: bool,
    /// Attraction Buffers `(entries, associativity)`, word-interleaved only.
    pub attraction_buffers: Option<(usize, usize)>,
    /// Whether the §5.2 compiler hints gate buffer allocation.
    pub use_hints: bool,
}

impl RunConfig {
    /// The paper's headline interleaved configuration: IPBC, selective
    /// unrolling, alignment, no buffers.
    pub fn ipbc() -> Self {
        RunConfig {
            arch: ArchVariant::WordInterleaved,
            policy: ClusterPolicy::PreBuildChains,
            backend: SchedBackend::SwingModulo,
            source: ProfileSource::Synthetic,
            unroll: UnrollMode::Selective,
            padding: true,
            attraction_buffers: None,
            use_hints: false,
        }
    }

    /// IBC, selective unrolling, alignment, no buffers.
    pub fn ibc() -> Self {
        RunConfig {
            policy: ClusterPolicy::BuildChains,
            ..Self::ipbc()
        }
    }

    /// The multiVLIW bar of Figure 8 (scheduled with IBC, as in §5.1).
    pub fn multivliw() -> Self {
        RunConfig {
            arch: ArchVariant::MultiVliw,
            policy: ClusterPolicy::BuildChains,
            ..Self::ipbc()
        }
    }

    /// A unified-cache bar (BASE scheduling) at the given latency.
    pub fn unified(latency: u32) -> Self {
        RunConfig {
            arch: ArchVariant::Unified(latency),
            policy: ClusterPolicy::Free,
            ..Self::ipbc()
        }
    }

    /// Adds 16-entry 2-way Attraction Buffers.
    pub fn with_buffers(mut self) -> Self {
        self.attraction_buffers = Some((16, 2));
        self
    }

    /// The same configuration routed through a different scheduler
    /// backend.
    pub fn with_backend(mut self, backend: SchedBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The same configuration fed from a different profile source.
    pub fn with_source(mut self, source: ProfileSource) -> Self {
        self.source = source;
        self
    }
}

/// Scale knobs for the whole experiment suite.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The word-interleaved machine experiments derive variants from.
    pub machine: MachineConfig,
    /// Workload build configuration (seeds; padding is overridden per run).
    pub workloads: WorkloadConfig,
    /// Simulated iterations per loop.
    pub sim: SimOptions,
    /// Profiled iterations per loop.
    pub profile: ProfileOptions,
    /// Benchmarks to run (subset of the suite for quick modes).
    pub benchmarks: Vec<String>,
    /// Circuit-enumeration caps passed to the scheduler.
    pub enum_limits: EnumLimits,
    /// The `DelayTracking` backend's latency knob (see
    /// [`ScheduleOptions::delay_percentile`]): `None` schedules at the
    /// expectation of each measured latency distribution, `Some(p)` at
    /// the p-th percentile. Part of the schedule-cache key.
    pub delay_percentile: Option<f64>,
    /// Deterministic deadline for the exact backend (see
    /// [`ScheduleOptions::cost_ceiling`]): a hard node-count ceiling
    /// composed by `min` with the resolved budget. Part of the
    /// schedule-cache key.
    pub cost_ceiling: Option<u64>,
    /// What the exact backend does when its deadline runs out (see
    /// [`vliw_sched::FallbackPolicy`]). Part of the schedule-cache key.
    pub fallback: FallbackPolicy,
}

impl ExperimentContext {
    /// The full 14-benchmark context at paper scale.
    pub fn full() -> Self {
        ExperimentContext {
            machine: MachineConfig::word_interleaved_4(),
            workloads: WorkloadConfig::default(),
            sim: SimOptions {
                iteration_cap: 512,
                warmup_iterations: 256,
            },
            profile: ProfileOptions { iteration_cap: 256 },
            benchmarks: suite().iter().map(|s| s.name.to_string()).collect(),
            enum_limits: EnumLimits {
                max_circuits: 4000,
                max_len: 64,
            },
            delay_percentile: None,
            cost_ceiling: None,
            fallback: FallbackPolicy::Heuristic,
        }
    }

    /// A reduced context for tests: four representative benchmarks, short
    /// simulations.
    pub fn quick() -> Self {
        let mut ctx = Self::full();
        ctx.sim.iteration_cap = 96;
        ctx.profile.iteration_cap = 96;
        ctx.benchmarks = ["epicdec", "gsmdec", "jpegenc", "mpeg2dec"]
            .into_iter()
            .map(String::from)
            .collect();
        ctx
    }

    /// The benchmark models of this context.
    pub fn models(&self) -> Vec<BenchmarkModel> {
        suite()
            .iter()
            .filter(|s| self.benchmarks.iter().any(|b| b == s.name))
            .map(|s| synthesize(s, &self.workloads, &self.machine))
            .collect()
    }

    /// Builds the machine variant for a run configuration.
    pub fn machine_for(&self, cfg: &RunConfig) -> MachineConfig {
        match cfg.arch {
            ArchVariant::WordInterleaved => {
                let mut m = self.machine.clone();
                if let Some((entries, assoc)) = cfg.attraction_buffers {
                    m = m.with_attraction_buffers(entries, assoc);
                }
                m
            }
            ArchVariant::MultiVliw => MachineConfig::multi_vliw_4(),
            ArchVariant::Unified(lat) => MachineConfig::unified_4(lat),
        }
    }
}

/// A fully prepared (unrolled + profiled + scheduled) loop.
#[derive(Debug, Clone)]
pub struct PreparedLoop {
    /// The kernel actually scheduled (after unrolling), with profiles.
    pub kernel: LoopKernel,
    /// Its schedule.
    pub schedule: Schedule,
    /// The backend's quality claim for that schedule
    /// ([`SchedQuality::Heuristic`] for the paper pipeline; proven-optimal
    /// or counted-cutoff for the exact backend — never a silent
    /// fallback).
    pub quality: SchedQuality,
    /// Which unrolling variant won.
    pub choice: UnrollChoice,
    /// The unroll factor applied.
    pub factor: u32,
}

/// Profiles `kernel` in place on the *profile* input and returns it.
pub(crate) fn profiled(
    mut kernel: LoopKernel,
    machine: &MachineConfig,
    ctx: &ExperimentContext,
    padding: bool,
) -> LoopKernel {
    let layout = ArrayLayout::new(&kernel, machine, padding, ctx.workloads.profile_input);
    profile_kernel(&mut kernel, machine, &layout, &ctx.profile);
    kernel
}

/// Replaces `kernel`'s synthetic profiles with *measured* ones: runs the
/// synthetic pipeline's schedule through the timing simulator on the
/// profile input (`vliw-profile`) and attaches the derived measurements.
/// The bootstrap schedule uses the configuration's own policy, so the
/// measurements describe the code the policy would actually run.
///
/// # Errors
///
/// Propagates bootstrap scheduling failures (the measurement run needs a
/// schedule; a kernel the policy cannot schedule has no measurement).
fn measured(
    mut kernel: LoopKernel,
    machine: &MachineConfig,
    cfg: &RunConfig,
    ctx: &ExperimentContext,
) -> Result<LoopKernel, ScheduleError> {
    let opts = vliw_profile::MeasureOptions {
        policy: cfg.policy,
        enum_limits: ctx.enum_limits,
        sim: ctx.sim,
    };
    let profile = vliw_profile::measure_kernel_on_input(
        &kernel,
        machine,
        cfg.padding,
        ctx.workloads.profile_input,
        &opts,
    )?;
    vliw_profile::attach_measurements(&mut kernel, &profile)
        .expect("a fresh measurement always matches its kernel");
    Ok(kernel)
}

/// Builds the unroll variants of one original kernel per a
/// configuration's profile source.
///
/// For the `Measured` source, factor 1 is measured **once** (on first
/// use) and kept as a [`StreamProfile`]; the measurements of every
/// unrolled variant are then *derived* by residue-slicing that stream
/// ([`StreamProfile::derive_unrolled`]) instead of paying another
/// bootstrap schedule + timing simulation per variant. A stream the
/// derivation rejects (mis-aligned sample counts) falls back to direct
/// re-measurement of that variant.
pub(crate) struct VariantBuilder<'a> {
    original: LoopKernel,
    stream: Option<vliw_profile::StreamProfile>,
    machine: &'a MachineConfig,
    cfg: &'a RunConfig,
    ctx: &'a ExperimentContext,
}

use vliw_profile::StreamProfile;

impl<'a> VariantBuilder<'a> {
    /// Profiles `original` per the source axis and wraps it for variant
    /// building.
    pub(crate) fn new(
        original: &LoopKernel,
        machine: &'a MachineConfig,
        cfg: &'a RunConfig,
        ctx: &'a ExperimentContext,
    ) -> Self {
        // hit rates steer the OUF analysis: profile the original first
        // (the OUF analysis always runs on synthetic profiles —
        // measurement needs a per-variant schedule, which does not exist
        // yet at this point)
        let original = match cfg.source {
            ProfileSource::None => original.clone(),
            _ => profiled(original.clone(), machine, ctx, cfg.padding),
        };
        VariantBuilder {
            original,
            stream: None,
            machine,
            cfg,
            ctx,
        }
    }

    /// The (synthetically profiled) factor-1 kernel.
    pub(crate) fn original(&self) -> &LoopKernel {
        &self.original
    }

    /// The factor-1 measurement stream, taken on first use.
    fn stream(&mut self) -> Result<&StreamProfile, ScheduleError> {
        if self.stream.is_none() {
            let opts = vliw_profile::MeasureOptions {
                policy: self.cfg.policy,
                enum_limits: self.ctx.enum_limits,
                sim: self.ctx.sim,
            };
            self.stream = Some(vliw_profile::measure_kernel_stream_on_input(
                &self.original,
                self.machine,
                self.cfg.padding,
                self.ctx.workloads.profile_input,
                &opts,
            )?);
        }
        Ok(self.stream.as_ref().expect("stream just taken"))
    }

    /// One unrolled variant's kernel, profiled per the source axis.
    ///
    /// # Errors
    ///
    /// Propagates bootstrap scheduling failures of the measurement run.
    pub(crate) fn build(&mut self, factor: u32) -> Result<LoopKernel, ScheduleError> {
        let (machine, ctx, cfg) = (self.machine, self.ctx, self.cfg);
        match cfg.source {
            ProfileSource::None => Ok(unroll(&self.original, factor)),
            ProfileSource::Synthetic => Ok(profiled(
                unroll(&self.original, factor),
                machine,
                ctx,
                cfg.padding,
            )),
            ProfileSource::Measured => {
                let mut kernel =
                    profiled(unroll(&self.original, factor), machine, ctx, cfg.padding);
                match self.stream()?.derive_unrolled(&kernel, factor, machine) {
                    Ok(lp) => {
                        vliw_profile::attach_measurements(&mut kernel, &lp)
                            .expect("a derived measurement matches the kernel it was derived for");
                        Ok(kernel)
                    }
                    Err(_) => measured(kernel, machine, cfg, ctx),
                }
            }
        }
    }
}

/// The scheduler options a configuration resolves to.
pub(crate) fn schedule_options(cfg: &RunConfig, ctx: &ExperimentContext) -> ScheduleOptions {
    ScheduleOptions {
        enum_limits: ctx.enum_limits,
        backend: cfg.backend,
        delay_percentile: ctx.delay_percentile,
        cost_ceiling: ctx.cost_ceiling,
        fallback: ctx.fallback,
        ..ScheduleOptions::new(cfg.policy)
    }
}

/// Runs unrolling (per `cfg.unroll`), profiling and scheduling for one
/// original kernel.
///
/// # Errors
///
/// Propagates scheduling failures (pathological kernels only).
pub fn prepare_loop(
    original: &LoopKernel,
    machine: &MachineConfig,
    cfg: &RunConfig,
    ctx: &ExperimentContext,
) -> Result<PreparedLoop, ScheduleError> {
    prepare_loop_traced(original, machine, cfg, ctx, Trace::off())
}

/// [`prepare_loop`] with an attached [`Trace`] handle: every candidate
/// unroll variant is scheduled under a `prepare_loop` span, with one
/// `unroll.variant` instant per candidate recording the factor, Texec
/// and whether it became the incumbent.
///
/// # Errors
///
/// Propagates scheduling failures (pathological kernels only).
pub fn prepare_loop_traced(
    original: &LoopKernel,
    machine: &MachineConfig,
    cfg: &RunConfig,
    ctx: &ExperimentContext,
    trace: Trace<'_>,
) -> Result<PreparedLoop, ScheduleError> {
    let _loop_span = if trace.on() {
        Some(trace.span("prepare_loop"))
    } else {
        None
    };
    let opts = schedule_options(cfg, ctx);
    let mut builder = VariantBuilder::new(original, machine, cfg, ctx);
    let ouf = vliw_sched::optimal_unroll_factor(builder.original(), machine);
    let candidates: Vec<(UnrollChoice, u32)> = match cfg.unroll {
        UnrollMode::NoUnroll => vec![(UnrollChoice::None, 1)],
        UnrollMode::Ouf => vec![(UnrollChoice::Ouf, ouf)],
        UnrollMode::Selective => unroll_candidates(builder.original(), machine),
    };
    let mut best: Option<PreparedLoop> = None;
    let mut last_err = None;
    for (choice, factor) in candidates {
        let kernel = match builder.build(factor) {
            Ok(k) => k,
            Err(e) => {
                last_err = Some(e);
                continue;
            }
        };
        // an unschedulable variant is simply not a candidate (giant pinned
        // chains after deep unrolling can defeat the no-backtracking
        // scheduler); factor 1 virtually always schedules
        let (schedule, quality) = match schedule_outcome_traced(&kernel, machine, opts, trace) {
            Ok(o) => (o.schedule, o.quality),
            Err(e) => {
                last_err = Some(e);
                continue;
            }
        };
        let texec = schedule.texec(kernel.avg_trip);
        // Texec ignores stall time, so near-ties are common between the
        // unrolled variants and factor 1. Within 1%, prefer the OUF factor
        // (that is where the locality is), then the smaller factor —
        // unrolling past the OUF buys nothing and multiplies chains.
        let rank = |f: u32| (f == ouf, std::cmp::Reverse(f));
        let better = match &best {
            None => true,
            Some(b) => {
                let bt = b.schedule.texec(b.kernel.avg_trip);
                texec < bt * 0.99 || (texec <= bt * 1.01 && rank(factor) > rank(b.factor))
            }
        };
        if trace.on() {
            trace.instant(
                "unroll.variant",
                &[
                    ("factor", f64::from(factor)),
                    ("ii", f64::from(schedule.ii)),
                    ("texec", texec),
                    ("best", if better { 1.0 } else { 0.0 }),
                ],
            );
        }
        if better {
            best = Some(PreparedLoop {
                kernel,
                schedule,
                quality,
                choice,
                factor,
            });
        }
    }
    match best {
        Some(b) => Ok(b),
        None => {
            // no variant scheduled: retry factor 1 explicitly (covers the
            // Ouf-only mode whose single candidate failed)
            let kernel = builder.build(1).map_err(|e| last_err.take().unwrap_or(e))?;
            let outcome = schedule_outcome_traced(&kernel, machine, opts, trace)
                .map_err(|_| last_err.expect("at least one failure recorded"))?;
            Ok(PreparedLoop {
                kernel,
                schedule: outcome.schedule,
                quality: outcome.quality,
                choice: UnrollChoice::None,
                factor: 1,
            })
        }
    }
}

/// The schedule cache, re-exported under its historical name: every
/// grid/driver that used the single-map `ScheduleMemo` now runs on the
/// sharded, persistable [`SchedCache`](crate::schedcache::SchedCache)
/// with identical results.
pub use crate::schedcache::SchedCache as ScheduleMemo;

/// The outcome of one loop under one configuration.
#[derive(Debug, Clone)]
pub struct LoopRun {
    /// Loop name.
    pub name: String,
    /// Aggregation weight (dynamic operations).
    pub weight: f64,
    /// The prepared loop (kernel + schedule), possibly shared with other
    /// runs through a [`ScheduleMemo`].
    pub prepared: Arc<PreparedLoop>,
    /// Simulation result (cycles, stalls, access mix).
    pub sim: LoopSimResult,
}

/// The outcome of a whole benchmark under one configuration.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Benchmark name.
    pub name: String,
    /// Per-loop outcomes.
    pub loops: Vec<LoopRun>,
}

impl BenchRun {
    /// Total scaled cycles (compute + stall).
    pub fn total_cycles(&self) -> f64 {
        self.loops.iter().map(|l| l.sim.total_cycles()).sum()
    }

    /// Total scaled compute cycles.
    pub fn compute_cycles(&self) -> f64 {
        self.loops.iter().map(|l| l.sim.compute_cycles).sum()
    }

    /// Total scaled stall cycles.
    pub fn stall_cycles(&self) -> f64 {
        self.loops.iter().map(|l| l.sim.stall_cycles).sum()
    }

    /// Scaled access-class counts `[LH, RH, LM, RM, combined]`.
    pub fn access_mix(&self) -> [f64; 5] {
        use vliw_machine::AccessClass as C;
        let mut out = [0.0; 5];
        for l in &self.loops {
            let s = &l.sim.mem;
            let w = l.sim.scale;
            out[0] += s.count(C::LocalHit) as f64 * w;
            out[1] += s.count(C::RemoteHit) as f64 * w;
            out[2] += s.count(C::LocalMiss) as f64 * w;
            out[3] += s.count(C::RemoteMiss) as f64 * w;
            out[4] += s.combined() as f64 * w;
        }
        out
    }

    /// Scaled MSHR activity summed over loops: `[fills, merged waiters,
    /// full-stall cycles]`.
    pub fn mshr_mix(&self) -> [f64; 3] {
        let mut out = [0.0; 3];
        for l in &self.loops {
            let m = l.sim.mshr();
            let w = l.sim.scale;
            out[0] += m.fills as f64 * w;
            out[1] += m.merged_waiters as f64 * w;
            out[2] += m.full_stall_cycles as f64 * w;
        }
        out
    }

    /// Highest per-cluster MSHR occupancy any loop observed.
    pub fn mshr_peak_occupancy(&self) -> u64 {
        self.loops
            .iter()
            .map(|l| l.sim.mshr().peak_occupancy)
            .max()
            .unwrap_or(0)
    }

    /// Scaled stall breakdown summed over loops.
    pub fn stall_breakdown(&self) -> vliw_sim::StallBreakdown {
        let mut out = vliw_sim::StallBreakdown::default();
        for l in &self.loops {
            out.merge(&l.sim.stall_by);
        }
        out
    }

    /// Per-quality loop counts `[heuristic, proven optimal, cutoff,
    /// degraded]` — how many of this run's schedules carry which backend
    /// claim. The cutoff and degraded columns are how exact-backend
    /// budget exhaustion surfaces in aggregated reports (never a silent
    /// fallback).
    pub fn quality_counts(&self) -> [usize; 4] {
        let mut out = [0usize; 4];
        for l in &self.loops {
            match l.prepared.quality {
                SchedQuality::Heuristic => out[0] += 1,
                SchedQuality::ProvenOptimal => out[1] += 1,
                SchedQuality::CutoffFeasible => out[2] += 1,
                SchedQuality::DegradedFallback => out[3] += 1,
            }
        }
        out
    }

    /// Weighted workload balance over loops.
    pub fn workload_balance(&self, n_clusters: usize) -> f64 {
        vliw_sched::weighted_workload_balance(
            self.loops
                .iter()
                .map(|l| (l.weight, l.prepared.schedule.workload_balance(n_clusters))),
        )
    }
}

/// Runs one benchmark model under one configuration: prepares every loop
/// and simulates it on the *execution* input.
pub fn run_benchmark(model: &BenchmarkModel, cfg: &RunConfig, ctx: &ExperimentContext) -> BenchRun {
    run_benchmark_memo(model, cfg, ctx, None)
}

/// [`run_benchmark`] with an optional shared [`ScheduleMemo`], so grids
/// sweeping buffer/hint axes schedule each loop once per distinct
/// preparation key. Results are identical with or without the memo.
pub fn run_benchmark_memo(
    model: &BenchmarkModel,
    cfg: &RunConfig,
    ctx: &ExperimentContext,
    memo: Option<&ScheduleMemo>,
) -> BenchRun {
    let machine = ctx.machine_for(cfg);
    let mut loops = Vec::new();
    for lw in &model.loops {
        let prepared = match memo {
            Some(m) => m.prepare(&lw.kernel, &machine, cfg, ctx),
            None => prepare_loop(&lw.kernel, &machine, cfg, ctx).map(Arc::new),
        };
        let prepared = match prepared {
            Ok(p) => p,
            Err(e) => {
                // pathological loop: report and skip rather than abort the
                // whole benchmark
                eprintln!("warning: skipping {}: {e}", lw.kernel.name);
                continue;
            }
        };
        let hints = if cfg.use_hints {
            attraction_hints(&prepared.kernel, &prepared.schedule, &machine)
        } else {
            AttractionHints::allow_all(&prepared.kernel)
        };
        let layout = ArrayLayout::new(
            &prepared.kernel,
            &machine,
            cfg.padding,
            ctx.workloads.exec_input,
        );
        let mut cache = build_cache(&machine);
        let kernel_for_addr = prepared.kernel.clone();
        let mut addresses = move |op: OpId, iter: u64| {
            vliw_workloads::address_for(&kernel_for_addr, &layout, op, iter)
        };
        let sim = simulate_loop(
            &prepared.kernel,
            &prepared.schedule,
            &machine,
            cache.as_mut(),
            &mut addresses,
            &hints,
            &ctx.sim,
        );
        loops.push(LoopRun {
            name: prepared.kernel.name.clone(),
            weight: prepared.kernel.dynamic_ops(),
            prepared,
            sim,
        });
    }
    BenchRun {
        name: model.name.clone(),
        loops,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test assertions may unwrap
mod tests {
    use super::*;

    #[test]
    fn quick_context_prepares_and_runs_a_benchmark() {
        let ctx = ExperimentContext::quick();
        let models = ctx.models();
        assert_eq!(models.len(), 4);
        let gsm = models.iter().find(|m| m.name == "gsmdec").unwrap();
        let run = run_benchmark(gsm, &RunConfig::ipbc(), &ctx);
        assert_eq!(run.loops.len(), gsm.loops.len(), "no loop skipped");
        assert!(run.total_cycles() > 0.0);
        let mix = run.access_mix();
        assert!(mix.iter().sum::<f64>() > 0.0);
        // every schedule is legal
        let m = ctx.machine_for(&RunConfig::ipbc());
        for l in &run.loops {
            assert!(l
                .prepared
                .schedule
                .verify(&l.prepared.kernel, &m)
                .is_empty());
        }
    }

    #[test]
    fn backends_never_share_a_memo_slot() {
        // same loop, same cell, two backends: the memo must keep two
        // entries and serve zero cross-backend hits
        let mut ctx = ExperimentContext::quick();
        ctx.profile.iteration_cap = 32;
        let models = ctx.models();
        let gsm = models.iter().find(|m| m.name == "gsmdec").unwrap();
        let kernel = &gsm.loops[0].kernel;
        let swing = RunConfig {
            unroll: UnrollMode::NoUnroll,
            ..RunConfig::ipbc()
        };
        let bnb = swing.with_backend(SchedBackend::ExactBnB);
        let machine = ctx.machine_for(&swing);
        let memo = ScheduleMemo::new();
        let a = memo.prepare(kernel, &machine, &swing, &ctx).unwrap();
        let b = memo.prepare(kernel, &machine, &bnb, &ctx).unwrap();
        assert_eq!(memo.len(), 2, "one slot per backend");
        assert_eq!(memo.hits(), 0, "no cross-backend sharing");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(a.quality, SchedQuality::Heuristic);
        assert_ne!(b.quality, SchedQuality::Heuristic);
        // the exact backend never reports a worse II
        assert!(b.schedule.ii <= a.schedule.ii);
        // a repeat on either key is a hit on its own slot
        let a2 = memo.prepare(kernel, &machine, &swing, &ctx).unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        assert_eq!(memo.hits(), 1);
    }

    #[test]
    fn unroll_modes_differ() {
        let ctx = ExperimentContext::quick();
        let models = ctx.models();
        let gsm = models.iter().find(|m| m.name == "gsmdec").unwrap();
        let machine = ctx.machine.clone();
        let base = RunConfig::ipbc();
        let no = RunConfig {
            unroll: UnrollMode::NoUnroll,
            ..base
        };
        let ouf = RunConfig {
            unroll: UnrollMode::Ouf,
            ..base
        };
        let k = &gsm.loops[0].kernel;
        let p_no = prepare_loop(k, &machine, &no, &ctx).unwrap();
        let p_ouf = prepare_loop(k, &machine, &ouf, &ctx).unwrap();
        assert_eq!(p_no.factor, 1);
        assert!(p_ouf.factor >= 1);
        assert_eq!(p_ouf.kernel.ops.len(), k.ops.len() * p_ouf.factor as usize);
    }
}
