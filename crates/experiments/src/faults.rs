//! The deterministic fault-injection harness: every failure-containment
//! mechanism of the scheduling service, exercised on purpose and
//! audited by count.
//!
//! A seeded [`FaultPlan`] derives, from one `u64`, every fault the run
//! injects into the batch workload of [`crate::batch`]:
//!
//! * **preparation panics** — a [`PrepareFn`] shim that panics the
//!   first time each victim kernel is prepared per cache generation
//!   (the cache contains the panic, marks the slot failed, and the
//!   request's bounded retry heals it);
//! * **store corruption** — digit flips inside the checksummed region
//!   of chosen records (each must drop as `dropped_corrupt`), a
//!   truncation inside the final record (`dropped_truncated`), and a
//!   version tamper on a separate copy (`version_rejected`);
//! * **an interrupted export** — [`ScheduleStore::save_interrupted`]
//!   killing a rewrite before the atomic rename (the committed store
//!   must survive byte-intact);
//! * **budget starvation** — exact-search requests under a zero cost
//!   ceiling and a [`FallbackPolicy::RetryReducedBudget`] ladder, which
//!   must degrade to the heuristic incumbent as *counted*
//!   [`SchedQuality::DegradedFallback`] answers that round-trip through
//!   the version-2 store.
//!
//! Four drains of the same request queue run under these faults (cold
//! serial, cold parallel, warm memory, warm from the *salvaged* store);
//! their order-sensitive digest folds must agree bit-for-bit — injected
//! faults may cost retries and hit rate, never answers. The
//! [`FaultReport`] closes the loop: [`FaultReport::accounted`] is true
//! only when every injected fault shows up in exactly one recovery
//! counter and nothing leaked (no worker-level panic, no unrecovered
//! slot, no failed request).
//!
//! Everything is deterministic: same seed, same context, same faults,
//! same counters. `repro [quick|full] faults` prints the lane table,
//! writes `results/faults.csv` and records the counters into the
//! `faults` section of `BENCH_repro.json`.

use std::collections::{BTreeSet, HashSet};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use vliw_ir::LoopKernel;
use vliw_sched::{FallbackPolicy, SchedBackend, SchedQuality};
use vliw_trace::Trace;
use vliw_workloads::rng::StdRng;

use crate::batch::{build_requests, drain, drain_serial, fold, BatchRequest, Drain};
use crate::context::{prepare_loop, ExperimentContext, RunConfig, UnrollMode};
use crate::report::Table;
use crate::schedcache::{PrepareFn, SalvageReport, SchedCache, ScheduleStore};

/// Knobs of the fault run.
#[derive(Debug, Clone, Copy)]
pub struct FaultOptions {
    /// Seed every injected fault derives from.
    pub seed: u64,
    /// Minimum request count of the batch queue.
    pub target_requests: usize,
    /// Worker threads of the parallel drains.
    pub workers: usize,
    /// Shard count of the caches.
    pub shards: usize,
    /// Kernels whose first preparation panics, per cache generation.
    pub panic_victims: usize,
    /// Store records corrupted by a digit flip.
    pub bit_flips: usize,
    /// Exact-search requests run under the starvation ceiling.
    pub starved_requests: usize,
}

impl FaultOptions {
    /// Paper-scale defaults.
    pub fn full() -> Self {
        FaultOptions {
            seed: 0xFA17_F00D,
            target_requests: 2_000,
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            shards: 16,
            panic_victims: 6,
            bit_flips: 8,
            starved_requests: 8,
        }
    }

    /// CI-scale defaults.
    pub fn quick() -> Self {
        FaultOptions {
            seed: 0xFA17_F00D,
            target_requests: 192,
            workers: std::thread::available_parallelism()
                .map_or(4, |n| n.get())
                .min(8),
            shards: 8,
            panic_victims: 3,
            bit_flips: 4,
            starved_requests: 4,
        }
    }
}

/// The seeded plan: which kernels panic, which store records are
/// flipped, where the truncation cuts. Pure data — deriving it twice
/// from the same seed and queue yields the same plan.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Kernel names whose first preparation panics per cache generation.
    pub victims: Vec<String>,
    /// Indices (in store-text record order) of the records to flip a
    /// digit in.
    pub flip_records: Vec<usize>,
}

impl FaultPlan {
    /// Derives the plan from the seed, the request queue, and the
    /// healthy store's record count.
    pub fn derive(
        seed: u64,
        requests: &[BatchRequest],
        n_records: usize,
        opts: &FaultOptions,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // distinct kernel names in queue order, then a seeded draw
        // without replacement
        let names: Vec<String> = {
            let mut seen = BTreeSet::new();
            requests
                .iter()
                .filter(|r| seen.insert(r.kernel.name.clone()))
                .map(|r| r.kernel.name.clone())
                .collect()
        };
        let victims = draw(&mut rng, names.len(), opts.panic_victims)
            .into_iter()
            .map(|i| names[i].clone())
            .collect();
        // flips hit distinct records, never the last one (the truncation
        // lane owns it) so corrupt and truncated counters stay disjoint
        let flippable = n_records.saturating_sub(1);
        let mut flip_records = draw(&mut rng, flippable, opts.bit_flips);
        flip_records.sort_unstable();
        FaultPlan {
            victims,
            flip_records,
        }
    }
}

/// `k` distinct indices drawn from `0..n` (all of them if `k >= n`).
fn draw(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    let k = k.min(n);
    for i in 0..k {
        let j = rng.random_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

/// A preparer that panics the first time each victim kernel is prepared
/// through the cache holding it, then behaves normally — the transient
/// fault the containment machinery is built for. One shim = one cache
/// generation; each generation fires each victim at most once.
fn panic_shim(victims: Arc<HashSet<String>>) -> Arc<PrepareFn> {
    let fired: Mutex<HashSet<String>> = Mutex::new(HashSet::new());
    Arc::new(move |kernel, machine, cfg, ctx| {
        let fresh = victims.contains(&kernel.name)
            && fired
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(kernel.name.clone());
        if fresh {
            panic!(
                "fault plan: injected preparation panic on `{}`",
                kernel.name
            );
        }
        prepare_loop(kernel, machine, cfg, ctx)
    })
}

/// Byte offset just past each line of `text` (the trailing newline
/// included).
fn line_ends(text: &str) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut off = 0;
    for l in text.lines() {
        off += l.len() + 1;
        ends.push(off.min(text.len()));
    }
    ends
}

/// Applies the corruption lanes to a healthy version-2 store text:
/// one digit flipped inside the schedule block of each planned record,
/// and a cut inside the final record's `endentry` line. Returns the
/// damaged text and the number of records actually flipped.
fn corrupt_store_text(healthy: &str, plan: &FaultPlan) -> (String, usize) {
    const REC_LINES: usize = 7; // entry + 4 sched + check + endentry
    let ends = line_ends(healthy);
    let n_records = (ends.len() - 2) / REC_LINES;
    let mut bytes = healthy.as_bytes().to_vec();
    let mut flipped = 0;
    for &r in &plan.flip_records {
        if r >= n_records {
            continue;
        }
        // first digit of the record's schedule block (line 1 of the
        // record, right after the header): inside the checksummed
        // region, so the flip must surface as `dropped_corrupt`
        let lo = ends[2 + r * REC_LINES];
        let hi = ends[2 + r * REC_LINES + 4];
        if let Some(i) = (lo..hi).find(|&i| bytes[i].is_ascii_digit()) {
            bytes[i] = if bytes[i] == b'9' { b'8' } else { bytes[i] + 1 };
            flipped += 1;
        }
    }
    // cut mid-way through the last record's closing line
    let cut = ends[ends.len() - 1].saturating_sub(4);
    bytes.truncate(cut);
    let text = String::from_utf8(bytes).expect("digit flips and truncation preserve utf8");
    (text, flipped)
}

/// The whole fault run, audited by count.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Requests per drain.
    pub requests: usize,
    /// Victim kernels of the panic lane.
    pub victims: usize,
    /// Panics the plan injected (victims × cache generations that
    /// actually prepare them).
    pub injected_panics: u64,
    /// Panics the caches contained at the slot boundary.
    pub panics_contained: u64,
    /// Failed slots adopted and refilled by later requests.
    pub slots_recovered: u64,
    /// Bounded re-attempts after a contained panic.
    pub panic_retries: u64,
    /// Panics that reached the worker-loop boundary (must be 0: the
    /// cache contains everything the plan injects).
    pub worker_panics: u64,
    /// Slots still failed after every drain (must be 0).
    pub unrecovered_slots: u64,
    /// Requests whose answer was an error, maximized over drains (must
    /// be 0: every injected fault heals).
    pub failures: u64,
    /// Whether all four drain digest folds agree.
    pub deterministic: bool,
    /// Records the plan flipped a digit in.
    pub injected_flips: usize,
    /// Records the truncation cut (always 1: the final record).
    pub injected_truncations: usize,
    /// What the salvage loader recovered and dropped.
    pub salvage: SalvageReport,
    /// Whether the version-tampered copy was rejected wholesale.
    pub version_tamper_rejected: bool,
    /// Whether the committed store survived an interrupted re-export
    /// byte-intact.
    pub atomic_export_ok: bool,
    /// Exact-search requests run under the starvation ceiling.
    pub starved_requests: usize,
    /// Starved requests that degraded to a counted
    /// [`SchedQuality::DegradedFallback`] answer (must equal
    /// `starved_requests`).
    pub degraded: usize,
    /// Whether the degraded quality claim survives a store round-trip.
    pub quality_roundtrip_ok: bool,
    /// Wall time of the whole run.
    pub seconds: f64,
}

impl FaultReport {
    /// The audit: every injected fault appears in exactly one recovery
    /// counter, and nothing leaked past the containment layers.
    pub fn accounted(&self) -> bool {
        self.panics_contained == self.injected_panics
            && self.worker_panics == 0
            && self.unrecovered_slots == 0
            && self.failures == 0
            && self.salvage.dropped_corrupt == self.injected_flips
            && self.salvage.dropped_truncated == self.injected_truncations
            && !self.salvage.version_rejected
            && self.version_tamper_rejected
            && self.atomic_export_ok
            && self.degraded == self.starved_requests
            && self.quality_roundtrip_ok
    }

    /// The `faults` metrics of `BENCH_repro.json`.
    pub fn metrics(&self) -> Vec<(String, f64)> {
        let b = |x: bool| if x { 1.0 } else { 0.0 };
        vec![
            ("requests".into(), self.requests as f64),
            ("victims".into(), self.victims as f64),
            ("injected_panics".into(), self.injected_panics as f64),
            ("panics_contained".into(), self.panics_contained as f64),
            ("slots_recovered".into(), self.slots_recovered as f64),
            ("panic_retries".into(), self.panic_retries as f64),
            ("worker_panics".into(), self.worker_panics as f64),
            ("unrecovered_slots".into(), self.unrecovered_slots as f64),
            ("failures".into(), self.failures as f64),
            ("deterministic".into(), b(self.deterministic)),
            ("injected_flips".into(), self.injected_flips as f64),
            (
                "dropped_corrupt".into(),
                self.salvage.dropped_corrupt as f64,
            ),
            (
                "injected_truncations".into(),
                self.injected_truncations as f64,
            ),
            (
                "dropped_truncated".into(),
                self.salvage.dropped_truncated as f64,
            ),
            ("salvaged_records".into(), self.salvage.recovered as f64),
            (
                "version_tamper_rejected".into(),
                b(self.version_tamper_rejected),
            ),
            ("atomic_export_ok".into(), b(self.atomic_export_ok)),
            ("starved_requests".into(), self.starved_requests as f64),
            ("degraded".into(), self.degraded as f64),
            ("quality_roundtrip_ok".into(), b(self.quality_roundtrip_ok)),
            ("accounted".into(), b(self.accounted())),
            ("seconds".into(), self.seconds),
        ]
    }

    /// The per-lane audit table (`results/faults.csv`).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Fault injection audit ({} requests, {} drains)",
                self.requests, 4
            ),
            &["lane", "injected", "observed", "counter"],
        );
        let b = |x: bool| if x { "1" } else { "0" }.to_string();
        t.row(vec![
            "preparation panic".into(),
            self.injected_panics.to_string(),
            self.panics_contained.to_string(),
            "panics_contained".into(),
        ]);
        t.row(vec![
            "slot recovery".into(),
            self.injected_panics.to_string(),
            self.slots_recovered.to_string(),
            "slots_recovered".into(),
        ]);
        t.row(vec![
            "digit flip".into(),
            self.injected_flips.to_string(),
            self.salvage.dropped_corrupt.to_string(),
            "dropped_corrupt".into(),
        ]);
        t.row(vec![
            "truncation".into(),
            self.injected_truncations.to_string(),
            self.salvage.dropped_truncated.to_string(),
            "dropped_truncated".into(),
        ]);
        t.row(vec![
            "version tamper".into(),
            "1".into(),
            b(self.version_tamper_rejected),
            "version_rejected".into(),
        ]);
        t.row(vec![
            "interrupted export".into(),
            "1".into(),
            b(self.atomic_export_ok),
            "atomic rename".into(),
        ]);
        t.row(vec![
            "budget starvation".into(),
            self.starved_requests.to_string(),
            self.degraded.to_string(),
            "degraded fallback".into(),
        ]);
        t
    }
}

impl std::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.table().render())?;
        writeln!(
            f,
            "faults: {} requests x 4 drains in {:.2}s; {} failures, {} worker panics, \
             {} unrecovered slots; salvage {}/{} records; determinism {}; audit {}",
            self.requests,
            self.seconds,
            self.failures,
            self.worker_panics,
            self.unrecovered_slots,
            self.salvage.recovered,
            self.salvage.recovered + self.salvage.dropped(),
            if self.deterministic { "ok" } else { "BROKEN" },
            if self.accounted() {
                "every fault accounted"
            } else {
                "LEAK"
            }
        )
    }
}

/// Runs the fault plan against the batch workload. See the module docs
/// for the lanes; determinism and the audit are the acceptance gates.
pub fn run_faults(ctx: &ExperimentContext, opts: &FaultOptions) -> FaultReport {
    let t0 = Instant::now();
    let (requests, _variants) = build_requests(ctx, opts.target_requests);
    let n = requests.len();

    // a probe generation with no faults yields the healthy store the
    // corruption lanes need, and the record count the plan draws from
    let probe = SchedCache::with_shards(opts.shards);
    let probe_drain = drain(&probe, &requests, ctx, opts.workers, Trace::off());
    let healthy_store = probe.export_store();
    let healthy = healthy_store.to_text();

    let plan = FaultPlan::derive(opts.seed, &requests, healthy_store.len(), opts);
    let victims: Arc<HashSet<String>> = Arc::new(plan.victims.iter().cloned().collect());

    // drains 1-3: cold serial, cold parallel, warm memory — each cold
    // cache is one shim generation (each victim panics once per cache)
    let serial_cache =
        SchedCache::with_shards(opts.shards).into_preparer(panic_shim(Arc::clone(&victims)));
    let serial = drain_serial(&serial_cache, &requests, ctx, Trace::off());
    let cache =
        SchedCache::with_shards(opts.shards).into_preparer(panic_shim(Arc::clone(&victims)));
    let cold = drain(&cache, &requests, ctx, opts.workers, Trace::off());
    let warm = drain(&cache, &requests, ctx, opts.workers, Trace::off());

    // interrupted-export lane: commit the healthy store, kill a rewrite
    // before the rename, verify the committed bytes survived
    let path = std::env::temp_dir().join(format!("vliw-faults-{}.store", std::process::id()));
    let atomic_export_ok = healthy_store.save(&path).is_ok()
        && healthy_store
            .save_interrupted(&path, healthy.len() / 2)
            .is_err()
        && std::fs::read_to_string(&path)
            .map(|t| t == healthy)
            .unwrap_or(false);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(path.with_file_name(format!(
        "{}.tmp.{}",
        path.file_name().unwrap_or_default().to_string_lossy(),
        std::process::id()
    )))
    .ok();

    // corruption lanes: flips + truncation on one copy, version tamper
    // on another; salvage the first, reject the second
    let (damaged, injected_flips) = corrupt_store_text(&healthy, &plan);
    let (salvaged, salvage) = ScheduleStore::from_text_salvage(&damaged);
    let version_tamper_rejected = {
        let tampered = healthy.replacen("vliw-sched-store 2", "vliw-sched-store 99", 1);
        let (s, rep) = ScheduleStore::from_text_salvage(&tampered);
        s.is_empty() && rep.version_rejected
    };

    // drain 4: a fresh cache over the *salvaged* store, under a fresh
    // shim generation — dropped records re-prepare cold, and a victim
    // among them panics once more on the way
    let expected_disk_panics = plan
        .victims
        .iter()
        .filter(|v| {
            healthy_store
                .entries()
                .any(|e| &e.name == *v && salvaged.get(&e.key).is_none())
        })
        .count() as u64;
    let disk_cache = SchedCache::with_shards(opts.shards)
        .into_preparer(panic_shim(Arc::clone(&victims)))
        .into_stored(salvaged);
    let disk = drain(&disk_cache, &requests, ctx, opts.workers, Trace::off());

    // starvation lane: exact search under a zero cost ceiling and a
    // retry ladder — every request must degrade, visibly
    let mut starved_ctx = ctx.clone();
    starved_ctx.cost_ceiling = Some(0);
    starved_ctx.fallback = FallbackPolicy::RetryReducedBudget {
        factor: 2,
        max_retries: 2,
    };
    let bnb_cfg = RunConfig {
        unroll: UnrollMode::NoUnroll,
        ..RunConfig::ipbc()
    }
    .with_backend(SchedBackend::ExactBnB);
    let machine = starved_ctx.machine_for(&bnb_cfg);
    let starved_kernels: Vec<&LoopKernel> = {
        let mut seen = BTreeSet::new();
        requests
            .iter()
            .filter(|r| seen.insert(r.kernel.name.clone()))
            .map(|r| &r.kernel)
            .take(opts.starved_requests)
            .collect()
    };
    let starved_cache = SchedCache::with_shards(opts.shards);
    let degraded = starved_kernels
        .iter()
        .filter(|k| {
            starved_cache
                .prepare(k, &machine, &bnb_cfg, &starved_ctx)
                .map(|p| p.quality == SchedQuality::DegradedFallback)
                .unwrap_or(false)
        })
        .count();
    let quality_roundtrip_ok = {
        let s = starved_cache.export_store();
        ScheduleStore::from_text(&s.to_text())
            .map(|r| {
                r.len() == starved_kernels.len()
                    && r.entries()
                        .all(|e| e.quality == SchedQuality::DegradedFallback)
            })
            .unwrap_or(false)
    };

    let caches = [&serial_cache, &cache, &disk_cache];
    let drains: [&Drain; 4] = [&serial, &cold, &warm, &disk];
    let fps = [
        fold(&probe_drain.digests),
        fold(&serial.digests),
        fold(&cold.digests),
        fold(&warm.digests),
        fold(&disk.digests),
    ];
    FaultReport {
        requests: n,
        victims: plan.victims.len(),
        // serial and cold generations prepare every victim; the disk
        // generation only re-prepares victims whose records the salvage
        // dropped
        injected_panics: 2 * plan.victims.len() as u64 + expected_disk_panics,
        panics_contained: caches.iter().map(|c| c.panics_contained()).sum(),
        slots_recovered: caches.iter().map(|c| c.slots_recovered()).sum(),
        panic_retries: drains.iter().map(|d| d.panic_retries).sum(),
        worker_panics: drains.iter().map(|d| d.worker_panics).sum(),
        unrecovered_slots: caches.iter().map(|c| c.failed_slots() as u64).sum(),
        failures: drains.iter().map(|d| d.failures).max().unwrap_or(0),
        deterministic: fps.iter().all(|&f| f == fps[0]),
        injected_flips,
        injected_truncations: 1,
        salvage,
        version_tamper_rejected,
        atomic_export_ok,
        starved_requests: starved_kernels.len(),
        degraded,
        quality_roundtrip_ok,
        seconds: t0.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_disjoint() {
        let opts = FaultOptions::quick();
        let mut ctx = ExperimentContext::quick();
        ctx.benchmarks = vec!["gsmdec".into()];
        ctx.sim.iteration_cap = 32;
        ctx.profile.iteration_cap = 32;
        let (requests, _) = build_requests(&ctx, 32);
        let a = FaultPlan::derive(opts.seed, &requests, 40, &opts);
        let b = FaultPlan::derive(opts.seed, &requests, 40, &opts);
        assert_eq!(a.victims, b.victims);
        assert_eq!(a.flip_records, b.flip_records);
        assert_eq!(a.victims.len(), opts.panic_victims);
        assert_eq!(a.flip_records.len(), opts.bit_flips);
        // flips never touch the last record (the truncation lane's)
        assert!(a.flip_records.iter().all(|&r| r < 39));
        let distinct: BTreeSet<_> = a.flip_records.iter().collect();
        assert_eq!(distinct.len(), a.flip_records.len());
        let c = FaultPlan::derive(opts.seed + 1, &requests, 40, &opts);
        assert!(c.victims != a.victims || c.flip_records != a.flip_records);
    }

    #[test]
    fn draw_without_replacement() {
        let mut rng = StdRng::seed_from_u64(7);
        let picks = draw(&mut rng, 10, 10);
        let set: BTreeSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(draw(&mut rng, 3, 100).len() == 3);
        assert!(draw(&mut rng, 0, 5).is_empty());
    }
}
