//! The §4.3.3 worked example, reproduced end to end.

use std::fmt;

use vliw_ir::Ddg;
use vliw_machine::AccessClass;
use vliw_sched::examples_443::{figure3_kernel, figure3_machine};
use vliw_sched::{
    assign_latencies, elementary_circuits, schedule_kernel, ClusterPolicy, EnumLimits,
    ScheduleOptions,
};

use crate::report::Table;

/// Everything the §4.3.3 narrative reports, recomputed.
#[derive(Debug, Clone)]
pub struct Example433 {
    /// The benefit-table rows actually evaluated, per applied step:
    /// `(step, op name, to-class, ∇II, ∆stall, B, applied)`.
    pub steps: Vec<(usize, String, AccessClass, u32, f64, f64, bool)>,
    /// Final latencies of (n1, n2, n6).
    pub final_latencies: (u32, u32, u32),
    /// The loop MII.
    pub mii: u32,
    /// IPBC cluster of the n1-n2-n4 chain and of n6.
    pub ipbc_clusters: (usize, usize),
    /// Achieved II under IPBC.
    pub ipbc_ii: u32,
}

impl Example433 {
    /// Renders the benefit table in the paper's layout.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "§4.3.3 benefit table (latency reduction steps for Figure 3)",
            &["step", "load", "change to", "dII", "dStall", "B", "applied"],
        );
        for (step, op, class, dii, dstall, b, applied) in &self.steps {
            t.row(vec![
                step.to_string(),
                op.clone(),
                class.to_string(),
                dii.to_string(),
                format!("{dstall:.2}"),
                if b.is_infinite() {
                    "inf".into()
                } else {
                    format!("{b:.2}")
                },
                if *applied { "<-".into() } else { String::new() },
            ]);
        }
        t
    }
}

impl fmt::Display for Example433 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table().render())?;
        writeln!(f, "loop MII = {} (paper: 8)", self.mii)?;
        writeln!(
            f,
            "final latencies: n1 = {} (paper: 4), n2 = {} (paper: 1 local hit), n6 = {} (paper: 1)",
            self.final_latencies.0, self.final_latencies.1, self.final_latencies.2
        )?;
        writeln!(
            f,
            "IPBC: chain n1-n2-n4 in cluster {} (paper: its average preferred cluster), n6 in cluster {}; II = {}",
            self.ipbc_clusters.0, self.ipbc_clusters.1, self.ipbc_ii
        )
    }
}

/// Recomputes the worked example.
pub fn example433() -> Example433 {
    let (kernel, ops) = figure3_kernel();
    let machine = figure3_machine();
    let ddg = Ddg::build(&kernel);
    let circuits = elementary_circuits(&ddg, EnumLimits::default());
    let asg = assign_latencies(&kernel, &ddg, &machine, &circuits);

    let mut steps = Vec::new();
    for (i, s) in asg.steps.iter().enumerate() {
        for (ci, c) in s.candidates.iter().enumerate() {
            steps.push((
                i + 1,
                kernel.op(c.op).name.clone(),
                c.to_class,
                c.delta_ii,
                c.delta_stall,
                c.benefit,
                ci == s.chosen,
            ));
        }
    }

    let schedule = schedule_kernel(
        &kernel,
        &machine,
        ScheduleOptions::new(ClusterPolicy::PreBuildChains),
    )
    .expect("figure 3 schedules");
    Example433 {
        steps,
        final_latencies: (
            asg.latency_of(ops.n1),
            asg.latency_of(ops.n2),
            asg.latency_of(ops.n6),
        ),
        mii: asg.target_mii,
        ipbc_clusters: (schedule.op(ops.n1).cluster, schedule.op(ops.n6).cluster),
        ipbc_ii: schedule.ii,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test assertions may unwrap
mod tests {
    use super::*;

    #[test]
    fn narrative_numbers() {
        let e = example433();
        assert_eq!(e.mii, 8);
        assert_eq!(e.final_latencies, (4, 1, 1));
        assert_eq!(e.ipbc_ii, 8);
        assert_eq!(e.ipbc_clusters, (0, 1));
        // the first applied change is n2 -> local miss with B = 20
        let first_applied = e.steps.iter().find(|s| s.6).unwrap();
        assert_eq!(first_applied.1, "n2");
        assert_eq!(first_applied.2, AccessClass::LocalMiss);
        assert!((first_applied.5 - 20.0).abs() < 1e-2);
    }
}
