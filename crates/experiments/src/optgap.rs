//! The optimality-gap study: how far from optimal are the paper's
//! heuristics?
//!
//! For every factor-1 loop of the context's suite and every §4 cluster
//! policy, this driver schedules the loop twice under the *same*
//! front-end (pins, latency assignment, MII, SMS order): once with the
//! heuristic [`SwingModulo`](vliw_sched::SwingModulo) pipeline and once
//! with the exact [`ExactBnB`](vliw_sched::ExactBnB) branch-and-bound
//! reference. Because the exact search is seeded with the heuristic
//! incumbent and only explores strictly smaller IIs, its result is never
//! worse — the ratio `heuristic II / exact II` is a per-loop optimality
//! gap, and a [`SchedQuality::ProvenOptimal`] outcome turns "the
//! heuristic looks good" into "the heuristic is provably ≤ x from
//! optimal on this loop".
//!
//! Cutoffs (the exact search's node budget running out before the
//! smaller IIs are decided) are counted per policy and reported in their
//! own column — a cell that cut off contributes no ratio and no proof,
//! visibly.
//!
//! The table also carries a second backend: per policy, the
//! [`DelayTracking`](vliw_sched::DelayTracking) pipeliner scheduling the
//! *measured* factor-1 kernels (profiles collected by `vliw-profile`),
//! compared against the same exact reference on the same kernels. Because
//! delay-tracking schedules loads at measured expected latencies —
//! usually far below the class model's worst case — its recurrence MII
//! can undercut the class-latency optimum: a ratio *below 1* in a delay
//! row is the measured latency model buying II the class model provably
//! cannot reach.
//!
//! `repro [quick|full] optgap` prints the table, writes
//! `results/optgap.csv` and records the per-policy ratios and
//! proven-optimal fractions into the `optgap` section of
//! `BENCH_repro.json`.

use std::fmt;

use vliw_ir::LoopKernel;
use vliw_sched::{
    schedule_kernel, schedule_outcome, ClusterPolicy, SchedBackend, SchedQuality, ScheduleOptions,
};
use vliw_workloads::{profile_kernel, ArrayLayout};

use crate::context::ExperimentContext;
use crate::report::{f3, Table};

/// One policy's aggregate over the factor-1 suite kernels.
#[derive(Debug, Clone)]
pub struct OptGapRow {
    /// Policy name (`IPBC`, `IBC`, `BASE`, `no-chains`).
    pub policy: &'static str,
    /// The backend in the ratio's numerator (`swing` on synthetic
    /// profiles, `delay` on measured profiles).
    pub backend: &'static str,
    /// Kernels the heuristic scheduled (the cell population).
    pub kernels: usize,
    /// Cells where the exact backend proved the optimal II.
    pub proven: usize,
    /// Cells where the node budget cut the proof off (feasible schedule,
    /// no optimality claim).
    pub cutoff: usize,
    /// Cells where the exact search beat the heuristic II outright.
    pub better: usize,
    /// Cells (among `proven`) where the heuristic already achieved the
    /// optimal II.
    pub matched: usize,
    /// Arithmetic mean of `heuristic II / optimal II` over proven cells
    /// (`NaN` when nothing was proven).
    pub mean_ratio: f64,
    /// Total II levels at which the exact search hit its budget.
    pub cutoff_iis: u64,
    /// Arithmetic mean of the exact backend's reported MaxLive
    /// ([`ScheduleOutcome::max_live`](vliw_sched::ScheduleOutcome)) over
    /// every cell with an exact schedule — for proven cells this is the
    /// tie-break minimum at the optimal II (`NaN` when no cell produced
    /// an exact schedule).
    pub mean_max_live: f64,
}

impl OptGapRow {
    /// Fraction of cells with a proven-optimal II.
    pub fn proven_fraction(&self) -> f64 {
        if self.kernels == 0 {
            f64::NAN
        } else {
            self.proven as f64 / self.kernels as f64
        }
    }
}

/// The whole study: one row per policy over a shared kernel population.
#[derive(Debug, Clone)]
pub struct OptGapResult {
    /// Per-policy aggregates, in the paper's policy order.
    pub rows: Vec<OptGapRow>,
    /// Factor-1 kernels in the population.
    pub n_kernels: usize,
    /// The node budget the exact backend ran under.
    pub node_budget: u64,
}

impl OptGapResult {
    /// Fraction of all `(kernel, policy)` cells proven optimal — the
    /// headline number the acceptance bar tracks.
    pub fn proven_fraction(&self) -> f64 {
        let cells: usize = self.rows.iter().map(|r| r.kernels).sum();
        let proven: usize = self.rows.iter().map(|r| r.proven).sum();
        if cells == 0 {
            f64::NAN
        } else {
            proven as f64 / cells as f64
        }
    }

    /// The study as a rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Optimality gap vs exact B&B ({} factor-1 kernels, budget {})",
                self.n_kernels, self.node_budget
            ),
            &[
                "policy", "backend", "kernels", "proven", "proven%", "matched", "better", "cutoff",
                "II ratio", "max_live",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.policy.to_string(),
                r.backend.to_string(),
                r.kernels.to_string(),
                r.proven.to_string(),
                f3(r.proven_fraction()),
                r.matched.to_string(),
                r.better.to_string(),
                r.cutoff.to_string(),
                f3(r.mean_ratio),
                f3(r.mean_max_live),
            ]);
        }
        t
    }
}

impl fmt::Display for OptGapResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.table().render())
    }
}

/// The factor-1 study population: every loop of the context's
/// benchmarks, profiled on the profile input (the same front-door the
/// scheduling pipeline uses).
pub fn factor1_kernels(ctx: &ExperimentContext) -> Vec<LoopKernel> {
    let mut out = Vec::new();
    for model in ctx.models() {
        for lw in &model.loops {
            let mut k = lw.kernel.clone();
            let layout = ArrayLayout::new(&k, &ctx.machine, true, ctx.workloads.profile_input);
            profile_kernel(&mut k, &ctx.machine, &layout, &ctx.profile);
            out.push(k);
        }
    }
    out
}

/// One `(policy, numerator backend)` aggregate over `kernels`.
fn policy_row(
    policy: ClusterPolicy,
    numerator: SchedBackend,
    kernels: &[LoopKernel],
    ctx: &ExperimentContext,
) -> OptGapRow {
    let machine = &ctx.machine;
    let heuristic_opts = ScheduleOptions {
        enum_limits: ctx.enum_limits,
        ..ScheduleOptions::new(policy)
    }
    .with_backend(numerator);
    let exact_opts = heuristic_opts.with_backend(SchedBackend::ExactBnB);
    let mut row = OptGapRow {
        policy: policy.assigner().name(),
        backend: numerator.name(),
        kernels: 0,
        proven: 0,
        cutoff: 0,
        better: 0,
        matched: 0,
        mean_ratio: f64::NAN,
        cutoff_iis: 0,
        mean_max_live: f64::NAN,
    };
    let mut ratio_sum = 0.0;
    let mut live_sum = 0.0;
    let mut live_cells = 0usize;
    for kernel in kernels {
        // the heuristic II is the numerator; a (pathological) heuristic
        // failure leaves no cell to compare
        let Ok(heuristic) = schedule_kernel(kernel, machine, heuristic_opts) else {
            continue;
        };
        row.kernels += 1;
        match schedule_outcome(kernel, machine, exact_opts) {
            Ok(o) => {
                row.cutoff_iis += o.stats.cutoffs;
                if let Some(live) = o.max_live {
                    live_sum += live as f64;
                    live_cells += 1;
                }
                if o.schedule.ii < heuristic.ii {
                    row.better += 1;
                }
                match o.quality {
                    SchedQuality::ProvenOptimal => {
                        row.proven += 1;
                        if heuristic.ii == o.schedule.ii {
                            row.matched += 1;
                        }
                        ratio_sum += heuristic.ii as f64 / o.schedule.ii as f64;
                    }
                    // the optgap study runs the default (Heuristic)
                    // fallback policy, under which exhaustion surfaces
                    // as a cutoff; a degraded result is the same
                    // exhaustion seen through `RetryReducedBudget`, so
                    // it lands in the same column
                    SchedQuality::CutoffFeasible | SchedQuality::DegradedFallback => {
                        row.cutoff += 1
                    }
                    SchedQuality::Heuristic => {
                        unreachable!("exact backend cannot claim Heuristic")
                    }
                }
            }
            // a cutoff with no schedule at all still counts — the
            // exact column must never silently shrink the population
            Err(_) => row.cutoff += 1,
        }
    }
    if row.proven > 0 {
        row.mean_ratio = ratio_sum / row.proven as f64;
    }
    if live_cells > 0 {
        row.mean_max_live = live_sum / live_cells as f64;
    }
    row
}

/// Runs the study over the context's suite: per policy, the swing
/// pipeline on synthetic profiles and the delay-tracking pipeline on
/// measured profiles, each against the exact reference on its own kernel
/// population.
pub fn optgap(ctx: &ExperimentContext) -> OptGapResult {
    let kernels = factor1_kernels(ctx);
    let measured = crate::profile_fidelity::measured_factor1_kernels(ctx);
    let mut rows = Vec::new();
    for policy in ClusterPolicy::ALL {
        rows.push(policy_row(policy, SchedBackend::SwingModulo, &kernels, ctx));
    }
    for policy in ClusterPolicy::ALL {
        rows.push(policy_row(
            policy,
            SchedBackend::DelayTracking,
            &measured,
            ctx,
        ));
    }
    OptGapResult {
        rows,
        n_kernels: kernels.len(),
        node_budget: ScheduleOptions::new(ClusterPolicy::Free).node_budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optgap_runs_on_a_reduced_context() {
        let mut ctx = ExperimentContext::quick();
        ctx.benchmarks = vec!["gsmdec".into()];
        ctx.profile.iteration_cap = 32;
        ctx.sim.iteration_cap = 32;
        ctx.sim.warmup_iterations = 32;
        let g = optgap(&ctx);
        assert_eq!(g.rows.len(), 8, "one row per policy per backend");
        assert!(g.n_kernels > 0);
        for r in &g.rows {
            assert_eq!(r.kernels, g.n_kernels, "factor-1 always schedules");
            assert_eq!(r.proven + r.cutoff, r.kernels, "every cell is decided");
            if r.backend == "swing" && r.proven > 0 {
                // the exact search never returns a worse II than the
                // incumbent it was seeded with, so swing rows sit at ≥ 1;
                // delay rows may legitimately drop below 1 (the measured
                // latency model can beat the class-latency optimum)
                assert!(r.mean_ratio >= 1.0, "{}: {}", r.policy, r.mean_ratio);
            }
            // every decided cell carries the exact backend's MaxLive, so
            // the column is populated (at least one value alive per row)
            assert!(
                r.mean_max_live >= 1.0,
                "{}/{}: max_live column empty",
                r.policy,
                r.backend
            );
        }
        assert!(g.rows[..4].iter().all(|r| r.backend == "swing"));
        assert!(g.rows[4..].iter().all(|r| r.backend == "delay"));
        // the table renders with one line per row plus headers
        let rendered = g.table().render();
        assert_eq!(rendered.lines().count(), 3 + 8);
    }
}
