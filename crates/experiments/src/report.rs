//! Text-table and CSV rendering shared by the figure drivers.

use std::fmt::Write as _;

use crate::batch::BatchReport;
use crate::grid::GridResult;

/// A simple column-aligned text table with a title, built row by row —
/// the figures print in this form (one row per benchmark plus AMEAN).
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (first cell is usually the benchmark name).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders as CSV (comma-separated, title as a comment line).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Formats a fraction with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a count/cycles value compactly.
pub fn fcycles(x: f64) -> String {
    if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}K", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

/// Renders the in-flight request tracking summary of a grid run: per
/// configuration, the scaled fill count, merged-waiter count, merge rate,
/// cycles lost to a full MSHR file and the peak per-cluster occupancy.
pub fn mshr_table(result: &GridResult) -> Table {
    let mut t = Table::new(
        "In-flight request tracking (MSHR) summary",
        &[
            "config",
            "fills",
            "merged",
            "merge rate",
            "full-stall",
            "peak occ",
        ],
    );
    let mix = result.mshr_by_config();
    for (c, (label, _)) in result.configs().iter().enumerate() {
        let [fills, merged, full_stall] = mix[c];
        let rate = if fills + merged > 0.0 {
            merged / (fills + merged)
        } else {
            0.0
        };
        t.row(vec![
            label.clone(),
            fcycles(fills),
            fcycles(merged),
            f3(rate),
            fcycles(full_stall),
            result.mshr_peak_by_config(c).to_string(),
        ]);
    }
    t
}

/// Renders the schedule-quality summary of a grid run: per configuration,
/// how many loop schedules are heuristic, proven optimal, limited by an
/// exact-search cutoff, or degraded to the heuristic by an exhausted
/// budget ladder. The cutoff and degraded columns are the report-level
/// surface of `SchedStats::cutoffs` / `SchedStats::fallback_retries` —
/// budget exhaustion is always visible, never a silent fallback to the
/// heuristic result.
pub fn backend_quality_table(result: &GridResult) -> Table {
    let mut t = Table::new(
        "Scheduler-backend quality summary",
        &[
            "config",
            "loops",
            "heuristic",
            "proven",
            "cutoff",
            "degraded",
        ],
    );
    let quality = result.quality_by_config();
    for (c, (label, _)) in result.configs().iter().enumerate() {
        let [heuristic, proven, cutoff, degraded] = quality[c];
        t.row(vec![
            label.clone(),
            (heuristic + proven + cutoff + degraded).to_string(),
            heuristic.to_string(),
            proven.to_string(),
            cutoff.to_string(),
            degraded.to_string(),
        ]);
    }
    t
}

/// Renders the schedule-cache health summary of a batch run: one row per
/// shard with the full counter set — including `inflight_waits` (threads
/// that blocked on another's in-flight fill of the same cell) and
/// `evictions` (completed cells dropped under a capacity cap) — then one
/// `failed` row per slot still marked failed, carrying the contained
/// panic's reason in the `note` column. Clean runs have no `failed` rows.
pub fn shard_health_table(report: &BatchReport) -> Table {
    let mut t = Table::new(
        "Schedule-cache shard health (cold parallel pass)",
        &[
            "shard",
            "entries",
            "hits",
            "prepares",
            "inflight_waits",
            "map_contended",
            "evictions",
            "panics",
            "recovered",
            "note",
        ],
    );
    for (i, s) in report.cold_shards.iter().enumerate() {
        t.row(vec![
            i.to_string(),
            s.entries.to_string(),
            s.hits.to_string(),
            s.prepares.to_string(),
            s.inflight_waits.to_string(),
            s.map_contended.to_string(),
            s.evictions.to_string(),
            s.panics_contained.to_string(),
            s.slots_recovered.to_string(),
            String::new(),
        ]);
    }
    for reason in &report.failed_slot_reasons {
        let mut row = vec!["failed".to_string()];
        row.extend((0..8).map(|_| "-".to_string()));
        row.push(reason.clone());
        t.row(row);
    }
    t
}

/// Arithmetic mean of an iterator (NaN on empty).
pub fn amean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test assertions may unwrap
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["bench", "value"]);
        t.row(vec!["gsmdec".into(), "0.5".into()]);
        t.row(vec!["x".into(), "12.125".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("gsmdec"));
        let lines: Vec<&str> = s.lines().collect();
        // all data lines have equal length (alignment)
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(1).unwrap() == "a,b");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn amean_basics() {
        assert!((amean([1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!(amean([]).is_nan());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(fcycles(1_500_000.0), "1.50M");
        assert_eq!(fcycles(2_500.0), "2.5K");
        assert_eq!(fcycles(42.0), "42");
    }
}
