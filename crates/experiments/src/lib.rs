//! Experiment drivers regenerating every table and figure of the paper.
//!
//! Each module reproduces one artifact of the evaluation section:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`tables`] | Table 1 (benchmarks) and Table 2 (configuration) |
//! | [`example433`] | the §4.3.3 benefit table and final latencies |
//! | [`fig4`] | Figure 4 — memory-access classification (IPBC) |
//! | [`fig5`] | Figure 5 — stall-factor classification (IBC vs IPBC) |
//! | [`fig6`] | Figure 6 — stall time ± Attraction Buffers |
//! | [`fig7`] | Figure 7 — workload balance |
//! | [`fig8`] | Figure 8 — cycle counts across architectures |
//! | [`hints_exp`] | §5.2 — attractable hints on the epicdec overflow loop |
//! | [`chains_exp`] | §5.4 — chain-breaking study |
//! | [`interleave_study`] | §5.1 — 2-byte vs 4-byte interleaving for gsm |
//! | [`optgap`] | heuristic II vs the exact branch-and-bound pipeliner |
//!
//! All drivers run the same pipeline ([`context`]): synthesize the
//! benchmark models, profile each loop on the *profile* input, unroll
//! (per-configuration mode), schedule, then simulate on the *execution*
//! input. [`ExperimentContext::full`] is the paper-scale run;
//! [`ExperimentContext::quick`] is a four-benchmark smoke configuration
//! used by tests.
//!
//! # Example
//!
//! ```no_run
//! use vliw_experiments::{fig8, ExperimentContext};
//!
//! let ctx = ExperimentContext::full();
//! let result = fig8::fig8(&ctx);
//! println!("{result}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod batch;
pub mod chains_exp;
pub mod context;
pub mod example433;
pub mod faults;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod grid;
pub mod hints_exp;
pub mod interleave_study;
pub mod optgap;
pub mod profile_fidelity;
pub mod report;
pub mod schedcache;
pub mod smt;
pub mod tables;
pub mod trace_exp;

pub use batch::{run_batch, BatchOptions, BatchReport, BatchRequest};
pub use context::{
    prepare_loop, prepare_loop_traced, run_benchmark, run_benchmark_memo, ArchVariant, BenchRun,
    ExperimentContext, LoopRun, PreparedLoop, ProfileSource, RunConfig, ScheduleMemo, UnrollMode,
};
pub use faults::{run_faults, FaultOptions, FaultPlan, FaultReport};
pub use grid::{GridAxes, GridResult, Parallelism, RunGrid};
pub use optgap::{OptGapResult, OptGapRow};
pub use profile_fidelity::{CollectedSuite, ProfileFidelityResult};
pub use report::{backend_quality_table, mshr_table, shard_health_table, Table};
pub use schedcache::{
    CacheKey, PrepareFn, SalvageReport, SchedCache, ScheduleStore, ShardCounters, StoreEntry,
};
pub use smt::{export_suite, SmtExport};
pub use trace_exp::{run_trace, TraceRun};
