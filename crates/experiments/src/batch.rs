//! The batch scheduling service: drain a large kernel×config request
//! queue through the sharded schedule cache ([`crate::schedcache`]) with
//! work-stealing workers, and prove the answers identical cold, warm and
//! reloaded-from-disk.
//!
//! The workload replicates the suite: every factor-1 loop of the context
//! is cloned into perturbed variants (fresh name → fresh array placement
//! and fingerprint; jittered trip count), and each variant is requested
//! under every §4 cluster policy × unroll mode — the shape of a
//! compiler-server clientele, thousands of near-duplicate jobs with a
//! long cost tail.
//!
//! Four passes over the *same* request list:
//!
//! 1. **cold serial** — fresh cache, one thread, request order: the
//!    reference answers and the throughput floor;
//! 2. **cold parallel** — fresh cache, work-stealing drain: requests are
//!    sorted most-expensive-first (backend
//!    [`cost_rank`](vliw_sched::SchedBackend::cost_rank),
//!    then dynamic size) and dealt round-robin to per-worker deques;
//!    idle workers steal the *back half* of a victim's deque, so the
//!    expensive head jobs spread out and the cheap tail amortizes;
//! 3. **warm memory** — the pass-2 cache drained again: every request is
//!    an in-memory hit (hit rate exactly 1.0);
//! 4. **warm disk** — the cache is exported to a [`ScheduleStore`],
//!    reloaded through its text form, and a *fresh* cache backed by it
//!    drains the queue: no candidate scheduling, only rebuild+verify.
//!
//! Every pass folds its per-request schedule digests (in request order)
//! into one fingerprint; all four must be bit-identical. Per-shard
//! hit/contention counters from the cold parallel pass expose how the
//! lock striping behaved under real load.

use std::collections::VecDeque;
use std::hash::Hasher as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use vliw_ir::{kernel_fingerprint, LoopKernel, StableHasher};
use vliw_sched::{ClusterPolicy, ScheduleError};
use vliw_trace::Trace;

use crate::context::{ExperimentContext, RunConfig, UnrollMode};
use crate::schedcache::{SchedCache, ScheduleStore, ShardCounters};

/// How many times one request re-attempts a preparation whose previous
/// attempt panicked (the cache contains the panic and marks the slot
/// failed; the retry adopts and refills it). Transient faults — the
/// fault harness's once-per-generation panic shims, or a real bug tied
/// to lost in-memory state — heal within one retry; a deterministic
/// panic exhausts the retries and fails the request, never the worker.
pub const PANIC_RETRIES: u32 = 3;

/// One job: schedule `kernel` under `cfg`.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The (possibly perturbed) original kernel.
    pub kernel: LoopKernel,
    /// The configuration to prepare it under.
    pub cfg: RunConfig,
}

/// Knobs of the batch run.
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Minimum request count; the suite is replicated into perturbed
    /// variants until the queue is at least this long.
    pub target_requests: usize,
    /// Worker threads of the parallel passes.
    pub workers: usize,
    /// Shard count of the caches.
    pub shards: usize,
    /// Completed-entry cap per cache shard
    /// ([`SchedCache::into_capped`]); `None` (both presets) keeps every
    /// cache unbounded.
    pub per_shard_cap: Option<usize>,
}

impl BatchOptions {
    /// Paper-scale defaults: 10k+ requests, one worker per core.
    pub fn full() -> Self {
        BatchOptions {
            target_requests: 10_000,
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            shards: 16,
            per_shard_cap: None,
        }
    }

    /// CI-scale defaults: a few hundred requests, bounded workers.
    pub fn quick() -> Self {
        BatchOptions {
            target_requests: 256,
            workers: std::thread::available_parallelism()
                .map_or(4, |n| n.get())
                .min(8),
            shards: 16,
            per_shard_cap: None,
        }
    }
}

/// One timed drain of the queue.
#[derive(Debug, Clone)]
pub struct PassReport {
    /// Wall time of the drain.
    pub seconds: f64,
    /// Requests per second.
    pub per_sec: f64,
    /// The order-sensitive fold of all request digests.
    pub fingerprint: u64,
    /// Deque steals performed (0 for the serial pass).
    pub steals: u64,
}

/// The whole batch study.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Requests drained per pass.
    pub requests: usize,
    /// Distinct cache keys the queue resolves to (under a capacity cap:
    /// the keys still resident after the cold parallel pass).
    pub unique_keys: usize,
    /// Perturbed variants per suite loop.
    pub variants: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Cache shards used.
    pub shards: usize,
    /// Pass 1: cold, one thread, request order.
    pub cold_serial: PassReport,
    /// Pass 2: cold, work-stealing drain.
    pub cold_parallel: PassReport,
    /// Pass 3: pass-2 cache drained again (all in-memory hits).
    pub warm_mem: PassReport,
    /// Pass 4: fresh cache fed by the round-tripped store.
    pub warm_disk: PassReport,
    /// In-memory hit rate of the warm-memory pass (must be 1.0).
    pub warm_hit_rate: f64,
    /// Fraction of warm-disk requests served by store rebuilds.
    pub store_hit_rate: f64,
    /// Store entries rejected as stale in the warm-disk pass.
    pub store_stale: u64,
    /// Entries in the exported store.
    pub store_entries: usize,
    /// Whether the store's text form survived serialize → parse intact.
    pub store_roundtrip_ok: bool,
    /// Whether all four pass fingerprints agree.
    pub deterministic: bool,
    /// Requests whose preparation failed (hashed into the fingerprint;
    /// 0 on the shipped suite).
    pub failures: u64,
    /// Completed-entry cap per shard the caches ran under (`None` =
    /// unbounded).
    pub per_shard_cap: Option<usize>,
    /// LRU evictions in the cold parallel pass (always 0 unbounded).
    pub evictions: u64,
    /// Preparation panics contained at the cache's slot boundary, summed
    /// over every pass's cache (0 without injected faults).
    pub panics_contained: u64,
    /// Failed slots recovered (reset + re-attempted) by later requests,
    /// summed over every pass's cache.
    pub slots_recovered: u64,
    /// Re-attempts the drivers made after a
    /// [`ScheduleError::PreparationPanicked`] answer (bounded by
    /// [`PANIC_RETRIES`] per request).
    pub panic_retries: u64,
    /// Panics that escaped the cache's containment and were caught at
    /// the worker-loop boundary instead (the belt-and-braces layer; 0 in
    /// every shipped configuration). Whatever this counts, no worker
    /// thread dies.
    pub worker_panics: u64,
    /// Slots still marked failed after all passes drained — the "zero
    /// unrecovered slots" acceptance gate (retries re-adopt every failed
    /// slot, so this must be 0).
    pub unrecovered_slots: u64,
    /// Per-shard counters captured after the cold parallel pass.
    pub cold_shards: Vec<ShardCounters>,
    /// Steals performed by each worker in the cold parallel pass.
    pub worker_steals: Vec<u64>,
    /// Peak own-deque depth each worker saw in the cold parallel pass.
    pub worker_peak_depth: Vec<u64>,
    /// Panic reasons of slots still marked failed after all passes
    /// (the diagnostic payload behind `unrecovered_slots`; empty on
    /// clean runs).
    pub failed_slot_reasons: Vec<String>,
}

impl BatchReport {
    /// Warm-memory throughput over cold parallel throughput — the
    /// headline "what does the cache buy a batch server" ratio.
    pub fn warm_over_cold(&self) -> f64 {
        self.warm_mem.per_sec / self.cold_parallel.per_sec
    }

    /// The per-shard counter CSV (`results/batch_shards.csv`).
    ///
    /// The trailing `worker_steals`/`worker_peak_depth` columns are a
    /// parallel table: row `i` carries worker `i`'s cold-parallel-pass
    /// stats (shards and workers are independent dimensions; rows past
    /// the worker count read 0).
    pub fn shard_csv(&self) -> String {
        let mut out = String::from(
            "shard,entries,hits,store_hits,prepares,stale,inflight_waits,map_contended,evictions,\
             panics_contained,slots_recovered,worker_steals,worker_peak_depth\n",
        );
        for (i, s) in self.cold_shards.iter().enumerate() {
            out.push_str(&format!(
                "{i},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                s.entries,
                s.hits,
                s.store_hits,
                s.prepares,
                s.stale,
                s.inflight_waits,
                s.map_contended,
                s.evictions,
                s.panics_contained,
                s.slots_recovered,
                self.worker_steals.get(i).copied().unwrap_or(0),
                self.worker_peak_depth.get(i).copied().unwrap_or(0),
            ));
        }
        out
    }

    /// The `batch` metrics of `BENCH_repro.json`.
    pub fn metrics(&self) -> Vec<(String, f64)> {
        let b = |x: bool| if x { 1.0 } else { 0.0 };
        vec![
            ("requests".into(), self.requests as f64),
            ("unique_keys".into(), self.unique_keys as f64),
            ("variants".into(), self.variants as f64),
            ("workers".into(), self.workers as f64),
            ("shards".into(), self.shards as f64),
            ("cold_serial_seconds".into(), self.cold_serial.seconds),
            ("cold_serial_per_sec".into(), self.cold_serial.per_sec),
            ("cold_seconds".into(), self.cold_parallel.seconds),
            ("cold_schedules_per_sec".into(), self.cold_parallel.per_sec),
            ("cold_steals".into(), self.cold_parallel.steals as f64),
            ("warm_seconds".into(), self.warm_mem.seconds),
            ("warm_schedules_per_sec".into(), self.warm_mem.per_sec),
            ("warm_hit_rate".into(), self.warm_hit_rate),
            ("warm_over_cold".into(), self.warm_over_cold()),
            ("disk_seconds".into(), self.warm_disk.seconds),
            ("disk_schedules_per_sec".into(), self.warm_disk.per_sec),
            ("store_hit_rate".into(), self.store_hit_rate),
            ("store_stale".into(), self.store_stale as f64),
            ("store_entries".into(), self.store_entries as f64),
            ("store_roundtrip_ok".into(), b(self.store_roundtrip_ok)),
            ("deterministic".into(), b(self.deterministic)),
            ("failures".into(), self.failures as f64),
            ("panics_contained".into(), self.panics_contained as f64),
            ("slots_recovered".into(), self.slots_recovered as f64),
            ("panic_retries".into(), self.panic_retries as f64),
            ("worker_panics".into(), self.worker_panics as f64),
            ("unrecovered_slots".into(), self.unrecovered_slots as f64),
            (
                "inflight_waits".into(),
                self.cold_shards
                    .iter()
                    .map(|s| s.inflight_waits)
                    .sum::<u64>() as f64,
            ),
            (
                "map_contended".into(),
                self.cold_shards
                    .iter()
                    .map(|s| s.map_contended)
                    .sum::<u64>() as f64,
            ),
            ("evictions".into(), self.evictions as f64),
        ]
    }
}

impl std::fmt::Display for BatchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "batch: {} requests ({} unique keys, {} variants/loop), \
             {} workers x {} shards",
            self.requests, self.unique_keys, self.variants, self.workers, self.shards
        )?;
        writeln!(
            f,
            "  cold serial   {:>9.1} req/s ({:.3}s)",
            self.cold_serial.per_sec, self.cold_serial.seconds
        )?;
        writeln!(
            f,
            "  cold parallel {:>9.1} req/s ({:.3}s, {} steals)",
            self.cold_parallel.per_sec, self.cold_parallel.seconds, self.cold_parallel.steals
        )?;
        writeln!(
            f,
            "  warm memory   {:>9.1} req/s ({:.3}s, hit rate {:.3}, {:.1}x cold)",
            self.warm_mem.per_sec,
            self.warm_mem.seconds,
            self.warm_hit_rate,
            self.warm_over_cold()
        )?;
        writeln!(
            f,
            "  warm disk     {:>9.1} req/s ({:.3}s, store hit rate {:.3}, {} stale)",
            self.warm_disk.per_sec, self.warm_disk.seconds, self.store_hit_rate, self.store_stale
        )?;
        writeln!(
            f,
            "  store: {} entries, round-trip {}; determinism {}; {} failures; {} evictions{}",
            self.store_entries,
            if self.store_roundtrip_ok {
                "exact"
            } else {
                "BROKEN"
            },
            if self.deterministic { "ok" } else { "BROKEN" },
            self.failures,
            self.evictions,
            match self.per_shard_cap {
                Some(cap) => format!(" (cap {cap}/shard)"),
                None => String::new(),
            }
        )?;
        if self.panics_contained + self.slots_recovered + self.worker_panics > 0 {
            writeln!(
                f,
                "  faults: {} panics contained, {} slots recovered, {} retries, \
                 {} worker-level catches, {} unrecovered",
                self.panics_contained,
                self.slots_recovered,
                self.panic_retries,
                self.worker_panics,
                self.unrecovered_slots
            )?;
        }
        Ok(())
    }
}

/// Builds the request queue: every suite loop × perturbed variant ×
/// (policy × unroll) configuration, at least `target` requests long.
pub fn build_requests(ctx: &ExperimentContext, target: usize) -> (Vec<BatchRequest>, usize) {
    let configs: Vec<RunConfig> = ClusterPolicy::ALL
        .iter()
        .flat_map(|&policy| {
            [UnrollMode::NoUnroll, UnrollMode::Selective].map(|unroll| RunConfig {
                policy,
                unroll,
                ..RunConfig::ipbc()
            })
        })
        .collect();
    let loops: Vec<LoopKernel> = ctx
        .models()
        .into_iter()
        .flat_map(|m| m.loops.into_iter().map(|l| l.kernel))
        .collect();
    let per_variant = loops.len() * configs.len();
    let variants = target.div_ceil(per_variant.max(1)).max(1);
    let mut requests = Vec::with_capacity(per_variant * variants);
    for v in 0..variants {
        for kernel in &loops {
            let kernel = perturb(kernel, v);
            for cfg in &configs {
                requests.push(BatchRequest {
                    kernel: kernel.clone(),
                    cfg: *cfg,
                });
            }
        }
    }
    (requests, variants)
}

/// Variant `v` of a suite kernel: `v == 0` is the kernel itself; later
/// variants get a fresh name (fresh array placement, fresh fingerprint)
/// and a jittered trip count — distinct cache keys doing comparable work,
/// like near-duplicate loops across a program population.
fn perturb(kernel: &LoopKernel, v: usize) -> LoopKernel {
    if v == 0 {
        return kernel.clone();
    }
    let mut k = kernel.clone();
    k.name = format!("{}_v{v}", kernel.name);
    k.avg_trip = (kernel.avg_trip * (1.0 + 0.03 * ((v % 7) as f64))).max(8.0);
    k
}

/// The deterministic digest of one answered request.
fn digest(
    result: &Result<std::sync::Arc<crate::context::PreparedLoop>, vliw_sched::ScheduleError>,
) -> u64 {
    let mut h = StableHasher::new();
    match result {
        Ok(p) => {
            h.write_str(&p.schedule.to_compact_text());
            h.write_u64(kernel_fingerprint(&p.kernel));
        }
        Err(e) => h.write_str(&format!("err {e}")),
    }
    h.finish()
}

/// Most-expensive-first drain order: backend cost rank, then dynamic
/// size. Ties keep queue order, so the order is deterministic.
fn cost_order(requests: &[BatchRequest]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by_key(|&i| {
        let r = &requests[i];
        let size = (r.kernel.ops.len() as u64) * (r.kernel.avg_trip as u64).max(1);
        (
            std::cmp::Reverse(r.cfg.backend.cost_rank()),
            std::cmp::Reverse(size),
            i,
        )
    });
    order
}

pub(crate) struct Drain {
    pub(crate) digests: Vec<u64>,
    pub(crate) seconds: f64,
    pub(crate) steals: u64,
    pub(crate) failures: u64,
    pub(crate) panic_retries: u64,
    pub(crate) worker_panics: u64,
    /// Steals performed by each worker (empty for the serial drain).
    pub(crate) worker_steals: Vec<u64>,
    /// Peak depth each worker's own deque reached during the drain
    /// (empty for the serial drain).
    pub(crate) worker_peak_depth: Vec<u64>,
}

/// Answers one request: prepare through the cache, re-attempting after a
/// contained panic (bounded by [`PANIC_RETRIES`]), the whole body under
/// its own `catch_unwind` so even a panic escaping the cache's
/// containment fails this request rather than the worker thread.
/// Returns `(digest, failed, panic_retries, worker_panic)`.
fn answer(
    cache: &SchedCache,
    req: &BatchRequest,
    ctx: &ExperimentContext,
    trace: Trace<'_>,
) -> (u64, bool, u64, bool) {
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let machine = ctx.machine_for(&req.cfg);
        let mut retries = 0u64;
        let mut result = cache.prepare_traced(&req.kernel, &machine, &req.cfg, ctx, trace);
        while matches!(&result, Err(ScheduleError::PreparationPanicked { .. }))
            && retries < u64::from(PANIC_RETRIES)
        {
            retries += 1;
            result = cache.prepare_traced(&req.kernel, &machine, &req.cfg, ctx, trace);
        }
        (digest(&result), result.is_err(), retries)
    }));
    match attempt {
        Ok((d, failed, retries)) => (d, failed, retries, false),
        Err(_) => {
            // the belt-and-braces layer: whatever unwound to here, the
            // worker survives and the request is the only casualty
            let mut h = StableHasher::new();
            h.write_str("err worker-level panic");
            (h.finish(), true, 0, true)
        }
    }
}

/// One work-stealing drain of the whole queue through `cache`.
///
/// With an attached trace, worker `w` records on track `w + 1` (track 0
/// stays the main pipeline): each pop samples the worker's own deque
/// depth as a `batch.queue_depth` counter, and each steal emits a
/// `batch.steal` instant naming the victim and the number of jobs moved.
pub(crate) fn drain(
    cache: &SchedCache,
    requests: &[BatchRequest],
    ctx: &ExperimentContext,
    workers: usize,
    trace: Trace<'_>,
) -> Drain {
    let workers = workers.max(1).min(requests.len().max(1));
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, idx) in cost_order(requests).into_iter().enumerate() {
        deques[i % workers]
            .lock()
            .expect("deque lock")
            .push_back(idx);
    }
    let slots: Vec<OnceLock<u64>> = (0..requests.len()).map(|_| OnceLock::new()).collect();
    let steals = AtomicU64::new(0);
    let failures = AtomicU64::new(0);
    let panic_retries = AtomicU64::new(0);
    let worker_panics = AtomicU64::new(0);
    let per_worker_steals: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let per_worker_peak: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let steals = &steals;
            let failures = &failures;
            let panic_retries = &panic_retries;
            let worker_panics = &worker_panics;
            let per_worker_steals = &per_worker_steals;
            let per_worker_peak = &per_worker_peak;
            let wtrace = trace.with_track(w as u32 + 1);
            s.spawn(move || loop {
                let (job, depth) = {
                    let mut own = deques[w].lock().expect("deque lock");
                    let depth = own.len() as u64;
                    (own.pop_front(), depth)
                };
                per_worker_peak[w].fetch_max(depth, Ordering::Relaxed);
                if wtrace.on() {
                    wtrace.counter("batch.queue_depth", depth as f64);
                }
                let job = match job {
                    Some(j) => Some(j),
                    None => {
                        // steal the back half of the first non-empty victim:
                        // the head (expensive) jobs stay with their owner,
                        // the tail spreads out
                        let mut found = None;
                        for off in 1..workers {
                            let v = (w + off) % workers;
                            let mut victim = deques[v].lock().expect("deque lock");
                            let len = victim.len();
                            if len == 0 {
                                continue;
                            }
                            let mut stolen = victim.split_off(len - len.div_ceil(2));
                            drop(victim);
                            steals.fetch_add(1, Ordering::Relaxed);
                            per_worker_steals[w].fetch_add(1, Ordering::Relaxed);
                            if wtrace.on() {
                                wtrace.instant(
                                    "batch.steal",
                                    &[("victim", v as f64), ("grabbed", stolen.len() as f64)],
                                );
                            }
                            let first = stolen.pop_front();
                            if !stolen.is_empty() {
                                deques[w].lock().expect("deque lock").append(&mut stolen);
                            }
                            found = first;
                            break;
                        }
                        found
                    }
                };
                let Some(i) = job else { break };
                let (d, failed, retries, panicked) = answer(cache, &requests[i], ctx, wtrace);
                if failed {
                    failures.fetch_add(1, Ordering::Relaxed);
                }
                if retries > 0 {
                    panic_retries.fetch_add(retries, Ordering::Relaxed);
                }
                if panicked {
                    worker_panics.fetch_add(1, Ordering::Relaxed);
                }
                slots[i].set(d).expect("each request answered once");
            });
        }
    });
    let seconds = t0.elapsed().as_secs_f64();
    Drain {
        digests: slots
            .into_iter()
            .map(|s| s.into_inner().expect("request drained"))
            .collect(),
        seconds,
        steals: steals.load(Ordering::Relaxed),
        failures: failures.load(Ordering::Relaxed),
        panic_retries: panic_retries.load(Ordering::Relaxed),
        worker_panics: worker_panics.load(Ordering::Relaxed),
        worker_steals: per_worker_steals
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect(),
        worker_peak_depth: per_worker_peak
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect(),
    }
}

/// The strictly serial reference drain, in request order.
pub(crate) fn drain_serial(
    cache: &SchedCache,
    requests: &[BatchRequest],
    ctx: &ExperimentContext,
    trace: Trace<'_>,
) -> Drain {
    let t0 = Instant::now();
    let mut failures = 0;
    let mut panic_retries = 0;
    let mut worker_panics = 0;
    let digests = requests
        .iter()
        .map(|req| {
            let (d, failed, retries, panicked) = answer(cache, req, ctx, trace);
            if failed {
                failures += 1;
            }
            panic_retries += retries;
            if panicked {
                worker_panics += 1;
            }
            d
        })
        .collect();
    Drain {
        digests,
        seconds: t0.elapsed().as_secs_f64(),
        steals: 0,
        failures,
        panic_retries,
        worker_panics,
        worker_steals: Vec::new(),
        worker_peak_depth: Vec::new(),
    }
}

pub(crate) fn fold(digests: &[u64]) -> u64 {
    let mut h = StableHasher::new();
    for &d in digests {
        h.write_u64(d);
    }
    h.finish()
}

pub(crate) fn pass(d: &Drain, n: usize) -> PassReport {
    PassReport {
        seconds: d.seconds,
        per_sec: n as f64 / d.seconds.max(1e-9),
        fingerprint: fold(&d.digests),
        steals: d.steals,
    }
}

/// Runs the whole batch study. See the module docs for the four passes.
pub fn run_batch(ctx: &ExperimentContext, opts: &BatchOptions) -> BatchReport {
    let (requests, variants) = build_requests(ctx, opts.target_requests);
    let n = requests.len();
    let new_cache = || {
        let c = SchedCache::with_shards(opts.shards);
        match opts.per_shard_cap {
            Some(cap) => c.into_capped(cap),
            None => c,
        }
    };

    // pass 1: cold serial (the reference answers)
    let serial_cache = new_cache();
    let serial = drain_serial(&serial_cache, &requests, ctx, Trace::off());

    // pass 2: cold parallel (work-stealing)
    let cache = new_cache();
    let cold = drain(&cache, &requests, ctx, opts.workers, Trace::off());
    let cold_shards = cache.shard_counters();
    let evictions = cache.evictions();
    let unique_keys = cache.len();

    // pass 3: warm memory (same cache; every request hits)
    let hits_before = cache.hits();
    let warm = drain(&cache, &requests, ctx, opts.workers, Trace::off());
    let warm_hit_rate = (cache.hits() - hits_before) as f64 / n as f64;

    // pass 4: warm disk (export -> text round-trip -> fresh cache)
    let store = cache.export_store();
    let reloaded = ScheduleStore::from_text(&store.to_text());
    let store_roundtrip_ok = reloaded
        .as_ref()
        .map(|r| r.to_text() == store.to_text())
        .unwrap_or(false);
    let disk_cache = new_cache().into_stored(reloaded.unwrap_or_else(|_| store.clone()));
    let disk = drain(&disk_cache, &requests, ctx, opts.workers, Trace::off());
    let store_hit_rate = disk_cache.store_hits() as f64 / n as f64;
    let store_stale = disk_cache.stale();

    let fps = [
        fold(&serial.digests),
        fold(&cold.digests),
        fold(&warm.digests),
        fold(&disk.digests),
    ];
    BatchReport {
        requests: n,
        unique_keys,
        variants,
        workers: opts.workers,
        shards: opts.shards,
        cold_serial: pass(&serial, n),
        cold_parallel: pass(&cold, n),
        warm_mem: pass(&warm, n),
        warm_disk: pass(&disk, n),
        warm_hit_rate,
        store_hit_rate,
        store_stale,
        store_entries: store.len(),
        store_roundtrip_ok,
        deterministic: fps.iter().all(|&f| f == fps[0]),
        failures: serial
            .failures
            .max(cold.failures)
            .max(warm.failures)
            .max(disk.failures),
        per_shard_cap: opts.per_shard_cap,
        evictions,
        panics_contained: serial_cache.panics_contained()
            + cache.panics_contained()
            + disk_cache.panics_contained(),
        slots_recovered: serial_cache.slots_recovered()
            + cache.slots_recovered()
            + disk_cache.slots_recovered(),
        panic_retries: serial.panic_retries
            + cold.panic_retries
            + warm.panic_retries
            + disk.panic_retries,
        worker_panics: serial.worker_panics
            + cold.worker_panics
            + warm.worker_panics
            + disk.worker_panics,
        unrecovered_slots: (serial_cache.failed_slots()
            + cache.failed_slots()
            + disk_cache.failed_slots()) as u64,
        cold_shards,
        worker_steals: cold.worker_steals,
        worker_peak_depth: cold.worker_peak_depth,
        failed_slot_reasons: [&serial_cache, &cache, &disk_cache]
            .iter()
            .flat_map(|c| c.failed_slot_reasons())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExperimentContext {
        let mut ctx = ExperimentContext::quick();
        ctx.benchmarks = vec!["gsmdec".into()];
        ctx.sim.iteration_cap = 48;
        ctx.profile.iteration_cap = 48;
        ctx
    }

    #[test]
    fn batch_is_deterministic_and_fully_warm() {
        let ctx = tiny_ctx();
        let opts = BatchOptions {
            target_requests: 64,
            workers: 4,
            shards: 8,
            per_shard_cap: None,
        };
        let r = run_batch(&ctx, &opts);
        assert!(r.requests >= 64);
        assert_eq!(r.evictions, 0, "unbounded caches never evict");
        assert!(r.cold_shards.iter().all(|s| s.evictions == 0));
        assert!(r.deterministic, "pass fingerprints diverged");
        assert_eq!(r.failures, 0);
        // clean runs never trip the containment machinery
        assert_eq!(r.panics_contained, 0);
        assert_eq!(r.slots_recovered, 0);
        assert_eq!(r.worker_panics, 0);
        assert_eq!(r.unrecovered_slots, 0);
        assert!(
            (r.warm_hit_rate - 1.0).abs() < 1e-12,
            "warm pass must hit every request"
        );
        assert!(r.store_roundtrip_ok);
        assert_eq!(r.store_entries, r.unique_keys);
        assert!(
            r.store_hit_rate > 0.9,
            "disk pass should rebuild from the store (rate {})",
            r.store_hit_rate
        );
        assert_eq!(r.store_stale, 0, "fresh store entries must never be stale");
        // every request answered exactly once across shards
        let total: u64 = r.cold_shards.iter().map(|s| s.hits + s.prepares).sum();
        assert_eq!(total, r.requests as u64);
    }

    /// A far-too-small capacity cap forces evictions through the whole
    /// run yet never changes any answer: the four pass fingerprints
    /// still agree, the evictions show up in the per-shard counters, and
    /// residency respects the cap (modulo slots a concurrent reader held
    /// during an eviction scan — bounded by the worker count).
    #[test]
    fn capped_batch_evicts_but_stays_deterministic() {
        let ctx = tiny_ctx();
        let cap = 4;
        let opts = BatchOptions {
            target_requests: 64,
            workers: 4,
            shards: 2,
            per_shard_cap: Some(cap),
        };
        let r = run_batch(&ctx, &opts);
        assert_eq!(r.per_shard_cap, Some(cap));
        assert!(r.deterministic, "eviction must never change an answer");
        assert_eq!(r.failures, 0);
        assert!(
            r.evictions > 0,
            "a {}-entry cache under {} requests must evict",
            cap * opts.shards,
            r.requests
        );
        let per_shard: u64 = r.cold_shards.iter().map(|s| s.evictions).sum();
        assert_eq!(per_shard, r.evictions, "counters surface the evictions");
        for s in &r.cold_shards {
            assert!(
                s.entries <= (cap + opts.workers) as u64,
                "shard residency {} far above cap {cap}",
                s.entries
            );
        }
        // evicted keys re-prepare: strictly more prepares than resident keys
        let prepares: u64 = r.cold_shards.iter().map(|s| s.prepares).sum();
        assert!(prepares > r.unique_keys as u64);
    }

    #[test]
    fn request_queue_reaches_target_and_perturbs_fingerprints() {
        let ctx = tiny_ctx();
        let (reqs, variants) = build_requests(&ctx, 100);
        assert!(reqs.len() >= 100);
        assert!(variants >= 2);
        let fp0 = kernel_fingerprint(&reqs[0].kernel);
        let other = reqs
            .iter()
            .find(|r| r.kernel.name != reqs[0].kernel.name)
            .expect("multiple kernels");
        assert_ne!(fp0, kernel_fingerprint(&other.kernel));
    }
}
