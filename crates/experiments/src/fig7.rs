//! Figure 7: workload balance.
//!
//! `WB = instructions in the most loaded cluster / total instructions`,
//! weighted over loops by dynamic execution — 0.25 is perfect on four
//! clusters, 1.0 fully unbalanced. Three IPBC configurations: no
//! unrolling, OUF unrolling, and OUF without memory dependent chains.

use std::fmt;

use vliw_sched::ClusterPolicy;

use crate::context::{run_benchmark, ExperimentContext, RunConfig, UnrollMode};
use crate::report::{amean, f3, Table};

/// The three configuration labels.
pub const CONFIG_LABELS: [&str; 3] = ["IPBC no unrolling", "IPBC OUF", "IPBC OUF no chains"];

/// One benchmark's workload balances.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Benchmark name.
    pub bench: String,
    /// WB per configuration, in [`CONFIG_LABELS`] order.
    pub wb: [f64; 3],
}

/// Figure 7 data.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Per-benchmark rows.
    pub rows: Vec<Fig7Row>,
    /// Mean WB per configuration.
    pub amean: [f64; 3],
}

impl Fig7 {
    /// Renders the paper-style table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 7: workload balance (0.25 = perfect, 1.0 = unbalanced)",
            &["bench", CONFIG_LABELS[0], CONFIG_LABELS[1], CONFIG_LABELS[2]],
        );
        for r in &self.rows {
            t.row(vec![r.bench.clone(), f3(r.wb[0]), f3(r.wb[1]), f3(r.wb[2])]);
        }
        t.row(vec![
            "AMEAN".into(),
            f3(self.amean[0]),
            f3(self.amean[1]),
            f3(self.amean[2]),
        ]);
        t
    }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table().render())
    }
}

/// Runs the Figure 7 experiment.
pub fn fig7(ctx: &ExperimentContext) -> Fig7 {
    let base = RunConfig::ipbc();
    let configs = [
        RunConfig { unroll: UnrollMode::NoUnroll, ..base },
        RunConfig { unroll: UnrollMode::Ouf, ..base },
        RunConfig { unroll: UnrollMode::Ouf, policy: ClusterPolicy::NoChains, ..base },
    ];
    let n = ctx.machine.n_clusters();
    let models = ctx.models();
    let mut rows = Vec::new();
    for model in &models {
        let mut wb = [0.0; 3];
        for (i, cfg) in configs.iter().enumerate() {
            let run = run_benchmark(model, cfg, ctx);
            wb[i] = run.workload_balance(n);
        }
        rows.push(Fig7Row { bench: model.name.clone(), wb });
    }
    let mut mean = [0.0; 3];
    for (i, m) in mean.iter_mut().enumerate() {
        *m = amean(rows.iter().map(|r| r.wb[i]));
    }
    Fig7 { rows, amean: mean }
}
