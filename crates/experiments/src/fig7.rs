//! Figure 7: workload balance.
//!
//! `WB = instructions in the most loaded cluster / total instructions`,
//! weighted over loops by dynamic execution — 0.25 is perfect on four
//! clusters, 1.0 fully unbalanced. Three IPBC configurations: no
//! unrolling, OUF unrolling, and OUF without memory dependent chains.

use std::fmt;

use vliw_sched::ClusterPolicy;

use crate::context::{ExperimentContext, RunConfig, UnrollMode};
use crate::grid::{GridResult, RunGrid};
use crate::report::{amean, f3, Table};

/// The three configuration labels.
pub const CONFIG_LABELS: [&str; 3] = ["IPBC no unrolling", "IPBC OUF", "IPBC OUF no chains"];

/// One benchmark's workload balances.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Benchmark name.
    pub bench: String,
    /// WB per configuration, in [`CONFIG_LABELS`] order.
    pub wb: [f64; 3],
}

/// Figure 7 data.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Per-benchmark rows.
    pub rows: Vec<Fig7Row>,
    /// Mean WB per configuration.
    pub amean: [f64; 3],
}

impl Fig7 {
    /// Renders the paper-style table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 7: workload balance (0.25 = perfect, 1.0 = unbalanced)",
            &[
                "bench",
                CONFIG_LABELS[0],
                CONFIG_LABELS[1],
                CONFIG_LABELS[2],
            ],
        );
        for r in &self.rows {
            t.row(vec![r.bench.clone(), f3(r.wb[0]), f3(r.wb[1]), f3(r.wb[2])]);
        }
        t.row(vec![
            "AMEAN".into(),
            f3(self.amean[0]),
            f3(self.amean[1]),
            f3(self.amean[2]),
        ]);
        t
    }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table().render())
    }
}

/// The Figure 7 grid: the three IPBC configurations.
pub fn fig7_grid() -> RunGrid {
    let base = RunConfig::ipbc();
    let configs = [
        RunConfig {
            unroll: UnrollMode::NoUnroll,
            ..base
        },
        RunConfig {
            unroll: UnrollMode::Ouf,
            ..base
        },
        RunConfig {
            unroll: UnrollMode::Ouf,
            policy: ClusterPolicy::NoChains,
            ..base
        },
    ];
    let mut grid = RunGrid::new("fig7");
    for (label, cfg) in CONFIG_LABELS.iter().zip(configs) {
        grid = grid.config(*label, cfg);
    }
    grid
}

/// Runs the Figure 7 experiment (parallel grid).
pub fn fig7(ctx: &ExperimentContext) -> Fig7 {
    fig7_from(&fig7_grid().run(ctx), ctx)
}

/// Aggregates Figure 7 from an executed grid.
pub fn fig7_from(result: &GridResult, ctx: &ExperimentContext) -> Fig7 {
    let n = ctx.machine.n_clusters();
    let mut rows = Vec::new();
    for (bench, runs) in result.by_bench() {
        let mut wb = [0.0; 3];
        for (i, run) in runs.iter().enumerate() {
            wb[i] = run.workload_balance(n);
        }
        rows.push(Fig7Row {
            bench: bench.to_string(),
            wb,
        });
    }
    let mut mean = [0.0; 3];
    for (i, m) in mean.iter_mut().enumerate() {
        *m = amean(rows.iter().map(|r| r.wb[i]));
    }
    Fig7 { rows, amean: mean }
}
