//! The §5.2 Attraction-Buffer hints experiment on the epicdec overflow
//! loop (19 memory instructions in one cluster).

use std::fmt;

use crate::context::{ExperimentContext, RunConfig};
use crate::grid::{Parallelism, RunGrid};
use crate::report::Table;

/// Stall cycles of the epicdec overflow loop under every combination of
/// heuristic × buffer size × hints.
#[derive(Debug, Clone)]
pub struct HintsExperiment {
    /// Rows: `(heuristic, entries, hints on, stall cycles)`.
    pub rows: Vec<(&'static str, usize, bool, f64)>,
}

impl HintsExperiment {
    fn stall(&self, heuristic: &str, entries: usize, hints: bool) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.0 == heuristic && r.1 == entries && r.2 == hints)
            .map(|r| r.3)
    }

    /// Stall reduction from hints for a heuristic and buffer size
    /// (the paper reports 20%/32% at 8 entries, 13%/6% at 16 for
    /// IPBC/IBC).
    pub fn reduction(&self, heuristic: &str, entries: usize) -> Option<f64> {
        let off = self.stall(heuristic, entries, false)?;
        let on = self.stall(heuristic, entries, true)?;
        if off <= 0.0 {
            return Some(0.0);
        }
        Some(1.0 - on / off)
    }

    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "§5.2: attractable hints on the epicdec 19-load loop",
            &["heuristic", "AB entries", "hints", "stall cycles"],
        );
        for (h, e, on, stall) in &self.rows {
            t.row(vec![
                h.to_string(),
                e.to_string(),
                if *on { "on" } else { "off" }.into(),
                crate::report::fcycles(*stall),
            ]);
        }
        t
    }
}

impl fmt::Display for HintsExperiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table().render())?;
        for h in ["IPBC", "IBC"] {
            for e in [8usize, 16] {
                if let Some(r) = self.reduction(h, e) {
                    writeln!(f, "{h} {e}-entry hint reduction: {:.0}%", 100.0 * r)?;
                }
            }
        }
        Ok(())
    }
}

/// Runs the hints experiment (epicdec only): a heuristic × buffer-size ×
/// hints grid over the single overflow loop. The eight cells share two
/// schedules (one per heuristic) through the grid memo — buffers and
/// hints only affect simulation.
pub fn hints_experiment(ctx: &ExperimentContext) -> HintsExperiment {
    let spec = vliw_workloads::spec_by_name("epicdec").expect("epicdec in suite");
    let mut model = vliw_workloads::synthesize(&spec, &ctx.workloads, &ctx.machine);
    // keep only the overflow loop: that is where hints matter
    model.loops.retain(|l| l.kernel.name == "epicdec_l19");

    let mut grid = RunGrid::new("hints");
    let mut keys: Vec<(&'static str, usize, bool)> = Vec::new();
    for (name, base) in [("IBC", RunConfig::ibc()), ("IPBC", RunConfig::ipbc())] {
        for entries in [8usize, 16] {
            for hints in [false, true] {
                let cfg = RunConfig {
                    attraction_buffers: Some((entries, 2)),
                    use_hints: hints,
                    ..base
                };
                grid = grid.config(format!("{name}/{entries}/{hints}"), cfg);
                keys.push((name, entries, hints));
            }
        }
    }
    let result = grid.run_on_models(&[model], ctx, Parallelism::from_env());
    let rows = keys
        .into_iter()
        .enumerate()
        .map(|(c, (name, entries, hints))| (name, entries, hints, result.cell(0, c).stall_cycles()))
        .collect();
    HintsExperiment { rows }
}
