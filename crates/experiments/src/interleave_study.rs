//! §5.1's interleaving-factor remark, made quantitative.
//!
//! The paper fixes the interleaving factor at 4 bytes because 4-byte words
//! dominate the suite, and remarks that "if a processor is to be built for
//! the gsm family of applications, a 2-byte interleaving factor would match
//! better the applications' characteristics". This study runs selected
//! benchmarks under both factors and reports the local-hit ratio and cycle
//! count each gets.

use std::fmt;

use crate::context::{ExperimentContext, RunConfig};
use crate::grid::RunGrid;
use crate::report::{f3, Table};

/// One benchmark × interleave-factor measurement.
#[derive(Debug, Clone)]
pub struct InterleaveRow {
    /// Benchmark name.
    pub bench: String,
    /// Interleave factor in bytes.
    pub interleave: usize,
    /// Local-hit fraction of all accesses.
    pub local_hits: f64,
    /// Total cycles (scaled).
    pub cycles: f64,
}

/// The study's results.
#[derive(Debug, Clone)]
pub struct InterleaveStudy {
    /// All rows, grouped by benchmark.
    pub rows: Vec<InterleaveRow>,
}

impl InterleaveStudy {
    /// The cycle improvement of `bytes`-interleaving over the baseline
    /// 4-byte factor for `bench` (positive = faster).
    pub fn improvement(&self, bench: &str, bytes: usize) -> Option<f64> {
        let at = |i: usize| {
            self.rows
                .iter()
                .find(|r| r.bench == bench && r.interleave == i)
                .map(|r| r.cycles)
        };
        Some(at(4)? / at(bytes)? - 1.0)
    }

    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "§5.1: interleaving-factor study (gsm prefers 2-byte interleaving)",
            &["bench", "interleave", "local hits", "cycles"],
        );
        for r in &self.rows {
            t.row(vec![
                r.bench.clone(),
                format!("{} B", r.interleave),
                f3(r.local_hits),
                crate::report::fcycles(r.cycles),
            ]);
        }
        t
    }
}

impl fmt::Display for InterleaveStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table().render())?;
        for bench in ["gsmdec", "gsmenc", "pgpdec"] {
            if let Some(imp) = self.improvement(bench, 2) {
                writeln!(
                    f,
                    "{bench}: 2-byte interleaving is {:+.1}% vs 4-byte",
                    100.0 * imp
                )?;
            }
        }
        Ok(())
    }
}

/// Runs the study over the gsm pair (2-byte data) and a 4-byte control.
///
/// Each interleave factor is a *machine* variant, not a `RunConfig` axis,
/// so the study executes one [`RunGrid`] per factor (the grid memoizes and
/// parallelizes within a factor; machine geometry is part of the context).
pub fn interleave_study(ctx: &ExperimentContext) -> InterleaveStudy {
    let benches = ["gsmdec", "gsmenc", "pgpdec"];
    let grid = RunGrid::new("interleave")
        .benchmarks(&benches)
        .config("IPBC+AB", RunConfig::ipbc().with_buffers());
    let mut rows = Vec::new();
    for interleave in [2usize, 4] {
        let mut variant = ctx.clone();
        variant.machine.cache.interleave_bytes = interleave;
        variant.machine.validate().expect("geometry stays valid");
        let result = grid.run(&variant);
        for (bench, runs) in result.by_bench() {
            let run = &runs[0];
            let mix = run.access_mix();
            let total: f64 = mix.iter().sum();
            rows.push(InterleaveRow {
                bench: bench.to_string(),
                interleave,
                local_hits: if total > 0.0 { mix[0] / total } else { 0.0 },
                cycles: run.total_cycles(),
            });
        }
    }
    rows.sort_by(|a, b| a.bench.cmp(&b.bench).then(a.interleave.cmp(&b.interleave)));
    InterleaveStudy { rows }
}
