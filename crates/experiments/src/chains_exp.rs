//! The §5.4 chain-breaking study: epicdec with and without memory
//! dependent chains.
//!
//! The paper's further-work section measures loop versions without chains
//! (guarded by runtime checks): tighter schedules (compute time −67% in a
//! main loop), fewer remote accesses, better Attraction-Buffer usage. This
//! experiment compares IPBC against the chain-less ablation on epicdec.

use std::fmt;

use vliw_sched::ClusterPolicy;

use crate::context::{ExperimentContext, RunConfig};
use crate::grid::{Parallelism, RunGrid};
use crate::report::{f3, fcycles, Table};

/// Chain-breaking results for one benchmark.
#[derive(Debug, Clone)]
pub struct ChainBreaking {
    /// Benchmark name.
    pub bench: String,
    /// `(with chains, without chains)` compute cycles.
    pub compute: (f64, f64),
    /// `(with, without)` stall cycles.
    pub stall: (f64, f64),
    /// `(with, without)` remote accesses (scaled counts).
    pub remote: (f64, f64),
    /// Largest per-loop compute reduction (the paper's "one of the main
    /// loops" −67% datum).
    pub best_loop_compute_reduction: f64,
}

impl ChainBreaking {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("§5.4: breaking memory dependent chains ({})", self.bench),
            &["metric", "with chains", "no chains", "reduction"],
        );
        let mut row = |name: &str, a: f64, b: f64| {
            let red = if a > 0.0 { 1.0 - b / a } else { 0.0 };
            t.row(vec![
                name.into(),
                fcycles(a),
                fcycles(b),
                format!("{:.0}%", 100.0 * red),
            ]);
        };
        row("compute cycles", self.compute.0, self.compute.1);
        row("stall cycles", self.stall.0, self.stall.1);
        row("remote accesses", self.remote.0, self.remote.1);
        t
    }
}

impl fmt::Display for ChainBreaking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table().render())?;
        writeln!(
            f,
            "largest per-loop compute reduction: {} (paper: 67% in one main loop)",
            f3(self.best_loop_compute_reduction)
        )
    }
}

/// Runs the chain-breaking study on `bench` (the paper uses epicdec).
pub fn chain_breaking(ctx: &ExperimentContext, bench: &str) -> ChainBreaking {
    let spec = vliw_workloads::spec_by_name(bench).expect("benchmark in suite");
    let model = vliw_workloads::synthesize(&spec, &ctx.workloads, &ctx.machine);
    let result = RunGrid::new("chains")
        .config("with-chains", RunConfig::ipbc().with_buffers())
        .config(
            "no-chains",
            RunConfig {
                policy: ClusterPolicy::NoChains,
                ..RunConfig::ipbc().with_buffers()
            },
        )
        .run_on_models(&[model], ctx, Parallelism::from_env());
    let (with, without) = (result.cell(0, 0), result.cell(0, 1));
    let remote = |run: &crate::context::BenchRun| {
        let mix = run.access_mix();
        mix[1] + mix[3]
    };
    let mut best = 0.0f64;
    for (a, b) in with.loops.iter().zip(&without.loops) {
        if a.sim.compute_cycles > 0.0 {
            best = best.max(1.0 - b.sim.compute_cycles / a.sim.compute_cycles);
        }
    }
    ChainBreaking {
        bench: bench.to_string(),
        compute: (with.compute_cycles(), without.compute_cycles()),
        stall: (with.stall_cycles(), without.stall_cycles()),
        remote: (remote(with), remote(without)),
        best_loop_compute_reduction: best,
    }
}
