//! Figure 4: memory-access classification under IPBC.
//!
//! Four bars per benchmark: (i) no unrolling + alignment, (ii) OUF without
//! alignment, (iii) OUF + alignment, (iv) OUF + alignment without memory
//! dependent chains. Each bar splits all memory accesses into local hits,
//! remote hits, local misses, remote misses and combined accesses.
//!
//! Paper headlines this reproduces: alignment raises the local hit ratio
//! (bar iii vs ii), unrolling raises it further (iii vs i) and removing
//! chains helps the chain-bound benchmarks (iv vs iii).

use std::fmt;

use vliw_sched::ClusterPolicy;

use crate::context::{ExperimentContext, RunConfig, UnrollMode};
use crate::grid::{GridResult, RunGrid};
use crate::report::{amean, f3, Table};

/// The four bar configurations, in the paper's order.
pub const BAR_LABELS: [&str; 4] = [
    "nounroll+align",
    "OUF-align",
    "OUF+align",
    "OUF+align-nochains",
];

fn bar_configs() -> [RunConfig; 4] {
    let base = RunConfig {
        attraction_buffers: None,
        ..RunConfig::ipbc()
    };
    [
        RunConfig {
            unroll: UnrollMode::NoUnroll,
            padding: true,
            ..base
        },
        RunConfig {
            unroll: UnrollMode::Ouf,
            padding: false,
            ..base
        },
        RunConfig {
            unroll: UnrollMode::Ouf,
            padding: true,
            ..base
        },
        RunConfig {
            unroll: UnrollMode::Ouf,
            padding: true,
            policy: ClusterPolicy::NoChains,
            ..base
        },
    ]
}

/// One benchmark's four bars; each bar is the normalized access mix
/// `[local hit, remote hit, local miss, remote miss, combined]`.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Benchmark name.
    pub bench: String,
    /// The four normalized bars.
    pub bars: [[f64; 5]; 4],
}

/// Figure 4 data.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Per-benchmark rows.
    pub rows: Vec<Fig4Row>,
    /// Arithmetic mean over benchmarks, per bar.
    pub amean: [[f64; 5]; 4],
}

impl Fig4 {
    /// Local-hit-ratio gain of alignment (bar iii − bar ii), AMEAN.
    pub fn alignment_gain(&self) -> f64 {
        self.amean[2][0] - self.amean[1][0]
    }

    /// Local-hit-ratio gain of unrolling (bar iii − bar i), AMEAN.
    pub fn unrolling_gain(&self) -> f64 {
        self.amean[2][0] - self.amean[0][0]
    }

    /// Local-hit-ratio gain of dropping chains (bar iv − bar iii) for one
    /// benchmark.
    pub fn chain_cost(&self, bench: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.bench == bench)
            .map(|r| r.bars[3][0] - r.bars[2][0])
    }

    /// Renders the paper-style table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 4: memory access classification (IPBC)",
            &[
                "bench",
                "bar",
                "local hit",
                "remote hit",
                "local miss",
                "remote miss",
                "combined",
            ],
        );
        for r in &self.rows {
            for (b, bar) in r.bars.iter().enumerate() {
                t.row(vec![
                    r.bench.clone(),
                    BAR_LABELS[b].into(),
                    f3(bar[0]),
                    f3(bar[1]),
                    f3(bar[2]),
                    f3(bar[3]),
                    f3(bar[4]),
                ]);
            }
        }
        for (b, bar) in self.amean.iter().enumerate() {
            t.row(vec![
                "AMEAN".into(),
                BAR_LABELS[b].into(),
                f3(bar[0]),
                f3(bar[1]),
                f3(bar[2]),
                f3(bar[3]),
                f3(bar[4]),
            ]);
        }
        t
    }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table().render())?;
        writeln!(
            f,
            "local-hit gain: alignment (iii-ii) = {:+.1}pp, unrolling (iii-i) = {:+.1}pp",
            100.0 * self.alignment_gain(),
            100.0 * self.unrolling_gain()
        )
    }
}

/// The Figure 4 grid: the four bar configurations over the context's
/// benchmarks.
pub fn fig4_grid() -> RunGrid {
    let mut grid = RunGrid::new("fig4");
    for (label, cfg) in BAR_LABELS.iter().zip(bar_configs()) {
        grid = grid.config(*label, cfg);
    }
    grid
}

/// Runs the Figure 4 experiment (parallel grid).
pub fn fig4(ctx: &ExperimentContext) -> Fig4 {
    fig4_from(&fig4_grid().run(ctx))
}

/// Aggregates Figure 4 from an executed grid.
pub fn fig4_from(result: &GridResult) -> Fig4 {
    let mut rows = Vec::new();
    for (bench, runs) in result.by_bench() {
        let mut bars = [[0.0; 5]; 4];
        for (b, run) in runs.iter().enumerate() {
            let mix = run.access_mix();
            let total: f64 = mix.iter().sum();
            if total > 0.0 {
                for (i, v) in mix.iter().enumerate() {
                    bars[b][i] = v / total;
                }
            }
        }
        rows.push(Fig4Row {
            bench: bench.to_string(),
            bars,
        });
    }
    let mut mean = [[0.0; 5]; 4];
    for (b, row) in mean.iter_mut().enumerate() {
        for (i, cell) in row.iter_mut().enumerate() {
            *cell = amean(rows.iter().map(|r| r.bars[b][i]));
        }
    }
    Fig4 { rows, amean: mean }
}
