//! Cycle-level execution of modulo-scheduled loops.
//!
//! The engine replays a [`Schedule`](vliw_sched::Schedule) for a configured
//! number of iterations against one of the cache timing models of
//! `vliw-mem`, under the **stall-on-use** semantics the paper assumes: the
//! scheduler promises each load a latency; the lock-step VLIW core stalls
//! at a *consumer* when the promise is broken (a load scheduled with the
//! local-hit latency that actually missed, a remote access scheduled as
//! local, a combined access still in flight…). Stall cycles are attributed
//! to the access class of the late producer — the raw material of
//! Figures 5, 6 and 8.
//!
//! Cycle counts split into *compute time* — `(iterations + SC − 1) × II`,
//! fully determined by the schedule — and *stall time*, accumulated by the
//! engine, matching the shaded/unshaded split of the paper's Figure 8.
//!
//! Loops with large trip counts are simulated for a capped number of
//! iterations and the cycle counts scaled ([`SimOptions::iteration_cap`]);
//! caches stay warm across invocations, as in the paper's
//! whole-program simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;

pub use engine::{
    simulate_loop, simulate_loop_traced, LoopSimResult, SimOptions, StallBreakdown,
    TRACE_WINDOW_IIS,
};
