//! The lock-step VLIW execution engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use vliw_ir::{DepKind, LoopKernel, OpId};
use vliw_machine::{AccessClass, MachineConfig};
use vliw_mem::{AccessRequest, DataCache};
use vliw_sched::{AttractionHints, Schedule};
use vliw_trace::Trace;

/// Accounting-window length of the traced simulator's stall attribution,
/// in multiples of the schedule's II: every `II × this` cycles of
/// measured simulated time, one `sim.window` instant reports the window's
/// stall deltas by cause.
pub const TRACE_WINDOW_IIS: u64 = 16;

/// Simulation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimOptions {
    /// Maximum kernel iterations actually simulated per loop; longer trip
    /// counts are scaled (the cache reaches steady state long before this).
    pub iteration_cap: u64,
    /// Un-measured iterations executed first to warm the module caches —
    /// the paper simulates whole programs, so loops almost always find
    /// their working set resident. Attraction Buffers still flush between
    /// the warm-up and the measured pass (the paper flushes them whenever
    /// a loop finishes). Set to 0 to measure cold.
    pub warmup_iterations: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            iteration_cap: 1024,
            warmup_iterations: 256,
        }
    }
}

/// Stall cycles by cause.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StallBreakdown {
    by_class: [f64; 4],
    /// Stall caused by combined (merged in-flight) accesses.
    pub combined: f64,
    /// Stall caused by accesses that waited for a free miss-status
    /// register (MSHR capacity back-pressure).
    pub mshr_full: f64,
}

fn class_index(c: AccessClass) -> usize {
    match c {
        AccessClass::LocalHit => 0,
        AccessClass::RemoteHit => 1,
        AccessClass::LocalMiss => 2,
        AccessClass::RemoteMiss => 3,
    }
}

impl StallBreakdown {
    /// Stall cycles attributed to accesses of `class`.
    pub fn of(&self, class: AccessClass) -> f64 {
        self.by_class[class_index(class)]
    }

    /// Total stall cycles.
    pub fn total(&self) -> f64 {
        self.by_class.iter().sum::<f64>() + self.combined + self.mshr_full
    }

    /// Scales every component (used when extrapolating capped runs).
    pub fn scaled(&self, factor: f64) -> StallBreakdown {
        StallBreakdown {
            by_class: self.by_class.map(|x| x * factor),
            combined: self.combined * factor,
            mshr_full: self.mshr_full * factor,
        }
    }

    /// Adds another breakdown.
    pub fn merge(&mut self, other: &StallBreakdown) {
        for i in 0..4 {
            self.by_class[i] += other.by_class[i];
        }
        self.combined += other.combined;
        self.mshr_full += other.mshr_full;
    }
}

/// Result of simulating one loop.
#[derive(Debug, Clone)]
pub struct LoopSimResult {
    /// Iterations actually simulated.
    pub sim_iterations: u64,
    /// `total dynamic iterations / simulated iterations` — multiply cycle
    /// counts by this to extrapolate to the whole run (already applied to
    /// the public cycle fields).
    pub scale: f64,
    /// Schedule-determined cycles, scaled: `(iters + SC − 1) × II`.
    pub compute_cycles: f64,
    /// Stall cycles, scaled.
    pub stall_cycles: f64,
    /// Stall attribution by access class, scaled.
    pub stall_by: StallBreakdown,
    /// Per-operation stall attribution (scaled), indexed by `OpId` — feeds
    /// the Figure 5 factor classification.
    pub stall_by_op: Vec<f64>,
    /// Cache statistics of the simulated iterations (unscaled counts).
    pub mem: vliw_mem::MemStats,
}

impl LoopSimResult {
    /// Total (compute + stall) cycles, scaled.
    pub fn total_cycles(&self) -> f64 {
        self.compute_cycles + self.stall_cycles
    }

    /// In-flight request tracking (MSHR) counters of the measured pass
    /// (unscaled counts, like [`LoopSimResult::mem`]).
    pub fn mshr(&self) -> &vliw_mem::MshrStats {
        self.mem.mshr()
    }
}

/// Why a producer ran late: access class, combined flag, and the cycles
/// it waited for a miss-status register (`None` for non-memory
/// producers).
type LateCause = Option<(AccessClass, bool, u64)>;

struct Rings {
    size: u64,
    /// ready time of each op's recent instances
    ready: Vec<Vec<u64>>,
    /// absolute issue time of each op's recent instances
    issued: Vec<Vec<u64>>,
    /// cause of lateness of each op's recent instances (loads only)
    cause: Vec<Vec<LateCause>>,
}

impl Rings {
    fn new(n_ops: usize, size: u64) -> Self {
        let s = size as usize;
        Rings {
            size,
            ready: vec![vec![0; s]; n_ops],
            issued: vec![vec![0; s]; n_ops],
            cause: vec![vec![None; s]; n_ops],
        }
    }

    fn slot(&self, iter: u64) -> usize {
        (iter % self.size) as usize
    }
}

/// Simulates `schedule` for (a capped number of) `kernel.avg_trip`
/// iterations against `cache`.
///
/// `addresses(op, iteration)` supplies the byte address each memory
/// operation touches in each iteration (the workload crate's address
/// streams). `hints` gates Attraction-Buffer allocation per §5.2.
///
/// The engine processes issue groups in nominal schedule order; a whole
/// group stalls when any member needs an operand that is not ready —
/// the in-order, lock-step pipeline of the paper's VLIW.
pub fn simulate_loop(
    kernel: &LoopKernel,
    schedule: &Schedule,
    machine: &MachineConfig,
    cache: &mut dyn DataCache,
    addresses: &mut dyn FnMut(OpId, u64) -> u64,
    hints: &AttractionHints,
    options: &SimOptions,
) -> LoopSimResult {
    simulate_loop_traced(
        kernel,
        schedule,
        machine,
        cache,
        addresses,
        hints,
        options,
        Trace::off(),
    )
}

/// [`simulate_loop`] with per-accounting-window stall attribution wired
/// to `trace`: during the measured pass, every [`TRACE_WINDOW_IIS`] × II
/// cycles of simulated time one `sim.window` instant carries that
/// window's stall deltas split by cause (the four access classes,
/// combined accesses, and MSHR back-pressure). Timing and results are
/// identical to [`simulate_loop`] — the probes only read the
/// accumulators it maintains anyway.
#[allow(clippy::too_many_arguments)]
pub fn simulate_loop_traced(
    kernel: &LoopKernel,
    schedule: &Schedule,
    machine: &MachineConfig,
    cache: &mut dyn DataCache,
    addresses: &mut dyn FnMut(OpId, u64) -> u64,
    hints: &AttractionHints,
    options: &SimOptions,
    trace: Trace<'_>,
) -> LoopSimResult {
    let n_ops = kernel.ops.len();
    assert_eq!(schedule.ops.len(), n_ops, "schedule must match kernel");
    let ii = schedule.ii as u64;
    let sc = schedule.stage_count() as u64;
    let transfer = machine.buses.transfer_cycles as u64;

    let total_iters = (kernel.avg_trip * kernel.invocations).max(1.0);
    let sim_iters = (kernel.avg_trip.round() as u64).clamp(1, options.iteration_cap);
    let scale = total_iters / sim_iters as f64;

    // consumer-side dependence info: (producer, distance, arrival extra)
    struct Operand {
        producer: usize,
        distance: u64,
        // Some(rel) when the value crosses clusters: the copy fires `rel`
        // cycles after the producer's issue slot and takes `transfer`
        rel_copy: Option<u64>,
    }
    let mut operands: Vec<Vec<Operand>> = (0..n_ops).map(|_| Vec::new()).collect();
    let mut max_dist = 1u64;
    for e in &kernel.edges {
        if e.kind != DepKind::RegFlow {
            continue;
        }
        if e.from == e.to {
            continue; // self-dependences are honored by the MII
        }
        let from = schedule.op(e.from);
        let to = schedule.op(e.to);
        let rel_copy = if from.cluster != to.cluster {
            schedule
                .copy_for(e.from, to.cluster)
                .map(|c| (c.cycle as i64 - from.cycle as i64).max(0) as u64)
        } else {
            None
        };
        max_dist = max_dist.max(e.distance as u64);
        operands[e.to.index()].push(Operand {
            producer: e.from.index(),
            distance: e.distance as u64,
            rel_copy,
        });
    }

    // a producer's instance must stay readable until every consumer of it
    // has issued: consumers lag by up to SC-1 pipeline stages plus the
    // dependence distance
    let mut rings = Rings::new(n_ops, sc + max_dist + 2);

    // per-window counter marker (MemStats is Copy: a register snapshot,
    // not a structure clone)
    let mut window = *cache.stats();
    let mut delay: u64 = 0;
    let mut stall_by = StallBreakdown::default();
    let mut stall_by_op = vec![0.0f64; n_ops];
    let mut group: Vec<(usize, u64)> = Vec::new();
    let mut time_base: u64 = 0;

    let _sim_span = if trace.on() {
        Some(trace.span_with(
            "sim.loop",
            &[("ii", ii as f64), ("iters", sim_iters as f64)],
        ))
    } else {
        None
    };
    // stall-attribution accounting windows (traced measured pass only);
    // with tracing off the threshold parks at u64::MAX and the per-group
    // cost is one always-false compare
    let win_len = (ii * TRACE_WINDOW_IIS).max(1);
    let mut next_window = u64::MAX;
    let mut win_mark = StallBreakdown::default();
    let mut win_delay_mark: u64 = 0;

    let warmup = options.warmup_iterations.min(sim_iters);
    for measured in [false, true] {
        let iters = if measured { sim_iters } else { warmup };
        if iters == 0 {
            continue;
        }
        if measured && trace.on() {
            next_window = time_base + win_len;
            win_mark = stall_by.clone();
            win_delay_mark = 0;
        }

        // issue events in nominal order via a k-way merge over ops
        let mut heap: BinaryHeap<Reverse<(u64, usize, u64)>> = BinaryHeap::new();
        for (i, s) in schedule.ops.iter().enumerate() {
            heap.push(Reverse((s.cycle as u64 + time_base, i, 0)));
        }
        delay = 0;

        while let Some(&Reverse((nominal, _, _))) = heap.peek() {
            // collect the whole issue group at this nominal cycle
            group.clear();
            while let Some(&Reverse((n, op, iter))) = heap.peek() {
                if n != nominal {
                    break;
                }
                heap.pop();
                group.push((op, iter));
                if iter + 1 < iters {
                    heap.push(Reverse((n + ii, op, iter + 1)));
                }
            }

            // phase 1: the group's issue time is gated by its least-ready operand
            let scheduled_issue = nominal + delay;
            let mut required = scheduled_issue;
            let mut cause: Option<(usize, LateCause)> = None;
            for &(op, iter) in &group {
                for operand in &operands[op] {
                    if operand.distance > iter {
                        continue; // produced before the loop: live-in, ready
                    }
                    let src_iter = iter - operand.distance;
                    let slot = rings.slot(src_iter);
                    let p = operand.producer;
                    let mut arrival = rings.ready[p][slot];
                    if let Some(rel) = operand.rel_copy {
                        let copy_issue = rings.issued[p][slot] + rel;
                        arrival = arrival.max(copy_issue) + transfer;
                    }
                    if arrival > required {
                        required = arrival;
                        cause = Some((p, rings.cause[p][slot]));
                    }
                }
            }
            if required > scheduled_issue {
                let stall = required - scheduled_issue;
                delay += stall;
                if let Some((p, klass)) = cause {
                    if !measured {
                        // warm-up pass: timing advances, nothing is recorded
                    } else {
                        stall_by_op[p] += stall as f64;
                        match klass {
                            Some((c, combined, mshr_delay)) => {
                                // back-pressure contributed at most its own
                                // waiting time to this stall; the rest is
                                // the access class (or the merged request)
                                let d = (mshr_delay as f64).min(stall as f64);
                                stall_by.mshr_full += d;
                                let rest = stall as f64 - d;
                                if combined {
                                    stall_by.combined += rest;
                                } else {
                                    stall_by.by_class[class_index(c)] += rest;
                                }
                            }
                            // non-memory producers only run late through copy
                            // timing; book those rare cycles as local hits
                            None => stall_by.by_class[0] += stall as f64,
                        }
                    }
                }
            }
            let issue_abs = nominal + delay;
            if issue_abs >= next_window {
                emit_sim_window(
                    trace,
                    issue_abs,
                    &stall_by,
                    &mut win_mark,
                    delay,
                    &mut win_delay_mark,
                );
                next_window = issue_abs + win_len;
            }

            // phase 2: issue every member (clusters issue in index order)
            for &(op, iter) in &group {
                let o = &kernel.ops[op];
                let s = schedule.ops[op];
                let slot = rings.slot(iter);
                rings.issued[op][slot] = issue_abs;
                if o.is_mem() {
                    let addr = addresses(OpId::new(op), iter);
                    let req = AccessRequest {
                        cluster: s.cluster,
                        addr,
                        size: o.mem.as_ref().map_or(4, |m| m.granularity),
                        is_store: o.is_store(),
                        attractable: hints.is_attractable(OpId::new(op)),
                        now: issue_abs,
                        // per-op attribution for observers (profiling mode)
                        tag: op as u32,
                    };
                    let out = cache.access(req);
                    rings.ready[op][slot] = out.ready_at;
                    rings.cause[op][slot] = Some((out.class, out.combined, out.mshr_delay));
                } else {
                    rings.ready[op][slot] = issue_abs + s.assumed_latency as u64;
                    rings.cause[op][slot] = None;
                }
            }
        }

        if measured && trace.on() {
            // flush the final partial window
            let end = time_base + (iters + sc) * ii + delay;
            emit_sim_window(
                trace,
                end,
                &stall_by,
                &mut win_mark,
                delay,
                &mut win_delay_mark,
            );
            next_window = u64::MAX;
        }

        // advance time past this pass and flush the Attraction Buffers
        // (the paper flushes them whenever a loop finishes)
        time_base += (iters + sc) * ii + delay + 1;
        cache.flush_loop_boundary();
        if !measured {
            window = *cache.stats();
        }
    }

    // isolate the measured pass's accesses from the running totals
    let mem = cache.stats().diff(&window);

    let compute = ((sim_iters + sc - 1) * ii) as f64 * scale;
    let stall = delay as f64 * scale;
    LoopSimResult {
        sim_iterations: sim_iters,
        scale,
        compute_cycles: compute,
        stall_cycles: stall,
        stall_by: stall_by.scaled(scale),
        stall_by_op: stall_by_op.iter().map(|&x| x * scale).collect(),
        mem,
    }
}

/// Emits one `sim.window` instant carrying the stall deltas accumulated
/// since the previous window mark, then advances the marks.
fn emit_sim_window(
    trace: Trace<'_>,
    t: u64,
    total: &StallBreakdown,
    mark: &mut StallBreakdown,
    delay: u64,
    delay_mark: &mut u64,
) {
    trace.instant(
        "sim.window",
        &[
            ("t", t as f64),
            ("stall", (delay - *delay_mark) as f64),
            ("local_hit", total.by_class[0] - mark.by_class[0]),
            ("remote_hit", total.by_class[1] - mark.by_class[1]),
            ("local_miss", total.by_class[2] - mark.by_class[2]),
            ("remote_miss", total.by_class[3] - mark.by_class[3]),
            ("combined", total.combined - mark.combined),
            ("mshr_full", total.mshr_full - mark.mshr_full),
        ],
    );
    *mark = total.clone();
    *delay_mark = delay;
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{ArrayKind, KernelBuilder, MemProfile, Opcode};
    use vliw_mem::build_cache;
    use vliw_sched::{schedule_kernel, ClusterPolicy, ScheduleOptions};

    fn sim(
        kernel: &LoopKernel,
        machine: &MachineConfig,
        policy: ClusterPolicy,
        cap: u64,
    ) -> (Schedule, LoopSimResult) {
        let schedule = schedule_kernel(kernel, machine, ScheduleOptions::new(policy)).unwrap();
        assert!(schedule.verify(kernel, machine).is_empty());
        let mut cache = build_cache(machine);
        let hints = AttractionHints::allow_all(kernel);
        let kernel2 = kernel.clone();
        let mut addr = move |op: OpId, iter: u64| -> u64 {
            let m = kernel2.op(op).mem.as_ref().unwrap();
            (m.offset + m.stride.unwrap_or(0) * iter as i64) as u64
        };
        let r = simulate_loop(
            kernel,
            &schedule,
            machine,
            cache.as_mut(),
            &mut addr,
            &hints,
            &SimOptions {
                iteration_cap: cap,
                warmup_iterations: 0,
            },
        );
        (schedule, r)
    }

    /// A loop whose accesses all stay in their home cluster (stride = N×I,
    /// ops pinned to the preferred cluster) and whose loads carry the
    /// remote-miss latency promise: nothing can run late, zero stall.
    #[test]
    fn overprovisioned_latency_never_stalls() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 8192, ArrayKind::Global);
        let (ld, v) = b.load("ld", a, 0, 16, 4);
        let (_, w) = b.int_op("add", Opcode::Add, &[v.into()]);
        let (st, _) = b.store("st", a, 4096, 16, 4, w);
        b.set_profile(ld, MemProfile::concentrated(1.0, 0, 4));
        b.set_profile(st, MemProfile::concentrated(1.0, 0, 4));
        let k = b.finish(128.0);
        let m = MachineConfig::word_interleaved_4();
        let (s, r) = sim(&k, &m, ClusterPolicy::NoChains, 128);
        // loads assumed at remote-miss latency: no promise can be broken
        assert_eq!(s.op(OpId::new(0)).assumed_latency, 15);
        assert_eq!(s.op(OpId::new(0)).cluster, 0, "pinned to its home cluster");
        assert_eq!(r.stall_cycles, 0.0);
        let expected = (128 + s.stage_count() as u64 - 1) * s.ii as u64;
        assert!((r.compute_cycles - expected as f64).abs() < 1e-9);
    }

    /// A recurrence forces the load to the local-hit latency; make its
    /// addresses remote (stride walks other clusters) and stalls appear.
    #[test]
    fn broken_promises_stall_and_attribute() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 8192, ArrayKind::Global);
        let (ld, v) = b.load("ld", a, 0, 4, 4);
        let (_, w) = b.int_op("add", Opcode::Add, &[v.into()]);
        let (st, _) = b.store("st", a, 4096, 4, 4, w);
        b.mem_dep(st, ld, vliw_ir::DepKind::MemFlow, 1);
        b.set_profile(ld, MemProfile::concentrated(1.0, 0, 4));
        let k = b.finish(256.0);
        let m = MachineConfig::word_interleaved_4();
        let (s, r) = sim(&k, &m, ClusterPolicy::PreBuildChains, 256);
        // the recurrence forced an optimistic latency on the load
        assert!(s.op(OpId::new(0)).assumed_latency < 15);
        // a 4-byte stride visits all four clusters: 3 in 4 accesses are
        // remote -> the too-optimistic promise breaks and the core stalls
        assert!(r.stall_cycles > 0.0, "remote accesses must stall");
        assert!(r.stall_by.total() > 0.0);
        assert!(
            r.stall_by.of(AccessClass::RemoteHit) + r.stall_by.of(AccessClass::RemoteMiss) > 0.0,
            "stall attributed to remote accesses"
        );
        // attribution identifies the load as the culprit
        assert!(r.stall_by_op[0] > 0.0);
        assert_eq!(r.stall_by_op[1], 0.0);
    }

    #[test]
    fn scaling_extrapolates_cycles() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 512, ArrayKind::Global);
        let (_, v) = b.load("ld", a, 0, 4, 4);
        b.store("st", a, 256, 4, 4, v);
        let k = b.finish(10_000.0);
        let m = MachineConfig::word_interleaved_4();
        let (_, r) = sim(&k, &m, ClusterPolicy::Free, 100);
        assert_eq!(r.sim_iterations, 100);
        assert!((r.scale - 100.0).abs() < 1e-9);
        // compute per simulated iteration times the scale
        assert!(r.compute_cycles > 9_000.0);
    }

    #[test]
    fn stores_never_stall_consumers() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 512, ArrayKind::Global);
        let (_, c) = b.int_const("c");
        b.store("st", a, 0, 4, 4, c);
        let k = b.finish(64.0);
        let m = MachineConfig::word_interleaved_4();
        let (_, r) = sim(&k, &m, ClusterPolicy::Free, 64);
        assert_eq!(r.stall_cycles, 0.0);
    }

    #[test]
    fn mem_stats_cover_all_accesses() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 2048, ArrayKind::Global);
        let (_, v) = b.load("ld1", a, 0, 4, 4);
        let (_, w) = b.load("ld2", a, 1024, 4, 4);
        let (_, x) = b.int_op("add", Opcode::Add, &[v.into(), w.into()]);
        b.store("st", a, 512, 4, 4, x);
        let k = b.finish(50.0);
        let m = MachineConfig::word_interleaved_4();
        let (_, r) = sim(&k, &m, ClusterPolicy::Free, 50);
        assert_eq!(r.mem.total(), 3 * 50);
    }
}
