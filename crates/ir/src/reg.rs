//! Virtual registers.

use std::fmt;

/// A virtual register.
///
/// Kernels are in a per-iteration SSA-like form: each `VirtReg` has exactly
/// one defining operation inside the loop body, or none at all, in which case
/// it is a *live-in* (a loop-invariant value produced before the loop).
/// Register allocation itself is outside the scope of the paper; the
/// scheduler only needs def-use information, which this form makes exact.
///
/// # Example
///
/// ```
/// use vliw_ir::VirtReg;
/// let r = VirtReg::new(3);
/// assert_eq!(r.index(), 3);
/// assert_eq!(r.to_string(), "%r3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtReg(u32);

impl VirtReg {
    /// Creates a register with the given index.
    pub fn new(index: u32) -> Self {
        VirtReg(index)
    }

    /// The register's index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for VirtReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_accessors() {
        let r = VirtReg::new(17);
        assert_eq!(r.index(), 17);
        assert_eq!(format!("{r}"), "%r17");
        assert_eq!(format!("{r:?}"), "VirtReg(17)");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(VirtReg::new(1) < VirtReg::new(2));
        assert_eq!(VirtReg::new(5), VirtReg::new(5));
    }
}
