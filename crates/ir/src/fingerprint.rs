//! Toolchain-stable structural fingerprinting of kernels.
//!
//! The fingerprint is the content address used by every cache that outlives
//! a process: the measured-profile store keys its entries by it, and the
//! schedule cache persists schedules under it. Two properties matter:
//!
//! * **Stability** — the hash must not depend on the standard library's
//!   `DefaultHasher` (explicitly unstable across releases) or on `Debug`
//!   formatting (which silently changes when a field is added or a derive
//!   is reordered). [`StableHasher`] is a hand-rolled 64-bit FNV-1a over an
//!   explicitly defined byte stream.
//! * **Profile blindness** — attached [`MemProfile`]s describe *how* a
//!   kernel behaved, not *what* it is. [`kernel_fingerprint`] walks every
//!   schedule-relevant structural field and skips `MemAccessInfo::profile`,
//!   so attaching or re-attaching measurements never changes a kernel's
//!   identity (and a stored measurement can always be matched back to the
//!   kernel it was taken from).

use std::hash::Hasher;

use crate::kernel::LoopKernel;
use crate::mem_access::ArrayKind;
use crate::op::Opcode;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a hasher with a fully specified byte stream.
///
/// Implements [`std::hash::Hasher`], so `#[derive(Hash)]` types (for
/// example a masked `MachineConfig`) can be fed into it directly; the
/// resulting digest depends only on the declared field order and the FNV
/// constants, never on the toolchain.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feeds a length-prefixed string (prefix avoids concatenation
    /// ambiguity between adjacent variable-length fields).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Feeds an `f64` by its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds an `Option<u64>`-shaped field with an explicit presence tag.
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.write_u8(0),
            Some(x) => {
                self.write_u8(1);
                self.write_u64(x);
            }
        }
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    // Fix the integer encodings to little-endian bytes so the stream does
    // not depend on the host (the default impls already do this, but the
    // contract here is load-bearing enough to spell out).
    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }
    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }
    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }
    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }
    fn write_usize(&mut self, i: usize) {
        self.write(&(i as u64).to_le_bytes());
    }
    fn write_i64(&mut self, i: i64) {
        self.write(&i.to_le_bytes());
    }
}

fn opcode_tag(op: Opcode) -> u8 {
    match op {
        Opcode::Add => 0,
        Opcode::Sub => 1,
        Opcode::Mul => 2,
        Opcode::Div => 3,
        Opcode::And => 4,
        Opcode::Or => 5,
        Opcode::Xor => 6,
        Opcode::Shl => 7,
        Opcode::Shr => 8,
        Opcode::Cmp => 9,
        Opcode::Select => 10,
        Opcode::FAdd => 11,
        Opcode::FSub => 12,
        Opcode::FMul => 13,
        Opcode::FDiv => 14,
        Opcode::Load => 15,
        Opcode::Store => 16,
    }
}

fn array_kind_tag(kind: ArrayKind) -> u8 {
    match kind {
        ArrayKind::Global => 0,
        ArrayKind::Stack => 1,
        ArrayKind::Heap => 2,
    }
}

fn dep_kind_tag(kind: crate::ddg::DepKind) -> u8 {
    use crate::ddg::DepKind::*;
    match kind {
        RegFlow => 0,
        RegAnti => 1,
        RegOut => 2,
        MemFlow => 3,
        MemAnti => 4,
        MemOut => 5,
    }
}

/// A stable structural fingerprint of a kernel.
///
/// Walks name, trip counts, arrays, operations (id, name, opcode,
/// destination, sources, memory-access shape) and dependence edges.
/// Attached profiles ([`MemAccessInfo::profile`](crate::MemAccessInfo))
/// are deliberately **excluded**: the fingerprint identifies the kernel
/// body, and measurements keyed by it must survive being attached.
pub fn kernel_fingerprint(kernel: &LoopKernel) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(&kernel.name);
    h.write_f64(kernel.avg_trip);
    h.write_f64(kernel.invocations);

    h.write_u64(kernel.arrays.len() as u64);
    for a in &kernel.arrays {
        h.write_u64(a.id.index() as u64);
        h.write_str(&a.name);
        h.write_u64(a.size);
        h.write_u8(array_kind_tag(a.kind));
    }

    h.write_u64(kernel.ops.len() as u64);
    for op in &kernel.ops {
        h.write_u64(op.id.index() as u64);
        h.write_str(&op.name);
        h.write_u8(opcode_tag(op.opcode));
        h.write_opt_u64(op.dst.map(|d| u64::from(d.index())));
        h.write_u64(op.srcs.len() as u64);
        for s in &op.srcs {
            h.write_u64(u64::from(s.reg.index()));
            h.write_u64(u64::from(s.distance));
        }
        match &op.mem {
            None => h.write_u8(0),
            Some(m) => {
                h.write_u8(1);
                h.write_u64(m.array.index() as u64);
                h.write_i64(m.offset);
                match m.stride {
                    None => h.write_u8(0),
                    Some(s) => {
                        h.write_u8(1);
                        h.write_i64(s);
                    }
                }
                h.write_u8(m.granularity);
                h.write_u8(u8::from(m.indirect));
                // m.profile intentionally skipped
            }
        }
    }

    h.write_u64(kernel.edges.len() as u64);
    for e in &kernel.edges {
        h.write_u64(e.from.index() as u64);
        h.write_u64(e.to.index() as u64);
        h.write_u8(dep_kind_tag(e.kind));
        h.write_u64(u64::from(e.distance));
    }

    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::mem_access::MemProfile;

    fn kernel() -> LoopKernel {
        let mut b = KernelBuilder::new("fp_probe");
        let a = b.array("a", 4096, ArrayKind::Heap);
        let out = b.array("b", 4096, ArrayKind::Global);
        let (_, v) = b.load("ld", a, 0, 4, 4);
        let (_, w) = b.int_op("add", Opcode::Add, &[v.into(), v.into()]);
        b.store("st", out, 8, 4, 4, w);
        b.finish(128.0)
    }

    #[test]
    fn fingerprint_is_deterministic_and_structural() {
        let k = kernel();
        assert_eq!(kernel_fingerprint(&k), kernel_fingerprint(&k.clone()));

        let mut offset = kernel();
        offset.ops[0].mem.as_mut().unwrap().offset = 4;
        assert_ne!(kernel_fingerprint(&kernel()), kernel_fingerprint(&offset));

        let mut trip = kernel();
        trip.avg_trip += 1.0;
        assert_ne!(kernel_fingerprint(&kernel()), kernel_fingerprint(&trip));
    }

    #[test]
    fn fingerprint_ignores_attached_profiles() {
        let mut k = kernel();
        let before = kernel_fingerprint(&k);
        k.ops[0].mem.as_mut().unwrap().profile = Some(MemProfile::concentrated(0.5, 1, 4));
        assert_eq!(before, kernel_fingerprint(&k));
    }

    #[test]
    fn byte_stream_is_pinned() {
        // Pin the encoding against an independent FNV-1a computation: if
        // this changes, every persisted store is invalidated — bump the
        // store versions when touching the hasher.
        let mut h = StableHasher::new();
        h.write_str("ab");
        h.write_u64(7);
        let mut state = FNV_OFFSET;
        let stream = 2u64
            .to_le_bytes()
            .into_iter()
            .chain(*b"ab")
            .chain(7u64.to_le_bytes());
        for b in stream {
            state ^= u64::from(b);
            state = state.wrapping_mul(FNV_PRIME);
        }
        assert_eq!(h.finish(), state);
    }
}
