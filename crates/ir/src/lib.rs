//! Loop/operation IR and data-dependence graphs for clustered VLIW scheduling.
//!
//! This crate is the compiler-side substrate of the reproduction of
//! *"Effective Instruction Scheduling Techniques for an Interleaved Cache
//! Clustered VLIW Processor"* (Gibert, Sánchez & González, MICRO-35, 2002).
//! It plays the role the IMPACT IR plays in the paper: it represents the
//! innermost-loop bodies (hyperblock-like single-basic-block kernels) that the
//! modulo scheduler consumes, together with the memory-access metadata the
//! scheduling techniques rely on (strides, granularities, profiled hit rates
//! and preferred-cluster histograms, and conservative memory-dependence
//! edges).
//!
//! The main types are:
//!
//! * [`LoopKernel`] — a loop body: operations, dependence edges, the arrays it
//!   touches and its profiled trip count.
//! * [`Operation`] / [`Opcode`] / [`VirtReg`] — individual operations in a
//!   (per-iteration) SSA-like form: every virtual register has exactly one
//!   definition per iteration, and a source operand can name the value
//!   produced in the current iteration or a previous one
//!   ([`SrcOperand::distance`]).
//! * [`DepEdge`] / [`DepKind`] — dependence edges with iteration distances.
//!   Register flow edges are derived automatically from def-use information by
//!   [`KernelBuilder`]; register anti/output and memory edges are added
//!   explicitly (modelling the IMPACT memory disambiguator's conservative
//!   output).
//! * [`Ddg`] — an adjacency view used by the scheduler.
//! * [`KernelBuilder`] — a fluent constructor for kernels.
//! * [`unroll`] — loop unrolling with register renaming and stride/offset
//!   bookkeeping (step 1 of the paper's algorithm).
//!
//! # Example
//!
//! Build the two-instruction copy loop from §4.3 of the paper
//! (`b[i] = f(a[i])`) and unroll it four times:
//!
//! ```
//! use vliw_ir::{ArrayKind, KernelBuilder, unroll};
//!
//! let mut b = KernelBuilder::new("copy_loop");
//! let a = b.array("a", 4096, ArrayKind::Heap);
//! let out = b.array("b", 4096, ArrayKind::Heap);
//! let (_, v) = b.load("ld_a", a, 0, 4, 4);      // ld r3, a[i]
//! let (_, w) = b.int_op("compute", vliw_ir::Opcode::Add, &[v.into(), v.into()]);
//! b.store("st_b", out, 0, 4, 4, w);             // st r4, b[i]
//! let kernel = b.finish(256.0);
//!
//! let unrolled = unroll(&kernel, 4);
//! assert_eq!(unrolled.ops.len(), 3 * 4);
//! // after unrolling, each copy's stride is 16 bytes (4 elements advance)
//! assert!(unrolled.ops.iter().filter_map(|o| o.mem.as_ref()).all(|m| m.stride == Some(16)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod ddg;
mod fingerprint;
mod kernel;
mod mem_access;
mod op;
mod reg;
mod unroll;

pub use builder::KernelBuilder;
pub use ddg::{Ddg, DepEdge, DepKind};
pub use fingerprint::{kernel_fingerprint, StableHasher};
pub use kernel::LoopKernel;
pub use mem_access::{ArrayId, ArrayInfo, ArrayKind, LatencyProfile, MemAccessInfo, MemProfile};
pub use op::{FuKind, OpId, Opcode, Operation, SrcOperand};
pub use reg::VirtReg;
pub use unroll::unroll;
