//! Loop kernels.

use std::fmt;

use crate::ddg::DepEdge;
use crate::mem_access::ArrayInfo;
use crate::op::{OpId, Operation};
use crate::reg::VirtReg;

/// An innermost-loop body ready for modulo scheduling.
///
/// This is the unit the paper's techniques operate on: a single-basic-block
/// (hyperblock-style, if-converted) loop body with its dependence edges,
/// the arrays it references and its profiled average trip count.
///
/// Invariants maintained by [`KernelBuilder`](crate::KernelBuilder):
/// every [`Operation::id`] equals its index in `ops`; every register has at
/// most one defining operation; every dependence edge references operations
/// inside the kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopKernel {
    /// Loop name (unique within a benchmark model).
    pub name: String,
    /// Operations, indexed by [`OpId`].
    pub ops: Vec<Operation>,
    /// Dependence edges (register flow edges derived from def-use, plus any
    /// explicitly added register-anti/output and memory edges).
    pub edges: Vec<DepEdge>,
    /// Arrays referenced by the kernel's memory operations.
    pub arrays: Vec<ArrayInfo>,
    /// Average iterations per entry, from profiling.
    pub avg_trip: f64,
    /// Number of times the loop is entered per program run (profiled).
    pub invocations: f64,
}

impl LoopKernel {
    /// The operation with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// Iterator over memory operations.
    pub fn mem_ops(&self) -> impl Iterator<Item = &Operation> + '_ {
        self.ops.iter().filter(|o| o.is_mem())
    }

    /// Number of memory operations.
    pub fn n_mem_ops(&self) -> usize {
        self.mem_ops().count()
    }

    /// The defining operation of `reg`, or `None` for live-in registers.
    pub fn def_of(&self, reg: VirtReg) -> Option<OpId> {
        self.ops.iter().find(|o| o.dst == Some(reg)).map(|o| o.id)
    }

    /// Total dynamic operations executed per program run
    /// (`ops × avg_trip × invocations`), the weight used for whole-benchmark
    /// aggregation in the paper's figures.
    pub fn dynamic_ops(&self) -> f64 {
        self.ops.len() as f64 * self.avg_trip * self.invocations
    }

    /// Total dynamic memory accesses per program run.
    pub fn dynamic_mem_accesses(&self) -> f64 {
        self.n_mem_ops() as f64 * self.avg_trip * self.invocations
    }
}

impl fmt::Display for LoopKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "loop {} (trip {:.1} x {:.1}):",
            self.name, self.avg_trip, self.invocations
        )?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        for e in &self.edges {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::mem_access::ArrayKind;
    use crate::op::Opcode;

    fn sample() -> LoopKernel {
        let mut b = KernelBuilder::new("s");
        let a = b.array("a", 1024, ArrayKind::Global);
        let (_, v) = b.load("ld", a, 0, 4, 4);
        let (_, w) = b.int_op("add", Opcode::Add, &[v.into()]);
        b.store("st", a, 512, 4, 4, w);
        b.finish(100.0)
    }

    #[test]
    fn counts_and_lookup() {
        let k = sample();
        assert_eq!(k.ops.len(), 3);
        assert_eq!(k.n_mem_ops(), 2);
        assert_eq!(k.op(OpId::new(1)).opcode, Opcode::Add);
        assert!((k.dynamic_ops() - 300.0).abs() < 1e-9);
        assert!((k.dynamic_mem_accesses() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn def_lookup() {
        let k = sample();
        let v = k.op(OpId::new(0)).dst.unwrap();
        assert_eq!(k.def_of(v), Some(OpId::new(0)));
        assert_eq!(k.def_of(VirtReg::new(999)), None);
    }

    #[test]
    fn display_is_nonempty() {
        let k = sample();
        let s = k.to_string();
        assert!(s.contains("loop s"));
        assert!(s.contains("load"));
    }
}
