//! Data-dependence graph: edges and adjacency view.

use std::fmt;

use crate::kernel::LoopKernel;
use crate::op::OpId;

/// The kind of a dependence edge.
///
/// The paper's example DDG (Figure 3) uses register-flow (RF), register-anti
/// (RA) and memory-anti (MA) edges; the full set also includes register
/// output and memory flow/output dependences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Register flow (true) dependence: producer's value is read.
    RegFlow,
    /// Register anti dependence: a read must not follow the next write.
    /// Two register anti-dependent instructions may share a cycle (§4.3.3).
    RegAnti,
    /// Register output dependence (write after write).
    RegOut,
    /// Memory flow dependence (store → load, possibly unresolved).
    MemFlow,
    /// Memory anti dependence (load → store).
    MemAnti,
    /// Memory output dependence (store → store).
    MemOut,
}

impl DepKind {
    /// Whether this is a register dependence.
    pub fn is_register(self) -> bool {
        matches!(self, DepKind::RegFlow | DepKind::RegAnti | DepKind::RegOut)
    }

    /// Whether this is a memory dependence. Memory dependences define the
    /// *memory dependent chains* of §4.3.2.
    pub fn is_memory(self) -> bool {
        !self.is_register()
    }
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::RegFlow => "RF",
            DepKind::RegAnti => "RA",
            DepKind::RegOut => "RO",
            DepKind::MemFlow => "MF",
            DepKind::MemAnti => "MA",
            DepKind::MemOut => "MO",
        };
        f.write_str(s)
    }
}

/// A dependence edge `from → to` with an iteration distance.
///
/// A distance of `d` means the instance of `to` in iteration `i + d` depends
/// on the instance of `from` in iteration `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DepEdge {
    /// Source operation.
    pub from: OpId,
    /// Destination operation.
    pub to: OpId,
    /// Dependence kind.
    pub kind: DepKind,
    /// Iteration distance (0 = same iteration).
    pub distance: u32,
}

impl DepEdge {
    /// Creates an edge.
    pub fn new(from: OpId, to: OpId, kind: DepKind, distance: u32) -> Self {
        DepEdge {
            from,
            to,
            kind,
            distance,
        }
    }
}

impl fmt::Display for DepEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -{}:d{}-> {}",
            self.from, self.kind, self.distance, self.to
        )
    }
}

/// Adjacency view of a kernel's dependence graph.
///
/// Holds, for every operation, the indices (into
/// [`LoopKernel::edges`](crate::LoopKernel::edges)) of its outgoing and
/// incoming edges. Built once per kernel and shared by the MII computation,
/// the node ordering and the scheduling engine.
#[derive(Debug, Clone)]
pub struct Ddg {
    n_ops: usize,
    edges: Vec<DepEdge>,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl Ddg {
    /// Builds the adjacency view for `kernel`.
    ///
    /// # Panics
    ///
    /// Panics if an edge references an operation id outside the kernel.
    pub fn build(kernel: &LoopKernel) -> Self {
        let n_ops = kernel.ops.len();
        let mut succs = vec![Vec::new(); n_ops];
        let mut preds = vec![Vec::new(); n_ops];
        for (i, e) in kernel.edges.iter().enumerate() {
            assert!(e.from.index() < n_ops, "edge {e} references unknown source");
            assert!(e.to.index() < n_ops, "edge {e} references unknown target");
            succs[e.from.index()].push(i);
            preds[e.to.index()].push(i);
        }
        Ddg {
            n_ops,
            edges: kernel.edges.clone(),
            succs,
            preds,
        }
    }

    /// Number of operations in the underlying kernel.
    pub fn n_ops(&self) -> usize {
        self.n_ops
    }

    /// All edges.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Outgoing edges of `op`.
    pub fn succ_edges(&self, op: OpId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.succs[op.index()].iter().map(move |&i| &self.edges[i])
    }

    /// Incoming edges of `op`.
    pub fn pred_edges(&self, op: OpId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.preds[op.index()].iter().map(move |&i| &self.edges[i])
    }

    /// Successor operations of `op` (with repetitions if multiple edges).
    pub fn succs(&self, op: OpId) -> impl Iterator<Item = OpId> + '_ {
        self.succ_edges(op).map(|e| e.to)
    }

    /// Predecessor operations of `op` (with repetitions if multiple edges).
    pub fn preds(&self, op: OpId) -> impl Iterator<Item = OpId> + '_ {
        self.pred_edges(op).map(|e| e.from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::op::Opcode;

    #[test]
    fn dep_kind_classification() {
        assert!(DepKind::RegFlow.is_register());
        assert!(DepKind::RegAnti.is_register());
        assert!(DepKind::RegOut.is_register());
        assert!(DepKind::MemFlow.is_memory());
        assert!(DepKind::MemAnti.is_memory());
        assert!(DepKind::MemOut.is_memory());
    }

    #[test]
    fn adjacency_roundtrip() {
        let mut b = KernelBuilder::new("t");
        let (o1, r1) = b.int_const("c1");
        let (o2, r2) = b.int_op("a", Opcode::Add, &[r1.into()]);
        let (o3, _) = b.int_op("b", Opcode::Sub, &[r1.into(), r2.into()]);
        let k = b.finish(10.0);
        let g = Ddg::build(&k);
        assert_eq!(g.n_ops(), 3);
        let s1: Vec<_> = g.succs(o1).collect();
        assert!(s1.contains(&o2) && s1.contains(&o3));
        let p3: Vec<_> = g.preds(o3).collect();
        assert_eq!(p3.len(), 2);
        assert!(g.succ_edges(o2).all(|e| e.kind == DepKind::RegFlow));
    }

    #[test]
    #[should_panic(expected = "unknown")]
    fn build_rejects_dangling_edges() {
        let mut b = KernelBuilder::new("t");
        let (_, r) = b.int_const("c");
        let _ = b.int_op("a", Opcode::Add, &[r.into()]);
        let mut k = b.finish(1.0);
        k.edges.push(DepEdge::new(
            OpId::new(0),
            OpId::new(99),
            DepKind::RegFlow,
            0,
        ));
        let _ = Ddg::build(&k);
    }
}
