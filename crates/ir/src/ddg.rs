//! Data-dependence graph: edges and adjacency view.

use std::fmt;

use crate::kernel::LoopKernel;
use crate::op::OpId;

/// The kind of a dependence edge.
///
/// The paper's example DDG (Figure 3) uses register-flow (RF), register-anti
/// (RA) and memory-anti (MA) edges; the full set also includes register
/// output and memory flow/output dependences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Register flow (true) dependence: producer's value is read.
    RegFlow,
    /// Register anti dependence: a read must not follow the next write.
    /// Two register anti-dependent instructions may share a cycle (§4.3.3).
    RegAnti,
    /// Register output dependence (write after write).
    RegOut,
    /// Memory flow dependence (store → load, possibly unresolved).
    MemFlow,
    /// Memory anti dependence (load → store).
    MemAnti,
    /// Memory output dependence (store → store).
    MemOut,
}

impl DepKind {
    /// Whether this is a register dependence.
    pub fn is_register(self) -> bool {
        matches!(self, DepKind::RegFlow | DepKind::RegAnti | DepKind::RegOut)
    }

    /// Whether this is a memory dependence. Memory dependences define the
    /// *memory dependent chains* of §4.3.2.
    pub fn is_memory(self) -> bool {
        !self.is_register()
    }
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::RegFlow => "RF",
            DepKind::RegAnti => "RA",
            DepKind::RegOut => "RO",
            DepKind::MemFlow => "MF",
            DepKind::MemAnti => "MA",
            DepKind::MemOut => "MO",
        };
        f.write_str(s)
    }
}

/// A dependence edge `from → to` with an iteration distance.
///
/// A distance of `d` means the instance of `to` in iteration `i + d` depends
/// on the instance of `from` in iteration `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DepEdge {
    /// Source operation.
    pub from: OpId,
    /// Destination operation.
    pub to: OpId,
    /// Dependence kind.
    pub kind: DepKind,
    /// Iteration distance (0 = same iteration).
    pub distance: u32,
}

impl DepEdge {
    /// Creates an edge.
    pub fn new(from: OpId, to: OpId, kind: DepKind, distance: u32) -> Self {
        DepEdge {
            from,
            to,
            kind,
            distance,
        }
    }
}

impl fmt::Display for DepEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -{}:d{}-> {}",
            self.from, self.kind, self.distance, self.to
        )
    }
}

/// Adjacency view of a kernel's dependence graph.
///
/// The view *borrows* the kernel's edge list (no copy) and stores the
/// per-operation adjacency in compressed sparse row (CSR) form: one flat
/// index array per direction plus `n_ops + 1` offsets, instead of a
/// `Vec<Vec<_>>` of per-node heap allocations. Built once per kernel and
/// shared by the MII computation, the node ordering and the scheduling
/// engine — all of which are on the scheduler's restart path, so building
/// must be cheap and allocation-light.
///
/// For each operation the edge indices (into
/// [`LoopKernel::edges`](crate::LoopKernel::edges)) appear in edge-list
/// order, exactly as the old nested-`Vec` layout produced them.
#[derive(Debug, Clone)]
pub struct Ddg<'k> {
    n_ops: usize,
    edges: &'k [DepEdge],
    // CSR adjacency: node v's outgoing edge indices are
    // succ_idx[succ_off[v]..succ_off[v+1]] (incoming: pred_*).
    succ_off: Vec<u32>,
    succ_idx: Vec<u32>,
    pred_off: Vec<u32>,
    pred_idx: Vec<u32>,
}

/// Builds one CSR direction: `key(edge)` is the node an edge is filed
/// under. Counting sort over nodes keeps edge indices in edge-list order.
fn csr(n_ops: usize, edges: &[DepEdge], key: impl Fn(&DepEdge) -> usize) -> (Vec<u32>, Vec<u32>) {
    let mut off = vec![0u32; n_ops + 1];
    for e in edges {
        off[key(e) + 1] += 1;
    }
    for v in 0..n_ops {
        off[v + 1] += off[v];
    }
    let mut idx = vec![0u32; edges.len()];
    let mut cursor = off.clone();
    for (i, e) in edges.iter().enumerate() {
        let k = key(e);
        idx[cursor[k] as usize] = i as u32;
        cursor[k] += 1;
    }
    (off, idx)
}

impl<'k> Ddg<'k> {
    /// Builds the adjacency view for `kernel`, borrowing its edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge references an operation id outside the kernel.
    pub fn build(kernel: &'k LoopKernel) -> Self {
        Self::from_edges(kernel.ops.len(), &kernel.edges)
    }

    /// Builds the adjacency view over an explicit edge slice (`n_ops`
    /// operations).
    ///
    /// # Panics
    ///
    /// Panics if an edge references an operation id `>= n_ops`.
    pub fn from_edges(n_ops: usize, edges: &'k [DepEdge]) -> Self {
        for e in edges {
            assert!(e.from.index() < n_ops, "edge {e} references unknown source");
            assert!(e.to.index() < n_ops, "edge {e} references unknown target");
        }
        let (succ_off, succ_idx) = csr(n_ops, edges, |e| e.from.index());
        let (pred_off, pred_idx) = csr(n_ops, edges, |e| e.to.index());
        Ddg {
            n_ops,
            edges,
            succ_off,
            succ_idx,
            pred_off,
            pred_idx,
        }
    }

    /// Number of operations in the underlying kernel.
    pub fn n_ops(&self) -> usize {
        self.n_ops
    }

    /// All edges.
    pub fn edges(&self) -> &'k [DepEdge] {
        self.edges
    }

    /// Outgoing edges of `op`.
    pub fn succ_edges(&self, op: OpId) -> impl Iterator<Item = &'k DepEdge> + '_ {
        let v = op.index();
        self.succ_idx[self.succ_off[v] as usize..self.succ_off[v + 1] as usize]
            .iter()
            .map(move |&i| &self.edges[i as usize])
    }

    /// Incoming edges of `op`.
    pub fn pred_edges(&self, op: OpId) -> impl Iterator<Item = &'k DepEdge> + '_ {
        let v = op.index();
        self.pred_idx[self.pred_off[v] as usize..self.pred_off[v + 1] as usize]
            .iter()
            .map(move |&i| &self.edges[i as usize])
    }

    /// Every edge incident to `op`: incoming edges first (in edge-list
    /// order), then outgoing. Self-edges appear once in each half. This is
    /// the view a placement searcher walks when it computes `op`'s
    /// feasible window against already-placed neighbors.
    pub fn incident_edges(&self, op: OpId) -> impl Iterator<Item = &'k DepEdge> + '_ {
        self.pred_edges(op).chain(self.succ_edges(op))
    }

    /// Number of edges incident to `op` (in-degree + out-degree; a
    /// self-edge counts twice). Cheap — two offset subtractions — so
    /// callers can size neighbor buffers before walking the edges.
    pub fn degree(&self, op: OpId) -> usize {
        let v = op.index();
        (self.pred_off[v + 1] - self.pred_off[v]) as usize
            + (self.succ_off[v + 1] - self.succ_off[v]) as usize
    }

    /// Successor operations of `op` (with repetitions if multiple edges).
    pub fn succs(&self, op: OpId) -> impl Iterator<Item = OpId> + '_ {
        self.succ_edges(op).map(|e| e.to)
    }

    /// Predecessor operations of `op` (with repetitions if multiple edges).
    pub fn preds(&self, op: OpId) -> impl Iterator<Item = OpId> + '_ {
        self.pred_edges(op).map(|e| e.from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::op::Opcode;

    #[test]
    fn dep_kind_classification() {
        assert!(DepKind::RegFlow.is_register());
        assert!(DepKind::RegAnti.is_register());
        assert!(DepKind::RegOut.is_register());
        assert!(DepKind::MemFlow.is_memory());
        assert!(DepKind::MemAnti.is_memory());
        assert!(DepKind::MemOut.is_memory());
    }

    #[test]
    fn adjacency_roundtrip() {
        let mut b = KernelBuilder::new("t");
        let (o1, r1) = b.int_const("c1");
        let (o2, r2) = b.int_op("a", Opcode::Add, &[r1.into()]);
        let (o3, _) = b.int_op("b", Opcode::Sub, &[r1.into(), r2.into()]);
        let k = b.finish(10.0);
        let g = Ddg::build(&k);
        assert_eq!(g.n_ops(), 3);
        let s1: Vec<_> = g.succs(o1).collect();
        assert!(s1.contains(&o2) && s1.contains(&o3));
        let p3: Vec<_> = g.preds(o3).collect();
        assert_eq!(p3.len(), 2);
        assert!(g.succ_edges(o2).all(|e| e.kind == DepKind::RegFlow));
    }

    #[test]
    fn csr_preserves_edge_list_order() {
        // two edges out of one node, plus a loop-carried back edge: the
        // succ/pred iterators must yield edges in edge-list order
        let mut b = KernelBuilder::new("t");
        let (o1, r1) = b.int_op("a", Opcode::Add, &[]);
        let (_o2, r2) = b.int_op("b", Opcode::Sub, &[r1.into()]);
        let (o3, _) = b.int_op("c", Opcode::Mul, &[r1.into(), r2.into()]);
        let mut k = b.finish(1.0);
        k.edges.push(DepEdge::new(o3, o1, DepKind::RegFlow, 1));
        let g = Ddg::build(&k);
        let out1: Vec<_> = g.succ_edges(o1).collect();
        let expect: Vec<_> = k.edges.iter().filter(|e| e.from == o1).collect();
        assert_eq!(out1, expect, "succ edges keep edge-list order");
        let in1: Vec<_> = g.pred_edges(o1).map(|e| (e.from, e.distance)).collect();
        assert_eq!(in1, [(o3, 1)]);
        // edge slice is borrowed, not copied
        assert_eq!(g.edges().as_ptr(), k.edges.as_ptr());
    }

    #[test]
    fn incident_view_and_degree() {
        let mut b = KernelBuilder::new("t");
        let (o1, r1) = b.int_op("a", Opcode::Add, &[]);
        let (o2, r2) = b.int_op("b", Opcode::Sub, &[r1.into()]);
        let (o3, _) = b.int_op("c", Opcode::Mul, &[r1.into(), r2.into()]);
        let mut k = b.finish(1.0);
        k.edges.push(DepEdge::new(o3, o1, DepKind::RegFlow, 2));
        let g = Ddg::build(&k);
        assert_eq!(g.degree(o1), 3); // in: o3; out: o2, o3
        assert_eq!(g.degree(o2), 2);
        let inc: Vec<_> = g.incident_edges(o1).map(|e| (e.from, e.to)).collect();
        assert_eq!(inc, [(o3, o1), (o1, o2), (o1, o3)], "preds then succs");
        // degrees sum to twice the edge count
        let total: usize = (0..g.n_ops()).map(|i| g.degree(OpId::new(i))).sum();
        assert_eq!(total, 2 * k.edges.len());
    }

    #[test]
    #[should_panic(expected = "unknown")]
    fn build_rejects_dangling_edges() {
        let mut b = KernelBuilder::new("t");
        let (_, r) = b.int_const("c");
        let _ = b.int_op("a", Opcode::Add, &[r.into()]);
        let mut k = b.finish(1.0);
        k.edges.push(DepEdge::new(
            OpId::new(0),
            OpId::new(99),
            DepKind::RegFlow,
            0,
        ));
        let _ = Ddg::build(&k);
    }
}
