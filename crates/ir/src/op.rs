//! Operations, opcodes and functional-unit kinds.

use std::fmt;

use crate::mem_access::MemAccessInfo;
use crate::reg::VirtReg;

/// Identifier of an operation within one [`LoopKernel`](crate::LoopKernel).
///
/// Ids are dense: they index into [`LoopKernel::ops`](crate::LoopKernel::ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(u32);

impl OpId {
    /// Creates an id from a dense index.
    pub fn new(index: usize) -> Self {
        OpId(index as u32)
    }

    /// The dense index of this operation.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The kind of functional unit an operation executes on.
///
/// The paper's machine has one unit of each kind per cluster (Table 2).
/// Inter-cluster register copies execute on the register buses, not on a
/// functional unit, and therefore have no `FuKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Integer ALU / multiplier / divider.
    Int,
    /// Floating-point unit.
    Fp,
    /// Memory (load/store) unit; the only unit that talks to the cache module.
    Mem,
}

impl FuKind {
    /// All functional-unit kinds, in a fixed order.
    pub const ALL: [FuKind; 3] = [FuKind::Int, FuKind::Fp, FuKind::Mem];
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuKind::Int => "INT",
            FuKind::Fp => "FP",
            FuKind::Mem => "MEM",
        };
        f.write_str(s)
    }
}

/// Operation opcodes.
///
/// The set is deliberately small — just enough to express Mediabench-style
/// media kernels (integer/fixed-point arithmetic, a little floating point,
/// loads and stores). Execution latencies live in the machine description
/// (`vliw-machine`), not here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Integer multiply.
    Mul,
    /// Integer divide.
    Div,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Integer compare (produces a predicate/flag value in a register).
    Cmp,
    /// Conditional select (predicated move, hyperblock-style if-conversion).
    Select,
    /// Floating-point add.
    FAdd,
    /// Floating-point subtract.
    FSub,
    /// Floating-point multiply.
    FMul,
    /// Floating-point divide.
    FDiv,
    /// Load from memory.
    Load,
    /// Store to memory.
    Store,
}

impl Opcode {
    /// The functional-unit kind this opcode executes on.
    pub fn fu_kind(self) -> FuKind {
        use Opcode::*;
        match self {
            Add | Sub | Mul | Div | And | Or | Xor | Shl | Shr | Cmp | Select => FuKind::Int,
            FAdd | FSub | FMul | FDiv => FuKind::Fp,
            Load | Store => FuKind::Mem,
        }
    }

    /// Whether this opcode reads memory.
    pub fn is_load(self) -> bool {
        self == Opcode::Load
    }

    /// Whether this opcode writes memory.
    pub fn is_store(self) -> bool {
        self == Opcode::Store
    }

    /// Whether this opcode accesses memory at all.
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::Div => "div",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Shl => "shl",
            Opcode::Shr => "shr",
            Opcode::Cmp => "cmp",
            Opcode::Select => "select",
            Opcode::FAdd => "fadd",
            Opcode::FSub => "fsub",
            Opcode::FMul => "fmul",
            Opcode::FDiv => "fdiv",
            Opcode::Load => "load",
            Opcode::Store => "store",
        };
        f.write_str(s)
    }
}

/// A source operand: a virtual register plus an iteration distance.
///
/// `distance == 0` reads the value defined in the *current* iteration,
/// `distance == d > 0` reads the value defined `d` iterations earlier
/// (a loop-carried use). Live-in registers (no definition inside the loop)
/// always use distance 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SrcOperand {
    /// The register read.
    pub reg: VirtReg,
    /// How many iterations earlier the value was defined.
    pub distance: u32,
}

impl SrcOperand {
    /// Reads `reg` as defined in the current iteration.
    pub fn new(reg: VirtReg) -> Self {
        SrcOperand { reg, distance: 0 }
    }

    /// Reads the value `reg` held `distance` iterations ago.
    pub fn with_distance(reg: VirtReg, distance: u32) -> Self {
        SrcOperand { reg, distance }
    }
}

impl From<VirtReg> for SrcOperand {
    fn from(reg: VirtReg) -> Self {
        SrcOperand::new(reg)
    }
}

impl fmt::Display for SrcOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.distance == 0 {
            write!(f, "{}", self.reg)
        } else {
            write!(f, "{}[-{}]", self.reg, self.distance)
        }
    }
}

/// One operation of a loop kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Operation {
    /// Dense identifier within the kernel.
    pub id: OpId,
    /// Human-readable label (used in traces and golden tests).
    pub name: String,
    /// The opcode.
    pub opcode: Opcode,
    /// Destination register, if the operation produces a value.
    pub dst: Option<VirtReg>,
    /// Source operands.
    pub srcs: Vec<SrcOperand>,
    /// Memory-access metadata; present exactly when `opcode.is_mem()`.
    pub mem: Option<MemAccessInfo>,
}

impl Operation {
    /// The functional-unit kind this operation occupies.
    pub fn fu_kind(&self) -> FuKind {
        self.opcode.fu_kind()
    }

    /// Whether this operation is a load.
    pub fn is_load(&self) -> bool {
        self.opcode.is_load()
    }

    /// Whether this operation is a store.
    pub fn is_store(&self) -> bool {
        self.opcode.is_store()
    }

    /// Whether this operation accesses memory.
    pub fn is_mem(&self) -> bool {
        self.opcode.is_mem()
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}): {}", self.id, self.name, self.opcode)?;
        if let Some(d) = self.dst {
            write!(f, " {d} <-")?;
        }
        for s in &self.srcs {
            write!(f, " {s}")?;
        }
        if let Some(m) = &self.mem {
            write!(f, " [{m}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_fu_kinds() {
        assert_eq!(Opcode::Add.fu_kind(), FuKind::Int);
        assert_eq!(Opcode::Select.fu_kind(), FuKind::Int);
        assert_eq!(Opcode::FMul.fu_kind(), FuKind::Fp);
        assert_eq!(Opcode::Load.fu_kind(), FuKind::Mem);
        assert_eq!(Opcode::Store.fu_kind(), FuKind::Mem);
    }

    #[test]
    fn mem_predicates() {
        assert!(Opcode::Load.is_load() && !Opcode::Load.is_store());
        assert!(Opcode::Store.is_store() && !Opcode::Store.is_load());
        assert!(Opcode::Load.is_mem() && Opcode::Store.is_mem());
        assert!(!Opcode::Add.is_mem());
    }

    #[test]
    fn src_operand_conversions() {
        let r = VirtReg::new(4);
        let s: SrcOperand = r.into();
        assert_eq!(s, SrcOperand::new(r));
        assert_eq!(s.distance, 0);
        let p = SrcOperand::with_distance(r, 1);
        assert_eq!(p.distance, 1);
        assert_eq!(p.to_string(), "%r4[-1]");
    }

    #[test]
    fn op_id_roundtrip() {
        let id = OpId::new(12);
        assert_eq!(id.index(), 12);
        assert_eq!(id.to_string(), "n12");
    }
}
