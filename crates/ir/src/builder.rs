//! Fluent construction of loop kernels.

use std::collections::HashMap;

use crate::ddg::{DepEdge, DepKind};
use crate::kernel::LoopKernel;
use crate::mem_access::{ArrayId, ArrayInfo, ArrayKind, MemAccessInfo, MemProfile};
use crate::op::{OpId, Opcode, Operation, SrcOperand};
use crate::reg::VirtReg;

/// Builds a [`LoopKernel`], deriving register-flow dependence edges from
/// def-use information automatically.
///
/// Register anti/output dependences are *not* derived automatically: the
/// modulo scheduler is assumed to rename kernel lifetimes (modulo variable
/// expansion / rotating files), which removes them — exactly the assumption
/// Swing Modulo Scheduling makes. When a false register dependence matters
/// (as in the paper's Figure 3 example), add it explicitly with
/// [`KernelBuilder::raw_edge`]. Memory dependences — the output of the
/// IMPACT-style conservative disambiguator — are added with
/// [`KernelBuilder::mem_dep`].
///
/// # Example
///
/// ```
/// use vliw_ir::{ArrayKind, DepKind, KernelBuilder, Opcode};
///
/// let mut b = KernelBuilder::new("acc");
/// let a = b.array("a", 4096, ArrayKind::Heap);
/// let (ld, v) = b.load("ld", a, 0, 4, 4);
/// // loop-carried accumulation: acc += a[i]
/// let (add, acc) = b.int_op_carried("acc", Opcode::Add, &[v.into()], 1);
/// let (st, _) = b.store("st", a, 2048, 4, 4, acc);
/// b.mem_dep(st, ld, DepKind::MemAnti, 1);
/// let k = b.finish(128.0);
/// assert_eq!(k.ops.len(), 3);
/// // edges: ld->add (RF), add->add (RF d=1), acc->st (RF), st->ld (MA d=1)
/// assert_eq!(k.edges.len(), 4);
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    ops: Vec<Operation>,
    arrays: Vec<ArrayInfo>,
    extra_edges: Vec<DepEdge>,
    next_reg: u32,
    invocations: f64,
}

impl KernelBuilder {
    /// Starts a new kernel with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            ops: Vec::new(),
            arrays: Vec::new(),
            extra_edges: Vec::new(),
            next_reg: 0,
            invocations: 1.0,
        }
    }

    /// Sets how many times the loop is entered per program run.
    pub fn invocations(&mut self, n: f64) -> &mut Self {
        self.invocations = n;
        self
    }

    /// Declares an array (data object) the kernel accesses.
    pub fn array(&mut self, name: impl Into<String>, size: u64, kind: ArrayKind) -> ArrayId {
        let id = ArrayId::new(self.arrays.len());
        self.arrays.push(ArrayInfo {
            id,
            name: name.into(),
            size,
            kind,
        });
        id
    }

    /// Allocates a fresh virtual register with no definition in the loop —
    /// a live-in (loop-invariant) value.
    pub fn live_in(&mut self) -> VirtReg {
        let r = VirtReg::new(self.next_reg);
        self.next_reg += 1;
        r
    }

    fn push_op(
        &mut self,
        name: impl Into<String>,
        opcode: Opcode,
        dst: Option<VirtReg>,
        srcs: Vec<SrcOperand>,
        mem: Option<MemAccessInfo>,
    ) -> OpId {
        debug_assert_eq!(opcode.is_mem(), mem.is_some(), "mem info iff memory opcode");
        let id = OpId::new(self.ops.len());
        self.ops.push(Operation {
            id,
            name: name.into(),
            opcode,
            dst,
            srcs,
            mem,
        });
        id
    }

    fn fresh_def(&mut self) -> VirtReg {
        let r = VirtReg::new(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Adds a non-memory operation producing a value.
    ///
    /// # Panics
    ///
    /// Panics if `opcode` is a memory or store opcode.
    pub fn int_op(
        &mut self,
        name: impl Into<String>,
        opcode: Opcode,
        srcs: &[SrcOperand],
    ) -> (OpId, VirtReg) {
        assert!(!opcode.is_mem(), "use load/store for memory operations");
        let dst = self.fresh_def();
        let id = self.push_op(name, opcode, Some(dst), srcs.to_vec(), None);
        (id, dst)
    }

    /// Adds a non-memory operation whose result feeds itself `distance`
    /// iterations later (a loop-carried recurrence like `acc += x`).
    pub fn int_op_carried(
        &mut self,
        name: impl Into<String>,
        opcode: Opcode,
        srcs: &[SrcOperand],
        distance: u32,
    ) -> (OpId, VirtReg) {
        assert!(distance > 0, "carried distance must be positive");
        let dst = self.fresh_def();
        let mut all = srcs.to_vec();
        all.push(SrcOperand::with_distance(dst, distance));
        let id = self.push_op(name, opcode, Some(dst), all, None);
        (id, dst)
    }

    /// Adds a constant/loop-invariant producing operation (no sources).
    /// Modelled as an integer move; useful to seed tests.
    pub fn int_const(&mut self, name: impl Into<String>) -> (OpId, VirtReg) {
        self.int_op(name, Opcode::Add, &[])
    }

    /// Adds a strided load. Returns the operation id and the loaded value.
    pub fn load(
        &mut self,
        name: impl Into<String>,
        array: ArrayId,
        offset: i64,
        stride: i64,
        granularity: u8,
    ) -> (OpId, VirtReg) {
        let dst = self.fresh_def();
        let mem = MemAccessInfo::strided(array, offset, stride, granularity);
        let id = self.push_op(name, Opcode::Load, Some(dst), Vec::new(), Some(mem));
        (id, dst)
    }

    /// Adds an indirect load whose address depends on `index_value`
    /// (an `a[b[i]]`-style access: unknown stride, profiled cluster spread).
    pub fn load_indirect(
        &mut self,
        name: impl Into<String>,
        array: ArrayId,
        index_value: VirtReg,
        granularity: u8,
    ) -> (OpId, VirtReg) {
        let dst = self.fresh_def();
        let mem = MemAccessInfo::indirect(array, granularity);
        let id = self.push_op(
            name,
            Opcode::Load,
            Some(dst),
            vec![SrcOperand::new(index_value)],
            Some(mem),
        );
        (id, dst)
    }

    /// Adds a strided store of `value`. Returns the operation id and, for
    /// symmetry with the other constructors, the stored register.
    pub fn store(
        &mut self,
        name: impl Into<String>,
        array: ArrayId,
        offset: i64,
        stride: i64,
        granularity: u8,
        value: VirtReg,
    ) -> (OpId, VirtReg) {
        let mem = MemAccessInfo::strided(array, offset, stride, granularity);
        let id = self.push_op(
            name,
            Opcode::Store,
            None,
            vec![SrcOperand::new(value)],
            Some(mem),
        );
        (id, value)
    }

    /// Adds an indirect store.
    pub fn store_indirect(
        &mut self,
        name: impl Into<String>,
        array: ArrayId,
        index_value: VirtReg,
        granularity: u8,
        value: VirtReg,
    ) -> (OpId, VirtReg) {
        let mem = MemAccessInfo::indirect(array, granularity);
        let id = self.push_op(
            name,
            Opcode::Store,
            None,
            vec![SrcOperand::new(value), SrcOperand::new(index_value)],
            Some(mem),
        );
        (id, value)
    }

    /// Adds a memory dependence edge (the conservative disambiguator's
    /// output). `kind` must be a memory dependence kind.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a register dependence kind or either endpoint is
    /// not a memory operation.
    pub fn mem_dep(&mut self, from: OpId, to: OpId, kind: DepKind, distance: u32) -> &mut Self {
        assert!(
            kind.is_memory(),
            "mem_dep requires a memory dependence kind"
        );
        assert!(
            self.ops[from.index()].is_mem() && self.ops[to.index()].is_mem(),
            "memory dependences connect memory operations"
        );
        self.extra_edges
            .push(DepEdge::new(from, to, kind, distance));
        self
    }

    /// Adds an arbitrary extra dependence edge (register anti/output edges,
    /// or hand-built graphs like the paper's Figure 3).
    pub fn raw_edge(&mut self, from: OpId, to: OpId, kind: DepKind, distance: u32) -> &mut Self {
        self.extra_edges
            .push(DepEdge::new(from, to, kind, distance));
        self
    }

    /// Attaches profile data to a memory operation (used by tests and the
    /// worked example; the real profiling pass lives in `vliw-workloads`).
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a memory operation.
    pub fn set_profile(&mut self, op: OpId, profile: MemProfile) -> &mut Self {
        let mem = self.ops[op.index()]
            .mem
            .as_mut()
            .expect("profile data attaches to memory operations");
        mem.profile = Some(profile);
        self
    }

    /// Finishes the kernel, deriving register-flow edges from def-use
    /// information.
    ///
    /// # Panics
    ///
    /// Panics if a source operand with distance 0 reads a register that is
    /// never defined and was not created with [`KernelBuilder::live_in`].
    pub fn finish(self, avg_trip: f64) -> LoopKernel {
        let mut defs: HashMap<VirtReg, OpId> = HashMap::new();
        for op in &self.ops {
            if let Some(d) = op.dst {
                let prev = defs.insert(d, op.id);
                assert!(
                    prev.is_none(),
                    "register {d} defined twice (SSA form required)"
                );
            }
        }
        let mut edges = Vec::new();
        for op in &self.ops {
            for s in &op.srcs {
                if let Some(&def) = defs.get(&s.reg) {
                    edges.push(DepEdge::new(def, op.id, DepKind::RegFlow, s.distance));
                }
                // registers with no kernel definition are live-ins: no edge
            }
        }
        edges.extend(self.extra_edges);
        LoopKernel {
            name: self.name,
            ops: self.ops,
            edges,
            arrays: self.arrays,
            avg_trip,
            invocations: self.invocations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_edges_from_def_use() {
        let mut b = KernelBuilder::new("t");
        let (c, r) = b.int_const("c");
        let (u, _) = b.int_op("u", Opcode::Mul, &[r.into(), r.into()]);
        let k = b.finish(1.0);
        // two uses of r -> two flow edges c->u
        let cu: Vec<_> = k
            .edges
            .iter()
            .filter(|e| e.from == c && e.to == u)
            .collect();
        assert_eq!(cu.len(), 2);
        assert!(cu
            .iter()
            .all(|e| e.kind == DepKind::RegFlow && e.distance == 0));
    }

    #[test]
    fn live_in_creates_no_edge() {
        let mut b = KernelBuilder::new("t");
        let inv = b.live_in();
        let _ = b.int_op("u", Opcode::Add, &[inv.into()]);
        let k = b.finish(1.0);
        assert!(k.edges.is_empty());
    }

    #[test]
    fn carried_op_self_edge() {
        let mut b = KernelBuilder::new("t");
        let (a, _) = b.int_op_carried("acc", Opcode::Add, &[], 1);
        let k = b.finish(1.0);
        assert_eq!(k.edges.len(), 1);
        let e = k.edges[0];
        assert_eq!((e.from, e.to, e.distance), (a, a, 1));
    }

    #[test]
    fn mem_dep_edges() {
        let mut b = KernelBuilder::new("t");
        let arr = b.array("a", 64, ArrayKind::Global);
        let (ld, v) = b.load("ld", arr, 0, 4, 4);
        let (st, _) = b.store("st", arr, 0, 4, 4, v);
        b.mem_dep(ld, st, DepKind::MemAnti, 0);
        b.mem_dep(st, ld, DepKind::MemFlow, 1);
        let k = b.finish(1.0);
        assert_eq!(k.edges.iter().filter(|e| e.kind.is_memory()).count(), 2);
    }

    #[test]
    #[should_panic(expected = "memory dependence kind")]
    fn mem_dep_rejects_register_kind() {
        let mut b = KernelBuilder::new("t");
        let arr = b.array("a", 64, ArrayKind::Global);
        let (ld, v) = b.load("ld", arr, 0, 4, 4);
        let (st, _) = b.store("st", arr, 0, 4, 4, v);
        b.mem_dep(ld, st, DepKind::RegFlow, 0);
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn double_definition_rejected() {
        let mut b = KernelBuilder::new("t");
        let (_, r) = b.int_const("c");
        // forge a second definition of the same register
        let id = OpId::new(b.ops.len());
        b.ops.push(Operation {
            id,
            name: "dup".into(),
            opcode: Opcode::Add,
            dst: Some(r),
            srcs: vec![],
            mem: None,
        });
        let _ = b.finish(1.0);
    }

    #[test]
    fn indirect_load_reads_index() {
        let mut b = KernelBuilder::new("t");
        let idx_arr = b.array("b", 256, ArrayKind::Global);
        let data = b.array("a", 4096, ArrayKind::Heap);
        let (_, i) = b.load("ld_idx", idx_arr, 0, 4, 4);
        let (ld2, _) = b.load_indirect("ld_data", data, i, 4);
        let k = b.finish(1.0);
        assert!(k.op(ld2).mem.as_ref().unwrap().indirect);
        // flow edge from index load to indirect load
        assert!(k
            .edges
            .iter()
            .any(|e| e.to == ld2 && e.kind == DepKind::RegFlow));
    }

    #[test]
    fn set_profile_attaches() {
        let mut b = KernelBuilder::new("t");
        let arr = b.array("a", 64, ArrayKind::Global);
        let (ld, _) = b.load("ld", arr, 0, 4, 4);
        b.set_profile(ld, MemProfile::concentrated(0.75, 1, 4));
        let k = b.finish(1.0);
        let p = k.op(ld).mem.as_ref().unwrap().profile.as_ref().unwrap();
        assert_eq!(p.preferred_cluster(), Some(1));
        assert!((p.hit_rate - 0.75).abs() < 1e-12);
    }
}
