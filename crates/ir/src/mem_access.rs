//! Memory-access metadata: arrays, static access descriptors and profiles.

use std::fmt;

/// Identifier of a logical array (data object) referenced by a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(u32);

impl ArrayId {
    /// Creates an id from a dense index.
    pub fn new(index: usize) -> Self {
        ArrayId(index as u32)
    }

    /// The dense index of this array.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Storage class of an array — determines how its base address behaves
/// across different program inputs (§4.3.4 of the paper).
///
/// * Globals are always mapped at the same address regardless of input, so
///   the paper applies no padding to them.
/// * Stack and heap objects land at input-dependent addresses; the paper
///   aligns stack frames and `malloc` results to an `N×I` boundary
///   ("variable alignment") so their `mod N×I` placement is stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayKind {
    /// Statically allocated; base address is input-independent.
    Global,
    /// Stack-allocated (locals, incoming/outgoing parameters).
    Stack,
    /// Dynamically allocated via the `malloc` family.
    Heap,
}

impl fmt::Display for ArrayKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArrayKind::Global => "global",
            ArrayKind::Stack => "stack",
            ArrayKind::Heap => "heap",
        };
        f.write_str(s)
    }
}

/// A logical array referenced by one or more memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayInfo {
    /// Identifier (dense within the kernel).
    pub id: ArrayId,
    /// Human-readable name.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Storage class.
    pub kind: ArrayKind,
}

/// A measured per-access latency distribution: how many dynamic accesses
/// of one memory operation completed in each observed latency, as counted
/// by a profiling run against the *timing* simulator (the delay-tracking
/// direction of the related work — richer than the four-class model,
/// because it folds in contention, combining and MSHR back-pressure).
///
/// Counts saturate instead of wrapping, entries are kept sorted by
/// latency, and the whole structure is plain integers so it serializes
/// and round-trips exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencyProfile {
    /// `(observed latency, dynamic access count)`, sorted by latency.
    pub counts: Vec<(u32, u64)>,
}

impl LatencyProfile {
    /// Records one access observed at `latency` cycles (saturating).
    pub fn record(&mut self, latency: u32) {
        match self.counts.binary_search_by_key(&latency, |&(l, _)| l) {
            Ok(i) => self.counts[i].1 = self.counts[i].1.saturating_add(1),
            Err(i) => self.counts.insert(i, (latency, 1)),
        }
    }

    /// Total accesses recorded (saturating sum).
    pub fn total(&self) -> u64 {
        self.counts
            .iter()
            .fold(0u64, |a, &(_, c)| a.saturating_add(c))
    }

    /// Whether no access was recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// The expectation of the distribution, or `None` when empty.
    pub fn expected(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let sum: f64 = self.counts.iter().map(|&(l, c)| l as f64 * c as f64).sum();
        Some(sum / total as f64)
    }

    /// The smallest latency `L` such that at least a fraction `p` of the
    /// accesses completed in `<= L` cycles (`p` clamped to `[0, 1]`), or
    /// `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<u32> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let need = (p.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(l, c) in &self.counts {
            seen = seen.saturating_add(c);
            if seen >= need {
                return Some(l);
            }
        }
        self.counts.last().map(|&(l, _)| l)
    }
}

/// Profile information for a single memory operation, gathered on the
/// *profile* input data set (Table 1 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct MemProfile {
    /// Fraction of dynamic accesses that hit in the cache, in `[0, 1]`.
    pub hit_rate: f64,
    /// Dynamic access counts per cluster (the "preferred cluster"
    /// histogram). Its length is the number of clusters profiled for.
    pub cluster_hist: Vec<u64>,
    /// Measured latency distribution, when the profile came from a timed
    /// (measured) profiling run; `None` for synthetic / functional
    /// profiles. Consumed by the delay-tracking scheduler backend.
    pub latency: Option<LatencyProfile>,
}

impl MemProfile {
    /// A profile that sends every access to `cluster` with the given hit
    /// rate — convenient for tests and the paper's worked example, where the
    /// preferred cluster and the local-access ratio are given directly.
    pub fn concentrated(hit_rate: f64, cluster: usize, n_clusters: usize) -> Self {
        let mut cluster_hist = vec![0; n_clusters];
        cluster_hist[cluster] = 100;
        MemProfile {
            hit_rate,
            cluster_hist,
            latency: None,
        }
    }

    /// A profile with an explicit local-access ratio: a fraction `local` of
    /// accesses go to `cluster`, the rest are spread evenly over the others.
    pub fn with_local_ratio(hit_rate: f64, cluster: usize, local: f64, n_clusters: usize) -> Self {
        assert!((0.0..=1.0).contains(&local), "local ratio must be in [0,1]");
        let total = 1_000_000.0;
        let mut cluster_hist = vec![0u64; n_clusters];
        for (c, slot) in cluster_hist.iter_mut().enumerate() {
            if c == cluster {
                // +1 guarantees the designated cluster wins histogram ties
                // (e.g. a 0.5 local ratio over two clusters, as in §4.3.3)
                *slot = (total * local) as u64 + 1;
            } else if n_clusters > 1 {
                *slot = (total * (1.0 - local) / (n_clusters as f64 - 1.0)) as u64;
            }
        }
        MemProfile {
            hit_rate,
            cluster_hist,
            latency: None,
        }
    }

    /// Total profiled accesses.
    pub fn total(&self) -> u64 {
        self.cluster_hist.iter().sum()
    }

    /// The preferred cluster: the one receiving the most accesses.
    /// Ties resolve to the lowest-numbered cluster. Returns `None` if the
    /// histogram is empty or all-zero.
    pub fn preferred_cluster(&self) -> Option<usize> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        self.cluster_hist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(c, _)| c)
    }

    /// Fraction of accesses that would be local if the operation were
    /// scheduled in `cluster`.
    pub fn local_ratio(&self, cluster: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.cluster_hist.get(cluster).copied().unwrap_or(0) as f64 / total as f64
    }

    /// The paper's "distribution of the preferred cluster information":
    /// ranges from `1.0` (all accesses in one cluster) down to
    /// `1/n_clusters` (evenly spread). Zero-access profiles report 0.
    pub fn concentration(&self) -> f64 {
        match self.preferred_cluster() {
            Some(c) => self.local_ratio(c),
            None => 0.0,
        }
    }
}

/// Static (compiler-visible) description of one memory operation's access
/// pattern, plus its profile once the profiling pass has run.
#[derive(Debug, Clone, PartialEq)]
pub struct MemAccessInfo {
    /// The array accessed.
    pub array: ArrayId,
    /// Byte offset of the iteration-0 access within the array.
    pub offset: i64,
    /// Byte stride per loop iteration, if the compiler can determine it.
    /// `None` for indirect accesses (`a[b[i]]`) and other unanalyzable
    /// address computations.
    pub stride: Option<i64>,
    /// Size of the accessed element in bytes (1, 2, 4 or 8).
    pub granularity: u8,
    /// Whether the address is computed from a previously loaded value.
    pub indirect: bool,
    /// Profile data (hit rate, preferred-cluster histogram); `None` until
    /// the profiling pass runs.
    pub profile: Option<MemProfile>,
}

impl MemAccessInfo {
    /// Creates a strided access descriptor.
    pub fn strided(array: ArrayId, offset: i64, stride: i64, granularity: u8) -> Self {
        MemAccessInfo {
            array,
            offset,
            stride: Some(stride),
            granularity,
            indirect: false,
            profile: None,
        }
    }

    /// Creates an indirect (unknown-stride) access descriptor.
    pub fn indirect(array: ArrayId, granularity: u8) -> Self {
        MemAccessInfo {
            array,
            offset: 0,
            stride: None,
            granularity,
            indirect: true,
            profile: None,
        }
    }

    /// The profiled hit rate, or a conservative default of 1.0 (the paper
    /// only considers instructions with hit rate > 0 for unrolling, and a
    /// missing profile should not disable the analysis in tests).
    pub fn hit_rate(&self) -> f64 {
        self.profile.as_ref().map_or(1.0, |p| p.hit_rate)
    }

    /// The profiled preferred cluster, if any.
    pub fn preferred_cluster(&self) -> Option<usize> {
        self.profile.as_ref().and_then(|p| p.preferred_cluster())
    }
}

impl fmt::Display for MemAccessInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.stride {
            Some(s) => write!(
                f,
                "{}+{}:{}B stride {}",
                self.array, self.offset, self.granularity, s
            ),
            None => write!(f, "{}[indirect]:{}B", self.array, self.granularity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concentrated_profile() {
        let p = MemProfile::concentrated(0.9, 2, 4);
        assert_eq!(p.preferred_cluster(), Some(2));
        assert_eq!(p.local_ratio(2), 1.0);
        assert_eq!(p.local_ratio(0), 0.0);
        assert_eq!(p.concentration(), 1.0);
    }

    #[test]
    fn local_ratio_profile() {
        let p = MemProfile::with_local_ratio(0.6, 1, 0.5, 2);
        assert_eq!(p.preferred_cluster(), Some(1));
        assert!((p.local_ratio(1) - 0.5).abs() < 1e-5);
        assert!((p.local_ratio(0) - 0.5).abs() < 1e-5);
    }

    #[test]
    fn even_spread_concentration() {
        let p = MemProfile {
            hit_rate: 1.0,
            cluster_hist: vec![25, 25, 25, 25],
            latency: None,
        };
        assert!((p.concentration() - 0.25).abs() < 1e-9);
        // tie resolves to the lowest cluster
        assert_eq!(p.preferred_cluster(), Some(0));
    }

    #[test]
    fn empty_profile() {
        let p = MemProfile {
            hit_rate: 0.0,
            cluster_hist: vec![0, 0],
            latency: None,
        };
        assert_eq!(p.preferred_cluster(), None);
        assert_eq!(p.concentration(), 0.0);
    }

    #[test]
    fn latency_profile_statistics() {
        let mut lp = LatencyProfile::default();
        assert!(lp.is_empty());
        assert_eq!(lp.expected(), None);
        assert_eq!(lp.percentile(0.5), None);
        for _ in 0..3 {
            lp.record(1);
        }
        lp.record(15);
        // entries stay sorted regardless of record order
        lp.record(5);
        assert_eq!(lp.counts, vec![(1, 3), (5, 1), (15, 1)]);
        assert_eq!(lp.total(), 5);
        assert!((lp.expected().unwrap() - 23.0 / 5.0).abs() < 1e-12);
        assert_eq!(lp.percentile(0.0), Some(1));
        assert_eq!(lp.percentile(0.6), Some(1));
        assert_eq!(lp.percentile(0.8), Some(5));
        assert_eq!(lp.percentile(1.0), Some(15));
    }

    #[test]
    fn latency_profile_saturates() {
        let mut lp = LatencyProfile {
            counts: vec![(4, u64::MAX)],
        };
        lp.record(4);
        assert_eq!(lp.counts, vec![(4, u64::MAX)], "count saturates");
        assert_eq!(lp.total(), u64::MAX);
        // a second entry at another latency still saturates the total; at
        // saturation the cumulative count reaches the total at the first
        // entry, so percentiles degrade conservatively (downwards)
        lp.record(9);
        assert_eq!(lp.total(), u64::MAX);
        assert_eq!(lp.percentile(1.0), Some(4));
    }

    #[test]
    fn access_descriptors() {
        let a = ArrayId::new(0);
        let m = MemAccessInfo::strided(a, 8, 16, 2);
        assert_eq!(m.stride, Some(16));
        assert!(!m.indirect);
        assert_eq!(m.hit_rate(), 1.0);
        let i = MemAccessInfo::indirect(a, 4);
        assert!(i.indirect);
        assert_eq!(i.stride, None);
        assert_eq!(i.to_string(), "@0[indirect]:4B");
    }
}
