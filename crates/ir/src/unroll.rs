//! Loop unrolling (step 1 of the paper's scheduling algorithm).

use std::collections::HashMap;

use crate::ddg::DepEdge;
use crate::kernel::LoopKernel;
use crate::op::{OpId, SrcOperand};
use crate::reg::VirtReg;

/// Unrolls `kernel` by `factor`, renaming registers and rewriting memory
/// offsets/strides and dependence distances.
///
/// After unrolling by `U`:
///
/// * copy `k` of a memory access gains `k × stride` bytes of offset and the
///   per-(unrolled-)iteration stride becomes `U × stride` — which is what
///   makes every access with `U` a multiple of its
///   [`individual unrolling factor`](https://example.org) reference a single
///   cluster in a word-interleaved cache;
/// * a dependence of distance `d` from copy `k` lands on copy
///   `(k + d) mod U` at distance `(k + d) / U`;
/// * the average trip count divides by `U`.
///
/// Remainder iterations (trip counts not divisible by `U`) execute in an
/// un-pipelined cleanup copy in the paper's framework and are ignored here,
/// as they are in the paper's evaluation (loops iterating fewer than 8 times
/// are not modulo-scheduled at all).
///
/// # Panics
///
/// Panics if `factor == 0`.
pub fn unroll(kernel: &LoopKernel, factor: u32) -> LoopKernel {
    assert!(factor > 0, "unroll factor must be at least 1");
    if factor == 1 {
        return kernel.clone();
    }
    let u = factor as usize;
    let n = kernel.ops.len();

    // defs of the original kernel (for renaming)
    let mut defs: HashMap<VirtReg, OpId> = HashMap::new();
    let mut max_reg = 0u32;
    for op in &kernel.ops {
        if let Some(d) = op.dst {
            defs.insert(d, op.id);
            max_reg = max_reg.max(d.index() + 1);
        }
        for s in &op.srcs {
            max_reg = max_reg.max(s.reg.index() + 1);
        }
    }

    // rename(reg, copy): defined registers get a fresh name per copy;
    // live-ins keep their name in every copy.
    let rename = |reg: VirtReg, copy: usize| -> VirtReg {
        if defs.contains_key(&reg) {
            VirtReg::new(max_reg + (copy as u32) * max_reg + reg.index())
        } else {
            reg
        }
    };

    // Instance numbering: copy k of original op i has id k*n + i.
    let instance = |orig: OpId, copy: usize| OpId::new(copy * n + orig.index());

    let mut ops = Vec::with_capacity(n * u);
    for k in 0..u {
        for op in &kernel.ops {
            let mut new_op = op.clone();
            new_op.id = instance(op.id, k);
            if u > 1 {
                new_op.name = format!("{}#{}", op.name, k);
            }
            new_op.dst = op.dst.map(|d| rename(d, k));
            new_op.srcs = op
                .srcs
                .iter()
                .map(|s| {
                    if defs.contains_key(&s.reg) {
                        let t = k as i64 - s.distance as i64;
                        let kk = t.rem_euclid(u as i64) as usize;
                        let nd = ((kk as i64 - t) / u as i64) as u32;
                        SrcOperand::with_distance(rename(s.reg, kk), nd)
                    } else {
                        *s
                    }
                })
                .collect();
            if let Some(mem) = &mut new_op.mem {
                if let Some(stride) = mem.stride {
                    mem.offset += k as i64 * stride;
                    mem.stride = Some(stride * factor as i64);
                }
            }
            ops.push(new_op);
        }
    }

    // Map every dependence edge: v at iteration i+d depends on u at i.
    let mut edges = Vec::with_capacity(kernel.edges.len() * u);
    for e in &kernel.edges {
        for k in 0..u {
            let t = k + e.distance as usize;
            let kk = t % u;
            let nd = (t / u) as u32;
            edges.push(DepEdge::new(
                instance(e.from, k),
                instance(e.to, kk),
                e.kind,
                nd,
            ));
        }
    }

    LoopKernel {
        name: format!("{}.u{}", kernel.name, factor),
        ops,
        edges,
        arrays: kernel.arrays.clone(),
        avg_trip: kernel.avg_trip / factor as f64,
        invocations: kernel.invocations,
    }
}

/// Helper shared with tests: total register-flow edge count of a kernel.
#[cfg(test)]
fn flow_edge_count(k: &LoopKernel) -> usize {
    k.edges
        .iter()
        .filter(|e| e.kind == crate::DepKind::RegFlow)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ddg::DepKind;
    use crate::mem_access::ArrayKind;
    use crate::op::Opcode;

    /// `b[i] = a[i] + a[i]` with a carried accumulator and a mem dependence.
    fn sample() -> LoopKernel {
        let mut b = KernelBuilder::new("k");
        let a = b.array("a", 4096, ArrayKind::Heap);
        let out = b.array("b", 4096, ArrayKind::Heap);
        let (ld, v) = b.load("ld", a, 0, 4, 4);
        let (_, w) = b.int_op_carried("acc", Opcode::Add, &[v.into()], 1);
        let (st, _) = b.store("st", out, 0, 4, 4, w);
        b.mem_dep(st, ld, DepKind::MemFlow, 2);
        b.finish(400.0)
    }

    #[test]
    fn factor_one_is_identity() {
        let k = sample();
        let u = unroll(&k, 1);
        assert_eq!(k, u);
    }

    #[test]
    fn op_count_and_trip_scale() {
        let k = sample();
        let u = unroll(&k, 4);
        assert_eq!(u.ops.len(), k.ops.len() * 4);
        assert!((u.avg_trip - 100.0).abs() < 1e-9);
        assert_eq!(u.name, "k.u4");
        // dynamic work is preserved
        assert!((u.dynamic_ops() - k.dynamic_ops()).abs() < 1e-6);
    }

    #[test]
    fn mem_offsets_and_strides() {
        let k = sample();
        let u = unroll(&k, 4);
        let loads: Vec<_> = u.ops.iter().filter(|o| o.is_load()).collect();
        assert_eq!(loads.len(), 4);
        for (k_copy, ld) in loads.iter().enumerate() {
            let m = ld.mem.as_ref().unwrap();
            assert_eq!(m.offset, 4 * k_copy as i64);
            assert_eq!(m.stride, Some(16));
        }
    }

    #[test]
    fn carried_use_becomes_intra_iteration_chain() {
        let k = sample();
        let u = unroll(&k, 4);
        // accumulator copies: acc#k reads acc#(k-1) at distance 0 (k>0),
        // acc#0 reads acc#3 at distance 1.
        let accs: Vec<_> = u.ops.iter().filter(|o| o.name.starts_with("acc")).collect();
        assert_eq!(accs.len(), 4);
        for (kc, op) in accs.iter().enumerate() {
            let self_src = op
                .srcs
                .iter()
                .find(|s| u.def_of(s.reg).map(|d| u.op(d).name.starts_with("acc")) == Some(true))
                .unwrap();
            if kc == 0 {
                assert_eq!(self_src.distance, 1);
            } else {
                assert_eq!(self_src.distance, 0);
            }
        }
    }

    #[test]
    fn mem_edge_distances_rewritten() {
        let k = sample();
        let u = unroll(&k, 4);
        // original MemFlow d=2 from st to ld: copy k -> copy (k+2)%4 at
        // distance (k+2)/4.
        let mf: Vec<_> = u
            .edges
            .iter()
            .filter(|e| e.kind == DepKind::MemFlow)
            .collect();
        assert_eq!(mf.len(), 4);
        for e in mf {
            let from_copy = e.from.index() / k.ops.len();
            let to_copy = e.to.index() / k.ops.len();
            assert_eq!(to_copy, (from_copy + 2) % 4);
            assert_eq!(e.distance, ((from_copy + 2) / 4) as u32);
        }
    }

    #[test]
    fn flow_edges_scale_with_factor() {
        let k = sample();
        let u3 = unroll(&k, 3);
        assert_eq!(flow_edge_count(&u3), flow_edge_count(&k) * 3);
    }

    #[test]
    fn live_ins_are_shared() {
        let mut b = KernelBuilder::new("li");
        let base = b.live_in();
        let (_, x) = b.int_op("x", Opcode::Add, &[base.into()]);
        let a = b.array("a", 64, ArrayKind::Global);
        b.store("st", a, 0, 4, 4, x);
        let k = b.finish(8.0);
        let u = unroll(&k, 2);
        // both copies of x read the *same* live-in register
        let xs: Vec<_> = u.ops.iter().filter(|o| o.name.starts_with("x")).collect();
        assert_eq!(xs[0].srcs[0].reg, xs[1].srcs[0].reg);
        // and their destinations differ
        assert_ne!(xs[0].dst, xs[1].dst);
    }

    #[test]
    fn ssa_preserved_after_unroll() {
        let k = sample();
        let u = unroll(&k, 5);
        let mut seen = std::collections::HashSet::new();
        for op in &u.ops {
            if let Some(d) = op.dst {
                assert!(seen.insert(d), "register defined twice after unroll");
            }
        }
        // Ddg::build validates edge endpoints
        let _ = crate::Ddg::build(&u);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_factor_rejected() {
        let k = sample();
        let _ = unroll(&k, 0);
    }
}
