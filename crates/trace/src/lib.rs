//! `vliw-trace` — a zero-overhead-when-off tracing and metrics layer for the
//! scheduling service.
//!
//! The design has three pieces:
//!
//! * [`TraceSink`] — the one-method consumer contract. Producers never format,
//!   buffer, or timestamp; they hand the sink a `(track, phase, name, args)`
//!   tuple and the sink decides what (if anything) to do with it.
//! * [`Trace`] — a `Copy` handle threaded through the instrumented code. It is
//!   an `Option<&dyn TraceSink>` plus a track id: when no sink is attached
//!   every probe is a single null-check branch that the optimizer folds away,
//!   so the disabled path adds no allocation, no virtual call, and no
//!   observable work. [`NullSink`] is provided for callers that want an
//!   attached-but-discarding sink; it compiles to the same nothing.
//! * [`RecordingSink`] — the in-memory recorder with a **dual clock**. In
//!   [`ClockMode::Logical`] every event is stamped with a process-wide
//!   sequence number (deterministic across runs: same work ⇒ byte-identical
//!   export); in [`ClockMode::Profile`] events carry wall-clock microseconds.
//!   Deterministic digests must only ever see logical mode — wall time is
//!   quarantined behind the explicit `profile()` constructor.
//!
//! Exporters: [`RecordingSink::chrome_trace_json`] writes the Chrome
//! trace-event array format (one event per line, loadable in
//! `chrome://tracing` or Perfetto) and [`MetricsRegistry`] folds the event
//! stream into a flat, deterministically-ordered `(name, value)` snapshot for
//! `BENCH_repro.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// The kind of a trace event, mirroring the Chrome trace-event phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Span open (`"B"`). Must be balanced by an [`Phase::End`] on the same
    /// track.
    Begin,
    /// Span close (`"E"`).
    End,
    /// A point event (`"i"`, thread-scoped).
    Instant,
    /// A sampled counter value (`"C"`); the sample is `args[0].1`.
    Counter,
}

impl Phase {
    /// The Chrome trace-event `ph` letter.
    pub fn chrome(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
            Phase::Counter => "C",
        }
    }
}

/// Consumer contract: one method, called at every enabled probe site.
///
/// Implementations must be cheap and must not panic; they run inside the
/// scheduler's hot paths (albeit only when a sink is attached). Sinks are
/// shared across worker threads, hence `Sync`.
pub trait TraceSink: Sync {
    /// Record one event. `track` is a producer-chosen timeline id (0 = main
    /// pipeline, batch worker `w` uses `w + 1`); `args` are small key/number
    /// pairs attached to the event.
    fn record(&self, track: u32, phase: Phase, name: &str, args: &[(&str, f64)]);
}

/// A sink that discards everything. Attaching it exercises every probe's
/// enabled path while keeping output empty — useful for overhead tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn record(&self, _track: u32, _phase: Phase, _name: &str, _args: &[(&str, f64)]) {}
}

/// The producer handle: a copyable, borrow-only view of an optional sink.
///
/// `Trace::off()` is the disabled handle — every probe on it reduces to a
/// `None` check. The handle carries a track id so call trees can be assigned
/// to timelines without threading extra parameters.
#[derive(Clone, Copy)]
pub struct Trace<'a> {
    sink: Option<&'a dyn TraceSink>,
    track: u32,
}

impl std::fmt::Debug for Trace<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("on", &self.on())
            .field("track", &self.track)
            .finish()
    }
}

impl Default for Trace<'_> {
    fn default() -> Self {
        Self::off()
    }
}

impl<'a> Trace<'a> {
    /// The disabled handle: all probes are no-ops.
    #[inline]
    pub const fn off() -> Self {
        Trace {
            sink: None,
            track: 0,
        }
    }

    /// A handle feeding `sink`, on track 0.
    #[inline]
    pub fn new(sink: &'a dyn TraceSink) -> Self {
        Trace {
            sink: Some(sink),
            track: 0,
        }
    }

    /// The same sink viewed on a different track (timeline).
    #[inline]
    pub fn with_track(self, track: u32) -> Self {
        Trace {
            sink: self.sink,
            track,
        }
    }

    /// The current track id.
    #[inline]
    pub fn track(&self) -> u32 {
        self.track
    }

    /// Whether a sink is attached. Probe sites with non-trivial argument
    /// construction should guard on this so the disabled path stays a single
    /// branch.
    #[inline(always)]
    pub fn on(&self) -> bool {
        self.sink.is_some()
    }

    /// Emit a span-open event.
    #[inline]
    pub fn begin(&self, name: &str, args: &[(&str, f64)]) {
        if let Some(sink) = self.sink {
            sink.record(self.track, Phase::Begin, name, args);
        }
    }

    /// Emit a span-close event.
    #[inline]
    pub fn end(&self, name: &str) {
        if let Some(sink) = self.sink {
            sink.record(self.track, Phase::End, name, &[]);
        }
    }

    /// Emit a point event.
    #[inline]
    pub fn instant(&self, name: &str, args: &[(&str, f64)]) {
        if let Some(sink) = self.sink {
            sink.record(self.track, Phase::Instant, name, args);
        }
    }

    /// Emit a counter sample.
    #[inline]
    pub fn counter(&self, name: &str, value: f64) {
        if let Some(sink) = self.sink {
            sink.record(self.track, Phase::Counter, name, &[("value", value)]);
        }
    }

    /// Open a span closed automatically when the returned guard drops.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span<'a> {
        self.begin(name, &[]);
        Span { trace: *self, name }
    }

    /// Open a span with arguments on the open event.
    #[inline]
    pub fn span_with(&self, name: &'static str, args: &[(&str, f64)]) -> Span<'a> {
        self.begin(name, args);
        Span { trace: *self, name }
    }
}

/// Drop guard closing a span opened by [`Trace::span`].
#[must_use = "dropping the span immediately closes it"]
pub struct Span<'a> {
    trace: Trace<'a>,
    name: &'static str,
}

impl Drop for Span<'_> {
    #[inline]
    fn drop(&mut self) {
        self.trace.end(self.name);
    }
}

/// Which clock stamps recorded events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Deterministic sequence numbers: event `n` gets timestamp `n`. Same
    /// work in the same order produces a byte-identical export.
    Logical,
    /// Wall-clock microseconds since the sink was created. Non-deterministic;
    /// never feed this into a digest.
    Profile,
}

/// One recorded event, owned.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedEvent {
    /// Timeline id as passed by the producer.
    pub track: u32,
    /// Event kind.
    pub phase: Phase,
    /// Event name.
    pub name: String,
    /// Timestamp: a sequence number (logical) or microseconds (profile).
    pub ts: u64,
    /// Key/number argument pairs.
    pub args: Vec<(String, f64)>,
}

/// An in-memory recording sink with the dual-clock design.
pub struct RecordingSink {
    mode: ClockMode,
    start: Instant,
    events: Mutex<Vec<RecordedEvent>>,
}

impl RecordingSink {
    /// A recorder stamping events with deterministic sequence numbers.
    pub fn logical() -> Self {
        RecordingSink {
            mode: ClockMode::Logical,
            start: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// A recorder stamping events with wall-clock microseconds
    /// (non-deterministic; for interactive profiling only).
    pub fn profile() -> Self {
        RecordingSink {
            mode: ClockMode::Profile,
            start: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// The clock mode this recorder stamps with.
    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    /// A snapshot of everything recorded so far, in arrival order.
    pub fn events(&self) -> Vec<RecordedEvent> {
        self.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the recording as a Chrome trace-event JSON array, one event per
    /// line (loadable in `chrome://tracing` and Perfetto). In logical mode the
    /// output is byte-identical across runs performing the same work.
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json(&self.events())
    }

    /// Fold the recording into a flat metrics snapshot.
    pub fn metrics(&self) -> MetricsRegistry {
        MetricsRegistry::from_events(&self.events())
    }
}

impl TraceSink for RecordingSink {
    fn record(&self, track: u32, phase: Phase, name: &str, args: &[(&str, f64)]) {
        let mut events = self.events.lock().unwrap_or_else(|p| p.into_inner());
        let ts = match self.mode {
            ClockMode::Logical => events.len() as u64 + 1,
            ClockMode::Profile => self.start.elapsed().as_micros() as u64,
        };
        events.push(RecordedEvent {
            track,
            phase,
            name: name.to_string(),
            ts,
            args: args.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }
}

/// Render an event list as a Chrome trace-event JSON array (one event per
/// line). `pid` is fixed at 1; the track id becomes the `tid`.
pub fn chrome_trace_json(events: &[RecordedEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 16);
    out.push_str("[\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str("{\"name\":\"");
        json_escape_into(&mut out, &ev.name);
        let _ = write!(
            out,
            "\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
            ev.phase.chrome(),
            ev.ts,
            ev.track
        );
        if ev.phase == Phase::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        if !ev.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in ev.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                json_escape_into(&mut out, k);
                out.push_str("\":");
                json_number_into(&mut out, *v);
            }
            out.push('}');
        }
        out.push('}');
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn json_number_into(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push('0');
    } else if v == v.trunc() && v.abs() < 9e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{}", v);
    }
}

/// A flat, deterministically-ordered `(name, value)` metrics snapshot.
///
/// Derived from an event stream by [`MetricsRegistry::from_events`]:
///
/// * `span_count/<name>` — completed spans per name;
/// * `span_ticks/<name>` — total timestamp units spent inside spans of that
///   name (sequence steps in logical mode, microseconds in profile mode);
/// * `instant_count/<name>` — point events per name;
/// * `counter_last/<name>` — final sample of each counter;
/// * `events_total` — every recorded event.
///
/// Extra values can be merged in with [`MetricsRegistry::set`] /
/// [`MetricsRegistry::add`].
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    values: BTreeMap<String, f64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold an event stream into the standard derived metrics.
    pub fn from_events(events: &[RecordedEvent]) -> Self {
        let mut reg = Self::new();
        // Per-track stacks of (name, begin-ts) for span matching.
        let mut stacks: BTreeMap<u32, Vec<(String, u64)>> = BTreeMap::new();
        for ev in events {
            reg.add("events_total", 1.0);
            match ev.phase {
                Phase::Begin => {
                    stacks
                        .entry(ev.track)
                        .or_default()
                        .push((ev.name.clone(), ev.ts));
                }
                Phase::End => {
                    if let Some((name, begin)) = stacks.entry(ev.track).or_default().pop() {
                        reg.add(&format!("span_count/{}", name), 1.0);
                        reg.add(
                            &format!("span_ticks/{}", name),
                            ev.ts.saturating_sub(begin) as f64,
                        );
                    }
                }
                Phase::Instant => {
                    reg.add(&format!("instant_count/{}", ev.name), 1.0);
                }
                Phase::Counter => {
                    if let Some((_, v)) = ev.args.first() {
                        reg.set(&format!("counter_last/{}", ev.name), *v);
                    }
                }
            }
        }
        reg
    }

    /// Set `name` to `value`, replacing any previous value.
    pub fn set(&mut self, name: &str, value: f64) {
        self.values.insert(name.to_string(), value);
    }

    /// Add `delta` to `name` (starting from 0).
    pub fn add(&mut self, name: &str, delta: f64) {
        *self.values.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Read one value.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// The snapshot in deterministic (lexicographic) order.
    pub fn to_vec(&self) -> Vec<(String, f64)> {
        self.values.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Number of distinct metric names.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the registry holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_silent_and_cheap() {
        let t = Trace::off();
        assert!(!t.on());
        t.begin("x", &[]);
        t.end("x");
        t.instant("y", &[("a", 1.0)]);
        t.counter("c", 2.0);
        let _s = t.span("z");
    }

    #[test]
    fn null_sink_discards() {
        let sink = NullSink;
        let t = Trace::new(&sink);
        assert!(t.on());
        t.instant("y", &[]);
        let _s = t.span("z");
    }

    #[test]
    fn logical_clock_is_sequence_numbers() {
        let sink = RecordingSink::logical();
        let t = Trace::new(&sink);
        {
            let _s = t.span("outer");
            t.instant("mid", &[("k", 3.0)]);
        }
        let ev = sink.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].ts, 1);
        assert_eq!(ev[1].ts, 2);
        assert_eq!(ev[2].ts, 3);
        assert_eq!(ev[0].phase, Phase::Begin);
        assert_eq!(ev[2].phase, Phase::End);
    }

    #[test]
    fn spans_balance_and_metrics_fold() {
        let sink = RecordingSink::logical();
        let t = Trace::new(&sink);
        {
            let _a = t.span("a");
            let _b = t.span("b");
        }
        t.counter("depth", 4.0);
        t.counter("depth", 7.0);
        let m = sink.metrics();
        assert_eq!(m.get("span_count/a"), Some(1.0));
        assert_eq!(m.get("span_count/b"), Some(1.0));
        assert_eq!(m.get("counter_last/depth"), Some(7.0));
        assert_eq!(m.get("events_total"), Some(6.0));
        // b nests inside a: a spans ts 1..4, b spans 2..3.
        assert_eq!(m.get("span_ticks/a"), Some(3.0));
        assert_eq!(m.get("span_ticks/b"), Some(1.0));
    }

    #[test]
    fn chrome_export_is_deterministic_and_parseable_shape() {
        let run = || {
            let sink = RecordingSink::logical();
            let t = Trace::new(&sink);
            let _s = t.span_with("stage", &[("ii", 7.0)]);
            t.instant("hit", &[]);
            drop(_s);
            sink.chrome_trace_json()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.starts_with("[\n"));
        assert!(a.trim_end().ends_with(']'));
        assert!(a.contains("\"ph\":\"B\""));
        assert!(a.contains("\"ph\":\"E\""));
        assert!(a.contains("\"s\":\"t\""));
        assert!(a.contains("\"args\":{\"ii\":7}"));
    }

    #[test]
    fn tracks_are_independent_timelines() {
        let sink = RecordingSink::logical();
        let t0 = Trace::new(&sink);
        let t1 = t0.with_track(1);
        t0.begin("main", &[]);
        t1.begin("worker", &[]);
        t1.end("worker");
        t0.end("main");
        let m = sink.metrics();
        assert_eq!(m.get("span_count/main"), Some(1.0));
        assert_eq!(m.get("span_count/worker"), Some(1.0));
    }

    #[test]
    fn json_number_formatting() {
        let mut s = String::new();
        json_number_into(&mut s, 3.0);
        s.push(' ');
        json_number_into(&mut s, 2.5);
        s.push(' ');
        json_number_into(&mut s, f64::NAN);
        assert_eq!(s, "3 2.5 0");
    }
}
