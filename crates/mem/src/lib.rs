//! Timing models for the three data-cache organizations of the paper.
//!
//! * [`InterleavedCache`] — the word-interleaved distributed cache of §3:
//!   per-cluster modules holding subblocks, replicated tags, memory buses at
//!   half the core frequency, request combining, and optional per-cluster
//!   [Attraction Buffers](InterleavedCache) flushed at loop boundaries.
//! * [`CoherentCache`] — the multiVLIW organization: per-cluster caches with
//!   MSI snooping and data replication.
//! * [`UnifiedCache`] — a central multi-ported cache.
//!
//! All three implement [`DataCache`], a *deterministic queueing* timing
//! model: each request immediately receives its completion time, computed
//! from per-resource next-free counters (bus slots, cache ports, next-level
//! ports). Outstanding transactions are tracked in per-cluster miss-status
//! registers ([`MshrFile`]): a second access to an in-flight subblock
//! combines with the transaction and retires at its fill (it is never
//! served before the data arrives), Attraction-Buffer entries allocate at
//! fill time, and a cluster whose registers are all busy delays its next
//! request. With the default configuration and no contention, the four
//! access classes complete in exactly the 1 / 5 / 10 / 15 cycles of the
//! paper's worked example:
//!
//! * local hit = module access (1);
//! * remote hit = bus (2) + module (1) + bus (2);
//! * local miss = next level (10, tag probe overlapped);
//! * remote miss = bus (2) + module (1) + next level (10) + bus (2).
//!
//! Requests must be issued in non-decreasing time order (the in-order VLIW
//! engine guarantees this).
//!
//! The crate also provides [`FunctionalCache`], the timeless hit/miss model
//! the profiling pass uses to gather hit rates and preferred-cluster
//! histograms.
//!
//! # Example
//!
//! ```
//! use vliw_machine::{AccessClass, MachineConfig};
//! use vliw_mem::{AccessRequest, DataCache, InterleavedCache};
//!
//! let machine = MachineConfig::word_interleaved_4();
//! let mut cache = InterleavedCache::new(&machine);
//! // cluster 0 reads address 0 (home cluster 0): a local miss first…
//! let a = cache.access(AccessRequest::load(0, 0, 4, 0));
//! assert_eq!(a.class, AccessClass::LocalMiss);
//! assert_eq!(a.ready_at, 10);
//! // …then a local hit
//! let b = cache.access(AccessRequest::load(0, 0, 4, 20));
//! assert_eq!(b.class, AccessClass::LocalHit);
//! assert_eq!(b.ready_at, 21);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coherent;
mod functional;
mod interleaved;
mod lru;
mod mshr;
mod observe;
mod pool;
mod stats;
mod unified;

pub use coherent::CoherentCache;
pub use functional::FunctionalCache;
pub use interleaved::InterleavedCache;
pub use lru::SetAssoc;
pub use mshr::{MshrEntry, MshrFile};
pub use observe::{AccessObserver, ObservedCache};
pub use pool::ResourcePool;
pub use stats::{MemStats, MshrStats};
pub use unified::UnifiedCache;

use vliw_machine::{AccessClass, ArchKind, MachineConfig};

/// One memory request presented to a cache model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRequest {
    /// Cluster issuing the access.
    pub cluster: usize,
    /// Byte address.
    pub addr: u64,
    /// Access size in bytes (1, 2, 4 or 8).
    pub size: u8,
    /// Whether this is a store.
    pub is_store: bool,
    /// Whether the access may allocate an Attraction Buffer entry
    /// (compiler hint, §5.2; ignored by caches without buffers).
    pub attractable: bool,
    /// Issue cycle. Must be non-decreasing across calls.
    pub now: u64,
    /// Caller-chosen attribution tag, reported unchanged to any
    /// [`AccessObserver`] watching the cache. The simulator tags requests
    /// with the dense operation index so the profiling subsystem can build
    /// per-operation measurements; [`AccessRequest::UNTAGGED`] otherwise.
    /// Ignored by every timing model.
    pub tag: u32,
}

impl AccessRequest {
    /// The tag of requests with no attribution.
    pub const UNTAGGED: u32 = u32::MAX;

    /// A load request with the attraction hint enabled.
    pub fn load(cluster: usize, addr: u64, size: u8, now: u64) -> Self {
        AccessRequest {
            cluster,
            addr,
            size,
            is_store: false,
            attractable: true,
            now,
            tag: Self::UNTAGGED,
        }
    }

    /// A store request.
    pub fn store(cluster: usize, addr: u64, size: u8, now: u64) -> Self {
        AccessRequest {
            cluster,
            addr,
            size,
            is_store: true,
            attractable: true,
            now,
            tag: Self::UNTAGGED,
        }
    }

    /// The same request carrying an observer attribution tag.
    pub fn tagged(mut self, tag: u32) -> Self {
        self.tag = tag;
        self
    }
}

/// The outcome of a request: when the data is available and how the access
/// classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Absolute cycle the result is available to the issuing cluster.
    pub ready_at: u64,
    /// Access classification (local/remote × hit/miss).
    pub class: AccessClass,
    /// The request merged into an in-flight request for the same subblock
    /// ("combined accesses", counted separately in Figures 4 and 6).
    pub combined: bool,
    /// The access was served by the cluster's Attraction Buffer
    /// (a subset of the local hits).
    pub ab_hit: bool,
    /// Cycles the request waited for a free miss-status register before it
    /// could issue (MSHR capacity back-pressure; 0 = none). The magnitude
    /// lets stall attribution split back-pressure from class latency.
    pub mshr_delay: u64,
}

/// Common interface of the three cache-organization timing models.
pub trait DataCache {
    /// Issues a request and returns its timing and classification.
    fn access(&mut self, req: AccessRequest) -> AccessOutcome;

    /// Informs the cache that a software-pipelined loop finished — flushes
    /// Attraction Buffers (the paper's coherence guarantee) and forgets
    /// in-flight combining state.
    fn flush_loop_boundary(&mut self);

    /// Access statistics since construction or the last reset.
    fn stats(&self) -> &MemStats;

    /// Clears statistics (e.g. after cache warm-up).
    fn reset_stats(&mut self);
}

impl<T: DataCache + ?Sized> DataCache for Box<T> {
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        (**self).access(req)
    }

    fn flush_loop_boundary(&mut self) {
        (**self).flush_loop_boundary()
    }

    fn stats(&self) -> &MemStats {
        (**self).stats()
    }

    fn reset_stats(&mut self) {
        (**self).reset_stats()
    }
}

/// Builds the cache model matching `machine.arch`.
pub fn build_cache(machine: &MachineConfig) -> Box<dyn DataCache> {
    match machine.arch {
        ArchKind::WordInterleaved => Box::new(InterleavedCache::new(machine)),
        ArchKind::MultiVliw => Box::new(CoherentCache::new(machine)),
        ArchKind::Unified => Box::new(UnifiedCache::new(machine)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_cache_dispatches_on_arch() {
        let m = MachineConfig::word_interleaved_4();
        let mut c = build_cache(&m);
        let o = c.access(AccessRequest::load(1, 4, 4, 0));
        assert_eq!(o.class, AccessClass::LocalMiss);

        let m = MachineConfig::unified_4(1);
        let mut c = build_cache(&m);
        let o = c.access(AccessRequest::load(0, 4, 4, 0));
        assert_eq!(o.class, AccessClass::LocalMiss);

        let m = MachineConfig::multi_vliw_4();
        let mut c = build_cache(&m);
        let o = c.access(AccessRequest::load(0, 4, 4, 0));
        assert_eq!(o.class, AccessClass::LocalMiss);
    }

    #[test]
    fn request_constructors() {
        let l = AccessRequest::load(2, 64, 4, 7);
        assert!(!l.is_store && l.attractable && l.cluster == 2 && l.now == 7);
        let s = AccessRequest::store(1, 32, 2, 3);
        assert!(s.is_store);
    }
}
