//! Timeless hit/miss model used by the profiling pass.

use vliw_machine::MachineConfig;

use crate::lru::SetAssoc;

/// A functional (no timing, no contention) model of the word-interleaved
/// cache: it answers, for each access in program order, which cluster owns
/// the address and whether the access hits. The profiling pass in
/// `vliw-workloads` drives it with the profile input's address streams to
/// produce each memory operation's hit rate and preferred-cluster
/// histogram — the role IMPACT profiling plays in the paper.
#[derive(Debug, Clone)]
pub struct FunctionalCache {
    n: usize,
    interleave: u64,
    block_bytes: u64,
    tags: Vec<SetAssoc>,
}

impl FunctionalCache {
    /// Builds the functional model with `machine`'s cache geometry.
    pub fn new(machine: &MachineConfig) -> Self {
        let n = machine.n_clusters();
        let module_bytes = machine.cache.module_bytes(n);
        let subblock = machine.cache.subblock_bytes(n);
        let sets = module_bytes / (subblock * machine.cache.associativity);
        FunctionalCache {
            n,
            interleave: machine.cache.interleave_bytes as u64,
            block_bytes: machine.cache.block_bytes as u64,
            tags: (0..n)
                .map(|_| SetAssoc::new(sets, machine.cache.associativity))
                .collect(),
        }
    }

    /// The cluster owning `addr`.
    pub fn home_cluster(&self, addr: u64) -> usize {
        ((addr / self.interleave) % self.n as u64) as usize
    }

    /// Processes one access; returns `(home cluster, hit)`. Misses allocate
    /// (stores included — the profile cares about locality, not policy
    /// detail).
    pub fn access(&mut self, addr: u64) -> (usize, bool) {
        let home = self.home_cluster(addr);
        let block = addr / self.block_bytes;
        let hit = self.tags[home].probe(block);
        if !hit {
            self.tags[home].insert(block);
        }
        (home, hit)
    }

    /// Forgets all cached state (between profiling different loops).
    pub fn clear(&mut self) {
        for t in &mut self.tags {
            t.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_and_homes() {
        let m = MachineConfig::word_interleaved_4();
        let mut c = FunctionalCache::new(&m);
        let (home, hit) = c.access(8);
        assert_eq!(home, 2);
        assert!(!hit);
        let (_, hit) = c.access(8);
        assert!(hit);
        // same block, different word, different module: separate tags
        let (home, hit) = c.access(12);
        assert_eq!(home, 3);
        assert!(!hit);
    }

    #[test]
    fn clear_resets() {
        let m = MachineConfig::word_interleaved_4();
        let mut c = FunctionalCache::new(&m);
        let _ = c.access(64);
        c.clear();
        let (_, hit) = c.access(64);
        assert!(!hit);
    }

    #[test]
    fn strided_sweep_has_high_hit_rate_on_second_pass() {
        let m = MachineConfig::word_interleaved_4();
        let mut c = FunctionalCache::new(&m);
        // a 1 KB array fits comfortably in 8 KB total
        for pass in 0..2 {
            let mut hits = 0;
            for i in 0..256u64 {
                let (_, hit) = c.access(i * 4);
                hits += hit as u64;
            }
            if pass == 1 {
                assert_eq!(hits, 256, "everything resident on the second pass");
            }
        }
    }
}
