//! The word-interleaved distributed data cache (§3 of the paper).

use vliw_machine::{AccessClass, MachineConfig};

use crate::lru::SetAssoc;
use crate::mshr::{MshrEntry, MshrFile};
use crate::pool::ResourcePool;
use crate::stats::MemStats;
use crate::{AccessOutcome, AccessRequest, DataCache};

/// The `(home module, block)` parts of one access — stack-allocated in
/// the common single-subblock case, heap-allocated only when an oversized
/// element spans modules.
enum Parts {
    One([(usize, u64); 1]),
    Many(Vec<(usize, u64)>),
}

impl Parts {
    fn as_slice(&self) -> &[(usize, u64)] {
        match self {
            Parts::One(p) => p,
            Parts::Many(v) => v,
        }
    }
}

/// Word-interleaved cache: cluster `c` owns the words whose address
/// satisfies `(addr / I) mod N == c`. Subblocks live in exactly one module
/// (no replication); tags are replicated, so hit/miss is known locally.
///
/// Timing is composed from physical components — memory buses at half the
/// core frequency, one local port and one bus-side port per module, and the
/// shared next level — so that the four access classes land exactly on the
/// configured 1 / 5 / 10 / 15 cycles when uncontended (see the crate docs).
///
/// Every transaction a cluster *requests* that takes time — a remote
/// request over the buses, a local next-level fill (load or store
/// write-allocate) — occupies one of that cluster's miss-status registers
/// ([`MshrFile`]) from issue to fill. The registers are what make the
/// timing honest: a second access to an in-flight subblock *combines* with
/// the existing transaction and retires at its fill (it can never be served
/// before the data arrives), and a cluster whose registers are all busy
/// delays its next request until one frees. Tracking is per requesting
/// cluster; a *remote* module's own next-level traffic (e.g. a fill another
/// cluster triggered) is approximated by its tags, which install at issue.
/// Remote *store* updates are fire-and-forget through the store buffer —
/// they charge their bus/port/next-level resources but, like the coherent
/// model's stores, claim no register.
///
/// Optional per-cluster **Attraction Buffers** hold remote subblocks: a
/// remote load attracts its whole subblock into the requester's buffer.
/// The buffer entry is allocated when the fill *completes* (MSHR
/// retirement), not when the request issues. Buffers are flushed at loop
/// boundaries ([`DataCache::flush_loop_boundary`]), which together with the
/// memory-dependent-chain scheduling constraint guarantees correctness.
///
/// Elements larger than the interleaving factor span several modules
/// (§5.2): the fetch is split across every spanning module, each part
/// paying its own bus transfers and bus-side port, and the load completes
/// when the last part arrives.
#[derive(Debug)]
pub struct InterleavedCache {
    n: usize,
    interleave: u64,
    block_bytes: u64,
    transfer: u64,
    module_access: u64,
    nl_latency: u64,
    tags: Vec<SetAssoc>,
    local_ports: Vec<ResourcePool>,
    bus_ports: Vec<ResourcePool>,
    mem_buses: ResourcePool,
    nl_ports: ResourcePool,
    buffers: Option<Vec<SetAssoc>>,
    mshrs: MshrFile,
    stats: MemStats,
    last_now: u64,
}

impl InterleavedCache {
    /// Builds the cache for a word-interleaved machine.
    ///
    /// # Panics
    ///
    /// Panics if `machine` fails validation or is not word-interleaved.
    pub fn new(machine: &MachineConfig) -> Self {
        machine.validate().expect("valid machine");
        assert!(
            machine.has_remote_accesses(),
            "machine must be word-interleaved"
        );
        let n = machine.n_clusters();
        let module_bytes = machine.cache.module_bytes(n);
        let subblock = machine.cache.subblock_bytes(n);
        let sets = module_bytes / (subblock * machine.cache.associativity);
        let buffers = machine.attraction_buffers.map(|ab| {
            let ab_sets = (ab.entries / ab.associativity).max(1);
            (0..n)
                .map(|_| SetAssoc::new(ab_sets, ab.associativity))
                .collect()
        });
        InterleavedCache {
            n,
            interleave: machine.cache.interleave_bytes as u64,
            block_bytes: machine.cache.block_bytes as u64,
            transfer: machine.buses.transfer_cycles as u64,
            module_access: machine.mem_latencies.local_hit as u64,
            nl_latency: machine.next_level.latency as u64,
            tags: (0..n)
                .map(|_| SetAssoc::new(sets, machine.cache.associativity))
                .collect(),
            local_ports: (0..n).map(|_| ResourcePool::new(1)).collect(),
            bus_ports: (0..n).map(|_| ResourcePool::new(1)).collect(),
            mem_buses: ResourcePool::new(machine.buses.mem_buses),
            nl_ports: ResourcePool::new(machine.next_level.ports),
            buffers,
            mshrs: MshrFile::new(n, machine.mshrs.per_cluster),
            stats: MemStats::new(),
            last_now: 0,
        }
    }

    /// The cluster owning `addr`.
    pub fn home_cluster(&self, addr: u64) -> usize {
        ((addr / self.interleave) % self.n as u64) as usize
    }

    fn block_of(&self, addr: u64) -> u64 {
        addr / self.block_bytes
    }

    /// Attraction Buffer key for a (block, home-module) subblock.
    fn subblock_key(&self, block: u64, home: usize) -> u64 {
        block * self.n as u64 + home as u64
    }

    /// The `(home module, block)` pairs an access touches: the single
    /// `(home, block)` subblock for ordinary accesses (stack-allocated —
    /// this is the simulator's innermost hot path), every spanning module
    /// for `size > interleave` elements (§5.2). The oversized walk visits
    /// interleave-unit boundaries from the aligned base so an unaligned
    /// access still covers its last byte's module.
    fn parts_of(&self, addr: u64, size: u8, home: usize, block: u64, oversized: bool) -> Parts {
        if !oversized {
            return Parts::One([(home, block)]);
        }
        let mut parts = Vec::with_capacity(2);
        let mut a = addr - addr % self.interleave;
        while a < addr + size.max(1) as u64 {
            let part = (self.home_cluster(a), self.block_of(a));
            if !parts.contains(&part) {
                parts.push(part);
            }
            a += self.interleave;
        }
        Parts::Many(parts)
    }

    /// Retires every transaction whose fill time has passed; arriving
    /// attractable subblocks allocate their Attraction-Buffer entry here —
    /// at fill time, never at request time.
    fn retire(&mut self, now: u64) {
        let buffers = &mut self.buffers;
        self.mshrs.retire_up_to(now, &mut |cluster, e: MshrEntry| {
            if e.attract {
                if let Some(bufs) = buffers.as_mut() {
                    bufs[cluster].insert(e.key);
                }
            }
        });
    }

    /// MSHR capacity back-pressure: the cycle a new transaction for
    /// `cluster` may claim a register, at or after `earliest`, plus the
    /// cycles waited (0 when a register was free).
    fn mshr_gate(&mut self, cluster: usize, earliest: u64) -> (u64, u64) {
        let start = self.mshrs.earliest_start(cluster, earliest);
        let delay = start - earliest;
        if delay > 0 {
            self.stats.mshr_mut().on_full_stall(delay);
        }
        (start, delay)
    }

    /// One remote-module fetch starting at `start`: request bus → remote
    /// module (bus-side port) → reply bus, with the next-level round trip
    /// on a miss.
    fn fetch_remote(&mut self, start: u64, home: usize, block: u64) -> (u64, AccessClass) {
        let bus_start = self.mem_buses.acquire(start, self.transfer);
        let acc_start = self.bus_ports[home].acquire(bus_start + self.transfer, 1);
        let hit = self.tags[home].probe(block);
        if hit {
            let reply = self
                .mem_buses
                .acquire(acc_start + self.module_access, self.transfer);
            (reply + self.transfer, AccessClass::RemoteHit)
        } else {
            let nl_start = self.nl_ports.acquire(acc_start + self.module_access, 1);
            let filled = nl_start + self.nl_latency;
            self.tags[home].insert(block);
            let reply = self.mem_buses.acquire(filled, self.transfer);
            (reply + self.transfer, AccessClass::RemoteMiss)
        }
    }
}

impl DataCache for InterleavedCache {
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        debug_assert!(
            req.now >= self.last_now,
            "requests must arrive in time order"
        );
        self.last_now = req.now;
        // simulated time reached `now`: completed fills retire (and
        // allocate their Attraction-Buffer entries) before anything can
        // observe them
        self.retire(req.now);
        let home = self.home_cluster(req.addr);
        let block = self.block_of(req.addr);
        // elements larger than the interleave factor span clusters and are
        // always remote (§5.2)
        let oversized = req.size as u64 > self.interleave;
        let local = home == req.cluster && !oversized;
        let key = self.subblock_key(block, home);

        if req.is_store {
            let parts = self.parts_of(req.addr, req.size, home, block, oversized);
            let parts = parts.as_slice();
            let class = if local {
                let port_start = self.local_ports[req.cluster].acquire(req.now, 1);
                let hit = self.tags[req.cluster].probe(block);
                if hit {
                    AccessClass::LocalHit
                } else if self.mshrs.lookup(req.cluster, key).is_some() {
                    // tag evicted while a fill for the subblock is still
                    // in flight: the write folds into that transaction
                    AccessClass::LocalMiss
                } else {
                    // write-allocate: fetch the subblock (store buffer hides
                    // the latency; the next-level port traffic still counts).
                    // The next-level port is reached only after the local
                    // port and tag probe — same order as the load-miss path —
                    // and the fill occupies a miss-status register like any
                    // other, so a later load waits for it instead of hitting
                    // on data still in the air.
                    let (start, _) = self.mshr_gate(req.cluster, port_start);
                    let nl_start = self.nl_ports.acquire(start, 1);
                    self.tags[req.cluster].insert(block);
                    let occ = self.mshrs.allocate(
                        req.cluster,
                        start,
                        MshrEntry {
                            key,
                            fill_at: nl_start + self.nl_latency,
                            class: AccessClass::LocalMiss,
                            waiters: 0,
                            attract: false,
                        },
                    );
                    self.stats.mshr_mut().on_fill_issued(occ);
                    AccessClass::LocalMiss
                }
            } else {
                // send the update over a memory bus to each touched module
                let mut class = AccessClass::RemoteHit;
                for &(p_home, p_block) in parts {
                    let bus_start = self.mem_buses.acquire(req.now, self.transfer);
                    let acc = self.bus_ports[p_home].acquire(bus_start + self.transfer, 1);
                    let hit = self.tags[p_home].probe(p_block);
                    if !hit {
                        self.nl_ports.acquire(acc + self.module_access, 1);
                        self.tags[p_home].insert(p_block);
                        class = AccessClass::RemoteMiss;
                    }
                }
                class
            };
            // keep Attraction Buffers coherent: the writer's own copy is
            // updated through the write, every other cluster's copy of
            // every touched subblock dies — including copies still in the
            // air (in-flight fills must not allocate a stale buffer entry
            // when they land)
            for &(p_home, p_block) in parts {
                let p_key = self.subblock_key(p_block, p_home);
                if let Some(bufs) = &mut self.buffers {
                    for (c, buf) in bufs.iter_mut().enumerate() {
                        if c != req.cluster {
                            buf.invalidate(p_key);
                        }
                    }
                }
                self.mshrs.clear_attract(req.cluster, p_key);
            }
            self.stats.record(class, false, false);
            // stores complete through the store buffer next cycle
            return AccessOutcome {
                ready_at: req.now + 1,
                class,
                combined: false,
                ab_hit: false,
                mshr_delay: 0,
            };
        }

        // local loads
        if local {
            let port_start = self.local_ports[req.cluster].acquire(req.now, 1);
            // a load to a subblock whose fill is still in flight combines
            // with the transaction — whether or not the tag survived
            // eviction in the meantime
            if let Some(e) = self.mshrs.lookup(req.cluster, key) {
                e.waiters += 1;
                let (ready, class) = (e.fill_at.max(port_start + self.module_access), e.class);
                self.stats.mshr_mut().on_merge();
                self.stats.record(class, true, false);
                return AccessOutcome {
                    ready_at: ready,
                    class,
                    combined: true,
                    ab_hit: false,
                    mshr_delay: 0,
                };
            }
            let hit = self.tags[req.cluster].probe(block);
            if hit {
                self.stats.record(AccessClass::LocalHit, false, false);
                return AccessOutcome {
                    ready_at: port_start + self.module_access,
                    class: AccessClass::LocalHit,
                    combined: false,
                    ab_hit: false,
                    mshr_delay: 0,
                };
            }
            let (start, delay) = self.mshr_gate(req.cluster, port_start);
            let nl_start = self.nl_ports.acquire(start, 1);
            self.tags[req.cluster].insert(block);
            let fill = nl_start + self.nl_latency;
            let occ = self.mshrs.allocate(
                req.cluster,
                start,
                MshrEntry {
                    key,
                    fill_at: fill,
                    class: AccessClass::LocalMiss,
                    waiters: 0,
                    attract: false,
                },
            );
            self.stats.mshr_mut().on_fill_issued(occ);
            self.stats.record(AccessClass::LocalMiss, false, false);
            return AccessOutcome {
                ready_at: fill,
                class: AccessClass::LocalMiss,
                combined: false,
                ab_hit: false,
                mshr_delay: delay,
            };
        }

        // remote loads: Attraction Buffer first — it can only hold
        // subblocks whose fill has completed, so a hit is always real data
        if !oversized {
            if let Some(bufs) = &mut self.buffers {
                if bufs[req.cluster].probe(key) {
                    let ready = req.now + self.module_access;
                    self.stats.record(AccessClass::LocalHit, false, true);
                    return AccessOutcome {
                        ready_at: ready,
                        class: AccessClass::LocalHit,
                        combined: false,
                        ab_hit: true,
                        mshr_delay: 0,
                    };
                }
            }
        }

        // one part per spanning module (exactly one unless oversized, so
        // the common case stays allocation-free); parts already in flight
        // merge into their transaction, the rest issue — the whole load
        // retires when the last part arrives
        let parts = self.parts_of(req.addr, req.size, home, block, oversized);
        let mut ready = 0u64;
        let mut class = AccessClass::RemoteHit;
        let mut issued = false;
        let mut delay = 0u64;
        for &(p_home, p_block) in parts.as_slice() {
            let p_key = self.subblock_key(p_block, p_home);
            if let Some(e) = self.mshrs.lookup(req.cluster, p_key) {
                e.waiters += 1;
                ready = ready.max(e.fill_at);
                class = class.max(e.class);
                self.stats.mshr_mut().on_merge();
            } else {
                let (start, d) = self.mshr_gate(req.cluster, req.now);
                delay = delay.max(d);
                let (p_ready, p_class) = self.fetch_remote(start, p_home, p_block);
                let attract = !oversized && req.attractable && self.buffers.is_some();
                let occ = self.mshrs.allocate(
                    req.cluster,
                    start,
                    MshrEntry {
                        key: p_key,
                        fill_at: p_ready,
                        class: p_class,
                        waiters: 0,
                        attract,
                    },
                );
                self.stats.mshr_mut().on_fill_issued(occ);
                ready = ready.max(p_ready);
                class = class.max(p_class);
                issued = true;
            }
        }
        let combined = !issued;
        self.stats.record(class, combined, false);
        AccessOutcome {
            ready_at: ready,
            class,
            combined,
            ab_hit: false,
            mshr_delay: delay,
        }
    }

    fn flush_loop_boundary(&mut self) {
        if let Some(bufs) = &mut self.buffers {
            for b in bufs {
                b.clear();
            }
        }
        // a finished loop's in-flight fills must not allocate buffer
        // entries for the next loop — but the transactions stay tracked:
        // dropping them would let an access right after the boundary hit
        // on a tag whose data has not arrived
        self.mshrs.strip_attract();
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineConfig {
        MachineConfig::word_interleaved_4()
    }

    fn machine_ab() -> MachineConfig {
        MachineConfig::word_interleaved_4().with_attraction_buffers(16, 2)
    }

    #[test]
    fn uncontended_class_latencies_match_worked_example() {
        let mut c = InterleavedCache::new(&machine());
        // local miss then local hit (cluster 0 owns address 0)
        let o = c.access(AccessRequest::load(0, 0, 4, 0));
        assert_eq!((o.class, o.ready_at), (AccessClass::LocalMiss, 10));
        let o = c.access(AccessRequest::load(0, 0, 4, 100));
        assert_eq!((o.class, o.ready_at), (AccessClass::LocalHit, 101));
        // remote miss then remote hit (cluster 1 reads address 0)
        let o = c.access(AccessRequest::load(1, 128, 4, 200));
        assert_eq!((o.class, o.ready_at - 200), (AccessClass::RemoteMiss, 15));
        let o = c.access(AccessRequest::load(1, 128, 4, 300));
        assert_eq!((o.class, o.ready_at - 300), (AccessClass::RemoteHit, 5));
    }

    #[test]
    fn home_cluster_mapping() {
        let c = InterleavedCache::new(&machine());
        assert_eq!(c.home_cluster(0), 0);
        assert_eq!(c.home_cluster(4), 1);
        assert_eq!(c.home_cluster(12), 3);
        assert_eq!(c.home_cluster(16), 0); // wraps every N*I = 16 bytes
    }

    #[test]
    fn no_replication_outside_buffers() {
        // a remote access must NOT copy the subblock into the requester's
        // module: the next access from the home cluster still hits at home,
        // and the requester stays remote
        let mut c = InterleavedCache::new(&machine());
        let _ = c.access(AccessRequest::load(0, 0, 4, 0)); // cluster 0 local miss -> fills module 0
        let o = c.access(AccessRequest::load(1, 0, 4, 50));
        assert_eq!(o.class, AccessClass::RemoteHit);
        let o = c.access(AccessRequest::load(1, 0, 4, 100));
        assert_eq!(
            o.class,
            AccessClass::RemoteHit,
            "still remote without buffers"
        );
    }

    #[test]
    fn attraction_buffer_turns_remote_into_local() {
        let mut c = InterleavedCache::new(&machine_ab());
        let _ = c.access(AccessRequest::load(0, 0, 4, 0)); // warm module 0
        let o = c.access(AccessRequest::load(1, 0, 4, 50));
        assert_eq!(o.class, AccessClass::RemoteHit);
        // subblock now in cluster 1's buffer: next access is a local hit
        let o = c.access(AccessRequest::load(1, 0, 4, 100));
        assert_eq!(o.class, AccessClass::LocalHit);
        assert!(o.ab_hit);
        assert_eq!(o.ready_at, 101);
        // the whole subblock was attracted: word 16 (same block, module 0)
        let o = c.access(AccessRequest::load(1, 16, 4, 150));
        assert_eq!(
            o.class,
            AccessClass::LocalHit,
            "sibling word of the subblock"
        );
    }

    /// Regression: the pre-MSHR model inserted the Attraction-Buffer entry
    /// at *request* time, so a load issued 1 cycle after a remote miss
    /// AB-hit at `now + module_access` (= cycle 2) — 13 cycles before the
    /// data arrived. With fill-time allocation the second load combines
    /// with the in-flight transaction and retires no earlier than the
    /// first fill.
    #[test]
    fn second_load_to_inflight_remote_subblock_waits_for_fill() {
        let mut c = InterleavedCache::new(&machine_ab());
        let a = c.access(AccessRequest::load(1, 0, 4, 0));
        assert_eq!((a.class, a.ready_at), (AccessClass::RemoteMiss, 15));
        let b = c.access(AccessRequest::load(1, 16, 4, 1)); // same subblock
        assert!(!b.ab_hit, "data has not arrived yet");
        assert!(b.combined, "merges into the in-flight transaction");
        assert!(b.ready_at >= a.ready_at, "cannot be served before the fill");
        assert_eq!(b.ready_at, a.ready_at);
        assert_eq!(c.stats().mshr().merged_waiters, 1);
    }

    #[test]
    fn attraction_buffer_allocates_at_fill_time() {
        let mut c = InterleavedCache::new(&machine_ab());
        let _ = c.access(AccessRequest::load(0, 0, 4, 0)); // warm module 0
        let a = c.access(AccessRequest::load(1, 0, 4, 50));
        assert_eq!((a.class, a.ready_at), (AccessClass::RemoteHit, 55));
        // 2 cycles before the fill: still in flight, not an AB hit
        let b = c.access(AccessRequest::load(1, 16, 4, 53));
        assert!(!b.ab_hit && b.combined);
        assert_eq!(b.ready_at, 55);
        // after the fill: the buffer entry exists
        let d = c.access(AccessRequest::load(1, 16, 4, 60));
        assert!(d.ab_hit);
        assert_eq!((d.class, d.ready_at), (AccessClass::LocalHit, 61));
    }

    #[test]
    fn flush_empties_buffers() {
        let mut c = InterleavedCache::new(&machine_ab());
        let _ = c.access(AccessRequest::load(0, 0, 4, 0));
        let _ = c.access(AccessRequest::load(1, 0, 4, 50));
        c.flush_loop_boundary();
        let o = c.access(AccessRequest::load(1, 0, 4, 100));
        assert_eq!(
            o.class,
            AccessClass::RemoteHit,
            "buffer flushed between loops"
        );
    }

    #[test]
    fn stores_invalidate_other_buffers() {
        let mut c = InterleavedCache::new(&machine_ab());
        let _ = c.access(AccessRequest::load(0, 0, 4, 0));
        let _ = c.access(AccessRequest::load(1, 0, 4, 50)); // cluster 1 attracts
        let _ = c.access(AccessRequest::store(2, 0, 4, 100)); // cluster 2 writes
        let o = c.access(AccessRequest::load(1, 0, 4, 150));
        assert_eq!(
            o.class,
            AccessClass::RemoteHit,
            "stale buffer entry invalidated"
        );
    }

    #[test]
    fn stores_strip_attraction_from_inflight_fills() {
        let mut c = InterleavedCache::new(&machine_ab());
        let _ = c.access(AccessRequest::load(0, 0, 4, 0)); // warm module 0
        let _ = c.access(AccessRequest::load(1, 0, 4, 50)); // fill lands at 55
        let _ = c.access(AccessRequest::store(2, 0, 4, 52)); // store before the fill
        let o = c.access(AccessRequest::load(1, 0, 4, 100));
        assert_eq!(
            o.class,
            AccessClass::RemoteHit,
            "the stale in-flight fill must not allocate a buffer entry"
        );
    }

    #[test]
    fn non_attractable_requests_bypass_buffer() {
        let mut c = InterleavedCache::new(&machine_ab());
        let _ = c.access(AccessRequest::load(0, 0, 4, 0));
        let mut r = AccessRequest::load(1, 0, 4, 50);
        r.attractable = false;
        let _ = c.access(r);
        let o = c.access(AccessRequest::load(1, 0, 4, 100));
        assert_eq!(
            o.class,
            AccessClass::RemoteHit,
            "hint suppressed allocation"
        );
    }

    #[test]
    fn combining_merges_inflight_subblock_requests() {
        let mut c = InterleavedCache::new(&machine());
        let a = c.access(AccessRequest::load(1, 0, 4, 0)); // remote miss, ready at 15
        assert_eq!(a.class, AccessClass::RemoteMiss);
        let b = c.access(AccessRequest::load(1, 16, 4, 2)); // same subblock (block 0, module 0)
        assert!(b.combined);
        assert_eq!(b.ready_at, a.ready_at);
        assert_eq!(c.stats().combined(), 1);
        assert_eq!(c.stats().mshr().merged_waiters, 1);
        // after completion, no combining
        let d = c.access(AccessRequest::load(1, 0, 4, 40));
        assert!(!d.combined);
        assert_eq!(c.stats().mshr().fills, 2);
    }

    #[test]
    fn oversized_accesses_are_always_remote() {
        let mut c = InterleavedCache::new(&machine());
        // 8-byte element at address 0: home is cluster 0, but granularity 8 > I=4
        let o = c.access(AccessRequest::load(0, 0, 8, 0));
        assert!(!o.class.is_local());
        let o = c.access(AccessRequest::load(0, 0, 8, 100));
        assert!(!o.class.is_local());
    }

    /// Regression: the pre-split model fetched an oversized element from
    /// its first word's home module only, leaving the second spanning
    /// module untouched and its bus/port resources uncharged.
    #[test]
    fn oversized_fetch_fills_both_spanning_modules() {
        let mut c = InterleavedCache::new(&machine());
        let o = c.access(AccessRequest::load(2, 0, 8, 0)); // spans modules 0 and 1
        assert_eq!(o.class, AccessClass::RemoteMiss);
        assert_eq!(o.ready_at, 15, "halves fetch in parallel on separate buses");
        assert_eq!(c.stats().mshr().fills, 2, "one transaction per module");
        // the second module was really filled: its word is now a remote hit
        let o = c.access(AccessRequest::load(2, 4, 4, 100));
        assert_eq!(o.class, AccessClass::RemoteHit, "module 1 holds the block");
        let o = c.access(AccessRequest::load(2, 0, 4, 200));
        assert_eq!(o.class, AccessClass::RemoteHit, "module 0 holds the block");
    }

    #[test]
    fn unaligned_oversized_access_spans_all_touched_modules() {
        // bytes 2..10 touch words 0, 4 and 8 — modules 0, 1 AND 2; sampling
        // only addr+k*I would have missed module 2
        let mut c = InterleavedCache::new(&machine());
        let o = c.access(AccessRequest::load(3, 2, 8, 0));
        assert_eq!(o.class, AccessClass::RemoteMiss);
        assert_eq!(c.stats().mshr().fills, 3, "one transaction per module");
        let o = c.access(AccessRequest::load(3, 8, 4, 100));
        assert_eq!(o.class, AccessClass::RemoteHit, "last module was filled");
    }

    /// Regression: a local miss whose tag was evicted while its fill was
    /// still in flight used to issue a *second* transaction for the same
    /// subblock (double fill, double register, duplicate MSHR key).
    #[test]
    fn local_miss_after_tag_eviction_combines_with_inflight_fill() {
        let mut c = InterleavedCache::new(&machine());
        // blocks 0, 128 and 256 map to the same 2-way set of module 0
        let a = c.access(AccessRequest::load(0, 0, 4, 0)); // fill at 10
        let _ = c.access(AccessRequest::load(0, 4096, 4, 1));
        let _ = c.access(AccessRequest::load(0, 8192, 4, 2)); // evicts block 0's tag
        let b = c.access(AccessRequest::load(0, 0, 4, 3)); // fill still in flight
        assert!(b.combined, "must merge, not re-fetch");
        assert_eq!(b.ready_at, a.ready_at);
        assert_eq!(c.stats().mshr().fills, 3, "no duplicate transaction");
    }

    #[test]
    fn flush_keeps_inflight_fills_tracked() {
        // a loop boundary right after a miss: the tag is installed but the
        // data is still in the air — the next loop's first access must not
        // be served early (flush only strips the attraction flags)
        let mut c = InterleavedCache::new(&machine_ab());
        let a = c.access(AccessRequest::load(1, 0, 4, 0)); // remote miss, fill 15
        c.flush_loop_boundary();
        let b = c.access(AccessRequest::load(1, 0, 4, 2));
        assert!(b.combined);
        assert_eq!(b.ready_at, a.ready_at, "still waits for the fill");
        // …and the stripped attract flag means no buffer entry at the fill
        let d = c.access(AccessRequest::load(1, 0, 4, 50));
        assert_eq!(d.class, AccessClass::RemoteHit, "no stale AB allocation");
    }

    /// Regression: a local store's write-allocate fill used to claim no
    /// register, so a load to another word of the same subblock hit at
    /// the 1-cycle latency while the fill was still in the air.
    #[test]
    fn load_after_store_miss_waits_for_write_allocate_fill() {
        let mut c = InterleavedCache::new(&machine());
        let s = c.access(AccessRequest::store(0, 0, 4, 0)); // miss, fill at 10
        assert_eq!((s.class, s.ready_at), (AccessClass::LocalMiss, 1));
        let b = c.access(AccessRequest::load(0, 16, 4, 1)); // same subblock
        assert!(b.combined, "merges with the write-allocate fill");
        assert_eq!(b.ready_at, 10, "waits for the fill, not tag-hit at 2");
    }

    /// Regression: an oversized store used to invalidate only its first
    /// word's subblock key, leaving other clusters' Attraction-Buffer
    /// copies of the second spanning subblock alive with stale data.
    #[test]
    fn oversized_store_invalidates_every_spanning_subblock() {
        let mut c = InterleavedCache::new(&machine_ab());
        // cluster 3 attracts both subblocks of block 0 (modules 0 and 1)
        let _ = c.access(AccessRequest::load(3, 0, 4, 0));
        let _ = c.access(AccessRequest::load(3, 4, 4, 20));
        let o = c.access(AccessRequest::load(3, 4, 4, 60));
        assert!(o.ab_hit, "warmed: subblock (block 0, module 1) attracted");
        // an 8-byte store from cluster 2 touches both subblocks
        let _ = c.access(AccessRequest::store(2, 0, 8, 100));
        let a = c.access(AccessRequest::load(3, 0, 4, 150));
        assert_eq!(a.class, AccessClass::RemoteHit, "module-0 copy died");
        let b = c.access(AccessRequest::load(3, 4, 4, 200));
        assert_eq!(b.class, AccessClass::RemoteHit, "module-1 copy died too");
    }

    #[test]
    fn oversized_fetch_charges_both_bus_transfers() {
        let mut m = machine();
        m.buses.mem_buses = 1; // a single bus serializes the two halves
        let mut c = InterleavedCache::new(&m);
        let o = c.access(AccessRequest::load(2, 0, 8, 0));
        assert_eq!(o.class, AccessClass::RemoteMiss);
        assert_eq!(
            o.ready_at, 30,
            "the halves serialize on the single bus (requests book in \
             issue order), instead of the second riding along for free"
        );
    }

    /// Regression: the local-store write-allocate path used to book the
    /// next-level port at `req.now` even when the local port (and the tag
    /// probe behind it) was not free until later — the fill traffic
    /// occupied the next level before the miss was even detected.
    #[test]
    fn store_miss_books_nl_port_after_local_port_and_probe() {
        let mut m = machine();
        m.next_level.ports = 1; // make next-level bookings observable
        let mut c = InterleavedCache::new(&m);
        // uncontended store miss: the booking lands exactly at req.now
        // (port granted immediately, probe overlapped) …
        let o = c.access(AccessRequest::store(0, 0, 4, 7));
        assert_eq!((o.class, o.ready_at), (AccessClass::LocalMiss, 8));
        let o = c.access(AccessRequest::load(1, 4, 4, 7)); // local miss, needs the NL port
        assert_eq!(
            o.ready_at, 18,
            "NL port busy at 7: the store booked it at its port grant"
        );

        // … but a store whose local port is contended reaches the next
        // level only at its port grant (cycle 21), not at req.now (20)
        let mut c = InterleavedCache::new(&m);
        let _ = c.access(AccessRequest::load(0, 0, 4, 0)); // warm block 0 (NL busy 0..1)
        let _ = c.access(AccessRequest::store(0, 0, 4, 20)); // hit: occupies port 20..21
        let _ = c.access(AccessRequest::store(0, 128, 4, 20)); // miss: port granted at 21
        let o = c.access(AccessRequest::load(1, 4, 4, 20)); // next NL user in queue order
        assert_eq!(
            o.ready_at, 32,
            "the store occupies the NL port 21..22, so the load fills 22..32 \
             (the old req.now booking at 20..21 would have given 31)"
        );
    }

    #[test]
    fn mshr_capacity_backpressures_new_requests() {
        let m = machine().with_mshrs(1);
        let mut c = InterleavedCache::new(&m);
        let a = c.access(AccessRequest::load(1, 0, 4, 0)); // occupies the only register
        assert_eq!(a.ready_at, 15);
        let b = c.access(AccessRequest::load(1, 64, 4, 1)); // different subblock
        assert_eq!(b.mshr_delay, 14, "no free register until the first fill");
        assert_eq!(b.ready_at, 30, "issues at 15: bus 15-17, probe, miss, fill");
        assert_eq!(c.stats().mshr().full_stall_cycles, 14);
        assert_eq!(c.stats().mshr().peak_occupancy, 1);
    }

    #[test]
    fn bus_contention_delays_remote_hits() {
        let mut m = machine();
        m.buses.mem_buses = 1; // single bus
        let mut c = InterleavedCache::new(&m);
        let _ = c.access(AccessRequest::load(0, 0, 4, 0)); // warm module 0
        let a = c.access(AccessRequest::load(1, 0, 4, 100));
        let b = c.access(AccessRequest::load(2, 128, 4, 100));
        assert_eq!(a.ready_at - 100, 5);
        assert!(b.ready_at - 100 > 5, "second request waits for the bus");
    }

    #[test]
    fn capacity_evictions_cause_misses() {
        // module 0 holds 2 KB = 256 subblocks in 128 sets x 2 ways; streaming
        // 4x its capacity through one set-mapping evicts earlier blocks
        let mut c = InterleavedCache::new(&machine());
        let mut now = 0;
        // touch 512 distinct blocks (addresses 0, 32, 64, …), all module 0
        for i in 0..512u64 {
            now += 20;
            let _ = c.access(AccessRequest::load(0, i * 32, 4, now));
        }
        // re-touch the first block: evicted long ago
        now += 20;
        let o = c.access(AccessRequest::load(0, 0, 4, now));
        assert_eq!(o.class, AccessClass::LocalMiss);
    }

    #[test]
    fn stats_conserve_total() {
        let mut c = InterleavedCache::new(&machine_ab());
        let mut now = 0;
        for i in 0..100u64 {
            now += 3;
            let _ = c.access(AccessRequest::load(
                (i % 4) as usize,
                (i * 4) % 1024,
                4,
                now,
            ));
        }
        let s = c.stats();
        let sum = AccessClass::ALL.iter().map(|&cl| s.count(cl)).sum::<u64>() + s.combined();
        assert_eq!(sum, 100);
    }
}
