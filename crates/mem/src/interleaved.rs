//! The word-interleaved distributed data cache (§3 of the paper).

use std::collections::HashMap;

use vliw_machine::{AccessClass, MachineConfig};

use crate::lru::SetAssoc;
use crate::pool::ResourcePool;
use crate::stats::MemStats;
use crate::{AccessOutcome, AccessRequest, DataCache};

/// Word-interleaved cache: cluster `c` owns the words whose address
/// satisfies `(addr / I) mod N == c`. Subblocks live in exactly one module
/// (no replication); tags are replicated, so hit/miss is known locally.
///
/// Timing is composed from physical components — memory buses at half the
/// core frequency, one local port and one bus-side port per module, and the
/// shared next level — so that the four access classes land exactly on the
/// configured 1 / 5 / 10 / 15 cycles when uncontended (see the crate docs).
///
/// Optional per-cluster **Attraction Buffers** hold remote subblocks: a
/// remote load attracts its whole subblock into the requester's buffer, so
/// the next access to it is a local hit. Buffers are flushed at loop
/// boundaries ([`DataCache::flush_loop_boundary`]), which together with the
/// memory-dependent-chain scheduling constraint guarantees correctness.
#[derive(Debug)]
pub struct InterleavedCache {
    n: usize,
    interleave: u64,
    block_bytes: u64,
    transfer: u64,
    module_access: u64,
    nl_latency: u64,
    tags: Vec<SetAssoc>,
    local_ports: Vec<ResourcePool>,
    bus_ports: Vec<ResourcePool>,
    mem_buses: ResourcePool,
    nl_ports: ResourcePool,
    buffers: Option<Vec<SetAssoc>>,
    pending: HashMap<(usize, u64), (u64, AccessClass)>,
    stats: MemStats,
    last_now: u64,
}

impl InterleavedCache {
    /// Builds the cache for a word-interleaved machine.
    ///
    /// # Panics
    ///
    /// Panics if `machine` fails validation or is not word-interleaved.
    pub fn new(machine: &MachineConfig) -> Self {
        machine.validate().expect("valid machine");
        assert!(
            machine.has_remote_accesses(),
            "machine must be word-interleaved"
        );
        let n = machine.n_clusters();
        let module_bytes = machine.cache.module_bytes(n);
        let subblock = machine.cache.subblock_bytes(n);
        let sets = module_bytes / (subblock * machine.cache.associativity);
        let buffers = machine.attraction_buffers.map(|ab| {
            let ab_sets = (ab.entries / ab.associativity).max(1);
            (0..n)
                .map(|_| SetAssoc::new(ab_sets, ab.associativity))
                .collect()
        });
        InterleavedCache {
            n,
            interleave: machine.cache.interleave_bytes as u64,
            block_bytes: machine.cache.block_bytes as u64,
            transfer: machine.buses.transfer_cycles as u64,
            module_access: machine.mem_latencies.local_hit as u64,
            nl_latency: machine.next_level.latency as u64,
            tags: (0..n)
                .map(|_| SetAssoc::new(sets, machine.cache.associativity))
                .collect(),
            local_ports: (0..n).map(|_| ResourcePool::new(1)).collect(),
            bus_ports: (0..n).map(|_| ResourcePool::new(1)).collect(),
            mem_buses: ResourcePool::new(machine.buses.mem_buses),
            nl_ports: ResourcePool::new(machine.next_level.ports),
            buffers,
            pending: HashMap::new(),
            stats: MemStats::new(),
            last_now: 0,
        }
    }

    /// The cluster owning `addr`.
    pub fn home_cluster(&self, addr: u64) -> usize {
        ((addr / self.interleave) % self.n as u64) as usize
    }

    fn block_of(&self, addr: u64) -> u64 {
        addr / self.block_bytes
    }

    /// Attraction Buffer key for a (block, home-module) subblock.
    fn subblock_key(&self, block: u64, home: usize) -> u64 {
        block * self.n as u64 + home as u64
    }

    fn remote_fetch(&mut self, req: &AccessRequest, home: usize, block: u64) -> (u64, AccessClass) {
        // request bus -> remote module (bus-side port) -> reply bus
        let bus_start = self.mem_buses.acquire(req.now, self.transfer);
        let acc_start = self.bus_ports[home].acquire(bus_start + self.transfer, 1);
        let hit = self.tags[home].probe(block);
        if hit {
            let reply = self
                .mem_buses
                .acquire(acc_start + self.module_access, self.transfer);
            (reply + self.transfer, AccessClass::RemoteHit)
        } else {
            let nl_start = self.nl_ports.acquire(acc_start + self.module_access, 1);
            let filled = nl_start + self.nl_latency;
            self.tags[home].insert(block);
            let reply = self.mem_buses.acquire(filled, self.transfer);
            (reply + self.transfer, AccessClass::RemoteMiss)
        }
    }
}

impl DataCache for InterleavedCache {
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        debug_assert!(
            req.now >= self.last_now,
            "requests must arrive in time order"
        );
        self.last_now = req.now;
        let home = self.home_cluster(req.addr);
        let block = self.block_of(req.addr);
        // elements larger than the interleave factor span clusters and are
        // always remote (§5.2)
        let oversized = req.size as u64 > self.interleave;
        let local = home == req.cluster && !oversized;
        let key = self.subblock_key(block, home);

        if req.is_store {
            let class = if local {
                self.local_ports[req.cluster].acquire(req.now, 1);
                let hit = self.tags[req.cluster].probe(block);
                if hit {
                    AccessClass::LocalHit
                } else {
                    // write-allocate: fetch the subblock (store buffer hides
                    // the latency; the next-level port traffic still counts)
                    self.nl_ports.acquire(req.now, 1);
                    self.tags[req.cluster].insert(block);
                    AccessClass::LocalMiss
                }
            } else {
                // send the update over a memory bus to the home module
                let bus_start = self.mem_buses.acquire(req.now, self.transfer);
                let acc = self.bus_ports[home].acquire(bus_start + self.transfer, 1);
                let hit = self.tags[home].probe(block);
                if hit {
                    AccessClass::RemoteHit
                } else {
                    self.nl_ports.acquire(acc + self.module_access, 1);
                    self.tags[home].insert(block);
                    AccessClass::RemoteMiss
                }
            };
            // keep Attraction Buffers coherent: the writer's own copy is
            // updated through the write, every other cluster's copy dies
            if let Some(bufs) = &mut self.buffers {
                for (c, buf) in bufs.iter_mut().enumerate() {
                    if c != req.cluster {
                        buf.invalidate(key);
                    }
                }
            }
            self.stats.record(class, false, false);
            // stores complete through the store buffer next cycle
            return AccessOutcome {
                ready_at: req.now + 1,
                class,
                combined: false,
                ab_hit: false,
            };
        }

        // loads
        if local {
            let port_start = self.local_ports[req.cluster].acquire(req.now, 1);
            let hit = self.tags[req.cluster].probe(block);
            let (ready, class) = if hit {
                (port_start + self.module_access, AccessClass::LocalHit)
            } else {
                let nl_start = self.nl_ports.acquire(port_start, 1);
                self.tags[req.cluster].insert(block);
                (nl_start + self.nl_latency, AccessClass::LocalMiss)
            };
            self.stats.record(class, false, false);
            return AccessOutcome {
                ready_at: ready,
                class,
                combined: false,
                ab_hit: false,
            };
        }

        // remote load: Attraction Buffer first
        if !oversized {
            if let Some(bufs) = &mut self.buffers {
                if bufs[req.cluster].probe(key) {
                    let ready = req.now + self.module_access;
                    self.stats.record(AccessClass::LocalHit, false, true);
                    return AccessOutcome {
                        ready_at: ready,
                        class: AccessClass::LocalHit,
                        combined: false,
                        ab_hit: true,
                    };
                }
            }
        }

        // request combining: a second access to a subblock with a pending
        // request does not issue
        if let Some(&(ready, class)) = self.pending.get(&(req.cluster, key)) {
            if ready > req.now {
                self.stats.record(class, true, false);
                return AccessOutcome {
                    ready_at: ready,
                    class,
                    combined: true,
                    ab_hit: false,
                };
            }
        }

        let (ready, class) = self.remote_fetch(&req, home, block);
        self.pending.insert((req.cluster, key), (ready, class));
        if !oversized && req.attractable {
            if let Some(bufs) = &mut self.buffers {
                // the whole subblock is attracted into the local buffer
                bufs[req.cluster].insert(key);
            }
        }
        self.stats.record(class, false, false);
        AccessOutcome {
            ready_at: ready,
            class,
            combined: false,
            ab_hit: false,
        }
    }

    fn flush_loop_boundary(&mut self) {
        if let Some(bufs) = &mut self.buffers {
            for b in bufs {
                b.clear();
            }
        }
        self.pending.clear();
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineConfig {
        MachineConfig::word_interleaved_4()
    }

    fn machine_ab() -> MachineConfig {
        MachineConfig::word_interleaved_4().with_attraction_buffers(16, 2)
    }

    #[test]
    fn uncontended_class_latencies_match_worked_example() {
        let mut c = InterleavedCache::new(&machine());
        // local miss then local hit (cluster 0 owns address 0)
        let o = c.access(AccessRequest::load(0, 0, 4, 0));
        assert_eq!((o.class, o.ready_at), (AccessClass::LocalMiss, 10));
        let o = c.access(AccessRequest::load(0, 0, 4, 100));
        assert_eq!((o.class, o.ready_at), (AccessClass::LocalHit, 101));
        // remote miss then remote hit (cluster 1 reads address 0)
        let o = c.access(AccessRequest::load(1, 128, 4, 200));
        assert_eq!((o.class, o.ready_at - 200), (AccessClass::RemoteMiss, 15));
        let o = c.access(AccessRequest::load(1, 128, 4, 300));
        assert_eq!((o.class, o.ready_at - 300), (AccessClass::RemoteHit, 5));
    }

    #[test]
    fn home_cluster_mapping() {
        let c = InterleavedCache::new(&machine());
        assert_eq!(c.home_cluster(0), 0);
        assert_eq!(c.home_cluster(4), 1);
        assert_eq!(c.home_cluster(12), 3);
        assert_eq!(c.home_cluster(16), 0); // wraps every N*I = 16 bytes
    }

    #[test]
    fn no_replication_outside_buffers() {
        // a remote access must NOT copy the subblock into the requester's
        // module: the next access from the home cluster still hits at home,
        // and the requester stays remote
        let mut c = InterleavedCache::new(&machine());
        let _ = c.access(AccessRequest::load(0, 0, 4, 0)); // cluster 0 local miss -> fills module 0
        let o = c.access(AccessRequest::load(1, 0, 4, 50));
        assert_eq!(o.class, AccessClass::RemoteHit);
        let o = c.access(AccessRequest::load(1, 0, 4, 100));
        assert_eq!(
            o.class,
            AccessClass::RemoteHit,
            "still remote without buffers"
        );
    }

    #[test]
    fn attraction_buffer_turns_remote_into_local() {
        let mut c = InterleavedCache::new(&machine_ab());
        let _ = c.access(AccessRequest::load(0, 0, 4, 0)); // warm module 0
        let o = c.access(AccessRequest::load(1, 0, 4, 50));
        assert_eq!(o.class, AccessClass::RemoteHit);
        // subblock now in cluster 1's buffer: next access is a local hit
        let o = c.access(AccessRequest::load(1, 0, 4, 100));
        assert_eq!(o.class, AccessClass::LocalHit);
        assert!(o.ab_hit);
        assert_eq!(o.ready_at, 101);
        // the whole subblock was attracted: word 16 (same block, module 0)
        let o = c.access(AccessRequest::load(1, 16, 4, 150));
        assert_eq!(
            o.class,
            AccessClass::LocalHit,
            "sibling word of the subblock"
        );
    }

    #[test]
    fn flush_empties_buffers() {
        let mut c = InterleavedCache::new(&machine_ab());
        let _ = c.access(AccessRequest::load(0, 0, 4, 0));
        let _ = c.access(AccessRequest::load(1, 0, 4, 50));
        c.flush_loop_boundary();
        let o = c.access(AccessRequest::load(1, 0, 4, 100));
        assert_eq!(
            o.class,
            AccessClass::RemoteHit,
            "buffer flushed between loops"
        );
    }

    #[test]
    fn stores_invalidate_other_buffers() {
        let mut c = InterleavedCache::new(&machine_ab());
        let _ = c.access(AccessRequest::load(0, 0, 4, 0));
        let _ = c.access(AccessRequest::load(1, 0, 4, 50)); // cluster 1 attracts
        let _ = c.access(AccessRequest::store(2, 0, 4, 100)); // cluster 2 writes
        let o = c.access(AccessRequest::load(1, 0, 4, 150));
        assert_eq!(
            o.class,
            AccessClass::RemoteHit,
            "stale buffer entry invalidated"
        );
    }

    #[test]
    fn non_attractable_requests_bypass_buffer() {
        let mut c = InterleavedCache::new(&machine_ab());
        let _ = c.access(AccessRequest::load(0, 0, 4, 0));
        let mut r = AccessRequest::load(1, 0, 4, 50);
        r.attractable = false;
        let _ = c.access(r);
        let o = c.access(AccessRequest::load(1, 0, 4, 100));
        assert_eq!(
            o.class,
            AccessClass::RemoteHit,
            "hint suppressed allocation"
        );
    }

    #[test]
    fn combining_merges_inflight_subblock_requests() {
        let mut c = InterleavedCache::new(&machine());
        let a = c.access(AccessRequest::load(1, 0, 4, 0)); // remote miss, ready at 15
        assert_eq!(a.class, AccessClass::RemoteMiss);
        let b = c.access(AccessRequest::load(1, 16, 4, 2)); // same subblock (block 0, module 0)
        assert!(b.combined);
        assert_eq!(b.ready_at, a.ready_at);
        assert_eq!(c.stats().combined(), 1);
        // after completion, no combining
        let d = c.access(AccessRequest::load(1, 0, 4, 40));
        assert!(!d.combined);
    }

    #[test]
    fn oversized_accesses_are_always_remote() {
        let mut c = InterleavedCache::new(&machine());
        // 8-byte element at address 0: home is cluster 0, but granularity 8 > I=4
        let o = c.access(AccessRequest::load(0, 0, 8, 0));
        assert!(!o.class.is_local());
        let o = c.access(AccessRequest::load(0, 0, 8, 100));
        assert!(!o.class.is_local());
    }

    #[test]
    fn bus_contention_delays_remote_hits() {
        let mut m = machine();
        m.buses.mem_buses = 1; // single bus
        let mut c = InterleavedCache::new(&m);
        let _ = c.access(AccessRequest::load(0, 0, 4, 0)); // warm module 0
        let a = c.access(AccessRequest::load(1, 0, 4, 100));
        let b = c.access(AccessRequest::load(2, 128, 4, 100));
        assert_eq!(a.ready_at - 100, 5);
        assert!(b.ready_at - 100 > 5, "second request waits for the bus");
    }

    #[test]
    fn capacity_evictions_cause_misses() {
        // module 0 holds 2 KB = 256 subblocks in 128 sets x 2 ways; streaming
        // 4x its capacity through one set-mapping evicts earlier blocks
        let mut c = InterleavedCache::new(&machine());
        let mut now = 0;
        // touch 512 distinct blocks (addresses 0, 32, 64, …), all module 0
        for i in 0..512u64 {
            now += 20;
            let _ = c.access(AccessRequest::load(0, i * 32, 4, now));
        }
        // re-touch the first block: evicted long ago
        now += 20;
        let o = c.access(AccessRequest::load(0, 0, 4, now));
        assert_eq!(o.class, AccessClass::LocalMiss);
    }

    #[test]
    fn stats_conserve_total() {
        let mut c = InterleavedCache::new(&machine_ab());
        let mut now = 0;
        for i in 0..100u64 {
            now += 3;
            let _ = c.access(AccessRequest::load(
                (i % 4) as usize,
                (i * 4) % 1024,
                4,
                now,
            ));
        }
        let s = c.stats();
        let sum = AccessClass::ALL.iter().map(|&cl| s.count(cl)).sum::<u64>() + s.combined();
        assert_eq!(sum, 100);
    }
}
