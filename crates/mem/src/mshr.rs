//! In-flight request tracking: miss-status holding registers (MSHRs).
//!
//! Every memory transaction that takes time to complete — a remote request
//! over the memory buses, a next-level fill — is recorded in a per-cluster
//! [`MshrFile`] from the cycle it issues until its fill time. The file is
//! the single source of truth about what is *in flight*, which fixes two
//! timing bugs the previous ad-hoc `pending` map had structurally:
//!
//! * **Data is never served before it arrives.** Attraction-Buffer
//!   allocation (and any other "the data is now here" side effect) happens
//!   when an entry *retires* at its fill time, not when the request issues.
//!   A second access to an in-flight subblock finds the MSHR entry and
//!   waits for the fill instead of hitting on data that has not arrived.
//! * **Request combining is exact.** A combined access attaches to the
//!   entry as a waiter and retires with it (§3's "combined accesses"); the
//!   entry records how many requests it merged.
//!
//! Entries retire lazily as simulated time advances: every cache call
//! passes the current cycle to [`MshrFile::retire_up_to`] first, so the
//! file never grows beyond its configured capacity and never relies on
//! loop-boundary flushes for correctness. When every register of a cluster
//! is busy, a new transaction waits for the earliest fill
//! ([`MshrFile::earliest_start`]) — the structural back-pressure a real
//! MSHR file applies.

use vliw_machine::AccessClass;

/// One in-flight transaction: a requested subblock on its way to a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrEntry {
    /// Subblock (or block) identity the transaction fills.
    pub key: u64,
    /// Absolute cycle the data arrives at the requesting cluster.
    pub fill_at: u64,
    /// How the original request classified (the class combined waiters
    /// inherit).
    pub class: AccessClass,
    /// Requests merged into this transaction after it issued — the
    /// per-entry record delivered to [`MshrFile::retire_up_to`] callbacks
    /// (aggregate counting lives in `MemStats`).
    pub waiters: u32,
    /// Whether the fill allocates an Attraction-Buffer entry on arrival.
    pub attract: bool,
}

/// Per-cluster miss-status register files of fixed capacity.
///
/// `filled` holds entries whose register was handed to a newer transaction
/// exactly at their fill time (capacity back-pressure): their data is still
/// "in the air" for lookup purposes until simulated time reaches the fill,
/// at which point [`MshrFile::retire_up_to`] delivers them like any other
/// entry. Only `inflight` counts toward capacity.
#[derive(Debug)]
pub struct MshrFile {
    capacity: usize,
    inflight: Vec<Vec<MshrEntry>>,
    filled: Vec<Vec<MshrEntry>>,
}

impl MshrFile {
    /// A file of `capacity` registers for each of `clusters` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` or `capacity` is zero.
    pub fn new(clusters: usize, capacity: usize) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        assert!(capacity > 0, "need at least one MSHR per cluster");
        MshrFile {
            capacity,
            inflight: vec![Vec::new(); clusters],
            filled: vec![Vec::new(); clusters],
        }
    }

    /// Registers per cluster.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Busy registers of `cluster` (entries still counting toward
    /// capacity).
    pub fn occupancy(&self, cluster: usize) -> usize {
        self.inflight[cluster].len()
    }

    /// Retires every entry whose fill time has been reached, delivering it
    /// to `on_fill(cluster, entry)` (Attraction-Buffer allocation lives in
    /// that callback). Must be called with the current cycle before any
    /// lookup — arrival is what turns an in-flight subblock into data.
    pub fn retire_up_to(&mut self, now: u64, on_fill: &mut dyn FnMut(usize, MshrEntry)) {
        for cluster in 0..self.inflight.len() {
            for list in [&mut self.inflight[cluster], &mut self.filled[cluster]] {
                let mut i = 0;
                while i < list.len() {
                    if list[i].fill_at <= now {
                        on_fill(cluster, list.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    /// The in-flight entry for `(cluster, key)`, if the transaction has
    /// not yet filled. Mutable so callers can attach waiters.
    pub fn lookup(&mut self, cluster: usize, key: u64) -> Option<&mut MshrEntry> {
        // search order is irrelevant: a key is never in both lists (a new
        // transaction for a key only starts once the old one retired or
        // was looked up and merged with)
        self.inflight[cluster]
            .iter_mut()
            .chain(self.filled[cluster].iter_mut())
            .find(|e| e.key == key)
    }

    /// The earliest cycle ≥ `now` a *new* transaction can claim a register
    /// of `cluster`: `now` when a register is free, otherwise the earliest
    /// fill among the busy ones. Call [`MshrFile::retire_up_to`]`(now)`
    /// first so already-complete entries do not count as busy.
    pub fn earliest_start(&self, cluster: usize, now: u64) -> u64 {
        if self.inflight[cluster].len() < self.capacity {
            now
        } else {
            self.inflight[cluster]
                .iter()
                .map(|e| e.fill_at)
                .min()
                .expect("full file is nonempty")
                .max(now)
        }
    }

    /// Claims a register of `cluster` at `start` (a cycle ≥
    /// [`MshrFile::earliest_start`]) for `entry`; returns the occupancy
    /// after allocation. If the file is full, the register whose fill
    /// frees it (fill ≤ `start`) moves to the `filled` shelf — its data
    /// is still findable by [`MshrFile::lookup`] until time reaches it.
    ///
    /// # Panics
    ///
    /// Panics if the file is full and no entry fills by `start` (the
    /// caller skipped `earliest_start`).
    pub fn allocate(&mut self, cluster: usize, start: u64, entry: MshrEntry) -> usize {
        if self.inflight[cluster].len() >= self.capacity {
            let (idx, _) = self.inflight[cluster]
                .iter()
                .enumerate()
                .min_by_key(|&(i, e)| (e.fill_at, i))
                .expect("full file is nonempty");
            let evicted = self.inflight[cluster].swap_remove(idx);
            assert!(
                evicted.fill_at <= start,
                "allocation at {start} before the earliest fill {}",
                evicted.fill_at
            );
            self.filled[cluster].push(evicted);
        }
        self.inflight[cluster].push(entry);
        self.inflight[cluster].len()
    }

    /// Drops every *other* cluster's in-flight entry for `key`: a store
    /// invalidated those clusters' copies, so the fills in the air are
    /// dead and their next access must re-fetch from the writer
    /// (replicating-cache coherence, the multiVLIW snoop).
    pub fn invalidate_other(&mut self, writer: usize, key: u64) {
        for cluster in 0..self.inflight.len() {
            if cluster == writer {
                continue;
            }
            self.inflight[cluster].retain(|e| e.key != key);
            self.filled[cluster].retain(|e| e.key != key);
        }
    }

    /// Clears the attraction flag of every other cluster's in-flight entry
    /// for `key`: a store made the data stale, so the fill must not
    /// allocate an Attraction-Buffer copy (the writer's own copy is
    /// updated through the write).
    pub fn clear_attract(&mut self, writer: usize, key: u64) {
        for cluster in 0..self.inflight.len() {
            if cluster == writer {
                continue;
            }
            for e in self.inflight[cluster]
                .iter_mut()
                .chain(self.filled[cluster].iter_mut())
            {
                if e.key == key {
                    e.attract = false;
                }
            }
        }
    }

    /// Strips the attraction flag from every entry (loop-boundary flush):
    /// a finished loop's in-flight fills must not allocate Attraction-
    /// Buffer entries for the next loop, but the transactions themselves
    /// are still in the air — dropping them would let the tags they
    /// installed serve data that never arrived.
    pub fn strip_attract(&mut self) {
        for list in self.inflight.iter_mut().chain(self.filled.iter_mut()) {
            for e in list {
                e.attract = false;
            }
        }
    }

    /// Drops every entry (full reset; loop boundaries use
    /// [`MshrFile::strip_attract`] instead, so in-flight timing survives).
    pub fn clear(&mut self) {
        for list in self.inflight.iter_mut().chain(self.filled.iter_mut()) {
            list.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: u64, fill_at: u64) -> MshrEntry {
        MshrEntry {
            key,
            fill_at,
            class: AccessClass::RemoteMiss,
            waiters: 0,
            attract: true,
        }
    }

    #[test]
    fn retire_delivers_completed_entries_once() {
        let mut f = MshrFile::new(2, 4);
        f.allocate(0, 0, entry(7, 10));
        f.allocate(1, 0, entry(8, 20));
        let mut seen = Vec::new();
        f.retire_up_to(5, &mut |c, e| seen.push((c, e.key)));
        assert!(seen.is_empty(), "nothing filled yet");
        f.retire_up_to(10, &mut |c, e| seen.push((c, e.key)));
        assert_eq!(seen, [(0, 7)]);
        f.retire_up_to(100, &mut |c, e| seen.push((c, e.key)));
        assert_eq!(seen, [(0, 7), (1, 8)]);
        f.retire_up_to(200, &mut |_, _| panic!("nothing left"));
    }

    #[test]
    fn lookup_finds_only_inflight_keys_per_cluster() {
        let mut f = MshrFile::new(2, 4);
        f.allocate(0, 0, entry(7, 10));
        assert!(f.lookup(0, 7).is_some());
        assert!(f.lookup(1, 7).is_none(), "files are per cluster");
        assert!(f.lookup(0, 8).is_none());
        f.retire_up_to(10, &mut |_, _| {});
        assert!(f.lookup(0, 7).is_none(), "retired entries are gone");
    }

    #[test]
    fn full_file_backpressures_to_earliest_fill() {
        let mut f = MshrFile::new(1, 2);
        f.allocate(0, 0, entry(1, 12));
        f.allocate(0, 0, entry(2, 18));
        assert_eq!(f.earliest_start(0, 5), 12, "waits for the first fill");
        // allocating at that start shelves the filled entry but keeps it
        // findable until time catches up
        f.allocate(0, 12, entry(3, 30));
        assert_eq!(f.occupancy(0), 2);
        assert!(f.lookup(0, 1).is_some(), "shelved entry still in the air");
        let mut keys = Vec::new();
        f.retire_up_to(12, &mut |_, e| keys.push(e.key));
        assert_eq!(keys, [1]);
    }

    #[test]
    fn earliest_start_is_now_when_a_register_is_free() {
        let mut f = MshrFile::new(1, 2);
        f.allocate(0, 0, entry(1, 12));
        assert_eq!(f.earliest_start(0, 5), 5);
    }

    #[test]
    #[should_panic(expected = "before the earliest fill")]
    fn allocate_rejects_starts_before_a_register_frees() {
        let mut f = MshrFile::new(1, 1);
        f.allocate(0, 0, entry(1, 12));
        f.allocate(0, 5, entry(2, 20));
    }

    #[test]
    fn stores_strip_attraction_from_other_clusters() {
        let mut f = MshrFile::new(2, 2);
        f.allocate(0, 0, entry(7, 10));
        f.allocate(1, 0, entry(7, 10));
        f.clear_attract(0, 7);
        assert!(f.lookup(0, 7).unwrap().attract, "writer keeps its copy");
        assert!(!f.lookup(1, 7).unwrap().attract, "reader's fill is stale");
    }

    #[test]
    fn waiters_ride_the_entry_to_retirement() {
        let mut f = MshrFile::new(1, 2);
        f.allocate(0, 0, entry(7, 10));
        f.lookup(0, 7).expect("in flight").waiters += 1;
        f.lookup(0, 7).expect("in flight").waiters += 1;
        let mut delivered = 0;
        f.retire_up_to(10, &mut |_, e| delivered = e.waiters);
        assert_eq!(delivered, 2, "the fill reports how many requests merged");
    }

    #[test]
    fn strip_attract_keeps_entries_in_flight() {
        let mut f = MshrFile::new(1, 2);
        f.allocate(0, 0, entry(7, 10));
        f.strip_attract();
        let e = f.lookup(0, 7).expect("entry still tracked");
        assert!(!e.attract, "fill will not allocate a buffer entry");
        assert_eq!(e.fill_at, 10, "timing untouched");
    }

    #[test]
    fn clear_empties_everything() {
        let mut f = MshrFile::new(2, 1);
        f.allocate(0, 0, entry(1, 10));
        f.allocate(0, 10, entry(2, 20)); // shelves key 1
        f.clear();
        assert_eq!(f.occupancy(0), 0);
        assert!(f.lookup(0, 1).is_none() && f.lookup(0, 2).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one MSHR")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(1, 0);
    }
}
