//! The per-access observation hook: every request/outcome pair of a
//! wrapped cache model is reported to an [`AccessObserver`].
//!
//! This is the measurement seam the feedback-directed scheduling loop
//! stands on: the profiling subsystem (`vliw-profile`) wraps the cache a
//! simulation runs against in an [`ObservedCache`] and receives, for
//! every access, the issuing cluster, the request tag (the simulator tags
//! requests with the dense operation index), the address, the access
//! class, and the *observed* latency `ready_at − now` — contention,
//! combining and MSHR back-pressure included. Synthetic models never see
//! any of this; the hook is pure observation and cannot change timing.

use crate::{AccessOutcome, AccessRequest, DataCache, MemStats};

/// A sink for per-access observations of an [`ObservedCache`].
pub trait AccessObserver {
    /// Called after every access with the request (tag included) and its
    /// outcome. The observed latency is `out.ready_at - req.now`.
    fn observe(&mut self, req: &AccessRequest, out: &AccessOutcome);

    /// Called whenever the wrapped cache is told a pipelined loop
    /// finished ([`DataCache::flush_loop_boundary`]). Collectors use this
    /// to separate warm-up accesses from the measured pass.
    fn loop_boundary(&mut self) {}
}

/// A [`DataCache`] wrapper that forwards every call to the wrapped model
/// and reports each access to its observer. Timing is untouched: the
/// observer runs strictly after the inner model has answered.
#[derive(Debug)]
pub struct ObservedCache<C, O> {
    inner: C,
    observer: O,
}

impl<C: DataCache, O: AccessObserver> ObservedCache<C, O> {
    /// Wraps `inner`, reporting every access to `observer`.
    pub fn new(inner: C, observer: O) -> Self {
        ObservedCache { inner, observer }
    }

    /// The observer (to read collected measurements back out).
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Unwraps into the inner cache and the observer.
    pub fn into_parts(self) -> (C, O) {
        (self.inner, self.observer)
    }
}

impl<C: DataCache, O: AccessObserver> DataCache for ObservedCache<C, O> {
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        let out = self.inner.access(req);
        self.observer.observe(&req, &out);
        out
    }

    fn flush_loop_boundary(&mut self) {
        self.inner.flush_loop_boundary();
        self.observer.loop_boundary();
    }

    fn stats(&self) -> &MemStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_cache;
    use vliw_machine::MachineConfig;

    #[derive(Default)]
    struct Recorder {
        events: Vec<(u32, usize, u64, u64)>,
        boundaries: usize,
    }

    impl AccessObserver for Recorder {
        fn observe(&mut self, req: &AccessRequest, out: &AccessOutcome) {
            self.events
                .push((req.tag, req.cluster, req.addr, out.ready_at - req.now));
        }

        fn loop_boundary(&mut self) {
            self.boundaries += 1;
        }
    }

    #[test]
    fn every_access_is_observed_with_identical_timing() {
        let m = MachineConfig::word_interleaved_4();
        let mut plain = build_cache(&m);
        let mut observed = ObservedCache::new(build_cache(&m), Recorder::default());
        let reqs = [
            AccessRequest::load(0, 0, 4, 0).tagged(7),
            AccessRequest::load(0, 0, 4, 20).tagged(7),
            AccessRequest::store(1, 64, 4, 40).tagged(9),
        ];
        for r in reqs {
            let a = plain.access(r);
            let b = observed.access(r);
            assert_eq!(a, b, "observation must not perturb timing");
        }
        let rec = observed.observer();
        assert_eq!(rec.events.len(), 3);
        assert_eq!(rec.events[0], (7, 0, 0, 10)); // local miss
        assert_eq!(rec.events[1], (7, 0, 0, 1)); // local hit
        assert_eq!(rec.events[2].0, 9);
        assert_eq!(observed.stats().total(), 3);
    }

    #[test]
    fn loop_boundaries_reach_the_observer() {
        let m = MachineConfig::word_interleaved_4();
        let mut observed = ObservedCache::new(build_cache(&m), Recorder::default());
        observed.flush_loop_boundary();
        observed.flush_loop_boundary();
        assert_eq!(observed.observer().boundaries, 2);
    }
}
