//! Deterministic queueing for contended resources (buses, ports).

/// A pool of `k` identical servers with per-request service times.
///
/// `acquire(earliest, service)` picks the server that can start soonest
/// (but not before `earliest`), books it for `service` cycles and returns
/// the start time. This models bus arbitration and port contention without
/// event-driven simulation; with requests arriving in non-decreasing time
/// order it yields the same schedules a cycle-stepped arbiter would.
#[derive(Debug, Clone)]
pub struct ResourcePool {
    next_free: Vec<u64>,
}

impl ResourcePool {
    /// A pool with `servers` servers, all free at time 0.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a resource pool needs at least one server");
        ResourcePool {
            next_free: vec![0; servers],
        }
    }

    /// Books the earliest-available server at or after `earliest` for
    /// `service` cycles; returns the start time.
    pub fn acquire(&mut self, earliest: u64, service: u64) -> u64 {
        let (idx, _) = self
            .next_free
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t.max(earliest), i))
            .expect("nonempty pool");
        let start = self.next_free[idx].max(earliest);
        self.next_free[idx] = start + service;
        start
    }

    /// The earliest start a request arriving at `earliest` would get,
    /// without booking.
    pub fn peek(&self, earliest: u64) -> u64 {
        self.next_free
            .iter()
            .map(|&t| t.max(earliest))
            .min()
            .expect("nonempty pool")
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.next_free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_requests_start_immediately() {
        let mut p = ResourcePool::new(2);
        assert_eq!(p.acquire(5, 2), 5);
        assert_eq!(p.acquire(5, 2), 5); // second server
    }

    #[test]
    fn contention_queues_fifo() {
        let mut p = ResourcePool::new(1);
        assert_eq!(p.acquire(0, 2), 0);
        assert_eq!(p.acquire(0, 2), 2);
        assert_eq!(p.acquire(1, 2), 4);
        // a late request after the queue drains starts on time
        assert_eq!(p.acquire(100, 2), 100);
    }

    #[test]
    fn four_buses_at_half_frequency() {
        // 4 buses, 2-cycle transfers: 5 simultaneous requests -> the fifth
        // waits for the first bus to free
        let mut p = ResourcePool::new(4);
        for _ in 0..4 {
            assert_eq!(p.acquire(0, 2), 0);
        }
        assert_eq!(p.acquire(0, 2), 2);
    }

    #[test]
    fn peek_does_not_book() {
        let mut p = ResourcePool::new(1);
        assert_eq!(p.peek(3), 3);
        p.acquire(0, 10);
        assert_eq!(p.peek(3), 10);
        assert_eq!(p.peek(12), 12);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_rejected() {
        let _ = ResourcePool::new(0);
    }
}
