//! The unified (centralized, multi-ported) data cache.

use vliw_machine::{AccessClass, ArchKind, MachineConfig};

use crate::lru::SetAssoc;
use crate::mshr::{MshrEntry, MshrFile};
use crate::pool::ResourcePool;
use crate::stats::MemStats;
use crate::{AccessOutcome, AccessRequest, DataCache};

/// A central cache shared by all clusters through `unified_ports`
/// read/write ports (5 in the paper). The access latency — 1 cycle in the
/// optimistic configuration, 5 in the realistic one that pays the cluster ↔
/// cache propagation delay — comes from
/// [`MemLatencies::local_hit`](vliw_machine::MemLatencies); a miss adds the
/// next-level round trip. All accesses classify as local.
///
/// Misses to the next level occupy a miss-status register ([`MshrFile`])
/// until the fill completes. The tag is installed when the miss issues, so
/// a second access to the block hits — but the register keeps it honest:
/// the hit cannot complete before the in-flight fill arrives, and it
/// counts as a combined access instead of a fresh one. The cache is one
/// shared structure, so the per-cluster MSHR budget aggregates into a
/// single file of `per_cluster × N` registers.
#[derive(Debug)]
pub struct UnifiedCache {
    tags: SetAssoc,
    ports: ResourcePool,
    nl_ports: ResourcePool,
    block_bytes: u64,
    hit_latency: u64,
    nl_latency: u64,
    mshrs: MshrFile,
    stats: MemStats,
}

impl UnifiedCache {
    /// Builds the cache for a unified machine.
    ///
    /// # Panics
    ///
    /// Panics if the machine is not a unified configuration.
    pub fn new(machine: &MachineConfig) -> Self {
        assert_eq!(machine.arch, ArchKind::Unified, "machine must be unified");
        let sets =
            machine.cache.total_bytes / (machine.cache.block_bytes * machine.cache.associativity);
        UnifiedCache {
            tags: SetAssoc::new(sets, machine.cache.associativity),
            ports: ResourcePool::new(machine.cache.unified_ports),
            nl_ports: ResourcePool::new(machine.next_level.ports),
            block_bytes: machine.cache.block_bytes as u64,
            hit_latency: machine.mem_latencies.local_hit as u64,
            nl_latency: machine.next_level.latency as u64,
            mshrs: MshrFile::new(1, machine.mshrs.per_cluster * machine.n_clusters()),
            stats: MemStats::new(),
        }
    }
}

impl DataCache for UnifiedCache {
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        self.mshrs.retire_up_to(req.now, &mut |_, _| {});
        let block = req.addr / self.block_bytes;
        let port_start = self.ports.acquire(req.now, 1);
        let hit = self.tags.probe(block);
        // a load to a block whose fill is still in flight combines with
        // the transaction — whether or not the tag survived eviction in
        // the meantime. Stores never merge: they complete through the
        // store buffer and must not inflate the combined counters.
        if !req.is_store {
            if let Some(e) = self.mshrs.lookup(0, block) {
                e.waiters += 1;
                self.stats.mshr_mut().on_merge();
                let class = if hit { AccessClass::LocalHit } else { e.class };
                self.stats.record(class, true, false);
                return AccessOutcome {
                    ready_at: (port_start + self.hit_latency).max(e.fill_at),
                    class,
                    combined: true,
                    ab_hit: false,
                    mshr_delay: 0,
                };
            }
        }
        let (ready, class, delay) = if hit {
            (port_start + self.hit_latency, AccessClass::LocalHit, 0)
        } else if req.is_store && self.mshrs.lookup(0, block).is_some() {
            // store to an in-flight block whose tag was evicted: the
            // write folds into the existing fill, no second transaction
            (req.now + 1, AccessClass::LocalMiss, 0)
        } else {
            // write-allocate for stores too (the store buffer hides the
            // fill latency from the core)
            let earliest = port_start + self.hit_latency;
            let start = self.mshrs.earliest_start(0, earliest);
            if start > earliest {
                self.stats.mshr_mut().on_full_stall(start - earliest);
            }
            let nl_start = self.nl_ports.acquire(start, 1);
            self.tags.insert(block);
            let fill = nl_start + self.nl_latency;
            let occ = self.mshrs.allocate(
                0,
                start,
                MshrEntry {
                    key: block,
                    fill_at: fill,
                    class: AccessClass::LocalMiss,
                    waiters: 0,
                    attract: false,
                },
            );
            self.stats.mshr_mut().on_fill_issued(occ);
            // stores never stall the core, so the back-pressure delay only
            // marks loads
            let delay = if req.is_store { 0 } else { start - earliest };
            (fill, AccessClass::LocalMiss, delay)
        };
        let ready = if req.is_store { req.now + 1 } else { ready };
        self.stats.record(class, false, false);
        AccessOutcome {
            ready_at: ready,
            class,
            combined: false,
            ab_hit: false,
            mshr_delay: delay,
        }
    }

    fn flush_loop_boundary(&mut self) {
        // nothing to flush: no Attraction Buffers, and in-flight fills
        // stay tracked so post-boundary accesses cannot outrun them
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_latencies_optimistic() {
        let m = MachineConfig::unified_4(1);
        let mut c = UnifiedCache::new(&m);
        let o = c.access(AccessRequest::load(0, 0, 4, 0));
        assert_eq!((o.class, o.ready_at), (AccessClass::LocalMiss, 11));
        let o = c.access(AccessRequest::load(3, 0, 4, 50));
        assert_eq!((o.class, o.ready_at), (AccessClass::LocalHit, 51));
    }

    #[test]
    fn hit_and_miss_latencies_realistic() {
        let m = MachineConfig::unified_4(5);
        let mut c = UnifiedCache::new(&m);
        let o = c.access(AccessRequest::load(0, 0, 4, 0));
        assert_eq!(o.ready_at, 15); // 5 + 10
        let o = c.access(AccessRequest::load(1, 0, 4, 50));
        assert_eq!(o.ready_at, 55);
    }

    #[test]
    fn five_ports_serve_five_per_cycle() {
        let m = MachineConfig::unified_4(1);
        let mut c = UnifiedCache::new(&m);
        let _ = c.access(AccessRequest::load(0, 0, 4, 0)); // warm
        for i in 0..5 {
            let o = c.access(AccessRequest::load(i % 4, 0, 4, 10));
            assert_eq!(o.ready_at, 11, "port {i} free at cycle 10");
        }
        let o = c.access(AccessRequest::load(0, 0, 4, 10));
        assert_eq!(o.ready_at, 12, "sixth access waits a cycle");
    }

    /// Regression: a hit on a block whose fill is still in flight used to
    /// complete at the plain hit latency — before the data arrived.
    #[test]
    fn hit_on_inflight_fill_waits_for_the_fill() {
        let m = MachineConfig::unified_4(1);
        let mut c = UnifiedCache::new(&m);
        let a = c.access(AccessRequest::load(0, 0, 4, 0)); // miss, fills at 11
        assert_eq!(a.ready_at, 11);
        let b = c.access(AccessRequest::load(1, 0, 4, 2));
        assert!(b.combined, "attaches to the in-flight fill");
        assert_eq!(b.ready_at, 11, "cannot complete before the fill");
        assert_eq!(c.stats().mshr().merged_waiters, 1);
        // once the fill lands, plain hits again
        let d = c.access(AccessRequest::load(2, 0, 4, 20));
        assert!(!d.combined);
        assert_eq!(d.ready_at, 21);
    }

    #[test]
    fn stores_never_merge_into_inflight_fills() {
        let m = MachineConfig::unified_4(1);
        let mut c = UnifiedCache::new(&m);
        let _ = c.access(AccessRequest::load(0, 0, 4, 0)); // miss, fills at 11
        let s = c.access(AccessRequest::store(1, 0, 4, 2)); // same block, in flight
        assert!(!s.combined, "stores complete through the store buffer");
        assert_eq!(s.ready_at, 3);
        assert_eq!(c.stats().mshr().merged_waiters, 0);
    }

    #[test]
    fn stores_complete_through_store_buffer() {
        let m = MachineConfig::unified_4(5);
        let mut c = UnifiedCache::new(&m);
        let o = c.access(AccessRequest::store(0, 64, 4, 7));
        assert_eq!(o.ready_at, 8, "store buffer completes next cycle");
        assert_eq!(o.class, AccessClass::LocalMiss);
        let o = c.access(AccessRequest::load(0, 64, 4, 20));
        assert_eq!(
            o.class,
            AccessClass::LocalHit,
            "write-allocate filled the block"
        );
    }

    #[test]
    fn all_accesses_classify_local() {
        let m = MachineConfig::unified_4(1);
        let mut c = UnifiedCache::new(&m);
        for i in 0..50u64 {
            let o = c.access(AccessRequest::load((i % 4) as usize, i * 8, 8, i * 2));
            assert!(o.class.is_local());
        }
        assert_eq!(c.stats().total(), 50);
    }
}
