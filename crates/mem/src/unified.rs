//! The unified (centralized, multi-ported) data cache.

use vliw_machine::{AccessClass, ArchKind, MachineConfig};

use crate::lru::SetAssoc;
use crate::pool::ResourcePool;
use crate::stats::MemStats;
use crate::{AccessOutcome, AccessRequest, DataCache};

/// A central cache shared by all clusters through `unified_ports`
/// read/write ports (5 in the paper). The access latency — 1 cycle in the
/// optimistic configuration, 5 in the realistic one that pays the cluster ↔
/// cache propagation delay — comes from
/// [`MemLatencies::local_hit`](vliw_machine::MemLatencies); a miss adds the
/// next-level round trip. All accesses classify as local.
#[derive(Debug)]
pub struct UnifiedCache {
    tags: SetAssoc,
    ports: ResourcePool,
    nl_ports: ResourcePool,
    block_bytes: u64,
    hit_latency: u64,
    nl_latency: u64,
    stats: MemStats,
}

impl UnifiedCache {
    /// Builds the cache for a unified machine.
    ///
    /// # Panics
    ///
    /// Panics if the machine is not a unified configuration.
    pub fn new(machine: &MachineConfig) -> Self {
        assert_eq!(machine.arch, ArchKind::Unified, "machine must be unified");
        let sets =
            machine.cache.total_bytes / (machine.cache.block_bytes * machine.cache.associativity);
        UnifiedCache {
            tags: SetAssoc::new(sets, machine.cache.associativity),
            ports: ResourcePool::new(machine.cache.unified_ports),
            nl_ports: ResourcePool::new(machine.next_level.ports),
            block_bytes: machine.cache.block_bytes as u64,
            hit_latency: machine.mem_latencies.local_hit as u64,
            nl_latency: machine.next_level.latency as u64,
            stats: MemStats::new(),
        }
    }
}

impl DataCache for UnifiedCache {
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        let block = req.addr / self.block_bytes;
        let port_start = self.ports.acquire(req.now, 1);
        let hit = self.tags.probe(block);
        let (ready, class) = if hit {
            (port_start + self.hit_latency, AccessClass::LocalHit)
        } else {
            // write-allocate for stores too (the store buffer hides the
            // fill latency from the core)
            let nl_start = self.nl_ports.acquire(port_start + self.hit_latency, 1);
            self.tags.insert(block);
            (nl_start + self.nl_latency, AccessClass::LocalMiss)
        };
        let ready = if req.is_store { req.now + 1 } else { ready };
        self.stats.record(class, false, false);
        AccessOutcome {
            ready_at: ready,
            class,
            combined: false,
            ab_hit: false,
        }
    }

    fn flush_loop_boundary(&mut self) {}

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_latencies_optimistic() {
        let m = MachineConfig::unified_4(1);
        let mut c = UnifiedCache::new(&m);
        let o = c.access(AccessRequest::load(0, 0, 4, 0));
        assert_eq!((o.class, o.ready_at), (AccessClass::LocalMiss, 11));
        let o = c.access(AccessRequest::load(3, 0, 4, 50));
        assert_eq!((o.class, o.ready_at), (AccessClass::LocalHit, 51));
    }

    #[test]
    fn hit_and_miss_latencies_realistic() {
        let m = MachineConfig::unified_4(5);
        let mut c = UnifiedCache::new(&m);
        let o = c.access(AccessRequest::load(0, 0, 4, 0));
        assert_eq!(o.ready_at, 15); // 5 + 10
        let o = c.access(AccessRequest::load(1, 0, 4, 50));
        assert_eq!(o.ready_at, 55);
    }

    #[test]
    fn five_ports_serve_five_per_cycle() {
        let m = MachineConfig::unified_4(1);
        let mut c = UnifiedCache::new(&m);
        let _ = c.access(AccessRequest::load(0, 0, 4, 0)); // warm
        for i in 0..5 {
            let o = c.access(AccessRequest::load(i % 4, 0, 4, 10));
            assert_eq!(o.ready_at, 11, "port {i} free at cycle 10");
        }
        let o = c.access(AccessRequest::load(0, 0, 4, 10));
        assert_eq!(o.ready_at, 12, "sixth access waits a cycle");
    }

    #[test]
    fn stores_complete_through_store_buffer() {
        let m = MachineConfig::unified_4(5);
        let mut c = UnifiedCache::new(&m);
        let o = c.access(AccessRequest::store(0, 64, 4, 7));
        assert_eq!(o.ready_at, 8, "store buffer completes next cycle");
        assert_eq!(o.class, AccessClass::LocalMiss);
        let o = c.access(AccessRequest::load(0, 64, 4, 20));
        assert_eq!(
            o.class,
            AccessClass::LocalHit,
            "write-allocate filled the block"
        );
    }

    #[test]
    fn all_accesses_classify_local() {
        let m = MachineConfig::unified_4(1);
        let mut c = UnifiedCache::new(&m);
        for i in 0..50u64 {
            let o = c.access(AccessRequest::load((i % 4) as usize, i * 8, 8, i * 2));
            assert!(o.class.is_local());
        }
        assert_eq!(c.stats().total(), 50);
    }
}
