//! The multiVLIW cache organization: per-cluster caches with snoopy
//! coherence and data replication (Sánchez & González, MICRO-33 [20]).

use vliw_machine::{AccessClass, ArchKind, MachineConfig};

use crate::lru::SetAssoc;
use crate::mshr::{MshrEntry, MshrFile};
use crate::pool::ResourcePool;
use crate::stats::MemStats;
use crate::{AccessOutcome, AccessRequest, DataCache};

/// Per-cluster caches with an invalidate-on-write snoopy protocol.
///
/// * A load hitting the local cache is a **local hit** (1 cycle).
/// * A load missing locally but present in another cluster's cache is
///   served cache-to-cache over a memory bus — classified **remote hit**
///   with the same bus + access + bus latency as a remote hit on the
///   interleaved machine. The block is *replicated* into the local cache
///   (the multiVLIW's advantage, bought with extra hardware: its effective
///   capacity shrinks and the coherence protocol complicates bus & cache).
/// * A load absent everywhere goes to the next level — **local miss**.
/// * A store invalidates every other cluster's copy (bus transaction).
///
/// Write-back traffic of dirty evictions is not timed (the paper's
/// benchmarks fit their working sets in cache; the relevant behaviours are
/// replication and invalidation).
///
/// Load fills — cache-to-cache transfers and next-level round trips —
/// occupy a per-cluster miss-status register ([`MshrFile`]) until they
/// complete: a load hitting a block whose fill is still in flight combines
/// with the transaction instead of being served before the data arrives,
/// and a cluster with every register busy delays its next miss. Store
/// fills are folded into the store buffer (as in the rest of the model)
/// and are not tracked.
#[derive(Debug)]
pub struct CoherentCache {
    n: usize,
    block_bytes: u64,
    transfer: u64,
    access_latency: u64,
    nl_latency: u64,
    tags: Vec<SetAssoc>,
    local_ports: Vec<ResourcePool>,
    buses: ResourcePool,
    nl_ports: ResourcePool,
    mshrs: MshrFile,
    stats: MemStats,
}

impl CoherentCache {
    /// Builds the multiVLIW cache model.
    ///
    /// # Panics
    ///
    /// Panics if the machine is not a multiVLIW configuration.
    pub fn new(machine: &MachineConfig) -> Self {
        assert_eq!(
            machine.arch,
            ArchKind::MultiVliw,
            "machine must be multiVLIW"
        );
        let n = machine.n_clusters();
        let module_bytes = machine.cache.module_bytes(n);
        let sets = module_bytes / (machine.cache.block_bytes * machine.cache.associativity);
        CoherentCache {
            n,
            block_bytes: machine.cache.block_bytes as u64,
            transfer: machine.buses.transfer_cycles as u64,
            access_latency: machine.mem_latencies.local_hit as u64,
            nl_latency: machine.next_level.latency as u64,
            tags: (0..n)
                .map(|_| SetAssoc::new(sets, machine.cache.associativity))
                .collect(),
            local_ports: (0..n).map(|_| ResourcePool::new(1)).collect(),
            buses: ResourcePool::new(machine.buses.mem_buses),
            nl_ports: ResourcePool::new(machine.next_level.ports),
            mshrs: MshrFile::new(n, machine.mshrs.per_cluster),
            stats: MemStats::new(),
        }
    }

    fn holder_other_than(&self, block: u64, cluster: usize) -> Option<usize> {
        (0..self.n).find(|&c| c != cluster && self.tags[c].contains(block))
    }

    /// Coherence invariant check for tests: number of clusters holding
    /// `addr`'s block.
    pub fn copies_of(&self, addr: u64) -> usize {
        let block = addr / self.block_bytes;
        (0..self.n)
            .filter(|&c| self.tags[c].contains(block))
            .count()
    }
}

impl DataCache for CoherentCache {
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        self.mshrs.retire_up_to(req.now, &mut |_, _| {});
        let block = req.addr / self.block_bytes;
        let port_start = self.local_ports[req.cluster].acquire(req.now, 1);
        let local_hit = self.tags[req.cluster].probe(block);

        if req.is_store {
            let class = if local_hit {
                AccessClass::LocalHit
            } else if self.holder_other_than(block, req.cluster).is_some() {
                AccessClass::RemoteHit
            } else {
                AccessClass::LocalMiss
            };
            if !local_hit {
                // read-for-ownership fill (timing folded into the store
                // buffer; the traffic still occupies a bus)
                self.buses
                    .acquire(port_start + self.access_latency, self.transfer);
                self.tags[req.cluster].insert(block);
            }
            // invalidate every other copy (snoop) — including fills still
            // in the air: a dead fill must not serve a later load, which
            // has to re-fetch cache-to-cache from the writer instead
            let mut invalidated = false;
            for c in 0..self.n {
                if c != req.cluster && self.tags[c].invalidate(block) {
                    invalidated = true;
                }
            }
            self.mshrs.invalidate_other(req.cluster, block);
            if invalidated {
                self.buses.acquire(port_start, self.transfer);
            }
            self.stats.record(class, false, false);
            return AccessOutcome {
                ready_at: req.now + 1,
                class,
                combined: false,
                ab_hit: false,
                mshr_delay: 0,
            };
        }

        // a load to a block whose fill is still in flight combines with
        // the transaction — whether or not the tag survived eviction in
        // the meantime
        if let Some(e) = self.mshrs.lookup(req.cluster, block) {
            e.waiters += 1;
            let base = port_start + self.access_latency;
            let (ready, class) = (base.max(e.fill_at), e.class);
            self.stats.mshr_mut().on_merge();
            self.stats.record(class, true, false);
            return AccessOutcome {
                ready_at: ready,
                class,
                combined: true,
                ab_hit: false,
                mshr_delay: 0,
            };
        }

        if local_hit {
            let base = port_start + self.access_latency;
            self.stats.record(AccessClass::LocalHit, false, false);
            return AccessOutcome {
                ready_at: base,
                class: AccessClass::LocalHit,
                combined: false,
                ab_hit: false,
                mshr_delay: 0,
            };
        }

        // a fill is about to issue: it needs a free miss-status register
        let start = self.mshrs.earliest_start(req.cluster, port_start);
        let delay = start - port_start;
        if delay > 0 {
            self.stats.mshr_mut().on_full_stall(delay);
        }
        let (ready, class) = if let Some(holder) = self.holder_other_than(block, req.cluster) {
            // cache-to-cache transfer: bus + remote access + bus. If the
            // holder's own fill is still in flight, it cannot supply the
            // data before that fill lands.
            let holder_fill = self.mshrs.lookup(holder, block).map_or(0, |e| e.fill_at);
            let bus_start = self
                .buses
                .acquire(start + self.access_latency - 1, self.transfer);
            let supply = self.local_ports[holder]
                .acquire(bus_start + self.transfer, 1)
                .max(holder_fill);
            let reply = self
                .buses
                .acquire(supply + self.access_latency, self.transfer);
            self.tags[req.cluster].insert(block); // replicate
            (reply + self.transfer, AccessClass::RemoteHit)
        } else {
            let nl_start = self.nl_ports.acquire(start, 1);
            self.tags[req.cluster].insert(block);
            (nl_start + self.nl_latency, AccessClass::LocalMiss)
        };
        let occ = self.mshrs.allocate(
            req.cluster,
            start,
            MshrEntry {
                key: block,
                fill_at: ready,
                class,
                waiters: 0,
                attract: false,
            },
        );
        self.stats.mshr_mut().on_fill_issued(occ);
        self.stats.record(class, false, false);
        AccessOutcome {
            ready_at: ready,
            class,
            combined: false,
            ab_hit: false,
            mshr_delay: delay,
        }
    }

    fn flush_loop_boundary(&mut self) {
        // nothing to flush: no Attraction Buffers, and in-flight fills
        // stay tracked so post-boundary accesses cannot outrun them
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> CoherentCache {
        CoherentCache::new(&MachineConfig::multi_vliw_4())
    }

    #[test]
    fn replication_makes_sharers_local() {
        let mut c = cache();
        let o = c.access(AccessRequest::load(0, 0, 4, 0));
        assert_eq!((o.class, o.ready_at), (AccessClass::LocalMiss, 10));
        // cluster 1 pulls the block cache-to-cache and keeps a copy
        let o = c.access(AccessRequest::load(1, 0, 4, 50));
        assert_eq!(o.class, AccessClass::RemoteHit);
        assert_eq!(o.ready_at - 50, 5, "c2c costs bus + access + bus");
        assert_eq!(c.copies_of(0), 2, "data replicated");
        // …so its next access is local — the multiVLIW advantage
        let o = c.access(AccessRequest::load(1, 0, 4, 100));
        assert_eq!((o.class, o.ready_at), (AccessClass::LocalHit, 101));
    }

    #[test]
    fn store_invalidates_other_copies() {
        let mut c = cache();
        let _ = c.access(AccessRequest::load(0, 0, 4, 0));
        let _ = c.access(AccessRequest::load(1, 0, 4, 50));
        let _ = c.access(AccessRequest::load(2, 0, 4, 100));
        assert_eq!(c.copies_of(0), 3);
        let o = c.access(AccessRequest::store(1, 0, 4, 150));
        assert_eq!(o.class, AccessClass::LocalHit);
        assert_eq!(c.copies_of(0), 1, "single-writer invariant");
        // readers re-fetch from the writer
        let o = c.access(AccessRequest::load(0, 0, 4, 200));
        assert_eq!(o.class, AccessClass::RemoteHit);
    }

    #[test]
    fn store_miss_fetches_for_ownership() {
        let mut c = cache();
        let _ = c.access(AccessRequest::load(0, 0, 4, 0));
        let o = c.access(AccessRequest::store(3, 0, 4, 50));
        assert_eq!(o.class, AccessClass::RemoteHit, "fetched from cluster 0");
        assert_eq!(o.ready_at, 51, "stores never stall the core");
        assert_eq!(c.copies_of(0), 1);
    }

    /// Regression: a load hitting a block whose fill was still in flight
    /// used to complete at the plain hit latency — before the data arrived.
    #[test]
    fn load_on_inflight_fill_waits_for_the_fill() {
        let mut c = cache();
        let a = c.access(AccessRequest::load(0, 0, 4, 0)); // miss, fills at 10
        assert_eq!(a.ready_at, 10);
        let b = c.access(AccessRequest::load(0, 0, 4, 2));
        assert!(b.combined, "attaches to the in-flight fill");
        assert_eq!(b.ready_at, 10, "cannot complete before the fill");
        assert_eq!(c.stats().mshr().merged_waiters, 1);
    }

    /// Regression: a store used to invalidate only the *tags* of other
    /// clusters — a fill still in flight kept its MSHR entry, so the next
    /// load combined with dead data instead of re-fetching from the writer.
    #[test]
    fn store_invalidates_other_clusters_inflight_fills() {
        let mut c = cache();
        let _ = c.access(AccessRequest::load(0, 0, 4, 0)); // fill in flight to 10
        let _ = c.access(AccessRequest::store(1, 0, 4, 2)); // writer snoops
        let o = c.access(AccessRequest::load(0, 0, 4, 3));
        assert!(!o.combined, "dead fill must not serve the load");
        assert_eq!(o.class, AccessClass::RemoteHit, "re-fetches from writer");
    }

    #[test]
    fn c2c_transfer_waits_for_holders_inflight_fill() {
        let mut c = cache();
        let a = c.access(AccessRequest::load(0, 0, 4, 0)); // miss, fills at 10
        let b = c.access(AccessRequest::load(1, 0, 4, 2)); // c2c from cluster 0
        assert_eq!(b.class, AccessClass::RemoteHit);
        assert_eq!(
            b.ready_at, 13,
            "supply waits for the holder's fill at {}, then access + bus",
            a.ready_at
        );
    }

    #[test]
    fn capacity_is_per_cluster() {
        // each cluster cache is 2 KB = 64 blocks (32 sets x 2 ways); 128
        // distinct blocks thrash one cluster but leave others untouched
        let mut c = cache();
        let mut now = 0;
        for i in 0..128u64 {
            now += 20;
            let _ = c.access(AccessRequest::load(0, i * 32, 4, now));
        }
        now += 20;
        let o = c.access(AccessRequest::load(0, 0, 4, now));
        assert_eq!(o.class, AccessClass::LocalMiss, "evicted by capacity");
    }

    #[test]
    fn never_classifies_remote_miss() {
        let mut c = cache();
        let mut now = 0;
        for i in 0..200u64 {
            now += 7;
            let _ = c.access(AccessRequest::load(
                (i % 4) as usize,
                (i * 16) % 4096,
                4,
                now,
            ));
        }
        assert_eq!(c.stats().count(AccessClass::RemoteMiss), 0);
    }
}
