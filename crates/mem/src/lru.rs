//! Generic set-associative tag array with LRU replacement.

/// A set-associative array of opaque `u64` keys with true-LRU replacement.
///
/// Used for cache-module tags, Attraction Buffer entries and the multiVLIW
/// per-cluster caches. The *key* is the full block/subblock identifier; the
/// set index is derived internally (`key % sets`), so callers never split
/// tag from index themselves.
#[derive(Debug, Clone)]
pub struct SetAssoc {
    sets: usize,
    ways: usize,
    entries: Vec<Option<u64>>,
    last_use: Vec<u64>,
    stamp: u64,
}

impl SetAssoc {
    /// Creates an array with `sets × ways` entries.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "geometry must be nonzero");
        SetAssoc {
            sets,
            ways,
            entries: vec![None; sets * ways],
            last_use: vec![0; sets * ways],
            stamp: 0,
        }
    }

    /// Geometry helper: total entries.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    fn set_range(&self, key: u64) -> std::ops::Range<usize> {
        let set = (key % self.sets as u64) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// Probes for `key`; a hit refreshes its LRU position.
    pub fn probe(&mut self, key: u64) -> bool {
        self.stamp += 1;
        let range = self.set_range(key);
        for i in range {
            if self.entries[i] == Some(key) {
                self.last_use[i] = self.stamp;
                return true;
            }
        }
        false
    }

    /// Whether `key` is present, without touching LRU state.
    pub fn contains(&self, key: u64) -> bool {
        self.set_range(key)
            .into_iter()
            .any(|i| self.entries[i] == Some(key))
    }

    /// Inserts `key`, evicting the LRU way of its set if needed.
    /// Returns the evicted key, if any. Inserting a present key refreshes
    /// it instead.
    pub fn insert(&mut self, key: u64) -> Option<u64> {
        self.stamp += 1;
        let range = self.set_range(key);
        // refresh if present
        for i in range.clone() {
            if self.entries[i] == Some(key) {
                self.last_use[i] = self.stamp;
                return None;
            }
        }
        // free way?
        for i in range.clone() {
            if self.entries[i].is_none() {
                self.entries[i] = Some(key);
                self.last_use[i] = self.stamp;
                return None;
            }
        }
        // evict LRU
        let victim = range.min_by_key(|&i| self.last_use[i]).expect("ways > 0");
        let evicted = self.entries[victim];
        self.entries[victim] = Some(key);
        self.last_use[victim] = self.stamp;
        evicted
    }

    /// Removes `key` if present; returns whether it was there.
    pub fn invalidate(&mut self, key: u64) -> bool {
        let range = self.set_range(key);
        for i in range {
            if self.entries[i] == Some(key) {
                self.entries[i] = None;
                return true;
            }
        }
        false
    }

    /// Empties the array (Attraction Buffer flush).
    pub fn clear(&mut self) {
        self.entries.fill(None);
        self.last_use.fill(0);
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Whether the array holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut a = SetAssoc::new(4, 2);
        assert!(!a.probe(12));
        a.insert(12);
        assert!(a.probe(12));
        assert!(a.contains(12));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut a = SetAssoc::new(1, 2); // single set, 2 ways
        a.insert(10);
        a.insert(20);
        assert!(a.probe(10)); // 20 is now LRU
        let evicted = a.insert(30);
        assert_eq!(evicted, Some(20));
        assert!(a.contains(10) && a.contains(30) && !a.contains(20));
    }

    #[test]
    fn keys_map_to_distinct_sets() {
        let mut a = SetAssoc::new(4, 1);
        // keys 0..4 go to different sets: no eviction
        for k in 0..4 {
            assert_eq!(a.insert(k), None);
        }
        assert_eq!(a.len(), 4);
        // key 4 collides with key 0 (set 0)
        assert_eq!(a.insert(4), Some(0));
    }

    #[test]
    fn insert_refreshes_existing() {
        let mut a = SetAssoc::new(1, 2);
        a.insert(1);
        a.insert(2);
        a.insert(1); // refresh, not duplicate
        assert_eq!(a.len(), 2);
        assert_eq!(a.insert(3), Some(2)); // 2 was LRU
    }

    #[test]
    fn invalidate_and_clear() {
        let mut a = SetAssoc::new(2, 2);
        a.insert(5);
        assert!(a.invalidate(5));
        assert!(!a.invalidate(5));
        a.insert(6);
        a.insert(7);
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_geometry_rejected() {
        let _ = SetAssoc::new(0, 2);
    }
}
