//! Access statistics (the raw material of Figures 4 and 6).

use std::fmt;

use vliw_machine::AccessClass;

/// Counters for the in-flight request tracking (MSHR) subsystem.
///
/// All fields are additive across [`MemStats::merge`] except
/// `peak_occupancy`, which merges by maximum and survives
/// [`MemStats::diff`] unchanged (a peak cannot be attributed to one
/// measurement interval).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MshrStats {
    /// Transactions that claimed a miss-status register (fills issued).
    pub fills: u64,
    /// Requests merged into an already-in-flight transaction (waiters).
    pub merged_waiters: u64,
    /// Cycles requests waited because every register of their cluster was
    /// busy (capacity back-pressure).
    pub full_stall_cycles: u64,
    /// Highest per-cluster register occupancy observed.
    pub peak_occupancy: u64,
}

impl MshrStats {
    fn merge(&mut self, other: &MshrStats) {
        self.fills += other.fills;
        self.merged_waiters += other.merged_waiters;
        self.full_stall_cycles += other.full_stall_cycles;
        self.peak_occupancy = self.peak_occupancy.max(other.peak_occupancy);
    }

    fn diff(&self, before: &MshrStats) -> MshrStats {
        MshrStats {
            fills: self.fills.saturating_sub(before.fills),
            merged_waiters: self.merged_waiters.saturating_sub(before.merged_waiters),
            full_stall_cycles: self
                .full_stall_cycles
                .saturating_sub(before.full_stall_cycles),
            peak_occupancy: self.peak_occupancy,
        }
    }

    /// Records an allocation that left `occupancy` registers busy.
    pub fn on_fill_issued(&mut self, occupancy: usize) {
        self.fills += 1;
        self.peak_occupancy = self.peak_occupancy.max(occupancy as u64);
    }

    /// Records one request attaching to an in-flight transaction.
    pub fn on_merge(&mut self) {
        self.merged_waiters += 1;
    }

    /// Records a request delayed `cycles` waiting for a free register.
    pub fn on_full_stall(&mut self, cycles: u64) {
        self.full_stall_cycles += cycles;
    }
}

/// Counters for every access class plus the combined/AB special cases.
///
/// The struct is `Copy` (fixed-size counters, no heap), so opening an
/// accounting window over a live cache is a register-level snapshot —
/// `let window = *cache.stats();` … `cache.stats().diff(&window)` — not a
/// structure clone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    counts: [u64; 4],
    combined: u64,
    ab_hits: u64,
    mshr: MshrStats,
}

fn class_index(class: AccessClass) -> usize {
    match class {
        AccessClass::LocalHit => 0,
        AccessClass::RemoteHit => 1,
        AccessClass::LocalMiss => 2,
        AccessClass::RemoteMiss => 3,
    }
}

impl MemStats {
    /// Fresh, zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access. A `combined` access is counted **only** in the
    /// combined bucket (the paper treats combined accesses as a separate
    /// group that "can derive in hits or misses").
    pub fn record(&mut self, class: AccessClass, combined: bool, ab_hit: bool) {
        if combined {
            self.combined += 1;
        } else {
            self.counts[class_index(class)] += 1;
        }
        if ab_hit {
            self.ab_hits += 1;
        }
    }

    /// Accesses of `class` (excluding combined ones).
    pub fn count(&self, class: AccessClass) -> u64 {
        self.counts[class_index(class)]
    }

    /// Combined accesses.
    pub fn combined(&self) -> u64 {
        self.combined
    }

    /// Accesses served by Attraction Buffers (subset of local hits).
    pub fn ab_hits(&self) -> u64 {
        self.ab_hits
    }

    /// In-flight request tracking (MSHR) counters.
    pub fn mshr(&self) -> &MshrStats {
        &self.mshr
    }

    /// Mutable access to the MSHR counters (cache models only).
    pub(crate) fn mshr_mut(&mut self) -> &mut MshrStats {
        &mut self.mshr
    }

    /// Total accesses including combined ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.combined
    }

    /// Fraction of all accesses classified as `class`.
    pub fn ratio(&self, class: AccessClass) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.count(class) as f64 / t as f64
        }
    }

    /// Fraction of combined accesses.
    pub fn combined_ratio(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.combined as f64 / t as f64
        }
    }

    /// The local hit ratio of §5.2 (local hits over all accesses).
    pub fn local_hit_ratio(&self) -> f64 {
        self.ratio(AccessClass::LocalHit)
    }

    /// Hit rate over classified (non-combined) accesses.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.count(AccessClass::LocalHit) + self.count(AccessClass::RemoteHit);
        let classified: u64 = self.counts.iter().sum();
        if classified == 0 {
            0.0
        } else {
            hits as f64 / classified as f64
        }
    }

    /// Counter-wise difference `self − before` (saturating) — used to
    /// isolate the accesses of one simulated loop (an accounting window
    /// opened by copying the stats) from a shared cache's running totals.
    /// `peak_occupancy` survives unchanged — a peak cannot be attributed
    /// to one window.
    pub fn diff(&self, before: &MemStats) -> MemStats {
        let mut out = MemStats::new();
        for i in 0..4 {
            out.counts[i] = self.counts[i].saturating_sub(before.counts[i]);
        }
        out.combined = self.combined.saturating_sub(before.combined);
        out.ab_hits = self.ab_hits.saturating_sub(before.ab_hits);
        out.mshr = self.mshr.diff(&before.mshr);
        out
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &MemStats) {
        for i in 0..4 {
            self.counts[i] += other.counts[i];
        }
        self.combined += other.combined;
        self.ab_hits += other.ab_hits;
        self.mshr.merge(&other.mshr);
    }

    /// Resets every counter.
    pub fn reset(&mut self) {
        *self = MemStats::default();
    }
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LH {} RH {} LM {} RM {} combined {} (AB hits {}, MSHR fills {} merges {} peak {})",
            self.counts[0],
            self.counts[1],
            self.counts[2],
            self.counts[3],
            self.combined,
            self.ab_hits,
            self.mshr.fills,
            self.mshr.merged_waiters,
            self.mshr.peak_occupancy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_ratios() {
        let mut s = MemStats::new();
        for _ in 0..6 {
            s.record(AccessClass::LocalHit, false, false);
        }
        for _ in 0..2 {
            s.record(AccessClass::RemoteHit, false, false);
        }
        s.record(AccessClass::LocalMiss, false, false);
        s.record(AccessClass::RemoteMiss, true, false); // combined
        assert_eq!(s.total(), 10);
        assert_eq!(
            s.count(AccessClass::RemoteMiss),
            0,
            "combined not double-counted"
        );
        assert!((s.local_hit_ratio() - 0.6).abs() < 1e-12);
        assert!((s.combined_ratio() - 0.1).abs() < 1e-12);
        assert!((s.hit_rate() - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn conservation_classes_plus_combined() {
        let mut s = MemStats::new();
        let classes = [
            AccessClass::LocalHit,
            AccessClass::RemoteHit,
            AccessClass::LocalMiss,
            AccessClass::RemoteMiss,
        ];
        for (i, c) in classes.iter().enumerate() {
            for _ in 0..=i {
                s.record(*c, false, false);
            }
        }
        s.record(AccessClass::LocalHit, true, false);
        let sum: u64 = classes.iter().map(|&c| s.count(c)).sum::<u64>() + s.combined();
        assert_eq!(sum, s.total());
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = MemStats::new();
        a.record(AccessClass::LocalHit, false, true);
        let mut b = MemStats::new();
        b.record(AccessClass::RemoteHit, false, false);
        b.record(AccessClass::LocalHit, true, false);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.ab_hits(), 1);
        assert_eq!(a.combined(), 1);
    }

    #[test]
    fn mshr_counters_merge_and_diff() {
        let mut a = MemStats::new();
        a.mshr_mut().on_fill_issued(3);
        a.mshr_mut().on_merge();
        a.mshr_mut().on_full_stall(5);
        let mut b = MemStats::new();
        b.mshr_mut().on_fill_issued(2);
        b.mshr_mut().on_fill_issued(1);
        a.merge(&b);
        assert_eq!(a.mshr().fills, 3);
        assert_eq!(a.mshr().merged_waiters, 1);
        assert_eq!(a.mshr().full_stall_cycles, 5);
        assert_eq!(a.mshr().peak_occupancy, 3, "peak merges by max");
        let d = a.diff(&b);
        assert_eq!(d.mshr().fills, 1);
        assert_eq!(d.mshr().peak_occupancy, 3, "peak survives diff");
    }

    #[test]
    fn copy_window_isolates_one_accounting_interval() {
        let mut s = MemStats::new();
        s.record(AccessClass::LocalHit, false, true);
        s.mshr_mut().on_fill_issued(2);
        let window = s; // Copy: the window marker is a register snapshot
        s.record(AccessClass::RemoteMiss, false, false);
        s.record(AccessClass::LocalHit, true, false);
        s.mshr_mut().on_fill_issued(3);
        s.mshr_mut().on_full_stall(4);
        let delta = s.diff(&window);
        assert_eq!(delta.count(AccessClass::RemoteMiss), 1);
        assert_eq!(delta.count(AccessClass::LocalHit), 0);
        assert_eq!(delta.combined(), 1);
        assert_eq!(delta.ab_hits(), 0);
        assert_eq!(delta.mshr().fills, 1);
        assert_eq!(delta.mshr().full_stall_cycles, 4);
        assert_eq!(delta.mshr().peak_occupancy, 3, "peak survives the window");
    }

    #[test]
    fn empty_ratios_are_zero() {
        let s = MemStats::new();
        assert_eq!(s.local_hit_ratio(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.combined_ratio(), 0.0);
    }
}
