//! The measured-profile subsystem: closing the feedback-directed
//! scheduling loop.
//!
//! The paper's latency-assignment scheme (§4.3.1/§4.3.3) is
//! profile-driven: per-load local-access ratios and hit rates come from a
//! profiling run of the program. The reproduction historically fed the
//! scheduler *synthetic* profiles (the timeless functional-cache pass in
//! `vliw-workloads`); this crate replaces invention with measurement:
//!
//! 1. **Collect** ([`Collector`], [`measure_kernel`]): run a kernel
//!    through the *timing* simulator against an
//!    [`ObservedCache`](vliw_mem::ObservedCache) and record, per memory
//!    operation, the access-class counts (local/remote × hit/miss), the
//!    home-cluster histogram, combining/Attraction-Buffer activity, and
//!    the full observed-latency histogram — contention included. The
//!    bootstrap schedule for the measurement run comes from the paper's
//!    own pipeline, so the loop is genuinely closed: schedule → measure →
//!    re-schedule against the measurements.
//! 2. **Persist** ([`ProfileStore`]): measurements live in a versioned,
//!    deterministic plain-text store (`results/profiles/` by convention)
//!    made of integers only, so a fresh collection and a reloaded store
//!    are bit-identical and CI can diff them.
//! 3. **Feed back** ([`attach_measurements`]): measurements are derived
//!    into [`MemProfile`](vliw_ir::MemProfile)s (hit rate, preferred
//!    clusters, plus the measured [`LatencyProfile`](vliw_ir::LatencyProfile))
//!    and attached to the kernel, where `engine::prepare`, the
//!    `ClusterAssign` policies and the `DelayTracking` backend consume
//!    them exactly as they would a synthetic profile — only truer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collect;
mod store;

pub use collect::{
    measure_kernel, measure_kernel_on_input, measure_kernel_stream, measure_kernel_stream_on_input,
    AccessSample, Collector, MeasureOptions, StreamProfile,
};
pub use store::{attach_measurements, kernel_fingerprint, LoopProfile, OpProfile, ProfileStore};
