//! The measurement store: per-operation measurements, per-loop bundles,
//! and the versioned deterministic text format they persist in.

use std::fmt::Write as _;
use std::path::Path;

use vliw_ir::{LatencyProfile, LoopKernel, MemProfile};
use vliw_machine::AccessClass;

/// Everything measured about one memory operation: the four-class access
/// counts, the home-cluster histogram, combining / Attraction-Buffer
/// activity, and the observed-latency distribution. All counts saturate.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpProfile {
    /// Access counts per class, indexed `[LH, RH, LM, RM]`.
    pub classes: [u64; 4],
    /// Dynamic access counts per *home* cluster of the address.
    pub cluster_hist: Vec<u64>,
    /// Accesses that merged into an in-flight request.
    pub combined: u64,
    /// Accesses served by an Attraction Buffer.
    pub ab_hits: u64,
    /// Observed completion-latency histogram (`ready_at − issue`).
    pub latency: LatencyProfile,
}

/// Dense index of a class in [`OpProfile::classes`].
pub(crate) fn class_index(c: AccessClass) -> usize {
    match c {
        AccessClass::LocalHit => 0,
        AccessClass::RemoteHit => 1,
        AccessClass::LocalMiss => 2,
        AccessClass::RemoteMiss => 3,
    }
}

impl OpProfile {
    /// An empty measurement over `n_clusters` clusters.
    pub fn new(n_clusters: usize) -> Self {
        OpProfile {
            cluster_hist: vec![0; n_clusters],
            ..Default::default()
        }
    }

    /// Total accesses measured (saturating).
    pub fn total(&self) -> u64 {
        self.classes.iter().fold(0u64, |a, &c| a.saturating_add(c))
    }

    /// Accesses that hit in the first-level cache.
    pub fn hits(&self) -> u64 {
        self.classes[0].saturating_add(self.classes[1])
    }

    /// Measured hit rate (`0` when nothing was measured).
    pub fn hit_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Derives the [`MemProfile`] the scheduler consumes: measured hit
    /// rate, measured home-cluster histogram, and the measured latency
    /// distribution attached for the delay-tracking backend.
    pub fn to_mem_profile(&self) -> MemProfile {
        MemProfile {
            hit_rate: self.hit_rate(),
            cluster_hist: self.cluster_hist.clone(),
            latency: Some(self.latency.clone()),
        }
    }
}

/// One loop's measurements: an [`OpProfile`] per memory operation,
/// identified by the kernel's name and a content fingerprint so stale
/// measurements can never be attached to a different kernel body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopProfile {
    /// Kernel name (must contain no whitespace — suite names never do).
    pub name: String,
    /// [`kernel_fingerprint`] of the kernel the measurements describe.
    pub fingerprint: u64,
    /// Operation count of that kernel (all operations, not just memory).
    pub n_ops: usize,
    /// `(op index, measurements)` for every memory operation, ascending.
    pub ops: Vec<(usize, OpProfile)>,
}

/// A content fingerprint of a kernel *body*: re-exported from
/// [`vliw_ir::kernel_fingerprint`], which walks the kernel's structural
/// fields (skipping attached profiles) and hashes them with a hand-rolled
/// FNV-1a — stable across runs, platforms *and toolchains*, with no
/// dependence on `Debug` formatting or std's `DefaultHasher`.
pub use vliw_ir::kernel_fingerprint;

/// Attaches a loop's measurements to its kernel: every measured memory
/// operation's profile becomes the derived [`MemProfile`]
/// ([`OpProfile::to_mem_profile`]).
///
/// # Errors
///
/// Rejects (without touching the kernel) measurements whose name,
/// fingerprint or operation count do not match — a stale store entry must
/// fail loudly, not silently steer the scheduler.
pub fn attach_measurements(kernel: &mut LoopKernel, profile: &LoopProfile) -> Result<(), String> {
    if profile.name != kernel.name {
        return Err(format!(
            "profile is for loop `{}`, kernel is `{}`",
            profile.name, kernel.name
        ));
    }
    if profile.n_ops != kernel.ops.len() {
        return Err(format!(
            "profile describes {} ops, kernel has {}",
            profile.n_ops,
            kernel.ops.len()
        ));
    }
    let fp = kernel_fingerprint(kernel);
    if profile.fingerprint != fp {
        return Err(format!(
            "stale profile for `{}`: fingerprint {:016x} != kernel {:016x}",
            profile.name, profile.fingerprint, fp
        ));
    }
    // validate every index before the first mutation, so a malformed
    // entry can never leave the kernel half measured, half synthetic
    for (idx, _) in &profile.ops {
        if kernel.ops.get(*idx).is_none_or(|o| o.mem.is_none()) {
            return Err(format!("profile names op {idx}, which is not a memory op"));
        }
    }
    for (idx, op) in &profile.ops {
        let mem = kernel.ops[*idx].mem.as_mut().expect("validated above");
        mem.profile = Some(op.to_mem_profile());
    }
    Ok(())
}

/// The format version [`ProfileStore::to_text`] writes.
pub const STORE_VERSION: u32 = 1;

/// A collection of [`LoopProfile`]s with a deterministic, versioned,
/// integers-only text representation — byte-identical across runs and
/// platforms, so a committed store can be diffed against a fresh
/// collection in CI.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileStore {
    loops: Vec<LoopProfile>,
}

impl ProfileStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces, on equal name + fingerprint) one loop's
    /// measurements, keeping the store sorted by `(name, fingerprint)`.
    pub fn insert(&mut self, profile: LoopProfile) {
        let key = (profile.name.as_str(), profile.fingerprint);
        match self
            .loops
            .binary_search_by(|l| (l.name.as_str(), l.fingerprint).cmp(&key))
        {
            Ok(i) => self.loops[i] = profile,
            Err(i) => self.loops.insert(i, profile),
        }
    }

    /// Looks one loop up by name + fingerprint.
    pub fn get(&self, name: &str, fingerprint: u64) -> Option<&LoopProfile> {
        self.loops
            .iter()
            .find(|l| l.name == name && l.fingerprint == fingerprint)
    }

    /// The stored loops, in `(name, fingerprint)` order.
    pub fn loops(&self) -> &[LoopProfile] {
        &self.loops
    }

    /// Number of stored loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Serializes the store to its versioned text format.
    ///
    /// # Panics
    ///
    /// Panics if a stored loop name contains whitespace (the format is
    /// whitespace-delimited; suite names never do).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "vliw-profile-store {STORE_VERSION}");
        let _ = writeln!(out, "loops {}", self.loops.len());
        for l in &self.loops {
            assert!(
                !l.name.chars().any(char::is_whitespace),
                "loop name `{}` contains whitespace",
                l.name
            );
            let _ = writeln!(
                out,
                "loop {} fp {:016x} ops {} mem {}",
                l.name,
                l.fingerprint,
                l.n_ops,
                l.ops.len()
            );
            for (idx, p) in &l.ops {
                let _ = write!(
                    out,
                    "op {idx} classes {} {} {} {} combined {} ab {} clusters {}",
                    p.classes[0],
                    p.classes[1],
                    p.classes[2],
                    p.classes[3],
                    p.combined,
                    p.ab_hits,
                    p.cluster_hist.len()
                );
                for c in &p.cluster_hist {
                    let _ = write!(out, " {c}");
                }
                let _ = write!(out, " lat {}", p.latency.counts.len());
                for (lat, n) in &p.latency.counts {
                    let _ = write!(out, " {lat} {n}");
                }
                out.push('\n');
            }
            let _ = writeln!(out, "endloop");
        }
        out
    }

    /// Parses a store from its text format.
    ///
    /// # Errors
    ///
    /// A description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty store")?;
        let mut it = header.split_whitespace();
        if it.next() != Some("vliw-profile-store") {
            return Err(format!("bad header: `{header}`"));
        }
        let version: u32 = it
            .next()
            .ok_or("missing version")?
            .parse()
            .map_err(|e| format!("bad version: {e}"))?;
        if version != STORE_VERSION {
            return Err(format!(
                "unsupported store version {version} (expected {STORE_VERSION})"
            ));
        }
        let count_line = lines.next().ok_or("missing loop count")?;
        let n_loops: usize = count_line
            .strip_prefix("loops ")
            .ok_or_else(|| format!("expected `loops <n>`, got `{count_line}`"))?
            .parse()
            .map_err(|e| format!("bad loop count: {e}"))?;

        let mut store = ProfileStore::new();
        for _ in 0..n_loops {
            let head = lines.next().ok_or("truncated store: missing loop")?;
            let mut it = head.split_whitespace();
            let parse_kw =
                |it: &mut dyn Iterator<Item = &str>, kw: &str| -> Result<String, String> {
                    if it.next() != Some(kw) {
                        return Err(format!("expected `{kw}` in `{head}`"));
                    }
                    it.next()
                        .map(String::from)
                        .ok_or_else(|| format!("missing value after `{kw}` in `{head}`"))
                };
            let name = parse_kw(&mut it, "loop")?;
            let fingerprint = u64::from_str_radix(&parse_kw(&mut it, "fp")?, 16)
                .map_err(|e| format!("bad fingerprint: {e}"))?;
            let n_ops: usize = parse_kw(&mut it, "ops")?
                .parse()
                .map_err(|e| format!("bad op count: {e}"))?;
            let n_mem: usize = parse_kw(&mut it, "mem")?
                .parse()
                .map_err(|e| format!("bad mem count: {e}"))?;
            // counts come from the (possibly corrupt) file: cap the
            // pre-allocation so a bad count returns Err instead of aborting
            let mut ops: Vec<(usize, OpProfile)> = Vec::with_capacity(n_mem.min(1024));
            for _ in 0..n_mem {
                let line = lines.next().ok_or("truncated store: missing op")?;
                let (idx, op) = parse_op_line(line)?;
                // ascending unique indices below the declared op count:
                // reject corruption at the line that carries it instead
                // of surfacing a confusing error at attach time
                if idx >= n_ops {
                    return Err(format!("op index {idx} >= ops {n_ops} in `{line}`"));
                }
                if ops.last().is_some_and(|(prev, _)| *prev >= idx) {
                    return Err(format!("op indices out of order in `{line}`"));
                }
                ops.push((idx, op));
            }
            let end = lines.next().ok_or("truncated store: missing endloop")?;
            if end != "endloop" {
                return Err(format!("expected `endloop`, got `{end}`"));
            }
            store.insert(LoopProfile {
                name,
                fingerprint,
                n_ops,
                ops,
            });
        }
        if let Some(extra) = lines.find(|l| !l.trim().is_empty()) {
            return Err(format!("trailing content after store: `{extra}`"));
        }
        Ok(store)
    }

    /// Writes the store to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_text())
    }

    /// Loads a store from `path`.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed content.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_text(&text)
    }
}

fn parse_op_line(line: &str) -> Result<(usize, OpProfile), String> {
    struct Tokens<'a> {
        it: std::str::SplitWhitespace<'a>,
        line: &'a str,
    }
    impl Tokens<'_> {
        fn keyword(&mut self, kw: &str) -> Result<(), String> {
            match self.it.next() {
                Some(t) if t == kw => Ok(()),
                other => Err(format!(
                    "expected `{kw}`, got {other:?} in op line `{}`",
                    self.line
                )),
            }
        }
        fn u64(&mut self, what: &str) -> Result<u64, String> {
            self.it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("bad {what} in op line `{}`", self.line))
        }
    }
    let mut t = Tokens {
        it: line.split_whitespace(),
        line,
    };
    t.keyword("op")?;
    let idx = t.u64("index")? as usize;
    t.keyword("classes")?;
    let mut classes = [0u64; 4];
    for (i, c) in classes.iter_mut().enumerate() {
        *c = t.u64(&format!("class count {i}"))?;
    }
    t.keyword("combined")?;
    let combined = t.u64("combined count")?;
    t.keyword("ab")?;
    let ab_hits = t.u64("ab count")?;
    t.keyword("clusters")?;
    let n_clusters = t.u64("cluster count")? as usize;
    let mut cluster_hist = Vec::with_capacity(n_clusters.min(1024));
    for i in 0..n_clusters {
        cluster_hist.push(t.u64(&format!("cluster {i}"))?);
    }
    t.keyword("lat")?;
    let n_lat = t.u64("latency entry count")? as usize;
    let mut counts = Vec::with_capacity(n_lat.min(1024));
    let mut prev: Option<u32> = None;
    for i in 0..n_lat {
        let lat = u32::try_from(t.u64(&format!("latency {i}"))?)
            .map_err(|_| format!("latency out of range in op line `{line}`"))?;
        if prev.is_some_and(|p| p >= lat) {
            return Err(format!("latencies out of order in op line `{line}`"));
        }
        prev = Some(lat);
        let n = t.u64(&format!("latency count {i}"))?;
        counts.push((lat, n));
    }
    if let Some(extra) = t.it.next() {
        return Err(format!("trailing token `{extra}` in op line `{line}`"));
    }
    Ok((
        idx,
        OpProfile {
            classes,
            cluster_hist,
            combined,
            ab_hits,
            latency: LatencyProfile { counts },
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_op() -> OpProfile {
        OpProfile {
            classes: [90, 5, 4, 1],
            cluster_hist: vec![80, 10, 5, 5],
            combined: 3,
            ab_hits: 12,
            latency: LatencyProfile {
                counts: vec![(1, 90), (5, 5), (10, 4), (15, 1)],
            },
        }
    }

    fn sample_store() -> ProfileStore {
        let mut s = ProfileStore::new();
        s.insert(LoopProfile {
            name: "bench_l0".into(),
            fingerprint: 0xdead_beef_0123_4567,
            n_ops: 6,
            ops: vec![(0, sample_op()), (3, OpProfile::new(4))],
        });
        s.insert(LoopProfile {
            name: "a_first".into(),
            fingerprint: 1,
            n_ops: 1,
            ops: vec![(0, {
                let mut p = OpProfile::new(2);
                // single-access op with a saturated latency count
                p.classes[0] = 1;
                p.cluster_hist[1] = 1;
                p.latency = LatencyProfile {
                    counts: vec![(2, u64::MAX)],
                };
                p
            })],
        });
        s
    }

    #[test]
    fn text_round_trip_is_exact() {
        let s = sample_store();
        let text = s.to_text();
        let back = ProfileStore::from_text(&text).unwrap();
        assert_eq!(s, back);
        // and the re-serialization is byte-identical (determinism)
        assert_eq!(text, back.to_text());
        // insertion order does not matter: the store is sorted
        assert_eq!(s.loops()[0].name, "a_first");
    }

    #[test]
    fn empty_and_edge_ops_round_trip() {
        // an op with zero accesses (empty latency list) and an empty store
        let empty = ProfileStore::new();
        assert_eq!(ProfileStore::from_text(&empty.to_text()).unwrap(), empty);
        let mut s = ProfileStore::new();
        s.insert(LoopProfile {
            name: "never_ran".into(),
            fingerprint: 0,
            n_ops: 2,
            ops: vec![(1, OpProfile::new(4))],
        });
        let back = ProfileStore::from_text(&s.to_text()).unwrap();
        assert_eq!(s, back);
        let p = &back.loops()[0].ops[0].1;
        assert!(p.latency.is_empty());
        assert_eq!(p.hit_rate(), 0.0);
    }

    #[test]
    fn malformed_stores_are_rejected() {
        for (text, why) in [
            ("", "empty"),
            ("vliw-profile-store 2\nloops 0\n", "future version"),
            ("vliw-profile-store 1\n", "missing loop count"),
            (
                "vliw-profile-store 1\nloops 1\nloop x fp 0 ops 1 mem 0\n",
                "missing endloop",
            ),
            (
                "vliw-profile-store 1\nloops 1\nloop x fp 0 ops 1 mem 1\nop 0 classes 1 0 0 0 combined 0 ab 0 clusters 0 lat 2 5 1 3 1\nendloop\n",
                "latencies out of order",
            ),
            (
                "vliw-profile-store 1\nloops 0\ntrailing\n",
                "trailing content",
            ),
        ] {
            assert!(ProfileStore::from_text(text).is_err(), "{why}");
        }
    }

    #[test]
    fn insert_replaces_same_key() {
        let mut s = sample_store();
        let n = s.len();
        let mut updated = s.loops()[0].clone();
        updated.n_ops = 9;
        s.insert(updated);
        assert_eq!(s.len(), n);
        assert_eq!(s.loops()[0].n_ops, 9);
    }

    #[test]
    fn derived_mem_profile_matches_measurements() {
        let p = sample_op();
        assert_eq!(p.total(), 100);
        assert!((p.hit_rate() - 0.95).abs() < 1e-12);
        let mp = p.to_mem_profile();
        assert!((mp.hit_rate - 0.95).abs() < 1e-12);
        assert_eq!(mp.preferred_cluster(), Some(0));
        assert_eq!(mp.latency.as_ref().unwrap().total(), 100);
    }
}
