//! Measurement collection: the [`AccessObserver`] that turns a timed
//! simulation into per-operation measurements, and the drivers that run a
//! kernel in profiling mode.

use vliw_ir::{LoopKernel, OpId};
use vliw_machine::MachineConfig;
use vliw_mem::{build_cache, AccessObserver, AccessOutcome, AccessRequest, ObservedCache};
use vliw_sched::{
    schedule_kernel, AttractionHints, ClusterPolicy, EnumLimits, SchedBackend, ScheduleError,
    ScheduleOptions,
};
use vliw_sim::{simulate_loop, SimOptions};
use vliw_workloads::{address_for, ArrayLayout};

use crate::store::{class_index, kernel_fingerprint, LoopProfile, OpProfile};

/// The measurement sink: accumulates one [`OpProfile`] per operation from
/// the observation stream of an [`ObservedCache`].
///
/// The simulator runs a warm-up pass before the measured pass and calls
/// [`AccessObserver::loop_boundary`] at the end of each; the collector
/// keeps the segment closed by the *last* boundary, which is always the
/// measured pass (with a warm-up the first boundary closes the warm-up
/// segment and the second closes the measurement; without one, the single
/// boundary closes the measurement directly).
#[derive(Debug)]
pub struct Collector {
    n_clusters: usize,
    interleave: u64,
    current: Vec<OpProfile>,
    finished: Option<Vec<OpProfile>>,
    current_samples: Vec<Vec<AccessSample>>,
    finished_samples: Option<Vec<Vec<AccessSample>>>,
}

impl Collector {
    /// A collector for `n_ops` operations on `machine`'s geometry.
    pub fn new(n_ops: usize, machine: &MachineConfig) -> Self {
        Collector {
            n_clusters: machine.n_clusters(),
            interleave: machine.cache.interleave_bytes as u64,
            current: (0..n_ops)
                .map(|_| OpProfile::new(machine.n_clusters()))
                .collect(),
            finished: None,
            current_samples: (0..n_ops).map(|_| Vec::new()).collect(),
            finished_samples: None,
        }
    }

    /// The home cluster of `addr` under the collector's geometry.
    fn home_cluster(&self, addr: u64) -> usize {
        ((addr / self.interleave) % self.n_clusters as u64) as usize
    }

    /// The measured segment: the one closed by the last loop boundary, or
    /// the running segment if no boundary was seen yet.
    pub fn measurements(&self) -> &[OpProfile] {
        self.finished.as_deref().unwrap_or(&self.current)
    }

    /// Per-operation, per-iteration samples of the measured segment (same
    /// segment selection as [`Collector::measurements`]).
    pub fn samples(&self) -> &[Vec<AccessSample>] {
        self.finished_samples
            .as_deref()
            .unwrap_or(&self.current_samples)
    }
}

impl AccessObserver for Collector {
    fn observe(&mut self, req: &AccessRequest, out: &AccessOutcome) {
        if req.tag == AccessRequest::UNTAGGED {
            return;
        }
        let home = self.home_cluster(req.addr);
        let Some(p) = self.current.get_mut(req.tag as usize) else {
            return;
        };
        let class = class_index(out.class);
        let latency = (out.ready_at - req.now).min(u64::from(u32::MAX)) as u32;
        p.classes[class] = p.classes[class].saturating_add(1);
        p.cluster_hist[home] = p.cluster_hist[home].saturating_add(1);
        if out.combined {
            p.combined = p.combined.saturating_add(1);
        }
        if out.ab_hit {
            p.ab_hits = p.ab_hits.saturating_add(1);
        }
        p.latency.record(latency);
        self.current_samples[req.tag as usize].push(AccessSample {
            class: class as u8,
            home: home as u8,
            combined: out.combined,
            ab_hit: out.ab_hit,
            latency,
        });
    }

    fn loop_boundary(&mut self) {
        let fresh = (0..self.current.len())
            .map(|_| OpProfile::new(self.n_clusters))
            .collect();
        self.finished = Some(std::mem::replace(&mut self.current, fresh));
        let fresh_samples = (0..self.current_samples.len())
            .map(|_| Vec::new())
            .collect();
        self.finished_samples = Some(std::mem::replace(&mut self.current_samples, fresh_samples));
    }
}

/// One observed access of one operation in one measured iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSample {
    /// Access-class index (the `classes` slot order of [`OpProfile`](crate::OpProfile)).
    pub class: u8,
    /// Home cluster of the accessed address.
    pub home: u8,
    /// Whether the access was served by §5.2 combining.
    pub combined: bool,
    /// Whether an Attraction Buffer hit served it.
    pub ab_hit: bool,
    /// Observed latency (`ready_at − now`), contention included.
    pub latency: u32,
}

/// A factor-1 measurement that keeps the per-iteration sample stream, so
/// the measurements of *unrolled* variants can be **derived** instead of
/// re-measured.
///
/// Copy `k` of an unroll-by-`U` kernel executes exactly the original
/// iterations `≡ k (mod U)` (unrolling rewrites `offset += k·stride`,
/// `stride ×= U`), and the simulator replays iterations `0..cap` from
/// zero in the measured pass — so slicing the factor-1 stream by residue
/// reproduces each copy's access stream without another bootstrap
/// schedule + timing simulation per variant. What the derivation cannot
/// reproduce is the *timing context* of a factor-`U` bootstrap run
/// (contention under a different schedule); the samples carry the
/// factor-1 run's timing, which is the defined semantics of a derived
/// profile.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamProfile {
    /// Kernel name (of the factor-1 kernel).
    pub name: String,
    /// [`kernel_fingerprint`] of the factor-1 kernel measured.
    pub fingerprint: u64,
    /// Operation count of the factor-1 kernel.
    pub n_ops: usize,
    /// Per-operation sample streams, indexed by op; sample `j` is measured
    /// iteration `j`. Non-memory operations carry empty streams.
    pub samples: Vec<Vec<AccessSample>>,
}

impl StreamProfile {
    /// Aggregates one residue class of one op's stream into an
    /// [`OpProfile`].
    fn aggregate_residue(
        &self,
        op: usize,
        factor: usize,
        residue: usize,
        n_clusters: usize,
    ) -> OpProfile {
        let mut p = OpProfile::new(n_clusters);
        for s in self.samples[op]
            .iter()
            .enumerate()
            .filter(|(j, _)| j % factor == residue)
            .map(|(_, s)| s)
        {
            p.classes[s.class as usize] = p.classes[s.class as usize].saturating_add(1);
            p.cluster_hist[s.home as usize] = p.cluster_hist[s.home as usize].saturating_add(1);
            if s.combined {
                p.combined = p.combined.saturating_add(1);
            }
            if s.ab_hit {
                p.ab_hits = p.ab_hits.saturating_add(1);
            }
            p.latency.record(s.latency);
        }
        p
    }

    /// The aggregate [`LoopProfile`] of the factor-1 kernel itself —
    /// identical to what [`measure_kernel`] returns for the same run.
    pub fn to_loop_profile(&self, kernel: &LoopKernel, machine: &MachineConfig) -> LoopProfile {
        let n_clusters = machine.n_clusters();
        LoopProfile {
            name: self.name.clone(),
            fingerprint: self.fingerprint,
            n_ops: self.n_ops,
            ops: kernel
                .ops
                .iter()
                .enumerate()
                .filter(|(_, o)| o.is_mem())
                .map(|(i, _)| (i, self.aggregate_residue(i, 1, 0, n_clusters)))
                .collect(),
        }
    }

    /// Derives the measurement of `unrolled` (the factor-`factor` variant
    /// of the measured kernel) by residue-slicing the factor-1 streams:
    /// copy `k` of original op `i` (unrolled index `k·n + i`) receives the
    /// samples of iterations `≡ k (mod factor)`.
    ///
    /// # Errors
    ///
    /// Rejects an `unrolled` kernel whose shape does not match
    /// (`n_ops × factor`), or a stream in which some memory operation
    /// recorded a different number of samples than its peers (which would
    /// break the sample-index = iteration-index alignment the slicing
    /// relies on). Callers fall back to direct measurement.
    pub fn derive_unrolled(
        &self,
        unrolled: &LoopKernel,
        factor: u32,
        machine: &MachineConfig,
    ) -> Result<LoopProfile, String> {
        let n = self.n_ops;
        let u = factor as usize;
        if unrolled.ops.len() != n * u {
            return Err(format!(
                "unrolled kernel has {} ops, expected {} × {}",
                unrolled.ops.len(),
                n,
                u
            ));
        }
        let mut counts = self
            .samples
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, s)| (i, s.len()));
        if let Some((_, first)) = counts.next() {
            if let Some((i, len)) = counts.find(|&(_, len)| len != first) {
                return Err(format!(
                    "op {i} recorded {len} samples where its peers recorded {first}; \
                     streams are not iteration-aligned"
                ));
            }
        }
        let n_clusters = machine.n_clusters();
        let mut ops = Vec::new();
        for (idx, op) in unrolled.ops.iter().enumerate() {
            if !op.is_mem() {
                continue;
            }
            let (copy, orig) = (idx / n, idx % n);
            ops.push((idx, self.aggregate_residue(orig, u, copy, n_clusters)));
        }
        Ok(LoopProfile {
            name: unrolled.name.clone(),
            fingerprint: kernel_fingerprint(unrolled),
            n_ops: unrolled.ops.len(),
            ops,
        })
    }
}

/// Knobs of one measurement run.
#[derive(Debug, Clone, Copy)]
pub struct MeasureOptions {
    /// Cluster-assignment policy of the bootstrap schedule (the schedule
    /// the kernel executes under while being measured).
    pub policy: ClusterPolicy,
    /// Circuit-enumeration caps for the bootstrap schedule.
    pub enum_limits: EnumLimits,
    /// Simulation caps of the measurement run.
    pub sim: SimOptions,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions {
            policy: ClusterPolicy::PreBuildChains,
            enum_limits: EnumLimits::default(),
            sim: SimOptions::default(),
        }
    }
}

/// Runs `kernel` in profiling mode: schedules it with the paper's
/// heuristic pipeline (the bootstrap — measurement needs *a* schedule,
/// and before any measurement exists the class-based pipeline is the only
/// one available), simulates it against an observed cache with
/// `addresses` supplying each operation's address stream, and returns the
/// per-operation measurements of the measured pass.
///
/// The kernel should carry its synthetic (functional) profiles, so the
/// bootstrap schedule is exactly the one the synthetic pipeline would
/// execute — the measurements then describe the feedback-directed loop's
/// real starting point.
///
/// # Errors
///
/// Propagates bootstrap scheduling failures.
pub fn measure_kernel(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    addresses: &mut dyn FnMut(OpId, u64) -> u64,
    options: &MeasureOptions,
) -> Result<LoopProfile, ScheduleError> {
    let sched_opts = ScheduleOptions {
        enum_limits: options.enum_limits,
        backend: SchedBackend::SwingModulo,
        ..ScheduleOptions::new(options.policy)
    };
    let schedule = schedule_kernel(kernel, machine, sched_opts)?;
    let hints = AttractionHints::allow_all(kernel);
    let mut cache = ObservedCache::new(
        build_cache(machine),
        Collector::new(kernel.ops.len(), machine),
    );
    simulate_loop(
        kernel,
        &schedule,
        machine,
        &mut cache,
        addresses,
        &hints,
        &options.sim,
    );
    let (_, collector) = cache.into_parts();
    let measured = collector.measurements();
    let ops = kernel
        .ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_mem())
        .map(|(i, _)| (i, measured[i].clone()))
        .collect();
    Ok(LoopProfile {
        name: kernel.name.clone(),
        fingerprint: kernel_fingerprint(kernel),
        n_ops: kernel.ops.len(),
        ops,
    })
}

/// [`measure_kernel`] with the workload crate's address streams: lays the
/// kernel's arrays out for `input` (with or without §4.3.4 padding) and
/// measures against those addresses — the profile-input measurement run
/// of the feedback loop.
///
/// # Errors
///
/// Propagates bootstrap scheduling failures.
pub fn measure_kernel_on_input(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    padding: bool,
    input: u64,
    options: &MeasureOptions,
) -> Result<LoopProfile, ScheduleError> {
    let layout = ArrayLayout::new(kernel, machine, padding, input);
    let mut addresses = |op: OpId, iter: u64| address_for(kernel, &layout, op, iter);
    measure_kernel(kernel, machine, &mut addresses, options)
}

/// [`measure_kernel`], but returning the full per-iteration sample stream
/// ([`StreamProfile`]) instead of only the aggregate — one measurement run
/// from which the profiles of every unroll variant can be derived.
///
/// # Errors
///
/// Propagates bootstrap scheduling failures.
pub fn measure_kernel_stream(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    addresses: &mut dyn FnMut(OpId, u64) -> u64,
    options: &MeasureOptions,
) -> Result<StreamProfile, ScheduleError> {
    let sched_opts = ScheduleOptions {
        enum_limits: options.enum_limits,
        backend: SchedBackend::SwingModulo,
        ..ScheduleOptions::new(options.policy)
    };
    let schedule = schedule_kernel(kernel, machine, sched_opts)?;
    let hints = AttractionHints::allow_all(kernel);
    let mut cache = ObservedCache::new(
        build_cache(machine),
        Collector::new(kernel.ops.len(), machine),
    );
    simulate_loop(
        kernel,
        &schedule,
        machine,
        &mut cache,
        addresses,
        &hints,
        &options.sim,
    );
    let (_, collector) = cache.into_parts();
    Ok(StreamProfile {
        name: kernel.name.clone(),
        fingerprint: kernel_fingerprint(kernel),
        n_ops: kernel.ops.len(),
        samples: collector.samples().to_vec(),
    })
}

/// [`measure_kernel_stream`] with the workload crate's address streams
/// (mirrors [`measure_kernel_on_input`]).
///
/// # Errors
///
/// Propagates bootstrap scheduling failures.
pub fn measure_kernel_stream_on_input(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    padding: bool,
    input: u64,
    options: &MeasureOptions,
) -> Result<StreamProfile, ScheduleError> {
    let layout = ArrayLayout::new(kernel, machine, padding, input);
    let mut addresses = |op: OpId, iter: u64| address_for(kernel, &layout, op, iter);
    measure_kernel_stream(kernel, machine, &mut addresses, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::attach_measurements;
    use vliw_ir::{ArrayKind, KernelBuilder, MemProfile};

    fn machine() -> MachineConfig {
        MachineConfig::word_interleaved_4()
    }

    /// A streaming kernel with an N×I stride: every access lands in the
    /// home cluster of its first address (a padded heap array, so that
    /// home is cluster 0 — globals are never padded, §4.3.4).
    fn kernel() -> LoopKernel {
        let mut b = KernelBuilder::new("probe");
        let a = b.array("a", 8192, ArrayKind::Heap);
        let (ld, v) = b.load("ld", a, 0, 16, 4);
        let (st, _) = b.store("st", a, 4096, 16, 4, v);
        b.set_profile(ld, MemProfile::concentrated(1.0, 0, 4));
        b.set_profile(st, MemProfile::concentrated(1.0, 0, 4));
        b.finish(128.0)
    }

    fn opts() -> MeasureOptions {
        MeasureOptions {
            sim: SimOptions {
                iteration_cap: 128,
                warmup_iterations: 128,
            },
            ..MeasureOptions::default()
        }
    }

    #[test]
    fn measurement_counts_the_measured_pass_only() {
        let k = kernel();
        let m = machine();
        let lp = measure_kernel_on_input(&k, &m, true, 1, &opts()).unwrap();
        assert_eq!(lp.n_ops, 2);
        assert_eq!(lp.ops.len(), 2, "both memory ops measured");
        let (idx, ld) = &lp.ops[0];
        assert_eq!(*idx, 0);
        // exactly the 128 measured iterations, not warm-up + measured
        assert_eq!(ld.total(), 128);
        // N×I stride: every access in one cluster
        assert_eq!(ld.cluster_hist.iter().filter(|&&c| c > 0).count(), 1);
        // the warm-up already touched the whole (small) working set, so
        // the measured pass hits locally every time…
        assert!(ld.hit_rate() > 0.9, "hit rate {}", ld.hit_rate());
        assert_eq!(ld.classes[0], ld.total(), "all local hits");
        // …but the observed latency folds in real port contention with
        // the co-located store, which is exactly what measurement adds
        // over the 1-cycle class latency
        let median = ld.latency.percentile(0.5).unwrap();
        assert!((1..=5).contains(&median), "median latency {median}");
    }

    #[test]
    fn attach_feeds_measurements_back_into_the_kernel() {
        let mut k = kernel();
        let m = machine();
        let lp = measure_kernel_on_input(&k, &m, true, 1, &opts()).unwrap();
        attach_measurements(&mut k, &lp).unwrap();
        let p = k.ops[0].mem.as_ref().unwrap().profile.as_ref().unwrap();
        assert!(p.latency.as_ref().is_some_and(|l| !l.is_empty()));
        // attaching is idempotent: the fingerprint ignores profiles
        attach_measurements(&mut k, &lp).unwrap();
        // a different kernel body is rejected
        let mut other = kernel();
        other.ops[0].mem.as_mut().unwrap().offset = 4;
        let err = attach_measurements(&mut other, &lp).unwrap_err();
        assert!(err.contains("stale"), "{err}");
    }

    #[test]
    fn stream_aggregate_matches_direct_measurement() {
        let k = kernel();
        let m = machine();
        let direct = measure_kernel_on_input(&k, &m, true, 1, &opts()).unwrap();
        let stream = measure_kernel_stream_on_input(&k, &m, true, 1, &opts()).unwrap();
        assert_eq!(stream.to_loop_profile(&k, &m), direct);
        // deriving at factor 1 is the aggregate
        assert_eq!(stream.derive_unrolled(&k, 1, &m).unwrap(), direct);
    }

    #[test]
    fn derived_unroll_slices_by_residue() {
        let k = kernel();
        let m = machine();
        let stream = measure_kernel_stream_on_input(&k, &m, true, 1, &opts()).unwrap();
        let unrolled = vliw_ir::unroll(&k, 4);
        let lp = stream.derive_unrolled(&unrolled, 4, &m).unwrap();
        assert_eq!(lp.n_ops, k.ops.len() * 4);
        assert_eq!(lp.fingerprint, kernel_fingerprint(&unrolled));
        // each copy receives exactly a quarter of the 128 measured
        // iterations, and the total reconstructs the factor-1 aggregate
        let direct = stream.to_loop_profile(&k, &m);
        let copies_total: u64 = lp
            .ops
            .iter()
            .filter(|(idx, _)| idx % k.ops.len() == 0)
            .map(|(_, p)| p.total())
            .sum();
        assert_eq!(copies_total, direct.ops[0].1.total());
        for (_, p) in &lp.ops {
            assert_eq!(p.total(), 32);
        }
        // a wrong-shape kernel is rejected
        assert!(stream.derive_unrolled(&unrolled, 2, &m).is_err());
    }

    #[test]
    fn measurement_is_deterministic() {
        let k = kernel();
        let m = machine();
        let a = measure_kernel_on_input(&k, &m, true, 1, &opts()).unwrap();
        let b = measure_kernel_on_input(&k, &m, true, 1, &opts()).unwrap();
        assert_eq!(a, b);
    }
}
