//! Measurement collection: the [`AccessObserver`] that turns a timed
//! simulation into per-operation measurements, and the drivers that run a
//! kernel in profiling mode.

use vliw_ir::{LoopKernel, OpId};
use vliw_machine::MachineConfig;
use vliw_mem::{build_cache, AccessObserver, AccessOutcome, AccessRequest, ObservedCache};
use vliw_sched::{
    schedule_kernel, AttractionHints, ClusterPolicy, EnumLimits, SchedBackend, ScheduleError,
    ScheduleOptions,
};
use vliw_sim::{simulate_loop, SimOptions};
use vliw_workloads::{address_for, ArrayLayout};

use crate::store::{class_index, kernel_fingerprint, LoopProfile, OpProfile};

/// The measurement sink: accumulates one [`OpProfile`] per operation from
/// the observation stream of an [`ObservedCache`].
///
/// The simulator runs a warm-up pass before the measured pass and calls
/// [`AccessObserver::loop_boundary`] at the end of each; the collector
/// keeps the segment closed by the *last* boundary, which is always the
/// measured pass (with a warm-up the first boundary closes the warm-up
/// segment and the second closes the measurement; without one, the single
/// boundary closes the measurement directly).
#[derive(Debug)]
pub struct Collector {
    n_clusters: usize,
    interleave: u64,
    current: Vec<OpProfile>,
    finished: Option<Vec<OpProfile>>,
}

impl Collector {
    /// A collector for `n_ops` operations on `machine`'s geometry.
    pub fn new(n_ops: usize, machine: &MachineConfig) -> Self {
        Collector {
            n_clusters: machine.n_clusters(),
            interleave: machine.cache.interleave_bytes as u64,
            current: (0..n_ops)
                .map(|_| OpProfile::new(machine.n_clusters()))
                .collect(),
            finished: None,
        }
    }

    /// The home cluster of `addr` under the collector's geometry.
    fn home_cluster(&self, addr: u64) -> usize {
        ((addr / self.interleave) % self.n_clusters as u64) as usize
    }

    /// The measured segment: the one closed by the last loop boundary, or
    /// the running segment if no boundary was seen yet.
    pub fn measurements(&self) -> &[OpProfile] {
        self.finished.as_deref().unwrap_or(&self.current)
    }
}

impl AccessObserver for Collector {
    fn observe(&mut self, req: &AccessRequest, out: &AccessOutcome) {
        if req.tag == AccessRequest::UNTAGGED {
            return;
        }
        let home = self.home_cluster(req.addr);
        let Some(p) = self.current.get_mut(req.tag as usize) else {
            return;
        };
        let class = class_index(out.class);
        p.classes[class] = p.classes[class].saturating_add(1);
        p.cluster_hist[home] = p.cluster_hist[home].saturating_add(1);
        if out.combined {
            p.combined = p.combined.saturating_add(1);
        }
        if out.ab_hit {
            p.ab_hits = p.ab_hits.saturating_add(1);
        }
        let latency = (out.ready_at - req.now).min(u64::from(u32::MAX)) as u32;
        p.latency.record(latency);
    }

    fn loop_boundary(&mut self) {
        let fresh = (0..self.current.len())
            .map(|_| OpProfile::new(self.n_clusters))
            .collect();
        self.finished = Some(std::mem::replace(&mut self.current, fresh));
    }
}

/// Knobs of one measurement run.
#[derive(Debug, Clone, Copy)]
pub struct MeasureOptions {
    /// Cluster-assignment policy of the bootstrap schedule (the schedule
    /// the kernel executes under while being measured).
    pub policy: ClusterPolicy,
    /// Circuit-enumeration caps for the bootstrap schedule.
    pub enum_limits: EnumLimits,
    /// Simulation caps of the measurement run.
    pub sim: SimOptions,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions {
            policy: ClusterPolicy::PreBuildChains,
            enum_limits: EnumLimits::default(),
            sim: SimOptions::default(),
        }
    }
}

/// Runs `kernel` in profiling mode: schedules it with the paper's
/// heuristic pipeline (the bootstrap — measurement needs *a* schedule,
/// and before any measurement exists the class-based pipeline is the only
/// one available), simulates it against an observed cache with
/// `addresses` supplying each operation's address stream, and returns the
/// per-operation measurements of the measured pass.
///
/// The kernel should carry its synthetic (functional) profiles, so the
/// bootstrap schedule is exactly the one the synthetic pipeline would
/// execute — the measurements then describe the feedback-directed loop's
/// real starting point.
///
/// # Errors
///
/// Propagates bootstrap scheduling failures.
pub fn measure_kernel(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    addresses: &mut dyn FnMut(OpId, u64) -> u64,
    options: &MeasureOptions,
) -> Result<LoopProfile, ScheduleError> {
    let sched_opts = ScheduleOptions {
        enum_limits: options.enum_limits,
        backend: SchedBackend::SwingModulo,
        ..ScheduleOptions::new(options.policy)
    };
    let schedule = schedule_kernel(kernel, machine, sched_opts)?;
    let hints = AttractionHints::allow_all(kernel);
    let mut cache = ObservedCache::new(
        build_cache(machine),
        Collector::new(kernel.ops.len(), machine),
    );
    simulate_loop(
        kernel,
        &schedule,
        machine,
        &mut cache,
        addresses,
        &hints,
        &options.sim,
    );
    let (_, collector) = cache.into_parts();
    let measured = collector.measurements();
    let ops = kernel
        .ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_mem())
        .map(|(i, _)| (i, measured[i].clone()))
        .collect();
    Ok(LoopProfile {
        name: kernel.name.clone(),
        fingerprint: kernel_fingerprint(kernel),
        n_ops: kernel.ops.len(),
        ops,
    })
}

/// [`measure_kernel`] with the workload crate's address streams: lays the
/// kernel's arrays out for `input` (with or without §4.3.4 padding) and
/// measures against those addresses — the profile-input measurement run
/// of the feedback loop.
///
/// # Errors
///
/// Propagates bootstrap scheduling failures.
pub fn measure_kernel_on_input(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    padding: bool,
    input: u64,
    options: &MeasureOptions,
) -> Result<LoopProfile, ScheduleError> {
    let layout = ArrayLayout::new(kernel, machine, padding, input);
    let mut addresses = |op: OpId, iter: u64| address_for(kernel, &layout, op, iter);
    measure_kernel(kernel, machine, &mut addresses, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::attach_measurements;
    use vliw_ir::{ArrayKind, KernelBuilder, MemProfile};

    fn machine() -> MachineConfig {
        MachineConfig::word_interleaved_4()
    }

    /// A streaming kernel with an N×I stride: every access lands in the
    /// home cluster of its first address (a padded heap array, so that
    /// home is cluster 0 — globals are never padded, §4.3.4).
    fn kernel() -> LoopKernel {
        let mut b = KernelBuilder::new("probe");
        let a = b.array("a", 8192, ArrayKind::Heap);
        let (ld, v) = b.load("ld", a, 0, 16, 4);
        let (st, _) = b.store("st", a, 4096, 16, 4, v);
        b.set_profile(ld, MemProfile::concentrated(1.0, 0, 4));
        b.set_profile(st, MemProfile::concentrated(1.0, 0, 4));
        b.finish(128.0)
    }

    fn opts() -> MeasureOptions {
        MeasureOptions {
            sim: SimOptions {
                iteration_cap: 128,
                warmup_iterations: 128,
            },
            ..MeasureOptions::default()
        }
    }

    #[test]
    fn measurement_counts_the_measured_pass_only() {
        let k = kernel();
        let m = machine();
        let lp = measure_kernel_on_input(&k, &m, true, 1, &opts()).unwrap();
        assert_eq!(lp.n_ops, 2);
        assert_eq!(lp.ops.len(), 2, "both memory ops measured");
        let (idx, ld) = &lp.ops[0];
        assert_eq!(*idx, 0);
        // exactly the 128 measured iterations, not warm-up + measured
        assert_eq!(ld.total(), 128);
        // N×I stride: every access in one cluster
        assert_eq!(ld.cluster_hist.iter().filter(|&&c| c > 0).count(), 1);
        // the warm-up already touched the whole (small) working set, so
        // the measured pass hits locally every time…
        assert!(ld.hit_rate() > 0.9, "hit rate {}", ld.hit_rate());
        assert_eq!(ld.classes[0], ld.total(), "all local hits");
        // …but the observed latency folds in real port contention with
        // the co-located store, which is exactly what measurement adds
        // over the 1-cycle class latency
        let median = ld.latency.percentile(0.5).unwrap();
        assert!((1..=5).contains(&median), "median latency {median}");
    }

    #[test]
    fn attach_feeds_measurements_back_into_the_kernel() {
        let mut k = kernel();
        let m = machine();
        let lp = measure_kernel_on_input(&k, &m, true, 1, &opts()).unwrap();
        attach_measurements(&mut k, &lp).unwrap();
        let p = k.ops[0].mem.as_ref().unwrap().profile.as_ref().unwrap();
        assert!(p.latency.as_ref().is_some_and(|l| !l.is_empty()));
        // attaching is idempotent: the fingerprint ignores profiles
        attach_measurements(&mut k, &lp).unwrap();
        // a different kernel body is rejected
        let mut other = kernel();
        other.ops[0].mem.as_mut().unwrap().offset = 4;
        let err = attach_measurements(&mut other, &lp).unwrap_err();
        assert!(err.contains("stale"), "{err}");
    }

    #[test]
    fn measurement_is_deterministic() {
        let k = kernel();
        let m = machine();
        let a = measure_kernel_on_input(&k, &m, true, 1, &opts()).unwrap();
        let b = measure_kernel_on_input(&k, &m, true, 1, &opts()).unwrap();
        assert_eq!(a, b);
    }
}
