//! Per-benchmark parameterization (the published characteristics).

/// Global knobs of a workload build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadConfig {
    /// Master seed for loop synthesis (structure of the kernels).
    pub seed: u64,
    /// Whether variable alignment (§4.3.4 padding of stack frames and
    /// `malloc` results to `N×I`) is applied.
    pub padding: bool,
    /// Input-identity seed of the profiling data set.
    pub profile_input: u64,
    /// Input-identity seed of the execution data set.
    pub exec_input: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 0x6182_2002,
            padding: true,
            profile_input: 1,
            exec_input: 2,
        }
    }
}

/// The synthesis parameters of one benchmark, mirroring Table 1 and the
/// per-benchmark facts of §5.2.
#[derive(Debug, Clone)]
pub struct BenchSpec {
    /// Benchmark name (Table 1).
    pub name: &'static str,
    /// Profile data set label (Table 1).
    pub profile_input: &'static str,
    /// Execution data set label (Table 1).
    pub exec_input: &'static str,
    /// Dominant element size in bytes (Table 1 "main data size").
    pub main_gran: u8,
    /// Share of accesses at the dominant size (Table 1 percentage).
    pub main_share: f64,
    /// Number of modulo-scheduled loops to synthesize.
    pub n_loops: usize,
    /// Range of loads per loop (inclusive).
    pub loads_per_loop: (usize, usize),
    /// Range of stores per loop (inclusive).
    pub stores_per_loop: (usize, usize),
    /// Fraction of loads with data-dependent addresses (`a[b[i]]`).
    pub indirect_share: f64,
    /// Fraction of accesses to 8-byte (double-precision) elements.
    pub double_share: f64,
    /// Fraction of arithmetic done on the FP unit.
    pub fp_frac: f64,
    /// Fraction of arrays that are heap/stack (alignment-sensitive);
    /// the rest are globals.
    pub dynamic_frac: f64,
    /// Probability that two memory ops in a loop are connected by an
    /// unresolved (conservative) memory dependence, forming chains.
    pub chain_density: f64,
    /// Probability a chain deliberately mixes arrays whose preferred
    /// clusters differ (what makes chains costly in epicdec/pgp*/rasta).
    pub chain_conflict: f64,
    /// Probability of a store→load memory recurrence (distance 1).
    pub mem_recurrence: f64,
    /// Probability of a loop-carried arithmetic accumulator.
    pub accumulator: f64,
    /// Average-trip-count range.
    pub trip_range: (u64, u64),
    /// Array size range in bytes.
    pub array_bytes: (u64, u64),
    /// Probability a strided access uses a non-unit element stride
    /// (creating accesses that visit several clusters even after OUF).
    pub stray_stride: f64,
}

impl BenchSpec {
    /// Sanity-check the parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        let fracs = [
            ("main_share", self.main_share),
            ("indirect_share", self.indirect_share),
            ("double_share", self.double_share),
            ("fp_frac", self.fp_frac),
            ("dynamic_frac", self.dynamic_frac),
            ("chain_density", self.chain_density),
            ("chain_conflict", self.chain_conflict),
            ("mem_recurrence", self.mem_recurrence),
            ("accumulator", self.accumulator),
            ("stray_stride", self.stray_stride),
        ];
        for (n, f) in fracs {
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("{n} = {f} out of [0,1] in {}", self.name));
            }
        }
        if self.n_loops == 0 {
            return Err(format!("{} needs at least one loop", self.name));
        }
        if self.loads_per_loop.0 > self.loads_per_loop.1 || self.loads_per_loop.0 == 0 {
            return Err(format!("bad loads_per_loop in {}", self.name));
        }
        if self.trip_range.0 < 8 {
            return Err(format!(
                "{}: loops iterating fewer than 8 times are not modulo-scheduled (§5.1)",
                self.name
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_padded_and_seeded() {
        let c = WorkloadConfig::default();
        assert!(c.padding);
        assert_ne!(c.profile_input, c.exec_input);
    }
}
