//! Loop-kernel synthesis from benchmark specs.

use crate::rng::StdRng;

use vliw_ir::{ArrayId, ArrayKind, DepKind, KernelBuilder, LoopKernel, OpId, Opcode, VirtReg};
use vliw_machine::MachineConfig;

use crate::spec::{BenchSpec, WorkloadConfig};

/// One synthesized loop plus its dynamic-execution weight.
#[derive(Debug, Clone)]
pub struct LoopWorkload {
    /// The original (not yet unrolled, not yet profiled) kernel.
    pub kernel: LoopKernel,
}

/// A whole benchmark: its spec and its loops.
#[derive(Debug, Clone)]
pub struct BenchmarkModel {
    /// Benchmark name.
    pub name: String,
    /// The spec the loops were synthesized from.
    pub spec: BenchSpec,
    /// The synthesized loops (the ~80% of the dynamic instruction stream
    /// the paper modulo-schedules).
    pub loops: Vec<LoopWorkload>,
}

impl BenchmarkModel {
    /// Total dynamic operations across loops (aggregation weight).
    pub fn dynamic_ops(&self) -> f64 {
        self.loops.iter().map(|l| l.kernel.dynamic_ops()).sum()
    }
}

fn hash_name(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

struct LoopGen<'a> {
    spec: &'a BenchSpec,
    machine: &'a MachineConfig,
    rng: StdRng,
}

impl LoopGen<'_> {
    fn pick_granularity(&mut self) -> u8 {
        if self.spec.double_share > 0.0 && self.rng.random::<f64>() < self.spec.double_share {
            return 8;
        }
        if self.rng.random::<f64>() < self.spec.main_share {
            self.spec.main_gran
        } else {
            let others: Vec<u8> = [1u8, 2, 4]
                .into_iter()
                .filter(|&g| g != self.spec.main_gran)
                .collect();
            others[self.rng.random_range(0..others.len())]
        }
    }

    fn array_kind(&mut self) -> ArrayKind {
        if self.rng.random::<f64>() < self.spec.dynamic_frac {
            if self.rng.random::<f64>() < 0.3 {
                ArrayKind::Stack
            } else {
                ArrayKind::Heap
            }
        } else {
            ArrayKind::Global
        }
    }

    fn stride_for(&mut self, gran: u8) -> i64 {
        let g = gran as i64;
        if self.rng.random::<f64>() < self.spec.stray_stride {
            // element strides that keep visiting several clusters even
            // after moderate unrolling
            g * [3i64, 5, 6, 7][self.rng.random_range(0..4usize)]
        } else if self.rng.random::<f64>() < 0.15 {
            g * 2
        } else {
            g
        }
    }

    fn compute_opcode(&mut self) -> Opcode {
        if self.rng.random::<f64>() < self.spec.fp_frac {
            [Opcode::FAdd, Opcode::FMul, Opcode::FSub][self.rng.random_range(0..3usize)]
        } else {
            [
                Opcode::Add,
                Opcode::Sub,
                Opcode::Mul,
                Opcode::And,
                Opcode::Shl,
                Opcode::Xor,
            ][self.rng.random_range(0..6usize)]
        }
    }

    fn generate(&mut self, name: String) -> LoopKernel {
        let mut b = KernelBuilder::new(name);
        let n_arrays = self.rng.random_range(2..=4usize);
        let mut arrays: Vec<(ArrayId, u8, u64)> = Vec::new(); // (id, gran, size)
        for i in 0..n_arrays {
            let gran = self.pick_granularity();
            let size = self
                .rng
                .random_range(self.spec.array_bytes.0..=self.spec.array_bytes.1)
                .next_multiple_of(64);
            let kind = self.array_kind();
            let id = b.array(format!("a{i}"), size, kind);
            arrays.push((id, gran, size));
        }

        let n_loads = self
            .rng
            .random_range(self.spec.loads_per_loop.0..=self.spec.loads_per_loop.1);
        let n_stores = self
            .rng
            .random_range(self.spec.stores_per_loop.0..=self.spec.stores_per_loop.1);

        let mut values: Vec<VirtReg> = Vec::new();
        let mut loads: Vec<(OpId, ArrayId)> = Vec::new();
        for i in 0..n_loads {
            let (arr, gran, size) = arrays[self.rng.random_range(0..arrays.len())];
            let indirect =
                !values.is_empty() && self.rng.random::<f64>() < self.spec.indirect_share;
            let (id, v) = if indirect {
                let idx = values[self.rng.random_range(0..values.len())];
                b.load_indirect(format!("ld{i}"), arr, idx, gran)
            } else {
                let stride = self.stride_for(gran);
                let offset = (self.rng.random_range(0..(size / 4).max(1)) as i64 * gran as i64)
                    .min(size as i64 / 2);
                b.load(format!("ld{i}"), arr, offset, stride, gran)
            };
            values.push(v);
            loads.push((id, arr));
        }

        // arithmetic: a chain combining the loaded values
        let n_compute = n_loads + self.rng.random_range(1..=4usize);
        let mut acc_done = false;
        for i in 0..n_compute {
            let op = self.compute_opcode();
            let mut srcs: Vec<vliw_ir::SrcOperand> = Vec::new();
            for _ in 0..self.rng.random_range(1..=2usize) {
                if !values.is_empty() {
                    srcs.push(values[self.rng.random_range(0..values.len())].into());
                }
            }
            let (_, v) = if !acc_done && self.rng.random::<f64>() < self.spec.accumulator {
                acc_done = true;
                b.int_op_carried(format!("c{i}"), op, &srcs, 1)
            } else {
                b.int_op(format!("c{i}"), op, &srcs)
            };
            values.push(v);
        }

        let mut stores: Vec<(OpId, ArrayId)> = Vec::new();
        for i in 0..n_stores {
            let (arr, gran, size) = arrays[self.rng.random_range(0..arrays.len())];
            let val = values[values.len() - 1 - self.rng.random_range(0..2.min(values.len()))];
            let stride = self.stride_for(gran);
            let offset = (size as i64 / 2)
                + self.rng.random_range(0..(size / 8).max(1)) as i64 * gran as i64;
            let (id, _) = b.store(
                format!("st{i}"),
                arr,
                offset.min(size as i64 - 64),
                stride,
                gran,
                val,
            );
            stores.push((id, arr));
        }

        // store→load memory recurrences (what the latency-assignment step
        // exists for)
        if !stores.is_empty() {
            for &(ld, arr) in &loads {
                if self.rng.random::<f64>() < self.spec.mem_recurrence {
                    let same: Vec<&(OpId, ArrayId)> =
                        stores.iter().filter(|(_, a)| *a == arr).collect();
                    let (st, _) = if same.is_empty() {
                        stores[self.rng.random_range(0..stores.len())]
                    } else {
                        *same[self.rng.random_range(0..same.len())]
                    };
                    b.mem_dep(st, ld, DepKind::MemFlow, 1);
                }
            }
        }

        // conservative-disambiguation chains
        let mut mem_ops: Vec<OpId> = loads.iter().map(|&(id, _)| id).collect();
        mem_ops.extend(stores.iter().map(|&(id, _)| id));
        mem_ops.sort();
        for w in 1..mem_ops.len() {
            if self.rng.random::<f64>() < self.spec.chain_density {
                // chain_conflict decides whether to link across arrays
                // (different placements -> costly chains) or within one
                let earlier = if self.rng.random::<f64>() < self.spec.chain_conflict {
                    mem_ops[self.rng.random_range(0..w)]
                } else {
                    mem_ops[w - 1]
                };
                b.mem_dep(earlier, mem_ops[w], DepKind::MemAnti, 0);
            }
        }

        let trip =
            self.rng
                .random_range(self.spec.trip_range.0..=self.spec.trip_range.1) as f64;
        b.invocations(self.rng.random_range(1..=16) as f64);
        b.finish(trip)
    }

    /// The epicdec loop of §5.2: 19 memory instructions welded into one
    /// chain, each striding `N×I` at a different word offset — IPBC packs
    /// them into one cluster where their 19 concurrent subblock streams
    /// overflow a 16-entry Attraction Buffer.
    fn epicdec_overflow_loop(&mut self) -> LoopKernel {
        let ni = self.machine.ni_bytes();
        let mut b = KernelBuilder::new("epicdec_l19");
        let n_arrays = 5;
        let mut arrays = Vec::new();
        for i in 0..n_arrays {
            let id = b.array(format!("band{i}"), 2048, ArrayKind::Heap);
            arrays.push(id);
        }
        let mut values = Vec::new();
        let mut prev: Option<OpId> = None;
        for i in 0..19 {
            let arr = arrays[i % n_arrays];
            // word offset i % 4 -> homes spread over all clusters
            let offset = ((i as i64) % 4) * 4 + (i as i64 / 4) * ni * 8;
            let (id, v) = b.load(format!("ld{i}"), arr, offset, ni, 4);
            values.push(v);
            if let Some(p) = prev {
                b.mem_dep(p, id, DepKind::MemOut, 0);
            }
            prev = Some(id);
        }
        let mut acc = values[0];
        for i in 0..6 {
            let (_, v) = b.int_op(
                format!("c{i}"),
                Opcode::Add,
                &[acc.into(), values[(i * 3 + 1) % values.len()].into()],
            );
            acc = v;
        }
        let (st, _) = b.store("st0", arrays[0], 1024, ni, 4, acc);
        if let Some(p) = prev {
            b.mem_dep(p, st, DepKind::MemAnti, 0);
        }
        // the chain carries a memory recurrence into the next iteration, so
        // the latency assignment must schedule these loads optimistically —
        // the precondition for the stall time the paper reports here
        b.mem_dep(st, OpId::new(0), DepKind::MemFlow, 1);
        b.invocations(8.0);
        b.finish(512.0)
    }
}

/// Synthesizes the loop suite of one benchmark.
pub fn synthesize(
    spec: &BenchSpec,
    config: &WorkloadConfig,
    machine: &MachineConfig,
) -> BenchmarkModel {
    spec.validate().expect("valid spec");
    let mut loops = Vec::new();
    for l in 0..spec.n_loops {
        let seed = config.seed ^ hash_name(spec.name).rotate_left(l as u32 + 1) ^ (l as u64);
        let mut generator = LoopGen {
            spec,
            machine,
            rng: StdRng::seed_from_u64(seed),
        };
        let kernel = generator.generate(format!("{}_l{}", spec.name, l));
        loops.push(LoopWorkload { kernel });
    }
    if spec.name == "epicdec" {
        let seed = config.seed ^ hash_name("epicdec_l19");
        let mut generator = LoopGen {
            spec,
            machine,
            rng: StdRng::seed_from_u64(seed),
        };
        loops.push(LoopWorkload {
            kernel: generator.epicdec_overflow_loop(),
        });
    }
    BenchmarkModel {
        name: spec.name.to_string(),
        spec: spec.clone(),
        loops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{spec_by_name, suite};
    use vliw_ir::Ddg;

    fn cfg() -> WorkloadConfig {
        WorkloadConfig::default()
    }

    fn machine() -> MachineConfig {
        MachineConfig::word_interleaved_4()
    }

    #[test]
    fn synthesis_is_deterministic() {
        let spec = spec_by_name("gsmdec").unwrap();
        let a = synthesize(&spec, &cfg(), &machine());
        let b = synthesize(&spec, &cfg(), &machine());
        assert_eq!(a.loops.len(), b.loops.len());
        for (x, y) in a.loops.iter().zip(&b.loops) {
            assert_eq!(x.kernel, y.kernel);
        }
    }

    #[test]
    fn every_benchmark_synthesizes_valid_kernels() {
        let m = machine();
        for spec in suite() {
            let model = synthesize(&spec, &cfg(), &m);
            assert_eq!(
                model.loops.len(),
                spec.n_loops + (spec.name == "epicdec") as usize
            );
            for lw in &model.loops {
                let k = &lw.kernel;
                assert!(!k.ops.is_empty());
                assert!(k.n_mem_ops() >= spec.loads_per_loop.0);
                assert!(k.avg_trip >= 8.0, "paper excludes short loops");
                // structural validity: Ddg::build panics on dangling edges
                let _ = Ddg::build(k);
                // d=0 edges point forward (acyclic intra-iteration body)
                for e in &k.edges {
                    if e.distance == 0 {
                        assert!(e.from < e.to, "forward d0 edge in {}", k.name);
                    }
                }
            }
        }
    }

    #[test]
    fn epicdec_has_the_overflow_loop() {
        let spec = spec_by_name("epicdec").unwrap();
        let model = synthesize(&spec, &cfg(), &machine());
        let l19 = model
            .loops
            .iter()
            .find(|l| l.kernel.name == "epicdec_l19")
            .expect("special loop present");
        assert_eq!(l19.kernel.ops.iter().filter(|o| o.is_load()).count(), 19);
        // all 19 loads plus the store form one memory-dependent chain
        let chains = vliw_sched::MemChains::build(&l19.kernel);
        let first = chains.chain_id(OpId::new(0)).unwrap();
        assert_eq!(chains.members(first).len(), 20);
        // every load strides N×I: a single home cluster each
        for op in l19.kernel.ops.iter().filter(|o| o.is_load()) {
            assert_eq!(op.mem.as_ref().unwrap().stride, Some(16));
        }
    }

    #[test]
    fn mpeg2dec_is_double_heavy() {
        let spec = spec_by_name("mpeg2dec").unwrap();
        let model = synthesize(&spec, &cfg(), &machine());
        let (mut doubles, mut total) = (0usize, 0usize);
        for l in &model.loops {
            for op in l.kernel.mem_ops() {
                total += 1;
                doubles += (op.mem.as_ref().unwrap().granularity == 8) as usize;
            }
        }
        let share = doubles as f64 / total as f64;
        assert!(share > 0.25, "mpeg2dec double share {share} too low");
    }

    #[test]
    fn pegwitdec_is_indirect_heavy() {
        let spec = spec_by_name("pegwitdec").unwrap();
        let model = synthesize(&spec, &cfg(), &machine());
        let (mut ind, mut total) = (0usize, 0usize);
        for l in &model.loops {
            for op in l.kernel.ops.iter().filter(|o| o.is_load()) {
                total += 1;
                ind += op.mem.as_ref().unwrap().indirect as usize;
            }
        }
        let share = ind as f64 / total as f64;
        assert!(share > 0.5, "pegwitdec indirect share {share} too low");
    }
}
