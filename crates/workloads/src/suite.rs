//! The 14-benchmark suite (Table 1 + §5.2 characteristics).

use crate::spec::BenchSpec;

/// Names of the suite's benchmarks, in the paper's figure order.
pub const SUITE_NAMES: [&str; 14] = [
    "epicdec",
    "epicenc",
    "g721dec",
    "g721enc",
    "gsmdec",
    "gsmenc",
    "jpegdec",
    "jpegenc",
    "mpeg2dec",
    "pegwitdec",
    "pegwitenc",
    "pgpdec",
    "pgpenc",
    "rasta",
];

fn base() -> BenchSpec {
    BenchSpec {
        name: "",
        profile_input: "",
        exec_input: "",
        main_gran: 4,
        main_share: 0.85,
        n_loops: 8,
        loads_per_loop: (2, 6),
        stores_per_loop: (1, 2),
        indirect_share: 0.02,
        double_share: 0.0,
        fp_frac: 0.1,
        dynamic_frac: 0.6,
        chain_density: 0.12,
        chain_conflict: 0.2,
        mem_recurrence: 0.3,
        accumulator: 0.4,
        trip_range: (64, 1024),
        array_bytes: (1024, 6144),
        stray_stride: 0.08,
    }
}

/// The full benchmark suite.
pub fn suite() -> Vec<BenchSpec> {
    let b = base();
    let specs = vec![
        // epic decoder: 4-byte data (84%), chains cost 37% of the local hit
        // ratio, and one loop overflows the Attraction Buffer with 19
        // memory instructions in one cluster (synthesized in `synth`).
        BenchSpec {
            name: "epicdec",
            profile_input: "test_image.pgm.E",
            exec_input: "titanic3.pgm.E",
            main_gran: 4,
            main_share: 0.84,
            chain_density: 0.55,
            chain_conflict: 0.75,
            n_loops: 7,
            ..b.clone()
        },
        // epic encoder: 4-byte (89%), "unclear" preferred clusters
        // (concentration 0.57) from spread-out strides.
        BenchSpec {
            name: "epicenc",
            profile_input: "test_image",
            exec_input: "titanic3.pgm",
            main_gran: 4,
            main_share: 0.89,
            stray_stride: 0.45,
            indirect_share: 0.08,
            fp_frac: 0.3,
            ..b.clone()
        },
        // g721: 2-byte (89%), tiny working sets, negligible stall time.
        BenchSpec {
            name: "g721dec",
            profile_input: "clinton.g721",
            exec_input: "S_16_44.g721",
            main_gran: 2,
            main_share: 0.89,
            array_bytes: (512, 2048),
            trip_range: (64, 256),
            chain_density: 0.05,
            mem_recurrence: 0.15,
            n_loops: 6,
            ..b.clone()
        },
        BenchSpec {
            name: "g721enc",
            profile_input: "clinton.pcm",
            exec_input: "S_16_44.pcm",
            main_gran: 2,
            main_share: 0.917,
            array_bytes: (512, 2048),
            trip_range: (64, 256),
            chain_density: 0.05,
            mem_recurrence: 0.15,
            n_loops: 6,
            ..b.clone()
        },
        // gsm: 2-byte (99%) — the §4.3.4 dynamically-allocated 2-byte
        // arrays whose alignment flips the preferred cluster.
        BenchSpec {
            name: "gsmdec",
            profile_input: "clint.pcm.run.gsm",
            exec_input: "S_16_44.pcm.gsm",
            main_gran: 2,
            main_share: 0.99,
            dynamic_frac: 0.85,
            accumulator: 0.6,
            ..b.clone()
        },
        BenchSpec {
            name: "gsmenc",
            profile_input: "clinton.pcm",
            exec_input: "S_16_44.pcm",
            main_gran: 2,
            main_share: 0.99,
            dynamic_frac: 0.85,
            accumulator: 0.6,
            ..b.clone()
        },
        // jpeg decoder: bytes (53%), 40% indirect accesses, concentration
        // 0.81.
        BenchSpec {
            name: "jpegdec",
            profile_input: "testimg.jpg",
            exec_input: "monalisa.jpg",
            main_gran: 1,
            main_share: 0.53,
            indirect_share: 0.40,
            stray_stride: 0.2,
            ..b.clone()
        },
        // jpeg encoder: 4-byte (70%), 23% indirect, concentration 0.78;
        // loop 67 (II 9 IBC vs 10 IPBC) emerges from the comm-heavy mix.
        BenchSpec {
            name: "jpegenc",
            profile_input: "testimg.ppm",
            exec_input: "monalisa.ppm",
            main_gran: 4,
            main_share: 0.70,
            indirect_share: 0.23,
            stray_stride: 0.18,
            ..b.clone()
        },
        // mpeg2 decoder: ~half the references are 8-byte double precision —
        // always remote, but scheduled at large latencies (no stall).
        BenchSpec {
            name: "mpeg2dec",
            profile_input: "mei16v2.m2v",
            exec_input: "tek6.m2v",
            main_gran: 8,
            main_share: 0.49,
            double_share: 0.49,
            fp_frac: 0.45,
            ..b.clone()
        },
        // pegwit decrypt: 93% (!) of accesses are indirect.
        BenchSpec {
            name: "pegwitdec",
            profile_input: "pegwit.enc",
            exec_input: "tech_rep.txt.enc",
            main_gran: 2,
            main_share: 0.758,
            indirect_share: 0.93,
            ..b.clone()
        },
        // pegwit encrypt: 13% indirect.
        BenchSpec {
            name: "pegwitenc",
            profile_input: "pgptest.plain",
            exec_input: "tech_rep.txt",
            main_gran: 2,
            main_share: 0.836,
            indirect_share: 0.13,
            ..b.clone()
        },
        // pgp: 4-byte, chains cost 25% / 20% of the local hit ratio.
        BenchSpec {
            name: "pgpdec",
            profile_input: "pgptext.pgp",
            exec_input: "tech_rep.txt.enc",
            main_gran: 4,
            main_share: 0.921,
            chain_density: 0.45,
            chain_conflict: 0.6,
            ..b.clone()
        },
        BenchSpec {
            name: "pgpenc",
            profile_input: "pgptest.plain",
            exec_input: "tech_rep.txt",
            main_gran: 4,
            main_share: 0.732,
            chain_density: 0.40,
            chain_conflict: 0.55,
            ..b.clone()
        },
        // rasta: FP-heavy speech processing, chains cost 29%.
        BenchSpec {
            name: "rasta",
            profile_input: "ex5_c1.wav",
            exec_input: "ex5_c1.wav",
            main_gran: 4,
            main_share: 0.95,
            fp_frac: 0.55,
            chain_density: 0.45,
            chain_conflict: 0.65,
            ..b.clone()
        },
    ];
    for s in &specs {
        s.validate().expect("suite spec valid");
    }
    specs
}

/// Looks up one benchmark's spec by name.
pub fn spec_by_name(name: &str) -> Option<BenchSpec> {
    suite().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_14_valid_benchmarks_in_figure_order() {
        let s = suite();
        assert_eq!(s.len(), 14);
        for (spec, name) in s.iter().zip(SUITE_NAMES) {
            assert_eq!(spec.name, name);
            spec.validate().unwrap();
        }
    }

    #[test]
    fn table1_dominant_sizes() {
        assert_eq!(spec_by_name("gsmdec").unwrap().main_gran, 2);
        assert_eq!(spec_by_name("jpegdec").unwrap().main_gran, 1);
        assert_eq!(spec_by_name("mpeg2dec").unwrap().main_gran, 8);
        assert!((spec_by_name("pegwitdec").unwrap().indirect_share - 0.93).abs() < 1e-9);
    }

    #[test]
    fn lookup_misses_gracefully() {
        assert!(spec_by_name("nonesuch").is_none());
    }
}
