//! Mediabench-equivalent synthetic workloads and the profiling pass.
//!
//! The paper evaluates on 14 Mediabench programs compiled with IMPACT and
//! profiled on a training input (Table 1). Neither that toolchain nor its
//! loop-level output is available, so this crate synthesizes, per
//! benchmark, a suite of modulo-schedulable loop kernels whose *measurable
//! characteristics match everything the paper publishes about each
//! program*:
//!
//! * the dominant access granularity and its share (Table 1);
//! * the double-precision share (mpeg2dec ≈ 50% — §5.2);
//! * the indirect-access share (jpegdec 40%, jpegenc 23%, pegwitdec 93%,
//!   pegwitenc 13% — §5.2);
//! * the preferred-cluster concentration (epicenc 0.57, jpegdec 0.81,
//!   jpegenc 0.78 — §5.2);
//! * heavy memory-dependent chains where the paper reports them hurting
//!   (epicdec −37%, pgpdec −25%, pgpenc −20%, rasta −29% local hits);
//! * the epicdec loop with 19 memory instructions in one cluster that
//!   overflows the Attraction Buffer (§5.2);
//! * negligible stall in g721dec/g721enc (§5.2).
//!
//! Every loop gets *two* address-space instantiations — the profile input
//! and the execution input — whose dynamic (heap/stack) base addresses
//! differ unless **variable alignment** (§4.3.4 padding to `N×I`) is on.
//! Global arrays keep the same base in both runs, as in the paper.
//!
//! The profiling pass ([`profile_kernel`]) replays the profile input's
//! address streams
//! through the timeless [`FunctionalCache`](vliw_mem::FunctionalCache) and
//! attaches hit rates and preferred-cluster histograms to each memory
//! operation — the exact inputs the scheduling techniques consume.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod profiling;
pub mod rng;
mod spec;
mod suite;
mod synth;

pub use address::{address_for, ArrayLayout};
pub use profiling::{profile_kernel, ProfileOptions};
pub use spec::{BenchSpec, WorkloadConfig};
pub use suite::{spec_by_name, suite, SUITE_NAMES};
pub use synth::{synthesize, BenchmarkModel, LoopWorkload};
