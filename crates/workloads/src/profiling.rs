//! The profiling pass (the role IMPACT profiling plays in the paper).

use vliw_ir::{LoopKernel, MemProfile, OpId};
use vliw_machine::MachineConfig;
use vliw_mem::FunctionalCache;

use crate::address::{address_for, ArrayLayout};

/// Profiling options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProfileOptions {
    /// Iterations replayed per loop (long loops converge quickly on the
    /// small caches of Table 2).
    pub iteration_cap: u64,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions { iteration_cap: 512 }
    }
}

/// Profiles `kernel` on the given (profile-input) layout: replays every
/// memory operation's address stream in program order through the
/// functional cache and attaches hit rates and preferred-cluster
/// histograms to the operations.
///
/// Run this on the *unrolled* kernel — per-copy preferred clusters only
/// exist after unrolling (before it, a unit-stride access sweeps every
/// cluster and the histogram is flat, which is exactly what the paper's
/// Figure 4 "no unrolling" bar shows).
pub fn profile_kernel(
    kernel: &mut LoopKernel,
    machine: &MachineConfig,
    layout: &ArrayLayout,
    options: &ProfileOptions,
) {
    let n = machine.n_clusters();
    let iters = (kernel.avg_trip.round() as u64).clamp(1, options.iteration_cap);
    let mem_ops: Vec<OpId> = kernel.mem_ops().map(|o| o.id).collect();
    let mut cache = FunctionalCache::new(machine);
    let mut hist = vec![vec![0u64; n]; kernel.ops.len()];
    let mut hits = vec![0u64; kernel.ops.len()];

    for j in 0..iters {
        for &op in &mem_ops {
            let addr = address_for(kernel, layout, op, j);
            let (home, hit) = cache.access(addr);
            hist[op.index()][home] += 1;
            hits[op.index()] += hit as u64;
        }
    }

    for &op in &mem_ops {
        let mem = kernel.ops[op.index()].mem.as_mut().expect("memory op");
        mem.profile = Some(MemProfile {
            hit_rate: hits[op.index()] as f64 / iters as f64,
            cluster_hist: hist[op.index()].clone(),
            latency: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{unroll, ArrayKind, KernelBuilder};

    fn machine() -> MachineConfig {
        MachineConfig::word_interleaved_4()
    }

    /// A unit-stride 4-byte loop: before unrolling the histogram is flat;
    /// after OUF (×4) unrolling each copy concentrates on one cluster.
    #[test]
    fn unrolling_concentrates_preferred_clusters() {
        let mut b = KernelBuilder::new("k");
        let a = b.array("a", 8192, ArrayKind::Heap);
        let (_, v) = b.load("ld", a, 0, 4, 4);
        b.store("st", a, 4096, 4, 4, v);
        let k = b.finish(512.0);
        let m = machine();

        let mut flat = k.clone();
        let layout = ArrayLayout::new(&flat, &m, true, 1);
        profile_kernel(&mut flat, &m, &layout, &ProfileOptions::default());
        let p = flat
            .op(OpId::new(0))
            .mem
            .as_ref()
            .unwrap()
            .profile
            .as_ref()
            .unwrap();
        assert!(p.concentration() < 0.3, "unit stride sweeps all clusters");

        let mut unrolled = unroll(&k, 4);
        let layout = ArrayLayout::new(&unrolled, &m, true, 1);
        profile_kernel(&mut unrolled, &m, &layout, &ProfileOptions::default());
        for op in unrolled.mem_ops() {
            let p = op.mem.as_ref().unwrap().profile.as_ref().unwrap();
            assert!(
                p.concentration() > 0.99,
                "copy {} must access a single cluster",
                op.name
            );
        }
        // padded base: copy k prefers cluster k
        for (i, op) in unrolled.ops.iter().filter(|o| o.is_load()).enumerate() {
            let p = op.mem.as_ref().unwrap().profile.as_ref().unwrap();
            assert_eq!(p.preferred_cluster(), Some(i));
        }
    }

    #[test]
    fn hit_rates_reflect_working_set() {
        let m = machine();
        // tiny array: second pass onward always hits -> high rate
        let mut b = KernelBuilder::new("small");
        let a = b.array("a", 512, ArrayKind::Global);
        let (_, _) = b.load("ld", a, 0, 4, 4);
        let mut k = b.finish(512.0);
        let layout = ArrayLayout::new(&k, &m, true, 1);
        profile_kernel(&mut k, &m, &layout, &ProfileOptions::default());
        let hot = k
            .op(OpId::new(0))
            .mem
            .as_ref()
            .unwrap()
            .profile
            .as_ref()
            .unwrap()
            .hit_rate;
        assert!(hot > 0.7, "small array mostly hits, got {hot}");

        // huge array streamed once: mostly misses
        let mut b = KernelBuilder::new("big");
        let a = b.array("a", 1 << 20, ArrayKind::Global);
        let (_, _) = b.load("ld", a, 0, 32, 4);
        let mut k = b.finish(512.0);
        let layout = ArrayLayout::new(&k, &m, true, 1);
        profile_kernel(&mut k, &m, &layout, &ProfileOptions::default());
        let cold = k
            .op(OpId::new(0))
            .mem
            .as_ref()
            .unwrap()
            .profile
            .as_ref()
            .unwrap()
            .hit_rate;
        assert!(cold < 0.2, "streaming access mostly misses, got {cold}");
    }

    #[test]
    fn alignment_shifts_preferred_cluster_between_inputs() {
        // the §4.3.4 gsmdec scenario: a 2-byte array accessed at stride 16;
        // without padding the preferred cluster depends on the input
        let m = machine();
        let mk = || {
            let mut b = KernelBuilder::new("gsm_like");
            let a = b.array("buf", 4096, ArrayKind::Heap);
            let _ = b.load("ld", a, 0, 16, 2);
            b.finish(256.0)
        };
        // find two inputs whose unpadded placements differ in word offset
        let k0 = mk();
        let (mut s1, mut s2) = (0, 0);
        'outer: for i in 1..20u64 {
            for j in (i + 1)..20u64 {
                let a = ArrayLayout::new(&k0, &m, false, i).base(0) / 4 % 4;
                let b = ArrayLayout::new(&k0, &m, false, j).base(0) / 4 % 4;
                if a != b {
                    (s1, s2) = (i, j);
                    break 'outer;
                }
            }
        }
        assert_ne!(s1, s2, "found two inputs with different placements");
        let mut ka = mk();
        let la = ArrayLayout::new(&ka, &m, false, s1);
        profile_kernel(&mut ka, &m, &la, &ProfileOptions::default());
        let mut kb = mk();
        let lb = ArrayLayout::new(&kb, &m, false, s2);
        profile_kernel(&mut kb, &m, &lb, &ProfileOptions::default());
        let pa = ka
            .op(OpId::new(0))
            .mem
            .as_ref()
            .unwrap()
            .profile
            .as_ref()
            .unwrap();
        let pb = kb
            .op(OpId::new(0))
            .mem
            .as_ref()
            .unwrap()
            .profile
            .as_ref()
            .unwrap();
        assert_ne!(
            pa.preferred_cluster(),
            pb.preferred_cluster(),
            "preferred cluster flips with the input when not padded"
        );
        // with padding both inputs agree
        let mut ka = mk();
        let la = ArrayLayout::new(&ka, &m, true, s1);
        profile_kernel(&mut ka, &m, &la, &ProfileOptions::default());
        let mut kb = mk();
        let lb = ArrayLayout::new(&kb, &m, true, s2);
        profile_kernel(&mut kb, &m, &lb, &ProfileOptions::default());
        let pa = ka
            .op(OpId::new(0))
            .mem
            .as_ref()
            .unwrap()
            .profile
            .as_ref()
            .unwrap();
        let pb = kb
            .op(OpId::new(0))
            .mem
            .as_ref()
            .unwrap()
            .profile
            .as_ref()
            .unwrap();
        assert_eq!(pa.preferred_cluster(), pb.preferred_cluster());
    }
}
