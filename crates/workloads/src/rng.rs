//! A small vendored PRNG (xoshiro256**) with the same call surface the
//! synthesis pass needs from `rand` (`seed_from_u64`, `random::<f64>()`,
//! `random_range`), so the workspace builds with no external dependencies.
//! Determinism is part of the workload contract: the same seed must
//! synthesize the same suite on every platform and every run.

use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256** generator seeded via splitmix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StdRng {
    /// Seeds the generator from a single `u64` (splitmix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly distributed sample of `T`.
    pub fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range` (empty ranges panic, as in `rand`).
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Types [`StdRng::random`] can produce.
pub trait Sample {
    /// Draws one value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Sample for f64 {
    fn sample(rng: &mut StdRng) -> f64 {
        // 53 high bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for u64 {
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for bool {
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`StdRng::random_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value from the range.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

/// Unbiased integer sampling in `[0, n)` by rejection (Lemire-style
/// thresholding is overkill at these call rates).
fn below(rng: &mut StdRng, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range {
    ($t:ty) => {
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    // full-width inclusive range: `width + 1` would overflow
                    return rng.next_u64() as $t;
                }
                lo + below(rng, width + 1) as $t
            }
        }
    };
}

impl_sample_range!(usize);
impl_sample_range!(u64);
impl_sample_range!(u32);

macro_rules! impl_sample_range_signed {
    ($t:ty) => {
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    // full-width inclusive range: `width + 1` would overflow
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, width + 1) as i128) as $t
            }
        }
    };
}

impl_sample_range_signed!(i32);
impl_sample_range_signed!(i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn full_width_inclusive_ranges_sample() {
        let mut r = StdRng::seed_from_u64(11);
        // must not overflow in debug builds nor trip the empty-range guard
        let _: u64 = r.random_range(0..=u64::MAX);
        let _: i64 = r.random_range(i64::MIN..=i64::MAX);
        let _: u32 = r.random_range(0..=u32::MAX);
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = r.random_range(0..4usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..4 reachable");
        for _ in 0..200 {
            let v = r.random_range(3..=5u64);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(0);
        let _ = r.random_range(3..3usize);
    }
}
