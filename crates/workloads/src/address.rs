//! Address-space instantiation and per-operation address streams.
//!
//! This module models the §4.3.4 mechanism: a loop's arrays receive base
//! addresses that depend on the *input data set* for heap and stack
//! objects, unless variable alignment pads them to an `N×I` boundary.
//! Globals always land at the same (input-independent) base.

use vliw_ir::{ArrayKind, LoopKernel, OpId};
use vliw_machine::MachineConfig;

/// Deterministic 64-bit mixer (splitmix64) — the only "randomness" in
/// address generation, so profile/execution runs are exactly reproducible.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn hash_str(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// The concrete placement of a kernel's arrays for one input data set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayLayout {
    bases: Vec<u64>,
    input_seed: u64,
}

impl ArrayLayout {
    /// Lays out `kernel`'s arrays for the given input.
    ///
    /// * Arrays are spread across a large address space with ample spacing
    ///   (no accidental overlap).
    /// * [`ArrayKind::Global`] bases depend only on the loop and array —
    ///   identical across inputs (the paper applies no padding to them, and
    ///   their `mod N×I` placement is an arbitrary but fixed value).
    /// * Heap/stack bases additionally take an input-dependent offset
    ///   within `N×I` — unless `padding` is on, which forces them to the
    ///   `N×I` boundary (the paper's variable alignment: aligned stack
    ///   frames and a modified `malloc`).
    pub fn new(
        kernel: &LoopKernel,
        machine: &MachineConfig,
        padding: bool,
        input_seed: u64,
    ) -> Self {
        let ni = machine.ni_bytes() as u64;
        let loop_id = hash_str(&kernel.name);
        let mut bases = Vec::with_capacity(kernel.arrays.len());
        let mut cursor = 0x1_0000u64; // leave page zero empty
        for a in &kernel.arrays {
            let slack = 4 * ni; // spacing so the jitter never overlaps
            let region = cursor;
            cursor += (a.size + slack).next_multiple_of(ni) + 4096;
            let jitter = match a.kind {
                ArrayKind::Global => {
                    // fixed, input-independent placement (word-aligned)
                    mix(loop_id ^ (a.id.index() as u64) << 8) % ni / 4 * 4
                }
                ArrayKind::Heap | ArrayKind::Stack => {
                    if padding {
                        0 // malloc/stack frames padded to N×I (§4.3.4)
                    } else {
                        mix(loop_id ^ ((a.id.index() as u64) << 8) ^ input_seed) % ni / 4 * 4
                    }
                }
            };
            bases.push(region + jitter);
        }
        ArrayLayout { bases, input_seed }
    }

    /// Base address of array `idx`.
    pub fn base(&self, idx: usize) -> u64 {
        self.bases[idx]
    }

    /// The input this layout was instantiated for.
    pub fn input_seed(&self) -> u64 {
        self.input_seed
    }
}

/// The address the memory operation `op` of `kernel` touches in
/// `iteration`, under `layout`.
///
/// Strided accesses walk `base + offset + stride × iteration`, wrapping so
/// they stay inside the array while preserving their `mod N×I` residue
/// (the property the unrolling analysis relies on). Indirect accesses
/// (`a[b[i]]`) produce an input-dependent pseudo-random element index —
/// a different stream per input data set, as a real data-dependent index
/// would be.
///
/// # Panics
///
/// Panics if `op` is not a memory operation.
pub fn address_for(kernel: &LoopKernel, layout: &ArrayLayout, op: OpId, iteration: u64) -> u64 {
    let operation = kernel.op(op);
    let mem = operation.mem.as_ref().expect("memory operation");
    let array = &kernel.arrays[mem.array.index()];
    let base = layout.base(mem.array.index());
    match mem.stride {
        Some(stride) => {
            let s = stride.unsigned_abs();
            if s == 0 {
                return base + mem.offset as u64;
            }
            // wrap after `period` iterations: the largest stride-multiple
            // window that both fits the array and is a multiple of 16
            // strides keeps (addr mod N×I) periodic
            let span = array.size.saturating_sub(mem.offset.unsigned_abs()).max(s);
            let period = (span / s).max(1) / 16 * 16;
            let period = if period == 0 {
                (span / s).max(1)
            } else {
                period
            };
            let i = iteration % period;
            (base as i64 + mem.offset + stride * i as i64) as u64
        }
        None => {
            // data-dependent index, different per input
            let elems = (array.size / mem.granularity.max(1) as u64).max(1);
            let h = mix(hash_str(&operation.name) ^ layout.input_seed() ^ mix(iteration));
            base + (h % elems) * mem.granularity as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::KernelBuilder;

    fn kernel() -> LoopKernel {
        let mut b = KernelBuilder::new("k");
        let g = b.array("glob", 4096, ArrayKind::Global);
        let h = b.array("heap", 4096, ArrayKind::Heap);
        let (_, idxv) = b.load("ld_g", g, 0, 4, 4);
        let (_, _) = b.load("ld_h", h, 0, 2, 2);
        let _ = b.load_indirect("ld_i", h, idxv, 4);
        b.finish(100.0)
    }

    fn machine() -> MachineConfig {
        MachineConfig::word_interleaved_4()
    }

    #[test]
    fn globals_stable_across_inputs() {
        let k = kernel();
        let m = machine();
        let l1 = ArrayLayout::new(&k, &m, false, 111);
        let l2 = ArrayLayout::new(&k, &m, false, 222);
        assert_eq!(l1.base(0), l2.base(0), "global base is input-independent");
    }

    #[test]
    fn unpadded_heap_moves_with_input() {
        let k = kernel();
        let m = machine();
        let l1 = ArrayLayout::new(&k, &m, false, 111);
        let l2 = ArrayLayout::new(&k, &m, false, 222);
        // different inputs place the heap array at different N×I residues
        // (for almost all seed pairs; these are chosen to differ)
        assert_ne!(l1.base(1) % 16, l2.base(1) % 16);
    }

    #[test]
    fn padding_pins_heap_to_ni_boundary() {
        let k = kernel();
        let m = machine();
        for seed in [1u64, 7, 42, 99] {
            let l = ArrayLayout::new(&k, &m, true, seed);
            assert_eq!(l.base(1) % 16, 0, "padded base is N×I-aligned");
        }
    }

    #[test]
    fn arrays_never_overlap() {
        let k = kernel();
        let m = machine();
        let l = ArrayLayout::new(&k, &m, false, 5);
        let r0 = l.base(0)..l.base(0) + 4096;
        let r1 = l.base(1)..l.base(1) + 4096;
        assert!(r0.end <= r1.start || r1.end <= r0.start);
    }

    #[test]
    fn strided_stream_preserves_ni_residue() {
        let k = kernel();
        let m = machine();
        let l = ArrayLayout::new(&k, &m, true, 3);
        let op = OpId::new(1); // 2-byte strided load
        let a0 = address_for(&k, &l, op, 0);
        // stride 2: iteration i sits at residue (a0 + 2 i) mod 16; after the
        // wrap the residue pattern repeats exactly
        for i in 0..2000 {
            let a = address_for(&k, &l, op, i);
            assert_eq!(a % 16, (a0 + 2 * (i % 8)) % 16, "iteration {i}");
            assert!(a >= l.base(1) && a < l.base(1) + 4096 + 16);
        }
    }

    #[test]
    fn indirect_stream_depends_on_input() {
        let k = kernel();
        let m = machine();
        let l1 = ArrayLayout::new(&k, &m, true, 111);
        let l2 = ArrayLayout::new(&k, &m, true, 222);
        let op = OpId::new(2);
        let differs = (0..64).any(|i| {
            address_for(&k, &l1, op, i) - l1.base(1) != address_for(&k, &l2, op, i) - l2.base(1)
        });
        assert!(differs, "indirect index stream must change with the input");
        // and is reproducible for the same input
        for i in 0..64 {
            assert_eq!(address_for(&k, &l1, op, i), address_for(&k, &l1, op, i));
        }
    }

    #[test]
    fn indirect_addresses_stay_inside_array() {
        let k = kernel();
        let m = machine();
        let l = ArrayLayout::new(&k, &m, true, 9);
        let op = OpId::new(2);
        for i in 0..500 {
            let a = address_for(&k, &l, op, i);
            assert!(a >= l.base(1) && a < l.base(1) + 4096);
        }
    }
}
