//! Reconstruction of the paper's worked example (§4.3.3, Figure 3).
//!
//! The example is a 2-cluster word-interleaved machine with latencies
//! 15 / 10 / 5 / 1 and a loop with two recurrences:
//!
//! * **REC1** — `n1 (load) → n2 (load) → n3 (add) → n5 (sub) → n4 (store)`,
//!   closed by a memory dependence from the store back to `n1` at
//!   distance 1. At local-hit latencies its II is 5; with all loads at
//!   the remote-miss latency it is 33.
//! * **REC2** — `n6 (load) → n7 (div, 6 cycles) → n8 (add)`, closed by a
//!   register flow at distance 1. Local-hit II 8, remote-miss II 22.
//!
//! `n1, n2, n4` form a memory-dependent chain (with preferences
//! {1, 1, 2} → average preferred cluster 1); `n6` prefers cluster 2.
//! Cluster numbers here are 0-based: the paper's "cluster 1" is cluster 0.
//!
//! The golden tests in this module check every number the paper reports:
//! the MII (8), the initial recurrence IIs, the per-step benefit-table
//! entries, the final latencies (`n2 → 1`, `n1 → 4`, `n6 → 1`) and the
//! IBC/IPBC cluster placements.

use vliw_ir::{ArrayKind, DepKind, KernelBuilder, LoopKernel, MemProfile, OpId, Opcode};
use vliw_machine::MachineConfig;

/// Handles to the example's operations, using the paper's names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Figure3Ops {
    /// `n1`: load, hit rate 0.6, local ratio 0.5, preferred cluster 0.
    pub n1: OpId,
    /// `n2`: load, hit rate 0.9, local ratio 0.5, preferred cluster 0.
    pub n2: OpId,
    /// `n3`: add.
    pub n3: OpId,
    /// `n4`: store, preferred cluster 1.
    pub n4: OpId,
    /// `n5`: sub (feeds `n1`'s address in the next iteration).
    pub n5: OpId,
    /// `n6`: load, preferred cluster 1.
    pub n6: OpId,
    /// `n7`: divide (6 cycles).
    pub n7: OpId,
    /// `n8`: add.
    pub n8: OpId,
}

/// Builds the Figure 3 kernel.
pub fn figure3_kernel() -> (LoopKernel, Figure3Ops) {
    let mut b = KernelBuilder::new("figure3");
    let a = b.array("a", 4096, ArrayKind::Global);
    let c = b.array("c", 4096, ArrayKind::Global);

    // REC1 (creation order n1, n2, n3, n5, n4 so distance-0 flow goes
    // forward; `n5 -> n1` closes through distance 1)
    let (n1, _v1) = b.load("n1", a, 0, 8, 4);
    let (n2, v2) = b.load("n2", a, 1024, 8, 4);
    b.raw_edge(n1, n2, DepKind::RegFlow, 0); // n2's address uses n1's value
    let (n3, v3) = b.int_op("n3", Opcode::Add, &[v2.into()]);
    let (n5, v5) = b.int_op("n5", Opcode::Sub, &[v3.into()]);
    let (n4, _) = b.store("n4", a, 2048, 8, 4, v5);
    b.raw_edge(n5, n1, DepKind::RegFlow, 1); // n1's next-iteration address
    b.mem_dep(n2, n4, DepKind::MemAnti, 0);
    b.mem_dep(n4, n1, DepKind::MemFlow, 1); // closes REC1

    // REC2
    let (n6, v6) = b.load("n6", c, 0, 8, 4);
    let (n7, v7) = b.int_op("n7", Opcode::Div, &[v6.into()]);
    let (n8, _v8) = b.int_op("n8", Opcode::Add, &[v7.into()]);
    b.raw_edge(n8, n6, DepKind::RegFlow, 1); // closes REC2

    // profiles (2-cluster machine)
    b.set_profile(n1, MemProfile::with_local_ratio(0.6, 0, 0.5, 2));
    b.set_profile(n2, MemProfile::with_local_ratio(0.9, 0, 0.5, 2));
    b.set_profile(n4, MemProfile::concentrated(1.0, 1, 2));
    b.set_profile(n6, MemProfile::with_local_ratio(0.9, 1, 0.5, 2));

    let kernel = b.finish(200.0);
    (
        kernel,
        Figure3Ops {
            n1,
            n2,
            n3,
            n4,
            n5,
            n6,
            n7,
            n8,
        },
    )
}

/// The example's 2-cluster machine (latencies 15/10/5/1 are the defaults).
pub fn figure3_machine() -> MachineConfig {
    MachineConfig::word_interleaved(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chains::MemChains;
    use crate::circuits::{elementary_circuits, EnumLimits};
    use crate::engine::{schedule_kernel, ClusterPolicy, ScheduleOptions};
    use crate::latency::assign_latencies;
    use crate::mii;
    use vliw_ir::Ddg;
    use vliw_machine::AccessClass;

    fn setup() -> (LoopKernel, Figure3Ops, MachineConfig) {
        let (k, ops) = figure3_kernel();
        (k, ops, figure3_machine())
    }

    #[test]
    fn recurrence_iis_match_paper() {
        let (k, ops, _m) = setup();
        let g = Ddg::build(&k);
        let cs = elementary_circuits(&g, EnumLimits::default());
        // REC1 main circuit: n1 n2 n3 n5 n4
        let rec1 = cs
            .iter()
            .find(|c| c.nodes.len() == 5 && c.contains(ops.n4))
            .expect("REC1 exists");
        let rec2 = cs.iter().find(|c| c.contains(ops.n6)).expect("REC2 exists");
        // with local-hit (1-cycle) loads: REC1 = 5, REC2 = 8
        let lat_lh = |o: OpId| -> u32 {
            let op = k.op(o);
            match op.opcode {
                Opcode::Load => 1,
                Opcode::Div => 6,
                Opcode::Store => 1,
                _ => 1,
            }
        };
        let g2 = &g;
        assert_eq!(
            rec1.ii_bound(|e| mii::edge_latency(&g2.edges()[e], lat_lh)),
            5
        );
        assert_eq!(
            rec2.ii_bound(|e| mii::edge_latency(&g2.edges()[e], lat_lh)),
            8
        );
        // with remote-miss (15-cycle) loads: REC1 = 33, REC2 = 22
        let lat_rm = |o: OpId| -> u32 {
            let op = k.op(o);
            match op.opcode {
                Opcode::Load => 15,
                Opcode::Div => 6,
                Opcode::Store => 1,
                _ => 1,
            }
        };
        assert_eq!(
            rec1.ii_bound(|e| mii::edge_latency(&g2.edges()[e], lat_rm)),
            33
        );
        assert_eq!(
            rec2.ii_bound(|e| mii::edge_latency(&g2.edges()[e], lat_rm)),
            22
        );
    }

    #[test]
    fn loop_mii_is_8() {
        let (k, _ops, m) = setup();
        let g = Ddg::build(&k);
        let cs = elementary_circuits(&g, EnumLimits::default());
        let asg = assign_latencies(&k, &g, &m, &cs);
        assert_eq!(asg.target_mii, 8);
    }

    #[test]
    fn final_latencies_match_paper() {
        let (k, ops, m) = setup();
        let g = Ddg::build(&k);
        let cs = elementary_circuits(&g, EnumLimits::default());
        let asg = assign_latencies(&k, &g, &m, &cs);
        // "…achieved after assigning the local hit latency to instruction n2
        // and a latency of 4 cycles to instruction n1"
        assert_eq!(asg.latency_of(ops.n2), 1, "n2 ends at local hit");
        assert_eq!(asg.latency_of(ops.n1), 4, "n1 de-slacked to 4 cycles");
        // "…an II of 8 is achieved after changing the latency of n6 from
        // remote miss to local hit"
        assert_eq!(asg.latency_of(ops.n6), 1);
        // the resulting recurrence MII equals the target
        assert_eq!(mii::rec_mii(&g, |o| asg.latency_of(o)), 8);
    }

    #[test]
    fn step1_benefit_table_matches_paper() {
        let (k, ops, m) = setup();
        let g = Ddg::build(&k);
        let cs = elementary_circuits(&g, EnumLimits::default());
        let asg = assign_latencies(&k, &g, &m, &cs);
        // first applied step must be on the 5-node REC1 circuit
        let step1 = &asg.steps[0];
        let find = |op: OpId, class: AccessClass| {
            step1
                .candidates
                .iter()
                .find(|c| c.op == op && c.to_class == class)
                .unwrap_or_else(|| panic!("candidate {op} -> {class} missing"))
        };
        // paper STEP 1 rows (n1 -> LH is the known inconsistency: the
        // reconstructed model gives ∆stall 5.8 where the paper prints 6.8;
        // every other entry matches — see EXPERIMENTS.md)
        let c = find(ops.n1, AccessClass::LocalMiss);
        assert_eq!(c.delta_ii, 5);
        assert!((c.delta_stall - 1.0).abs() < 1e-4);
        assert!((c.benefit - 5.0).abs() < 1e-3);
        let c = find(ops.n1, AccessClass::RemoteHit);
        assert_eq!(c.delta_ii, 10);
        assert!((c.delta_stall - 3.0).abs() < 1e-4);
        assert!((c.benefit - 3.333).abs() < 1e-2);
        let c = find(ops.n2, AccessClass::LocalMiss);
        assert_eq!(c.delta_ii, 5);
        assert!((c.delta_stall - 0.25).abs() < 1e-5);
        assert!((c.benefit - 20.0).abs() < 1e-3);
        let c = find(ops.n2, AccessClass::RemoteHit);
        assert_eq!(c.delta_ii, 10);
        assert!((c.delta_stall - 0.75).abs() < 1e-5);
        assert!((c.benefit - 13.333).abs() < 1e-2);
        let c = find(ops.n2, AccessClass::LocalHit);
        assert_eq!(c.delta_ii, 14);
        assert!((c.delta_stall - 2.95).abs() < 1e-4);
        assert!((c.benefit - 4.745).abs() < 1e-2);
        // the applied change is n2 -> local miss (B = 20), as in the paper
        let chosen = &step1.candidates[step1.chosen];
        assert_eq!(chosen.op, ops.n2);
        assert_eq!(chosen.to_class, AccessClass::LocalMiss);
    }

    #[test]
    fn step2_applies_n2_to_remote_hit() {
        let (k, ops, m) = setup();
        let g = Ddg::build(&k);
        let cs = elementary_circuits(&g, EnumLimits::default());
        let asg = assign_latencies(&k, &g, &m, &cs);
        let step2 = &asg.steps[1];
        let chosen = &step2.candidates[step2.chosen];
        assert_eq!(chosen.op, ops.n2);
        assert_eq!(chosen.to_class, AccessClass::RemoteHit);
        // paper STEP 2: ∇II 5, ∆stall 0.5, B 10
        assert_eq!(chosen.delta_ii, 5);
        assert!((chosen.delta_stall - 0.5).abs() < 1e-5);
        assert!((chosen.benefit - 10.0).abs() < 1e-3);
        // and its sibling row: n2 -> LH with ∇II 9, ∆stall 2.7, B 3.33
        let lh = step2
            .candidates
            .iter()
            .find(|c| c.op == ops.n2 && c.to_class == AccessClass::LocalHit)
            .unwrap();
        assert_eq!(lh.delta_ii, 9);
        assert!((lh.delta_stall - 2.7).abs() < 1e-4);
        assert!((lh.benefit - 3.333).abs() < 1e-2);
    }

    #[test]
    fn chain_membership_and_preference() {
        let (k, ops, _m) = setup();
        let chains = MemChains::build(&k);
        let c1 = chains.chain_id(ops.n1).unwrap();
        assert_eq!(chains.chain_id(ops.n2), Some(c1));
        assert_eq!(chains.chain_id(ops.n4), Some(c1));
        assert_ne!(chains.chain_id(ops.n6), Some(c1));
        // preferences {0, 0, 1} -> the chain prefers cluster 0
        assert_eq!(chains.preferred_cluster(c1, &k, 2), Some(0));
    }

    #[test]
    fn ipbc_places_chain_in_preferred_clusters() {
        let (k, ops, m) = setup();
        let s = schedule_kernel(&k, &m, ScheduleOptions::new(ClusterPolicy::PreBuildChains))
            .expect("schedulable");
        assert!(s.verify(&k, &m).is_empty(), "legal schedule");
        // the n1-n2-n4 chain sits in its average preferred cluster (0)
        assert_eq!(s.op(ops.n1).cluster, 0);
        assert_eq!(s.op(ops.n2).cluster, 0);
        assert_eq!(s.op(ops.n4).cluster, 0);
        // n6 goes to its preferred cluster (1)
        assert_eq!(s.op(ops.n6).cluster, 1);
        assert_eq!(s.ii, 8, "schedule achieves the MII");
    }

    #[test]
    fn ibc_keeps_chain_together() {
        let (k, ops, m) = setup();
        let s = schedule_kernel(&k, &m, ScheduleOptions::new(ClusterPolicy::BuildChains))
            .expect("schedulable");
        assert!(s.verify(&k, &m).is_empty());
        let c = s.op(ops.n1).cluster;
        assert_eq!(s.op(ops.n2).cluster, c);
        assert_eq!(s.op(ops.n4).cluster, c);
        // IBC ignores preferences, so REC1 and REC2 land in different
        // clusters purely for balance
        assert_ne!(s.op(ops.n6).cluster, c);
        assert_eq!(s.ii, 8);
    }
}
