//! Whole-benchmark workload balance (§5.2, Figure 7).

/// Weighted arithmetic mean of per-loop workload balances, weighted by the
/// loops' dynamic execution weight — the paper's whole-benchmark metric.
/// Returns `f64::NAN` when the total weight is zero.
pub fn weighted_workload_balance(loops: impl IntoIterator<Item = (f64, f64)>) -> f64 {
    let (mut num, mut den) = (0.0, 0.0);
    for (weight, wb) in loops {
        num += weight * wb;
        den += weight;
    }
    if den == 0.0 {
        f64::NAN
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_mean() {
        // one heavy perfectly-balanced loop and one light unbalanced loop
        let wb = weighted_workload_balance([(900.0, 0.25), (100.0, 1.0)]);
        assert!((wb - 0.325).abs() < 1e-12);
    }

    #[test]
    fn empty_is_nan() {
        assert!(weighted_workload_balance([]).is_nan());
    }

    #[test]
    fn single_loop_passthrough() {
        assert_eq!(weighted_workload_balance([(42.0, 0.5)]), 0.5);
    }
}
