//! Register-pressure estimation for modulo schedules.
//!
//! §4.1 of the paper lists register pressure alongside II and SC as the
//! parameters that most affect a modulo-scheduled loop: a schedule needing
//! more registers than the machine has forces spill code or a larger II.
//! The standard estimate is **MaxLive** — the maximum number of
//! simultaneously live values in the steady-state kernel (Rau's
//! methodology): a value produced at cycle `p` and last consumed at cycle
//! `c` (its consumer `d` iterations later reads it at `c + d·II`) is live
//! in `ceil((span)/II)` overlapped iterations, contributing to every
//! kernel slot its lifetime crosses.

use vliw_ir::{DepKind, LoopKernel};

use crate::schedule::Schedule;

/// MaxLive of a schedule: the maximum over kernel slots of simultaneously
/// live register values (inter-cluster copies count in the destination
/// cluster from the copy's completion).
///
/// Values with no consumer are live for one cycle (their definition slot).
/// Live-in (loop-invariant) registers are excluded — they occupy
/// non-rotating registers whose count is II-independent.
pub fn max_live(kernel: &LoopKernel, schedule: &Schedule) -> usize {
    let ii = schedule.ii as i64;
    let mut pressure = vec![0i64; schedule.ii as usize];
    for op in &kernel.ops {
        if op.dst.is_none() {
            continue;
        }
        let def = schedule.op(op.id);
        let born = def.cycle as i64;
        // the value dies at its last read (in schedule space, reads happen
        // at consumer cycle + II * edge distance)
        let mut death = born + 1; // at least one cycle live
        for e in kernel
            .edges
            .iter()
            .filter(|e| e.from == op.id && e.kind == DepKind::RegFlow)
        {
            let cons = schedule.op(e.to);
            death = death.max(cons.cycle as i64 + ii * e.distance as i64);
        }
        // every kernel slot in [born, death) hosts one live copy per
        // crossed iteration
        let span = death - born;
        let full_turns = span / ii;
        let rem = span % ii;
        for (slot, p) in pressure.iter_mut().enumerate() {
            let slot = slot as i64;
            let covered = full_turns
                + if rem == 0 {
                    0
                } else {
                    let s = (slot - born).rem_euclid(ii);
                    (s < rem) as i64
                };
            *p += covered;
        }
    }
    pressure.into_iter().max().unwrap_or(0) as usize
}

/// Per-cluster MaxLive: pressure against each cluster's local register
/// file (the clustered architecture's actual constraint). A value lives in
/// its producer's cluster, and a copied value additionally lives in every
/// destination cluster from the copy onward.
pub fn max_live_per_cluster(
    kernel: &LoopKernel,
    schedule: &Schedule,
    n_clusters: usize,
) -> Vec<usize> {
    let ii = schedule.ii as i64;
    let mut pressure = vec![vec![0i64; schedule.ii as usize]; n_clusters];
    for op in &kernel.ops {
        if op.dst.is_none() {
            continue;
        }
        let def = schedule.op(op.id);
        // lifetime per cluster: in the producer's cluster from def to the
        // last same-cluster read or last copy departure; in each consumer
        // cluster from copy arrival to last read there
        let mut death_by_cluster: Vec<Option<(i64, i64)>> = vec![None; n_clusters];
        let born_home = def.cycle as i64;
        death_by_cluster[def.cluster] = Some((born_home, born_home + 1));
        for e in kernel
            .edges
            .iter()
            .filter(|e| e.from == op.id && e.kind == DepKind::RegFlow)
        {
            let cons = schedule.op(e.to);
            let read = cons.cycle as i64 + ii * e.distance as i64;
            if cons.cluster == def.cluster {
                let entry = death_by_cluster[def.cluster].get_or_insert((born_home, born_home + 1));
                entry.1 = entry.1.max(read);
            } else if let Some(copy) = schedule.copy_for(op.id, cons.cluster) {
                // producer side: live until the copy leaves
                let entry = death_by_cluster[def.cluster].get_or_insert((born_home, born_home + 1));
                entry.1 = entry.1.max(copy.cycle as i64);
                // consumer side: live from copy arrival to the read
                let arrive = copy.cycle as i64;
                let centry = death_by_cluster[cons.cluster].get_or_insert((arrive, arrive + 1));
                centry.0 = centry.0.min(arrive);
                centry.1 = centry.1.max(read);
            }
        }
        for (c, range) in death_by_cluster.iter().enumerate() {
            let Some((born, death)) = *range else {
                continue;
            };
            let span = (death - born).max(1);
            let full_turns = span / ii;
            let rem = span % ii;
            for (slot, p) in pressure[c].iter_mut().enumerate() {
                let slot = slot as i64;
                let covered = full_turns
                    + if rem == 0 {
                        0
                    } else {
                        let s = (slot - born).rem_euclid(ii);
                        (s < rem) as i64
                    };
                *p += covered;
            }
        }
    }
    pressure
        .into_iter()
        .map(|v| v.into_iter().max().unwrap_or(0) as usize)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{schedule_kernel, ClusterPolicy, ScheduleOptions};
    use vliw_ir::{ArrayKind, KernelBuilder, MemProfile, Opcode};
    use vliw_machine::MachineConfig;

    fn schedule(k: &LoopKernel) -> Schedule {
        let m = MachineConfig::word_interleaved_4();
        schedule_kernel(k, &m, ScheduleOptions::new(ClusterPolicy::Free)).unwrap()
    }

    #[test]
    fn chain_pressure_is_small() {
        // a -> b -> c, latencies 1: at II 1 each value lives ~1 cycle
        let mut b = KernelBuilder::new("t");
        let (_, r1) = b.int_op("a", Opcode::Add, &[]);
        let (_, r2) = b.int_op("b", Opcode::Sub, &[r1.into()]);
        let _ = b.int_op("c", Opcode::Xor, &[r2.into()]);
        let k = b.finish(16.0);
        let s = schedule(&k);
        let ml = max_live(&k, &s);
        assert!((2..=6).contains(&ml), "chain MaxLive {ml}");
    }

    #[test]
    fn long_latency_values_overlap_iterations() {
        // a load with a 15-cycle promise consumed at distance 0: at II 1
        // roughly 15 copies of the value are in flight
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 4096, ArrayKind::Global);
        let (ld, v) = b.load("ld", a, 0, 16, 4);
        b.set_profile(ld, MemProfile::concentrated(1.0, 0, 4));
        let _ = b.int_op("use", Opcode::Add, &[v.into()]);
        let k = b.finish(64.0);
        let s = schedule(&k);
        let expect = (s.op(vliw_ir::OpId::new(0)).assumed_latency as usize) / s.ii as usize;
        let ml = max_live(&k, &s);
        assert!(
            ml >= expect,
            "MaxLive {ml} must cover ~{expect} in-flight values"
        );
    }

    #[test]
    fn per_cluster_sums_bound_total() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 4096, ArrayKind::Global);
        let (_, v) = b.load("ld", a, 0, 4, 4);
        let (_, w) = b.int_op("m", Opcode::Mul, &[v.into()]);
        let (_, x) = b.int_op("n", Opcode::Add, &[w.into(), v.into()]);
        b.store("st", a, 2048, 4, 4, x);
        let k = b.finish(64.0);
        let s = schedule(&k);
        let total = max_live(&k, &s);
        let per = max_live_per_cluster(&k, &s, 4);
        // per-cluster peaks can exceed the global peak in sum (copies add
        // replicas) but each cluster alone never exceeds total + copies
        assert!(per.iter().sum::<usize>() >= total);
        assert!(per.iter().all(|&p| p <= total + s.n_comms() + 1));
    }

    #[test]
    fn storeless_values_live_one_cycle() {
        let mut b = KernelBuilder::new("t");
        let _ = b.int_op("lonely", Opcode::Add, &[]);
        let k = b.finish(8.0);
        let s = schedule(&k);
        assert_eq!(max_live(&k, &s), 1);
    }
}
