//! Latency assignment for memory instructions (§4.3.1, step 2).
//!
//! Every load starts at the most expensive latency (remote miss on the
//! word-interleaved machine, miss on unified/multiVLIW machines). Then, one
//! recurrence at a time — most II-constraining first — individual loads are
//! lowered to cheaper classes, choosing at each step the change with the
//! best *benefit* `B = ΔII / Δstall`, until the recurrence II reaches the
//! loop MII computed with all-local-hit latencies. Finally the last lowered
//! load is raised again ("de-slacked") so the recurrence sits exactly at the
//! MII instead of below it.
//!
//! The stall estimator — which the paper omits "due to lack of space" — is
//! reconstructed from the worked example's benefit table (see `DESIGN.md`):
//! with `f` the profiled local-access ratio and `h` the hit rate, the four
//! class probabilities are `f·h, (1−f)·h, f·(1−h), (1−f)·(1−h)` and
//! `stall(L) = Σ p_c · max(0, latency_c − L)`.

use std::fmt;

use vliw_ir::{Ddg, DepEdge, LoopKernel, OpId, Opcode};
use vliw_machine::{AccessClass, MachineConfig};

use crate::circuits::Circuit;
use crate::mii;

/// The per-operation latencies the scheduler will assume.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyAssignment {
    lat: Vec<u32>,
    /// The MII target the reduction aimed for
    /// (`max(ResMII, RecMII at all-local-hit latencies)`).
    pub target_mii: u32,
    /// Reduction log, for inspection and the §4.3.3 table reproduction.
    pub steps: Vec<BenefitStep>,
}

impl LatencyAssignment {
    /// The assumed latency of `op`.
    pub fn latency_of(&self, op: OpId) -> u32 {
        self.lat[op.index()]
    }

    /// The scheduling latency of a dependence edge under this assignment.
    pub fn edge_latency(&self, edge: &DepEdge, _kernel: &LoopKernel) -> u32 {
        mii::edge_latency(edge, |op| self.lat[op.index()])
    }

    /// Internal: mutable access for tests and the de-slack step.
    fn set(&mut self, op: OpId, lat: u32) {
        self.lat[op.index()] = lat;
    }

    /// Rebuilds an assignment from its persisted parts. The reduction log
    /// (`steps`) is not persisted — it exists for inspection of a live
    /// reduction, and nothing downstream of a finished schedule reads it —
    /// so a rebuilt assignment carries an empty log.
    pub fn from_raw(lat: Vec<u32>, target_mii: u32) -> Self {
        LatencyAssignment {
            lat,
            target_mii,
            steps: Vec::new(),
        }
    }

    /// The raw per-operation latency vector (the persisted form).
    pub fn raw(&self) -> &[u32] {
        &self.lat
    }
}

/// One candidate evaluation inside a reduction step (a row of the paper's
/// §4.3.3 benefit table).
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateEval {
    /// The load considered.
    pub op: OpId,
    /// The class considered as the new latency.
    pub to_class: AccessClass,
    /// Decrease in the recurrence II ("∇II").
    pub delta_ii: u32,
    /// Estimated increase in stall time per execution ("∆stall").
    pub delta_stall: f64,
    /// The benefit `∇II / ∆stall` (infinite when `∆stall ≤ 0`).
    pub benefit: f64,
}

impl fmt::Display for CandidateEval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {}: dII {} dStall {:.2} B {:.2}",
            self.op, self.to_class, self.delta_ii, self.delta_stall, self.benefit
        )
    }
}

/// One applied reduction step.
#[derive(Debug, Clone, PartialEq)]
pub struct BenefitStep {
    /// Which circuit (index into the enumerated list) was being reduced.
    pub circuit: usize,
    /// All candidates evaluated this step.
    pub candidates: Vec<CandidateEval>,
    /// The candidate applied (index into `candidates`).
    pub chosen: usize,
}

/// Estimated stall per execution of a load scheduled with latency
/// `assumed`, from its profile (hit rate × local-ratio class mix).
///
/// `cluster` is the cluster the operation is known to execute in, when the
/// policy fixes it before scheduling (IPBC pre-builds its chains): the
/// local fraction is then the profiled ratio of accesses to that cluster.
/// Without a pin the estimate optimistically assumes the preferred cluster
/// (the profile's concentration).
///
/// Accesses with granularity larger than the interleave factor are always
/// remote on the word-interleaved machine (§5.2), so their local fraction
/// is zero. On machines without remote accesses only hit/miss classes
/// exist. Loads without a profile use a local fraction of `1/N` (uniform).
pub fn stall_estimate(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    op: OpId,
    cluster: Option<usize>,
    assumed: u32,
) -> f64 {
    let Some(mem) = &kernel.op(op).mem else {
        return 0.0;
    };
    class_mix(mem, machine, cluster)
        .into_iter()
        .map(|(p, l)| p * (l.saturating_sub(assumed)) as f64)
        .sum()
}

/// The access-class probability mix of one memory operation, as
/// `(probability, class latency)` pairs — the §4.3.3 four-class model
/// (`f·h, (1−f)·h, f·(1−h), (1−f)·(1−h)`) built from the operation's
/// profile, shared by the stall estimator and the expected-latency
/// derivation of the delay-tracking backend.
fn class_mix(
    mem: &vliw_ir::MemAccessInfo,
    machine: &MachineConfig,
    cluster: Option<usize>,
) -> Vec<(f64, u32)> {
    let h = mem.hit_rate();
    let lats = &machine.mem_latencies;
    if machine.has_remote_accesses() {
        let f = if mem.granularity as usize > machine.cache.interleave_bytes {
            0.0
        } else {
            match (&mem.profile, cluster) {
                (Some(p), Some(c)) => p.local_ratio(c),
                (Some(p), None) => p.concentration(),
                (None, _) => 1.0 / machine.n_clusters() as f64,
            }
        };
        vec![
            (f * h, lats.local_hit),
            ((1.0 - f) * h, lats.remote_hit),
            (f * (1.0 - h), lats.local_miss),
            ((1.0 - f) * (1.0 - h), lats.remote_miss),
        ]
    } else {
        vec![(h, lats.local_hit), (1.0 - h, lats.local_miss)]
    }
}

/// The latency the delay-tracking backend schedules one load at.
///
/// Preference order:
/// 1. the *measured* latency distribution attached to the load's profile
///    (`percentile = None` takes the expectation, `Some(p)` the p-th
///    percentile — the knob trading stall risk against II). Measured
///    values are **not** capped at the class-model ceiling: observing
///    latencies above the remote-miss class (queueing, combining, MSHR
///    back-pressure) is precisely what measurement adds, and a high
///    percentile must be allowed to promise more than the class worst
///    case;
/// 2. with a profile but no measurements, the expectation of the §4.3.3
///    class mix (the best class-model estimate of the same quantity),
///    which is bounded by the class latencies by construction;
/// 3. with no profile at all, the most expensive class — exactly the
///    initial assumption of the class-based assignment.
///
/// The result is always at least 1.
pub fn delay_tracking_latency(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    op: OpId,
    cluster: Option<usize>,
    percentile: Option<f64>,
) -> u32 {
    let lats = &machine.mem_latencies;
    let max_class = *available_classes(machine).last().expect("classes");
    let ceiling = lats.of(max_class);
    let Some(mem) = &kernel.op(op).mem else {
        return ceiling;
    };
    let measured = mem.profile.as_ref().and_then(|p| p.latency.as_ref());
    let raw = match measured {
        Some(lp) if !lp.is_empty() => match percentile {
            Some(p) => lp.percentile(p).expect("nonempty") as f64,
            None => lp.expected().expect("nonempty"),
        },
        _ if mem.profile.is_some() => class_mix(mem, machine, cluster)
            .into_iter()
            .map(|(p, l)| p * l as f64)
            .sum(),
        _ => ceiling as f64,
    };
    (raw.round() as u32).max(1)
}

/// The delay-tracking latency assignment: every load scheduled at its
/// measured expected (or percentile) latency via
/// [`delay_tracking_latency`]; stores and non-memory operations take
/// their class/FU latencies exactly as in the class-based assignment.
///
/// Replaces the whole §4.3.3 benefit-driven reduction — there is no
/// per-recurrence lowering and no de-slack step, so `steps` is empty and
/// `target_mii` records the recurrence MII *at these latencies* (what
/// the measured model believes the loop can sustain).
pub fn assign_profiled_latencies(
    kernel: &LoopKernel,
    ddg: &Ddg<'_>,
    machine: &MachineConfig,
    pins: &[Option<usize>],
    percentile: Option<f64>,
) -> LatencyAssignment {
    let lat: Vec<u32> = kernel
        .ops
        .iter()
        .map(|o| match o.opcode {
            Opcode::Load => {
                let pin = pins.get(o.id.index()).copied().flatten();
                delay_tracking_latency(kernel, machine, o.id, pin, percentile)
            }
            op => machine.op_latencies.of(op),
        })
        .collect();
    let rec = mii::rec_mii(ddg, |op| lat[op.index()]);
    LatencyAssignment {
        lat,
        target_mii: mii::res_mii(kernel, machine).max(rec),
        steps: Vec::new(),
    }
}

/// The latency classes available for assignment on `machine`, cheapest
/// first: all four on the word-interleaved machine, hit/miss otherwise.
pub fn available_classes(machine: &MachineConfig) -> Vec<AccessClass> {
    if machine.has_remote_accesses() {
        AccessClass::ALL.to_vec()
    } else {
        vec![AccessClass::LocalHit, AccessClass::LocalMiss]
    }
}

/// Runs the latency-assignment step for `kernel`.
///
/// `circuits` must be the kernel's elementary circuits (recurrences); the
/// returned assignment also stores the MII target and the reduction log.
pub fn assign_latencies(
    kernel: &LoopKernel,
    ddg: &Ddg<'_>,
    machine: &MachineConfig,
    circuits: &[Circuit],
) -> LatencyAssignment {
    assign_latencies_with_pins(kernel, ddg, machine, circuits, &[])
}

/// [`assign_latencies`] with known per-op cluster pins (IPBC pre-built
/// chains / per-op preferences), which sharpen the stall estimates.
pub fn assign_latencies_with_pins(
    kernel: &LoopKernel,
    ddg: &Ddg<'_>,
    machine: &MachineConfig,
    circuits: &[Circuit],
    pins: &[Option<usize>],
) -> LatencyAssignment {
    let classes = available_classes(machine);
    let max_class = *classes.last().expect("at least one class");
    let lats = &machine.mem_latencies;

    // base latencies: non-memory ops from the FU table, stores at the store
    // issue latency, loads initially at the most expensive class
    let base: Vec<u32> = kernel
        .ops
        .iter()
        .map(|o| match o.opcode {
            Opcode::Load => lats.of(max_class),
            op => machine.op_latencies.of(op),
        })
        .collect();

    // the target: MII as if every load were a (local) hit
    let hit = lats.of(AccessClass::LocalHit);
    let rec_target = mii::rec_mii(ddg, |op| {
        if kernel.op(op).is_load() {
            hit
        } else {
            base[op.index()]
        }
    });
    let target = mii::res_mii(kernel, machine).max(rec_target);

    let mut asg = LatencyAssignment {
        lat: base,
        target_mii: target,
        steps: Vec::new(),
    };

    let circuit_ii = |asg: &LatencyAssignment, c: &Circuit| -> u32 {
        c.ii_bound(|e| asg.edge_latency(&ddg.edges()[e], kernel))
    };

    // circuits that could not be reduced below the target (e.g. recurrences
    // through stores only) are skipped so the outer loop terminates
    let mut stuck = vec![false; circuits.len()];
    loop {
        // the most constraining recurrence still above the target
        let worst = circuits
            .iter()
            .enumerate()
            .filter(|&(i, _)| !stuck[i])
            .map(|(i, c)| (circuit_ii(&asg, c), i))
            .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
            .filter(|&(ii, _)| ii > target);
        let Some((_, ci)) = worst else { break };
        let circuit = &circuits[ci];

        let mut last_changed: Option<OpId> = None;
        while circuit_ii(&asg, circuit) > target {
            let cur_ii = circuit_ii(&asg, circuit);
            let mut candidates = Vec::new();
            let mut loads: Vec<OpId> = circuit
                .nodes
                .iter()
                .copied()
                .filter(|&o| kernel.op(o).is_load())
                .collect();
            loads.dedup();
            for &m in &loads {
                let cur = asg.latency_of(m);
                for &class in &classes {
                    let to = lats.of(class);
                    if to >= cur {
                        continue;
                    }
                    let mut trial = asg.clone();
                    trial.set(m, to);
                    let new_ii = circuit_ii(&trial, circuit);
                    let delta_ii = cur_ii - new_ii;
                    let pin = pins.get(m.index()).copied().flatten();
                    let delta_stall = stall_estimate(kernel, machine, m, pin, to)
                        - stall_estimate(kernel, machine, m, pin, cur);
                    let benefit = if delta_stall <= 1e-12 {
                        f64::INFINITY
                    } else {
                        delta_ii as f64 / delta_stall
                    };
                    candidates.push(CandidateEval {
                        op: m,
                        to_class: class,
                        delta_ii,
                        delta_stall,
                        benefit,
                    });
                }
            }
            if candidates.is_empty() {
                break; // recurrence cannot be reduced further (stores only…)
            }
            // best benefit; ties: larger II decrease, then lower op id,
            // then cheaper class
            let chosen = candidates
                .iter()
                .enumerate()
                .max_by(|(ia, a), (ib, b)| {
                    a.benefit
                        .partial_cmp(&b.benefit)
                        .unwrap()
                        .then(a.delta_ii.cmp(&b.delta_ii))
                        .then(b.op.cmp(&a.op))
                        .then(ib.cmp(ia))
                })
                .map(|(i, _)| i)
                .expect("nonempty");
            let c = candidates[chosen].clone();
            if c.delta_ii == 0 && c.benefit.is_finite() {
                // no candidate makes progress on the II: stop to avoid
                // lowering latencies for nothing
                let best_dii = candidates.iter().map(|x| x.delta_ii).max().unwrap_or(0);
                if best_dii == 0 {
                    break;
                }
            }
            asg.set(c.op, lats.of(c.to_class));
            last_changed = Some(c.op);
            asg.steps.push(BenefitStep {
                circuit: ci,
                candidates,
                chosen,
            });
        }

        if circuit_ii(&asg, circuit) > target {
            stuck[ci] = true;
        }

        // De-slack: raise the last-changed load so this recurrence sits at
        // exactly the target — bounded by every circuit the load belongs to.
        if let Some(m) = last_changed {
            let mut bound = lats.of(max_class);
            for c in circuits.iter().filter(|c| c.contains(m)) {
                // m's latency contributes to the circuit through its
                // outgoing register-flow edge (if any on this circuit)
                let m_pos = c.nodes.iter().position(|&n| n == m).expect("member");
                let out_edge = &ddg.edges()[c.edges[m_pos]];
                let contributes = out_edge.kind == vliw_ir::DepKind::RegFlow;
                if !contributes {
                    continue;
                }
                let sum_others: i64 = c
                    .edges
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| k != m_pos)
                    .map(|(_, &e)| asg.edge_latency(&ddg.edges()[e], kernel) as i64)
                    .sum();
                let max_here = (target as i64) * (c.total_distance as i64) - sum_others;
                bound = bound.min(max_here.max(0) as u32);
            }
            if bound > asg.latency_of(m) {
                asg.set(m, bound);
            }
        }
    }

    asg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::{elementary_circuits, EnumLimits};
    use vliw_ir::{ArrayKind, DepKind, KernelBuilder, MemProfile};

    /// A single-recurrence kernel: ld -> add -> st -MF(d1)-> ld.
    fn rec_kernel(hit: f64, local: f64) -> LoopKernel {
        let mut b = KernelBuilder::new("rec");
        let a = b.array("a", 1024, ArrayKind::Global);
        let (ld, v) = b.load("ld", a, 0, 4, 4);
        let (_, w) = b.int_op("add", Opcode::Add, &[v.into()]);
        let (st, _) = b.store("st", a, 4, 4, 4, w);
        b.mem_dep(st, ld, DepKind::MemFlow, 1);
        b.set_profile(ld, MemProfile::with_local_ratio(hit, 0, local, 4));
        b.finish(100.0)
    }

    fn run(k: &LoopKernel, m: &MachineConfig) -> LatencyAssignment {
        let g = Ddg::build(k);
        let cs = elementary_circuits(&g, EnumLimits::default());
        assign_latencies(k, &g, m, &cs)
    }

    #[test]
    fn non_recurrence_loads_keep_remote_miss() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 1024, ArrayKind::Global);
        let (ld, v) = b.load("ld", a, 0, 4, 4);
        let _ = b.int_op("add", Opcode::Add, &[v.into()]);
        let k = b.finish(10.0);
        let m = MachineConfig::word_interleaved_4();
        let asg = run(&k, &m);
        assert_eq!(asg.latency_of(ld), 15);
        assert!(asg.steps.is_empty());
    }

    #[test]
    fn recurrence_load_reduced_to_target() {
        let k = rec_kernel(0.9, 0.9);
        let m = MachineConfig::word_interleaved_4();
        let asg = run(&k, &m);
        let ld = OpId::new(0);
        // target: circuit = lh(ld) + 1 (add) + 1 (MF st->ld) over distance 1 = 3
        assert_eq!(asg.target_mii, 3);
        // after reduction the circuit II must be exactly the target:
        // ld latency de-slacked to 3*1 - 2 = 1
        assert_eq!(asg.latency_of(ld), 1);
        assert!(!asg.steps.is_empty());
    }

    #[test]
    fn deslack_raises_latency_to_fill_gap() {
        // Two recurrences with different lengths: the shorter one gets
        // de-slacked up to the global target.
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 1024, ArrayKind::Global);
        // REC A: ld1 -> div -> st1 -MF-> ld1 (local-hit II = 1+6+1 = 8)
        let (ld1, v1) = b.load("ld1", a, 0, 4, 4);
        let (_, w1) = b.int_op("div", Opcode::Div, &[v1.into()]);
        let (st1, _) = b.store("st1", a, 256, 4, 4, w1);
        b.mem_dep(st1, ld1, DepKind::MemFlow, 1);
        // REC B: ld2 -> add -> st2 -MF-> ld2 (local-hit II = 1+1+1 = 3)
        let (ld2, v2) = b.load("ld2", a, 512, 4, 4);
        let (_, w2) = b.int_op("add", Opcode::Add, &[v2.into()]);
        let (st2, _) = b.store("st2", a, 768, 4, 4, w2);
        b.mem_dep(st2, ld2, DepKind::MemFlow, 1);
        b.set_profile(ld1, MemProfile::with_local_ratio(0.9, 0, 0.5, 4));
        b.set_profile(ld2, MemProfile::with_local_ratio(0.9, 0, 0.5, 4));
        let k = b.finish(100.0);
        let m = MachineConfig::word_interleaved_4();
        let asg = run(&k, &m);
        assert_eq!(asg.target_mii, 8);
        // REC A: 15 + 6 + 1 = 22 > 8 -> reduce ld1, then de-slack to 8-7=1
        assert_eq!(asg.latency_of(OpId::new(0)), 1);
        // REC B: 15 + 1 + 1 = 17 > 8 -> reduce ld2; de-slack raises it so
        // the recurrence II equals 8: lat = 8 - 2 = 6
        assert_eq!(asg.latency_of(OpId::new(3)), 6);
    }

    #[test]
    fn two_class_machines_use_hit_miss_only() {
        let k = rec_kernel(0.5, 1.0);
        let m = MachineConfig::unified_4(5);
        let asg = run(&k, &m);
        // init = miss latency (15); target = 5 + 1 + 1 = 7; de-slack: 7-2=5
        assert_eq!(asg.target_mii, 7);
        assert_eq!(asg.latency_of(OpId::new(0)), 5);
        for s in &asg.steps {
            for c in &s.candidates {
                assert!(matches!(c.to_class, AccessClass::LocalHit));
            }
        }
    }

    #[test]
    fn stall_estimate_matches_worked_example_n2() {
        // n2: hit rate 0.9, local ratio 0.5 -> stall(10)=0.25, stall(5)=0.75,
        // stall(1)=2.95 (paper's STEP 1 column for n2)
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 1024, ArrayKind::Global);
        let (ld, _) = b.load("ld", a, 0, 4, 4);
        b.set_profile(ld, MemProfile::with_local_ratio(0.9, 0, 0.5, 2));
        let k = b.finish(1.0);
        let mut m = MachineConfig::word_interleaved(2);
        m.cache.block_bytes = 32;
        let s10 = stall_estimate(&k, &m, ld, None, 10);
        let s5 = stall_estimate(&k, &m, ld, None, 5);
        let s1 = stall_estimate(&k, &m, ld, None, 1);
        let s15 = stall_estimate(&k, &m, ld, None, 15);
        assert!((s15 - 0.0).abs() < 1e-6);
        assert!((s10 - 0.25).abs() < 1e-5, "stall(10) = {s10}");
        assert!((s5 - 0.75).abs() < 1e-5, "stall(5) = {s5}");
        assert!((s1 - 2.95).abs() < 1e-4, "stall(1) = {s1}");
    }

    #[test]
    fn oversized_granularity_is_always_remote() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 1024, ArrayKind::Global);
        let (ld, _) = b.load("ld", a, 0, 8, 8); // double precision
        b.set_profile(ld, MemProfile::with_local_ratio(1.0, 0, 1.0, 4));
        let k = b.finish(1.0);
        let m = MachineConfig::word_interleaved_4();
        // perfect hit rate but f = 0: stall(1) = 1.0 * (5 - 1) = 4
        let s = stall_estimate(&k, &m, ld, None, 1);
        assert!((s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn benefit_prefers_high_hit_rate_loads() {
        // two loads in one recurrence; the hotter one is cheaper to lower
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 1024, ArrayKind::Global);
        let (ld1, v1) = b.load("ld1", a, 0, 4, 4);
        let (ld2, v2) = b.load("ld2", a, 4, 4, 4);
        let (_, w) = b.int_op("add", Opcode::Add, &[v1.into(), v2.into()]);
        let (st, _) = b.store("st", a, 512, 4, 4, w);
        b.mem_dep(st, ld1, DepKind::MemFlow, 1);
        b.mem_dep(st, ld2, DepKind::MemFlow, 1);
        b.raw_edge(ld1, ld2, DepKind::RegFlow, 0); // chain the loads serially
        b.set_profile(ld1, MemProfile::with_local_ratio(0.6, 0, 0.5, 4));
        b.set_profile(ld2, MemProfile::with_local_ratio(0.9, 0, 0.5, 4));
        let k = b.finish(100.0);
        let m = MachineConfig::word_interleaved_4();
        let asg = run(&k, &m);
        // first applied step must lower ld2 (hit rate 0.9 -> higher B)
        let first = &asg.steps[0];
        assert_eq!(first.candidates[first.chosen].op, ld2);
    }
}
