//! Elementary-circuit enumeration (recurrences of the dependence graph).
//!
//! The latency-assignment step (§4.3.1, step 2) works "one recurrence at a
//! time, starting with the recurrence that has the highest II value", so the
//! scheduler needs the actual circuits, not just the RecMII bound. This
//! module implements Johnson's algorithm extended to multigraphs (parallel
//! dependence edges are distinguished), with caps on count and length as a
//! safety valve for adversarial graphs.

use vliw_ir::{Ddg, OpId};

/// One elementary circuit of the dependence graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    /// Operations on the circuit, in traversal order.
    pub nodes: Vec<OpId>,
    /// Indices into [`Ddg::edges`] of the traversed edges;
    /// `edges[k]` goes from `nodes[k]` to `nodes[(k+1) % len]`.
    pub edges: Vec<usize>,
    /// Total iteration distance around the circuit (> 0 for any legal DDG).
    pub total_distance: u32,
}

impl Circuit {
    /// Whether `op` lies on this circuit.
    pub fn contains(&self, op: OpId) -> bool {
        self.nodes.contains(&op)
    }

    /// The initiation-interval bound imposed by this circuit under the
    /// given per-edge latency function: `ceil(Σ latency / Σ distance)`.
    pub fn ii_bound(&self, mut edge_latency: impl FnMut(usize) -> u32) -> u32 {
        let lat: u64 = self.edges.iter().map(|&e| edge_latency(e) as u64).sum();
        let dist = self.total_distance as u64;
        debug_assert!(
            dist > 0,
            "circuit with zero total distance is an illegal DDG"
        );
        lat.div_ceil(dist) as u32
    }
}

/// Limits for circuit enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EnumLimits {
    /// Maximum number of circuits returned.
    pub max_circuits: usize,
    /// Maximum circuit length in nodes.
    pub max_len: usize,
}

impl Default for EnumLimits {
    fn default() -> Self {
        EnumLimits {
            max_circuits: 50_000,
            max_len: 256,
        }
    }
}

/// Enumerates the elementary circuits of `ddg` (Johnson's algorithm over
/// the edge multigraph). Circuits whose total distance is zero would make
/// the loop unschedulable; they are reported by panicking in debug builds
/// and skipped in release builds.
pub fn elementary_circuits(ddg: &Ddg<'_>, limits: EnumLimits) -> Vec<Circuit> {
    let n = ddg.n_ops();
    let mut result = Vec::new();
    // adjacency as (edge index, target) pairs
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (i, e) in ddg.edges().iter().enumerate() {
        adj[e.from.index()].push((i, e.to.index()));
    }

    // Johnson's algorithm: for each start node s (ascending), find circuits
    // whose minimum node is s, restricted to nodes >= s.
    let mut blocked = vec![false; n];
    let mut block_list: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut stack_nodes: Vec<usize> = Vec::new();
    let mut stack_edges: Vec<usize> = Vec::new();

    fn unblock(v: usize, blocked: &mut [bool], block_list: &mut [Vec<usize>]) {
        blocked[v] = false;
        let pending = std::mem::take(&mut block_list[v]);
        for w in pending {
            if blocked[w] {
                unblock(w, blocked, block_list);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn circuit(
        v: usize,
        s: usize,
        adj: &[Vec<(usize, usize)>],
        ddg: &Ddg<'_>,
        blocked: &mut Vec<bool>,
        block_list: &mut Vec<Vec<usize>>,
        stack_nodes: &mut Vec<usize>,
        stack_edges: &mut Vec<usize>,
        result: &mut Vec<Circuit>,
        limits: &EnumLimits,
    ) -> bool {
        if result.len() >= limits.max_circuits || stack_nodes.len() >= limits.max_len {
            return true; // pretend we found something so callers unblock
        }
        let mut found = false;
        stack_nodes.push(v);
        blocked[v] = true;
        for &(ei, w) in &adj[v] {
            if w < s {
                continue;
            }
            if w == s {
                // closed a circuit
                let mut edges = stack_edges.clone();
                edges.push(ei);
                let nodes: Vec<OpId> = stack_nodes.iter().map(|&i| OpId::new(i)).collect();
                let total_distance: u32 = edges.iter().map(|&e| ddg.edges()[e].distance).sum();
                if total_distance == 0 {
                    debug_assert!(
                        false,
                        "zero-distance circuit through {nodes:?}: illegal dependence graph"
                    );
                } else {
                    result.push(Circuit {
                        nodes,
                        edges,
                        total_distance,
                    });
                }
                found = true;
                if result.len() >= limits.max_circuits {
                    break;
                }
            } else if !blocked[w] {
                stack_edges.push(ei);
                if circuit(
                    w,
                    s,
                    adj,
                    ddg,
                    blocked,
                    block_list,
                    stack_nodes,
                    stack_edges,
                    result,
                    limits,
                ) {
                    found = true;
                }
                stack_edges.pop();
            }
        }
        if found {
            unblock(v, blocked, block_list);
        } else {
            for &(_, w) in &adj[v] {
                if w >= s && !block_list[w].contains(&v) {
                    block_list[w].push(v);
                }
            }
        }
        stack_nodes.pop();
        found
    }

    for s in 0..n {
        if result.len() >= limits.max_circuits {
            break;
        }
        for b in blocked.iter_mut() {
            *b = false;
        }
        for l in block_list.iter_mut() {
            l.clear();
        }
        circuit(
            s,
            s,
            &adj,
            ddg,
            &mut blocked,
            &mut block_list,
            &mut stack_nodes,
            &mut stack_edges,
            &mut result,
            &limits,
        );
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{DepKind, KernelBuilder, Opcode};

    #[test]
    fn self_loop_is_one_circuit() {
        let mut b = KernelBuilder::new("t");
        let _ = b.int_op_carried("acc", Opcode::Add, &[], 1);
        let k = b.finish(1.0);
        let g = Ddg::build(&k);
        let cs = elementary_circuits(&g, EnumLimits::default());
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].nodes.len(), 1);
        assert_eq!(cs[0].total_distance, 1);
    }

    #[test]
    fn two_node_cycle() {
        let mut b = KernelBuilder::new("t");
        let (a, ra) = b.int_op("a", Opcode::Add, &[]);
        let (bb, rb) = b.int_op("b", Opcode::Sub, &[ra.into()]);
        // close the cycle: a reads b's previous value
        b.raw_edge(bb, a, DepKind::RegFlow, 1);
        let _ = rb;
        let k = b.finish(1.0);
        let g = Ddg::build(&k);
        let cs = elementary_circuits(&g, EnumLimits::default());
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].nodes.len(), 2);
        assert_eq!(cs[0].total_distance, 1);
    }

    #[test]
    fn parallel_edges_yield_distinct_circuits() {
        let mut b = KernelBuilder::new("t");
        let (a, ra) = b.int_op("a", Opcode::Add, &[]);
        let (bb, _) = b.int_op("b", Opcode::Sub, &[ra.into()]);
        b.raw_edge(bb, a, DepKind::RegFlow, 1);
        b.raw_edge(bb, a, DepKind::RegAnti, 2);
        let k = b.finish(1.0);
        let g = Ddg::build(&k);
        let cs = elementary_circuits(&g, EnumLimits::default());
        // two back edges -> two circuits through {a, b}
        assert_eq!(cs.len(), 2);
        let dists: Vec<u32> = cs.iter().map(|c| c.total_distance).collect();
        assert!(dists.contains(&1) && dists.contains(&2));
    }

    #[test]
    fn dag_has_no_circuits() {
        let mut b = KernelBuilder::new("t");
        let (_, r1) = b.int_op("a", Opcode::Add, &[]);
        let (_, r2) = b.int_op("b", Opcode::Sub, &[r1.into()]);
        let _ = b.int_op("c", Opcode::Mul, &[r1.into(), r2.into()]);
        let k = b.finish(1.0);
        let g = Ddg::build(&k);
        assert!(elementary_circuits(&g, EnumLimits::default()).is_empty());
    }

    #[test]
    fn ii_bound_rounds_up() {
        let mut b = KernelBuilder::new("t");
        let (a, ra) = b.int_op("a", Opcode::Add, &[]);
        let (bb, _) = b.int_op("b", Opcode::Sub, &[ra.into()]);
        b.raw_edge(bb, a, DepKind::RegFlow, 2);
        let k = b.finish(1.0);
        let g = Ddg::build(&k);
        let cs = elementary_circuits(&g, EnumLimits::default());
        // latencies 3 per edge, total 6 over distance 2 -> II 3; 7 over 2 -> 4
        assert_eq!(cs[0].ii_bound(|_| 3), 3);
        let mut i = 0;
        assert_eq!(
            cs[0].ii_bound(|_| {
                i += 1;
                if i == 1 {
                    3
                } else {
                    4
                }
            }),
            4
        );
    }

    #[test]
    fn enumeration_respects_caps() {
        // complete-ish graph with back edges: many circuits
        let mut b = KernelBuilder::new("t");
        let mut ids = Vec::new();
        for i in 0..8 {
            let (id, _) = b.int_op(format!("n{i}"), Opcode::Add, &[]);
            ids.push(id);
        }
        for &u in &ids {
            for &v in &ids {
                if u != v {
                    b.raw_edge(u, v, DepKind::RegFlow, 1);
                }
            }
        }
        let k = b.finish(1.0);
        let g = Ddg::build(&k);
        let cs = elementary_circuits(
            &g,
            EnumLimits {
                max_circuits: 100,
                max_len: 8,
            },
        );
        assert!(cs.len() <= 100);
        assert!(!cs.is_empty());
    }

    #[test]
    fn figure3_has_two_recurrences() {
        // the shape of the paper's Figure 3: two disjoint recurrences
        let mut b = KernelBuilder::new("fig3");
        let (n1, r1) = b.int_op("n1", Opcode::Add, &[]);
        let (_n2, r2) = b.int_op("n2", Opcode::Add, &[r1.into()]);
        let (_n3, r3) = b.int_op("n3", Opcode::Add, &[r2.into()]);
        let (_n5, r5) = b.int_op("n5", Opcode::Sub, &[r3.into()]);
        let (n4, _) = b.int_op("n4", Opcode::Add, &[r5.into()]);
        b.raw_edge(n4, n1, DepKind::RegAnti, 1);
        let (n6, r6) = b.int_op("n6", Opcode::Add, &[]);
        let (_n7, r7) = b.int_op("n7", Opcode::Div, &[r6.into()]);
        let (n8, _) = b.int_op("n8", Opcode::Add, &[r7.into()]);
        b.raw_edge(n8, n6, DepKind::RegFlow, 1);
        let k = b.finish(1.0);
        let g = Ddg::build(&k);
        let cs = elementary_circuits(&g, EnumLimits::default());
        assert_eq!(cs.len(), 2);
        let sizes: Vec<usize> = cs.iter().map(|c| c.nodes.len()).collect();
        assert!(sizes.contains(&5) && sizes.contains(&3));
    }
}
