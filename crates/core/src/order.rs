//! Swing-Modulo-Scheduling node ordering (§4.3.1 step 3, after \[13\]).
//!
//! The ordering gives priority to recurrences according to the constraints
//! they impose on the II (most constraining first) and guarantees that most
//! nodes — all except one per recurrence — have only predecessors or only
//! successors placed before them in the ordered list, which keeps register
//! pressure low and scheduling windows tight.
//!
//! Implementation outline (faithful to the published algorithm, in the
//! style of production SMS implementations):
//!
//! 1. Group circuits that share nodes into *recurrence sets*; sort sets by
//!    descending recurrence II, then size.
//! 2. Before ordering each set, pull in the nodes lying on intra-iteration
//!    paths between already-ordered nodes and the set.
//! 3. Remaining nodes form per-weakly-connected-component sets at the end.
//! 4. Within the accumulated work list, alternate top-down sweeps (pick
//!    highest *height* first) and bottom-up sweeps (pick highest *depth*
//!    first), seeding the direction from how the set connects to the nodes
//!    already ordered.

use std::collections::HashSet;

use vliw_ir::{Ddg, OpId};

use crate::circuits::Circuit;
use crate::mii;

/// Depth/height over the intra-iteration (distance-0) subgraph.
#[derive(Debug, Clone)]
struct DagInfo {
    depth: Vec<i64>,
    height: Vec<i64>,
    preds0: Vec<Vec<usize>>,
    succs0: Vec<Vec<usize>>,
}

fn dag_info(ddg: &Ddg<'_>, lat_of: &dyn Fn(OpId) -> u32) -> DagInfo {
    let n = ddg.n_ops();
    let mut preds0 = vec![Vec::new(); n];
    let mut succs0 = vec![Vec::new(); n];
    // First distance-0 edge (in edge-list order) per (from, to) pair: the
    // depth/height recurrences below charge every duplicate adjacency entry
    // the latency of that *first* edge, which is what the old linear
    // `find` over the edge list computed — but in O(E) total instead of
    // O(E) per adjacency entry.
    let mut first_d0: std::collections::HashMap<(usize, usize), usize> = Default::default();
    for (i, e) in ddg.edges().iter().enumerate() {
        // distance-0 edges always point forward in construction order (the
        // builder creates defs before uses), so this subgraph is acyclic;
        // guard against hand-built graphs violating it.
        if e.distance == 0 && e.from.index() < e.to.index() {
            preds0[e.to.index()].push(e.from.index());
            succs0[e.from.index()].push(e.to.index());
            first_d0.entry((e.from.index(), e.to.index())).or_insert(i);
        }
    }
    let lat_d0 = |from: usize, to: usize| -> i64 {
        let i = first_d0[&(from, to)];
        mii::edge_latency(&ddg.edges()[i], lat_of) as i64
    };
    let mut depth = vec![0i64; n];
    for v in 0..n {
        for &p in &preds0[v] {
            let l = lat_d0(p, v);
            depth[v] = depth[v].max(depth[p] + l.max(1));
        }
    }
    let mut height = vec![0i64; n];
    for v in (0..n).rev() {
        for &s in &succs0[v] {
            let l = lat_d0(v, s);
            height[v] = height[v].max(height[s] + l.max(1));
        }
    }
    DagInfo {
        depth,
        height,
        preds0,
        succs0,
    }
}

/// Transitive closure helper over the distance-0 subgraph.
fn reachable(from: &HashSet<usize>, succs: &[Vec<usize>]) -> HashSet<usize> {
    let mut seen = from.clone();
    let mut stack: Vec<usize> = from.iter().copied().collect();
    while let Some(v) = stack.pop() {
        for &w in &succs[v] {
            if seen.insert(w) {
                stack.push(w);
            }
        }
    }
    seen
}

/// Computes the SMS node order for a kernel.
///
/// `circuits` are the kernel's recurrences and `lat_of` the (assigned)
/// per-op latencies; both feed the recurrence priorities.
pub fn sms_order(ddg: &Ddg<'_>, circuits: &[Circuit], lat_of: impl Fn(OpId) -> u32) -> Vec<OpId> {
    let n = ddg.n_ops();
    if n == 0 {
        return Vec::new();
    }
    let lat_ref: &dyn Fn(OpId) -> u32 = &lat_of;
    let info = dag_info(ddg, lat_ref);

    // --- step 1: recurrence sets ------------------------------------------------
    // union circuits sharing nodes
    let mut parent: Vec<usize> = (0..circuits.len()).collect();
    fn find(p: &mut Vec<usize>, x: usize) -> usize {
        if p[x] != x {
            let r = find(p, p[x]);
            p[x] = r;
        }
        p[x]
    }
    // Union via per-node incidence (first circuit seen per node), linear in
    // Σ|circuit| instead of quadratic pairwise overlap tests. The resulting
    // partition — the transitive closure of "shares a node" — is identical,
    // and everything downstream is sorted by (priority, size, min node), so
    // the different union-find tree shapes cannot change the order.
    let mut node_first: Vec<usize> = vec![usize::MAX; n];
    for (i, c) in circuits.iter().enumerate() {
        for o in &c.nodes {
            let v = o.index();
            if node_first[v] == usize::MAX {
                node_first[v] = i;
            } else {
                let (a, b) = (find(&mut parent, node_first[v]), find(&mut parent, i));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let mut set_nodes: std::collections::HashMap<usize, HashSet<usize>> = Default::default();
    let mut set_prio: std::collections::HashMap<usize, u32> = Default::default();
    for (i, c) in circuits.iter().enumerate() {
        let root = find(&mut parent, i);
        let entry = set_nodes.entry(root).or_default();
        entry.extend(c.nodes.iter().map(|o| o.index()));
        let ii = c.ii_bound(|e| mii::edge_latency(&ddg.edges()[e], &lat_of));
        let p = set_prio.entry(root).or_insert(0);
        *p = (*p).max(ii);
    }
    let mut rec_sets: Vec<(u32, HashSet<usize>)> = set_nodes
        .into_iter()
        .map(|(root, nodes)| (set_prio[&root], nodes))
        .collect();
    rec_sets.sort_by(|a, b| {
        b.0.cmp(&a.0)
            .then(b.1.len().cmp(&a.1.len()))
            .then(a.1.iter().min().cmp(&b.1.iter().min()))
    });

    // --- steps 2-3: build the processing sets ------------------------------------
    let mut taken: HashSet<usize> = HashSet::new();
    let mut process_sets: Vec<HashSet<usize>> = Vec::new();
    for (_, set) in &rec_sets {
        let mut s: HashSet<usize> = set.difference(&taken).copied().collect();
        if s.is_empty() {
            continue;
        }
        if !taken.is_empty() {
            // nodes on intra-iteration paths between ordered nodes and s
            let down_from_taken = reachable(&taken, &info.succs0);
            let up_to_s = {
                let mut anc = s.clone();
                let mut stack: Vec<usize> = s.iter().copied().collect();
                while let Some(v) = stack.pop() {
                    for &p in &info.preds0[v] {
                        if anc.insert(p) {
                            stack.push(p);
                        }
                    }
                }
                anc
            };
            for v in down_from_taken.intersection(&up_to_s) {
                if !taken.contains(v) {
                    s.insert(*v);
                }
            }
            // and the symmetric direction (paths from s down to taken)
            let down_from_s = reachable(&s, &info.succs0);
            let up_to_taken = {
                let mut anc = taken.clone();
                let mut stack: Vec<usize> = taken.iter().copied().collect();
                while let Some(v) = stack.pop() {
                    for &p in &info.preds0[v] {
                        if anc.insert(p) {
                            stack.push(p);
                        }
                    }
                }
                anc
            };
            for v in down_from_s.intersection(&up_to_taken) {
                if !taken.contains(v) {
                    s.insert(*v);
                }
            }
        }
        taken.extend(s.iter().copied());
        process_sets.push(s);
    }
    // remaining nodes: weakly-connected components over all edges
    let mut remaining: Vec<usize> = (0..n).filter(|v| !taken.contains(v)).collect();
    if !remaining.is_empty() {
        let mut comp_parent: Vec<usize> = (0..n).collect();
        for e in ddg.edges() {
            let (a, b) = (
                find2(&mut comp_parent, e.from.index()),
                find2(&mut comp_parent, e.to.index()),
            );
            if a != b {
                comp_parent[a] = b;
            }
        }
        fn find2(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find2(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        remaining.sort_unstable();
        let mut comps: std::collections::HashMap<usize, HashSet<usize>> = Default::default();
        for v in remaining {
            let r = find2(&mut comp_parent, v);
            comps.entry(r).or_default().insert(v);
        }
        let mut comps: Vec<HashSet<usize>> = comps.into_values().collect();
        comps.sort_by_key(|c| *c.iter().min().unwrap());
        process_sets.extend(comps);
    }

    // --- step 4: the swing ordering ----------------------------------------------
    #[derive(PartialEq, Clone, Copy)]
    enum Dir {
        TopDown,
        BottomUp,
    }
    let mut order: Vec<usize> = Vec::new();
    let mut ordered: HashSet<usize> = HashSet::new();
    for s in &process_sets {
        // seed: how does this set connect to what is already ordered?
        let succ_of_ordered: HashSet<usize> = order
            .iter()
            .flat_map(|&v| info.succs0[v].iter().copied())
            .filter(|v| s.contains(v) && !ordered.contains(v))
            .collect();
        let pred_of_ordered: HashSet<usize> = order
            .iter()
            .flat_map(|&v| info.preds0[v].iter().copied())
            .filter(|v| s.contains(v) && !ordered.contains(v))
            .collect();
        // Seed priority follows SMS: prefer sweeping bottom-up from the
        // set's nodes that feed already-ordered nodes. This keeps each
        // recurrence circuit contiguous so that its closing node's window
        // is bounded by the circuit (II >= RecMII suffices), instead of by
        // unrelated far-apart anchors.
        let (mut r, mut dir) = if !pred_of_ordered.is_empty() {
            (pred_of_ordered, Dir::BottomUp)
        } else if !succ_of_ordered.is_empty() {
            (succ_of_ordered, Dir::TopDown)
        } else {
            // start bottom-up from the node with the greatest ASAP (the tail
            // of the set's longest chain), as SMS does; deterministic
            // tie-break by height then id
            let seed = s
                .iter()
                .copied()
                .filter(|v| !ordered.contains(v))
                .max_by(|&a, &b| {
                    info.depth[a]
                        .cmp(&info.depth[b])
                        .then(info.height[b].cmp(&info.height[a]))
                        .then(b.cmp(&a))
                });
            match seed {
                Some(v) => ([v].into_iter().collect(), Dir::BottomUp),
                None => continue,
            }
        };
        loop {
            while !r.is_empty() {
                // pick by height (top-down) or depth (bottom-up)
                let &v = r
                    .iter()
                    .max_by(|&&a, &&b| {
                        let (ka, kb) = match dir {
                            Dir::TopDown => (info.height[a], info.height[b]),
                            Dir::BottomUp => (info.depth[a], info.depth[b]),
                        };
                        ka.cmp(&kb)
                            .then(match dir {
                                Dir::TopDown => info.depth[b].cmp(&info.depth[a]),
                                Dir::BottomUp => info.height[b].cmp(&info.height[a]),
                            })
                            .then(b.cmp(&a))
                    })
                    .expect("nonempty");
                r.remove(&v);
                if ordered.contains(&v) {
                    continue;
                }
                order.push(v);
                ordered.insert(v);
                let next = match dir {
                    Dir::TopDown => &info.succs0[v],
                    Dir::BottomUp => &info.preds0[v],
                };
                for &w in next {
                    if s.contains(&w) && !ordered.contains(&w) {
                        r.insert(w);
                    }
                }
            }
            if s.iter().all(|v| ordered.contains(v)) {
                break;
            }
            // swing: reverse direction, restart from the frontier
            dir = match dir {
                Dir::TopDown => Dir::BottomUp,
                Dir::BottomUp => Dir::TopDown,
            };
            let frontier: HashSet<usize> = order
                .iter()
                .flat_map(|&v| {
                    match dir {
                        Dir::TopDown => info.succs0[v].iter(),
                        Dir::BottomUp => info.preds0[v].iter(),
                    }
                    .copied()
                })
                .filter(|v| s.contains(v) && !ordered.contains(v))
                .collect();
            if frontier.is_empty() {
                // disconnected leftover inside the set: reseed
                let seed = s
                    .iter()
                    .copied()
                    .filter(|v| !ordered.contains(v))
                    .max_by(|&a, &b| info.height[a].cmp(&info.height[b]).then(b.cmp(&a)));
                match seed {
                    Some(v) => {
                        r = [v].into_iter().collect();
                    }
                    None => break,
                }
            } else {
                r = frontier;
            }
        }
    }
    debug_assert_eq!(order.len(), n, "every op must be ordered");
    order.into_iter().map(OpId::new).collect()
}

/// Checks the SMS invariant the paper relies on: every node except (at
/// most) one per recurrence has, at the moment of its placement in the
/// order, only predecessors or only successors among the earlier nodes
/// (intra-iteration edges). Returns the number of violating nodes.
pub fn order_violations(ddg: &Ddg<'_>, order: &[OpId]) -> usize {
    let mut placed = HashSet::new();
    let mut bad = 0;
    for &v in order {
        let preds: HashSet<usize> = ddg
            .pred_edges(v)
            .filter(|e| e.distance == 0)
            .map(|e| e.from.index())
            .collect();
        let succs: HashSet<usize> = ddg
            .succ_edges(v)
            .filter(|e| e.distance == 0)
            .map(|e| e.to.index())
            .collect();
        let has_p = preds.iter().any(|p| placed.contains(p));
        let has_s = succs.iter().any(|s| placed.contains(s));
        if has_p && has_s {
            bad += 1;
        }
        placed.insert(v.index());
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::{elementary_circuits, EnumLimits};
    use vliw_ir::{DepKind, KernelBuilder, Opcode};

    fn order_of(k: &vliw_ir::LoopKernel) -> (Vec<OpId>, Ddg<'_>) {
        let g = Ddg::build(k);
        let cs = elementary_circuits(&g, EnumLimits::default());
        let o = sms_order(&g, &cs, |_| 1);
        (o, g)
    }

    #[test]
    fn all_ops_ordered_exactly_once() {
        let mut b = KernelBuilder::new("t");
        let (_, r1) = b.int_op("a", Opcode::Add, &[]);
        let (_, r2) = b.int_op("b", Opcode::Sub, &[r1.into()]);
        let _ = b.int_op("c", Opcode::Mul, &[r1.into(), r2.into()]);
        let _ = b.int_op_carried("acc", Opcode::Add, &[r2.into()], 1);
        let k = b.finish(1.0);
        let (o, _) = order_of(&k);
        assert_eq!(o.len(), 4);
        let set: HashSet<_> = o.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn recurrence_nodes_come_first() {
        let mut b = KernelBuilder::new("t");
        // free chain
        let (f1, rf) = b.int_op("f1", Opcode::Add, &[]);
        let (f2, _) = b.int_op("f2", Opcode::Sub, &[rf.into()]);
        // a recurrence with higher priority
        let (r1, rr) = b.int_op("r1", Opcode::Div, &[]);
        let (r2, _) = b.int_op("r2", Opcode::Add, &[rr.into()]);
        b.raw_edge(r2, r1, DepKind::RegFlow, 1);
        let k = b.finish(1.0);
        let (o, _) = order_of(&k);
        let pos = |id: vliw_ir::OpId| o.iter().position(|&x| x == id).unwrap();
        assert!(pos(r1) < pos(f1));
        assert!(pos(r2) < pos(f2));
    }

    #[test]
    fn higher_ii_recurrence_ordered_first() {
        let mut b = KernelBuilder::new("t");
        // REC A: short (II = 2 at lat 1)
        let (a1, ra) = b.int_op("a1", Opcode::Add, &[]);
        let (a2, _) = b.int_op("a2", Opcode::Add, &[ra.into()]);
        b.raw_edge(a2, a1, DepKind::RegFlow, 1);
        // REC B: long (II = 4 at lat 1)
        let (b1, rb1) = b.int_op("b1", Opcode::Add, &[]);
        let (b2, rb2) = b.int_op("b2", Opcode::Add, &[rb1.into()]);
        let (b3, rb3) = b.int_op("b3", Opcode::Add, &[rb2.into()]);
        let (b4, _) = b.int_op("b4", Opcode::Add, &[rb3.into()]);
        b.raw_edge(b4, b1, DepKind::RegFlow, 1);
        let k = b.finish(1.0);
        let (o, _) = order_of(&k);
        let pos = |id: vliw_ir::OpId| o.iter().position(|&x| x == id).unwrap();
        for x in [b1, b2, b3, b4] {
            for y in [a1, a2] {
                assert!(pos(x) < pos(y), "REC B (higher II) must be ordered first");
            }
        }
    }

    #[test]
    fn sms_invariant_holds_on_diamond() {
        // diamond: a -> b, a -> c, b -> d, c -> d: only the closing node may
        // see both sides
        let mut b = KernelBuilder::new("t");
        let (_, ra) = b.int_op("a", Opcode::Add, &[]);
        let (_, rb) = b.int_op("b", Opcode::Sub, &[ra.into()]);
        let (_, rc) = b.int_op("c", Opcode::Mul, &[ra.into()]);
        let _ = b.int_op("d", Opcode::Add, &[rb.into(), rc.into()]);
        let k = b.finish(1.0);
        let (o, g) = order_of(&k);
        assert!(order_violations(&g, &o) <= 1);
    }

    #[test]
    fn chain_is_ordered_monotonically() {
        let mut b = KernelBuilder::new("t");
        let (n1, r1) = b.int_op("n1", Opcode::Add, &[]);
        let (n2, r2) = b.int_op("n2", Opcode::Add, &[r1.into()]);
        let (n3, r3) = b.int_op("n3", Opcode::Add, &[r2.into()]);
        let (n4, _) = b.int_op("n4", Opcode::Add, &[r3.into()]);
        let k = b.finish(1.0);
        let (o, g) = order_of(&k);
        // a pure chain: either all top-down or all bottom-up, and the SMS
        // invariant holds with zero violations
        assert_eq!(order_violations(&g, &o), 0);
        let pos = |id: vliw_ir::OpId| o.iter().position(|&x| x == id).unwrap();
        let ps = [pos(n1), pos(n2), pos(n3), pos(n4)];
        let increasing = ps.windows(2).all(|w| w[0] < w[1]);
        let decreasing = ps.windows(2).all(|w| w[0] > w[1]);
        assert!(increasing || decreasing);
    }

    #[test]
    fn empty_kernel_orders_nothing() {
        let b = KernelBuilder::new("t");
        let k = b.finish(1.0);
        let g = Ddg::build(&k);
        assert!(sms_order(&g, &[], |_| 1).is_empty());
    }
}
