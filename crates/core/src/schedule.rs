//! Scheduler output: placed operations, inter-cluster copies, legality.

use std::collections::HashMap;
use std::fmt;

use vliw_ir::{DepKind, LoopKernel, OpId};
use vliw_machine::MachineConfig;

use crate::latency::LatencyAssignment;

/// Placement of one operation in the modulo schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledOp {
    /// Cluster the operation executes in.
    pub cluster: usize,
    /// Schedule cycle (0-based; the kernel repeats every
    /// [`Schedule::ii`] cycles, so the stage is `cycle / ii`).
    pub cycle: u32,
    /// The latency the scheduler assumed for this operation. For loads this
    /// is the assigned class latency (possibly de-slacked); the simulator
    /// stalls when the actual latency exceeds it.
    pub assumed_latency: u32,
}

/// An inter-cluster register copy inserted by the scheduler.
///
/// The copy broadcasts `producer`'s result from its cluster to `to`,
/// occupying register bus `bus` for the machine's transfer time starting at
/// `cycle` (same modulo-schedule space as operations; the copy belongs to
/// the *producer's* iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledCopy {
    /// The operation whose result is copied.
    pub producer: OpId,
    /// Source cluster (the producer's cluster).
    pub from: usize,
    /// Destination cluster.
    pub to: usize,
    /// Cycle the bus transfer starts.
    pub cycle: u32,
    /// Register bus used.
    pub bus: usize,
}

/// A complete modulo schedule for one loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Initiation interval.
    pub ii: u32,
    /// Per-operation placements, indexed by [`OpId`].
    pub ops: Vec<ScheduledOp>,
    /// Inter-cluster copies.
    pub copies: Vec<ScheduledCopy>,
    /// The lower bound `max(ResMII, RecMII)` the scheduler started from.
    pub mii: u32,
    /// Resource-constrained component of the MII.
    pub res_mii: u32,
    /// Recurrence-constrained component of the MII (at local-hit latency).
    pub rec_mii: u32,
    /// The latency assignment used.
    pub latencies: LatencyAssignment,
}

impl Schedule {
    /// The placement of `op`.
    pub fn op(&self, op: OpId) -> ScheduledOp {
        self.ops[op.index()]
    }

    /// Number of overlapped iterations (stage count).
    pub fn stage_count(&self) -> u32 {
        let max = self.ops.iter().map(|s| s.cycle).max().unwrap_or(0);
        max / self.ii + 1
    }

    /// Number of register-to-register communication operations added.
    pub fn n_comms(&self) -> usize {
        self.copies.len()
    }

    /// The paper's workload-balance metric for this schedule:
    /// `WB = insts in most-loaded cluster / total insts` (copies excluded,
    /// matching the paper's instruction counts), ranging from
    /// `1/n_clusters` (perfect) to 1.0 (all in one cluster).
    pub fn workload_balance(&self, n_clusters: usize) -> f64 {
        if self.ops.is_empty() {
            return 1.0 / n_clusters as f64;
        }
        let mut counts = vec![0usize; n_clusters];
        for s in &self.ops {
            counts[s.cluster] += 1;
        }
        let max = counts.iter().copied().max().unwrap_or(0);
        max as f64 / self.ops.len() as f64
    }

    /// The copy feeding `consumer_cluster` with `producer`'s value, if any.
    pub fn copy_for(&self, producer: OpId, consumer_cluster: usize) -> Option<&ScheduledCopy> {
        self.copies
            .iter()
            .find(|c| c.producer == producer && c.to == consumer_cluster)
    }

    /// Estimated execution time of `avg_trip` iterations:
    /// `(avg_trip + SC − 1) × II` — the paper's `Texec` formula used by
    /// selective unrolling.
    pub fn texec(&self, avg_trip: f64) -> f64 {
        (avg_trip + self.stage_count() as f64 - 1.0) * self.ii as f64
    }

    /// Checks the schedule against the kernel and machine, returning every
    /// violated constraint. An empty vector means the schedule is legal:
    ///
    /// * every dependence satisfied (`t(to) ≥ t(from) + lat − II·dist`,
    ///   with copy latency added for cross-cluster register flows);
    /// * no functional unit oversubscribed in any modulo slot;
    /// * no register bus oversubscribed;
    /// * copies start no earlier than their producer's completion.
    pub fn verify(&self, kernel: &LoopKernel, machine: &MachineConfig) -> Vec<String> {
        let mut errs = Vec::new();
        let ii = self.ii as i64;
        let n = machine.clusters.n_clusters;

        // dependence constraints
        for e in &kernel.edges {
            let from = self.op(e.from);
            let to = self.op(e.to);
            let base_lat = self.latencies.edge_latency(e, kernel) as i64;
            let mut lat = base_lat;
            if e.kind == DepKind::RegFlow && from.cluster != to.cluster {
                // value travels through a copy
                match self.copy_for(e.from, to.cluster) {
                    Some(c) => {
                        let copy_ready = c.cycle as i64 + machine.buses.transfer_cycles as i64;
                        if (c.cycle as i64) < from.cycle as i64 + base_lat {
                            errs.push(format!(
                                "copy of {} to cluster {} starts before producer completes",
                                e.from, to.cluster
                            ));
                        }
                        if to.cycle as i64 + ii * (e.distance as i64) < copy_ready {
                            errs.push(format!(
                                "consumer {} reads copy of {} before it arrives",
                                e.to, e.from
                            ));
                        }
                        continue;
                    }
                    None => {
                        errs.push(format!(
                            "cross-cluster flow {} -> {} has no copy",
                            e.from, e.to
                        ));
                        lat = base_lat; // still check the raw constraint below
                    }
                }
            }
            if to.cycle as i64 + ii * (e.distance as i64) < from.cycle as i64 + lat {
                errs.push(format!(
                    "dependence violated: {} (cycle {}) -> {} (cycle {}) lat {lat} dist {}",
                    e.from, from.cycle, e.to, to.cycle, e.distance
                ));
            }
        }

        // FU slots
        let mut fu_use: HashMap<(usize, vliw_ir::FuKind, u32), usize> = HashMap::new();
        for (i, s) in self.ops.iter().enumerate() {
            let kind = kernel.ops[i].fu_kind();
            if s.cluster >= n {
                errs.push(format!(
                    "op n{i} scheduled in nonexistent cluster {}",
                    s.cluster
                ));
                continue;
            }
            *fu_use
                .entry((s.cluster, kind, s.cycle % self.ii))
                .or_default() += 1;
        }
        for ((cluster, kind, slot), used) in fu_use {
            let cap = machine.clusters.fu_count(kind);
            if used > cap {
                errs.push(format!(
                    "{used} {kind} ops in cluster {cluster} slot {slot} (capacity {cap})"
                ));
            }
        }

        // register buses: each copy occupies `transfer_cycles` consecutive
        // modulo slots on its bus
        let mut bus_use: HashMap<(usize, u32), usize> = HashMap::new();
        for c in &self.copies {
            if c.bus >= machine.buses.reg_buses {
                errs.push(format!(
                    "copy of {} uses nonexistent bus {}",
                    c.producer, c.bus
                ));
                continue;
            }
            for k in 0..machine.buses.transfer_cycles {
                *bus_use.entry((c.bus, (c.cycle + k) % self.ii)).or_default() += 1;
            }
        }
        for ((bus, slot), used) in bus_use {
            if used > 1 {
                errs.push(format!(
                    "register bus {bus} oversubscribed in slot {slot} ({used} transfers)"
                ));
            }
        }

        errs
    }

    /// Serializes the schedule into the repo's integers-only text
    /// discipline (same rules as the profile store: whitespace-separated
    /// integers under named tokens, no floats, no Debug formatting), for
    /// persistence in the schedule cache.
    ///
    /// The latency-assignment reduction log (`latencies.steps`) is not
    /// serialized — see [`LatencyAssignment::from_raw`]. Two schedules are
    /// behaviourally identical iff their compact texts are byte-identical,
    /// which is the equality the cache's determinism contracts check.
    pub fn to_compact_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "sched ii {} mii {} res {} rec {} tmii {} nops {} ncopies {}",
            self.ii,
            self.mii,
            self.res_mii,
            self.rec_mii,
            self.latencies.target_mii,
            self.ops.len(),
            self.copies.len()
        );
        s.push_str("ops");
        for op in &self.ops {
            let _ = write!(s, " {} {} {}", op.cluster, op.cycle, op.assumed_latency);
        }
        s.push('\n');
        s.push_str("lats");
        for l in self.latencies.raw() {
            let _ = write!(s, " {l}");
        }
        s.push('\n');
        s.push_str("copies");
        for c in &self.copies {
            let _ = write!(
                s,
                " {} {} {} {} {}",
                c.producer.index(),
                c.from,
                c.to,
                c.cycle,
                c.bus
            );
        }
        s.push('\n');
        s
    }

    /// Parses a schedule serialized by [`Schedule::to_compact_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token or framing
    /// violation; never panics on corrupt input.
    pub fn from_compact_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty schedule text")?;
        let h: Vec<&str> = header.split_whitespace().collect();
        let expect = |idx: usize, tok: &str| -> Result<(), String> {
            if h.get(idx) != Some(&tok) {
                return Err(format!("schedule header: expected `{tok}` at {idx}"));
            }
            Ok(())
        };
        expect(0, "sched")?;
        expect(1, "ii")?;
        expect(3, "mii")?;
        expect(5, "res")?;
        expect(7, "rec")?;
        expect(9, "tmii")?;
        expect(11, "nops")?;
        expect(13, "ncopies")?;
        let int = |idx: usize| -> Result<u64, String> {
            h.get(idx)
                .ok_or_else(|| format!("schedule header: missing field {idx}"))?
                .parse::<u64>()
                .map_err(|e| format!("schedule header field {idx}: {e}"))
        };
        let ii = int(2)? as u32;
        let mii = int(4)? as u32;
        let res_mii = int(6)? as u32;
        let rec_mii = int(8)? as u32;
        let target_mii = int(10)? as u32;
        let nops = int(12)? as usize;
        let ncopies = int(14)? as usize;
        if ii == 0 {
            return Err("schedule header: ii must be positive".into());
        }

        let mut ints_line = |tag: &str, count: usize| -> Result<Vec<u64>, String> {
            let line = lines
                .next()
                .ok_or_else(|| format!("missing `{tag}` line"))?;
            let mut it = line.split_whitespace();
            if it.next() != Some(tag) {
                return Err(format!("expected `{tag}` line"));
            }
            let vals: Result<Vec<u64>, _> = it.map(str::parse::<u64>).collect();
            let vals = vals.map_err(|e| format!("`{tag}` line: {e}"))?;
            if vals.len() != count {
                return Err(format!(
                    "`{tag}` line: expected {count} integers, found {}",
                    vals.len()
                ));
            }
            Ok(vals)
        };

        let op_ints = ints_line("ops", nops * 3)?;
        let lat_ints = ints_line("lats", nops)?;
        let copy_ints = ints_line("copies", ncopies * 5)?;

        let ops = op_ints
            .chunks_exact(3)
            .map(|c| ScheduledOp {
                cluster: c[0] as usize,
                cycle: c[1] as u32,
                assumed_latency: c[2] as u32,
            })
            .collect();
        let lat = lat_ints.into_iter().map(|l| l as u32).collect();
        let copies = copy_ints
            .chunks_exact(5)
            .map(|c| ScheduledCopy {
                producer: OpId::new(c[0] as usize),
                from: c[1] as usize,
                to: c[2] as usize,
                cycle: c[3] as u32,
                bus: c[4] as usize,
            })
            .collect();

        Ok(Schedule {
            ii,
            ops,
            copies,
            mii,
            res_mii,
            rec_mii,
            latencies: LatencyAssignment::from_raw(lat, target_mii),
        })
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "II={} SC={} (MII={} = max(res {}, rec {})), {} copies",
            self.ii,
            self.stage_count(),
            self.mii,
            self.res_mii,
            self.rec_mii,
            self.copies.len()
        )?;
        for (i, s) in self.ops.iter().enumerate() {
            writeln!(
                f,
                "  n{i}: cluster {} cycle {} (slot {}) lat {}",
                s.cluster,
                s.cycle,
                s.cycle % self.ii,
                s.assumed_latency
            )?;
        }
        for c in &self.copies {
            writeln!(
                f,
                "  copy {}: {} -> {} at cycle {} bus {}",
                c.producer, c.from, c.to, c.cycle, c.bus
            )?;
        }
        Ok(())
    }
}

/// Errors produced by the scheduling entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// No feasible schedule found up to the II search limit.
    NoSchedule {
        /// The loop that failed.
        loop_name: String,
        /// The largest II tried.
        max_ii: u32,
    },
    /// The kernel was empty.
    EmptyKernel,
    /// An exact backend exhausted its node budget before finding any
    /// schedule — a counted cutoff, distinct from a proof of
    /// infeasibility ([`ScheduleError::NoSchedule`]).
    SearchCutoff {
        /// The loop that cut off.
        loop_name: String,
        /// The node budget that ran out.
        node_budget: u64,
    },
    /// Preparation panicked and the panic was contained at the service
    /// boundary (`catch_unwind` in the schedule cache / batch driver):
    /// the request fails with this error instead of unwinding through —
    /// and poisoning — shared state. Counted, recoverable, retryable.
    PreparationPanicked {
        /// The loop whose preparation panicked.
        loop_name: String,
        /// The panic payload, downcast to text where possible.
        reason: String,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NoSchedule { loop_name, max_ii } => {
                write!(
                    f,
                    "no feasible schedule for loop `{loop_name}` up to II {max_ii}"
                )
            }
            ScheduleError::EmptyKernel => write!(f, "cannot schedule an empty kernel"),
            ScheduleError::SearchCutoff {
                loop_name,
                node_budget,
            } => {
                write!(
                    f,
                    "exact search for loop `{loop_name}` cut off after {node_budget} nodes \
                     with no schedule found"
                )
            }
            ScheduleError::PreparationPanicked { loop_name, reason } => {
                write!(
                    f,
                    "preparation of loop `{loop_name}` panicked (contained): {reason}"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyAssignment;

    fn schedule() -> Schedule {
        Schedule {
            ii: 2,
            ops: vec![
                ScheduledOp {
                    cluster: 0,
                    cycle: 0,
                    assumed_latency: 2,
                },
                ScheduledOp {
                    cluster: 1,
                    cycle: 3,
                    assumed_latency: 1,
                },
            ],
            copies: vec![ScheduledCopy {
                producer: OpId::new(0),
                from: 0,
                to: 1,
                cycle: 2,
                bus: 1,
            }],
            mii: 2,
            res_mii: 1,
            rec_mii: 2,
            latencies: LatencyAssignment::from_raw(vec![2, 1], 2),
        }
    }

    #[test]
    fn compact_text_round_trips() {
        let s = schedule();
        let text = s.to_compact_text();
        let back = Schedule::from_compact_text(&text).unwrap();
        assert_eq!(s, back);
        assert_eq!(text, back.to_compact_text());
    }

    #[test]
    fn compact_text_rejects_corruption() {
        let s = schedule().to_compact_text();
        assert!(Schedule::from_compact_text("").is_err());
        assert!(Schedule::from_compact_text(&s.replace("ncopies 1", "ncopies 2")).is_err());
        assert!(Schedule::from_compact_text(&s.replace("sched ii", "sched xx")).is_err());
    }
}
