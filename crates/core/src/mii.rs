//! Minimum initiation interval: resource bound and recurrence bound.

use vliw_ir::{Ddg, DepEdge, DepKind, FuKind, LoopKernel, OpId};
use vliw_machine::MachineConfig;

/// The latency a dependence edge imposes on the schedule
/// (`t(to) ≥ t(from) + latency − II × distance`), given a per-operation
/// execution-latency function.
///
/// * register flow: the producer's latency;
/// * register anti: 0 — "two register anti-dependent instructions can be
///   scheduled in the same cycle" (§4.3.3);
/// * register output: 1;
/// * memory flow/output: 1 — within-cluster serialization only requires
///   issue order (the chain constraint puts both ends in one cluster);
/// * memory anti: 0 — the reader may issue in the same cycle slot group
///   (the single memory unit per cluster already serializes same-cycle
///   conflicts).
pub fn edge_latency(edge: &DepEdge, mut lat_of: impl FnMut(OpId) -> u32) -> u32 {
    match edge.kind {
        DepKind::RegFlow => lat_of(edge.from),
        DepKind::RegAnti => 0,
        DepKind::RegOut => 1,
        DepKind::MemFlow | DepKind::MemOut => 1,
        DepKind::MemAnti => 0,
    }
}

/// Resource-constrained MII: for each functional-unit kind, the ops of that
/// kind divided by the machine-wide unit count, rounded up.
pub fn res_mii(kernel: &LoopKernel, machine: &MachineConfig) -> u32 {
    let n = machine.clusters.n_clusters;
    let mut worst = 1u32;
    for kind in FuKind::ALL {
        let ops = kernel.ops.iter().filter(|o| o.fu_kind() == kind).count();
        let units = machine.clusters.fu_count(kind) * n;
        if units == 0 {
            assert_eq!(ops, 0, "ops of kind {kind} but no units");
            continue;
        }
        worst = worst.max(ops.div_ceil(units) as u32);
    }
    worst
}

/// Exact recurrence-constrained MII under the given per-op latency
/// function: the smallest `II` such that no dependence cycle has
/// `Σ latency > II × Σ distance`. Computed by binary search over II with
/// Bellman-Ford positive-cycle detection, so it is exact even when circuit
/// enumeration is capped.
pub fn rec_mii(ddg: &Ddg<'_>, mut lat_of: impl FnMut(OpId) -> u32) -> u32 {
    let edges: Vec<(usize, usize, i64, i64)> = ddg
        .edges()
        .iter()
        .map(|e| {
            (
                e.from.index(),
                e.to.index(),
                edge_latency(e, &mut lat_of) as i64,
                e.distance as i64,
            )
        })
        .collect();
    let total_lat: i64 = edges.iter().map(|e| e.2).sum();
    let (mut lo, mut hi) = (0i64, total_lat.max(0) + 1);
    // invariant: hi is feasible, lo-1 ... search smallest feasible
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if has_positive_cycle(ddg.n_ops(), &edges, mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo as u32
}

/// Longest-path Bellman-Ford: does any cycle have positive total weight
/// `Σ (lat − II·dist)`?
fn has_positive_cycle(n: usize, edges: &[(usize, usize, i64, i64)], ii: i64) -> bool {
    if n == 0 {
        return false;
    }
    let mut dist = vec![0i64; n];
    for round in 0..=n {
        let mut changed = false;
        for &(u, v, lat, d) in edges {
            let w = lat - ii * d;
            if dist[u] + w > dist[v] {
                dist[v] = dist[u] + w;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
        if round == n {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{ArrayKind, KernelBuilder, Opcode};

    fn lat1(_: OpId) -> u32 {
        1
    }

    #[test]
    fn res_mii_counts_fu_pressure() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 1024, ArrayKind::Global);
        // 5 loads on 4 memory units -> ResMII 2
        for i in 0..5 {
            let _ = b.load(format!("ld{i}"), a, 4 * i, 4, 4);
        }
        // 3 int ops on 4 int units -> 1
        for i in 0..3 {
            let _ = b.int_op(format!("i{i}"), Opcode::Add, &[]);
        }
        let k = b.finish(1.0);
        let m = MachineConfig::word_interleaved_4();
        assert_eq!(res_mii(&k, &m), 2);
    }

    #[test]
    fn rec_mii_zero_for_dag() {
        let mut b = KernelBuilder::new("t");
        let (_, r) = b.int_op("a", Opcode::Add, &[]);
        let _ = b.int_op("b", Opcode::Sub, &[r.into()]);
        let k = b.finish(1.0);
        let g = Ddg::build(&k);
        assert_eq!(rec_mii(&g, lat1), 0);
    }

    #[test]
    fn rec_mii_simple_cycle() {
        // a -> b (lat 1) -> a (lat 1, dist 1): II >= 2
        let mut b = KernelBuilder::new("t");
        let (na, ra) = b.int_op("a", Opcode::Add, &[]);
        let (nb, _) = b.int_op("b", Opcode::Sub, &[ra.into()]);
        b.raw_edge(nb, na, vliw_ir::DepKind::RegFlow, 1);
        let k = b.finish(1.0);
        let g = Ddg::build(&k);
        assert_eq!(rec_mii(&g, lat1), 2);
        // with 5-cycle ops: (5+5)/1 = 10
        assert_eq!(rec_mii(&g, |_| 5), 10);
    }

    #[test]
    fn rec_mii_distance_divides() {
        // self-recurrence at distance 3 with latency 7 -> ceil(7/3) = 3
        let mut b = KernelBuilder::new("t");
        let _ = b.int_op_carried("acc", Opcode::Add, &[], 3);
        let k = b.finish(1.0);
        let g = Ddg::build(&k);
        assert_eq!(rec_mii(&g, |_| 7), 3);
        assert_eq!(rec_mii(&g, |_| 6), 2);
    }

    #[test]
    fn rec_mii_takes_worst_recurrence() {
        let mut b = KernelBuilder::new("t");
        let _ = b.int_op_carried("fast", Opcode::Add, &[], 2); // ceil(l/2)
        let _ = b.int_op_carried("slow", Opcode::Add, &[], 1); // l
        let k = b.finish(1.0);
        let g = Ddg::build(&k);
        assert_eq!(rec_mii(&g, |_| 4), 4);
    }

    #[test]
    fn anti_edges_are_free() {
        let mut b = KernelBuilder::new("t");
        let (na, ra) = b.int_op("a", Opcode::Add, &[]);
        let (nb, _) = b.int_op("b", Opcode::Sub, &[ra.into()]);
        b.raw_edge(nb, na, vliw_ir::DepKind::RegAnti, 1);
        let k = b.finish(1.0);
        let g = Ddg::build(&k);
        // circuit latency = lat(a->b flow) + 0 (anti) = lat(a)
        assert_eq!(rec_mii(&g, |_| 3), 3);
    }

    #[test]
    fn edge_latency_kinds() {
        use vliw_ir::DepKind::*;
        let e = |kind| DepEdge::new(OpId::new(0), OpId::new(1), kind, 0);
        assert_eq!(edge_latency(&e(RegFlow), |_| 9), 9);
        assert_eq!(edge_latency(&e(RegAnti), |_| 9), 0);
        assert_eq!(edge_latency(&e(RegOut), |_| 9), 1);
        assert_eq!(edge_latency(&e(MemFlow), |_| 9), 1);
        assert_eq!(edge_latency(&e(MemAnti), |_| 9), 0);
        assert_eq!(edge_latency(&e(MemOut), |_| 9), 1);
    }
}
