//! The cluster-assignment extension seam.
//!
//! [`ClusterAssign`] factors the §4 heuristics into four hooks — pins known
//! before scheduling starts, pins discovered while scheduling, candidate
//! enumeration/tie-breaking, and placement observation — so a new heuristic
//! is one new file implementing the trait (see `base.rs` / `ibc.rs` /
//! `ipbc.rs` / `no_chains.rs` for the paper's four policies).
//! [`super::ClusterPolicy`] stays a thin enum whose
//! [`assigner`](super::ClusterPolicy::assigner) method hands the engine a
//! trait object.

use std::collections::HashMap;

use vliw_ir::{LoopKernel, OpId};

use crate::chains::MemChains;

/// An already-placed dependence neighbor of the operation being assigned.
#[derive(Debug, Clone, Copy)]
pub struct Neighbor {
    /// The neighbor operation.
    pub other: OpId,
    /// The cluster it was placed in.
    pub cluster: usize,
    /// Whether the connecting edge is a register-flow dependence (the only
    /// kind that forces an inter-cluster copy).
    pub regflow: bool,
}

/// Everything a policy may inspect when choosing candidate clusters for
/// one operation.
pub struct AssignContext<'a> {
    /// The kernel being scheduled.
    pub kernel: &'a LoopKernel,
    /// Its memory dependent chains.
    pub chains: &'a MemChains,
    /// Number of clusters in the target machine.
    pub n_clusters: usize,
    /// Placed predecessors of the op.
    pub preds: &'a [Neighbor],
    /// Placed successors of the op.
    pub succs: &'a [Neighbor],
    /// Whether a copy of `producer`'s value already exists in `cluster`
    /// (placing a consumer there needs no new bus transfer).
    pub has_copy: &'a dyn Fn(OpId, usize) -> bool,
    /// Operations currently placed per cluster (balance tie-breaker).
    pub load_count: &'a [usize],
}

/// Per-attempt mutable policy state, reset on every placement attempt.
///
/// IBC records here the cluster chosen for the first-scheduled member of
/// each memory dependent chain; the other paper policies keep no dynamic
/// state.
#[derive(Debug, Clone, Default)]
pub struct AssignState {
    /// `chain id → cluster` pins discovered during the attempt.
    pub chain_pin: HashMap<usize, usize>,
}

/// A cluster-assignment heuristic (§4.2 / §4.3.2).
///
/// The engine drives implementations through four hooks:
///
/// 1. [`precompute_pins`](ClusterAssign::precompute_pins) — pins known
///    *before* scheduling (IPBC's chain pins, the no-chains ablation's
///    per-op preferences). These also steer the latency assignment, which
///    estimates stall against the pinned cluster.
/// 2. [`pin`](ClusterAssign::pin) — a hard pin discovered *during*
///    scheduling (IBC's first-member chain pins).
/// 3. [`candidates_into`](ClusterAssign::candidates_into) — candidate
///    clusters in preference order, written into an engine-owned buffer;
///    the default defers to the pin, then to the shared
///    communication/balance ranking.
/// 4. [`commit`](ClusterAssign::commit) — observes a successful placement.
///
/// Implementations must be stateless (`Sync`); all dynamic state lives in
/// [`AssignState`] so one attempt cannot leak decisions into the next.
pub trait ClusterAssign: std::fmt::Debug + Sync {
    /// Short policy name (diagnostics and reports).
    fn name(&self) -> &'static str;

    /// Cluster pins known before scheduling starts; `None` entries are
    /// assigned by the communication/balance heuristic.
    fn precompute_pins(
        &self,
        kernel: &LoopKernel,
        chains: &MemChains,
        n_clusters: usize,
    ) -> Vec<Option<usize>> {
        let _ = (chains, n_clusters);
        vec![None; kernel.ops.len()]
    }

    /// A hard pin for `op` at assignment time, if any. The default reads
    /// the precomputed pins.
    fn pin(
        &self,
        op: OpId,
        ctx: &AssignContext<'_>,
        pins: &[Option<usize>],
        state: &AssignState,
    ) -> Option<usize> {
        let _ = (ctx, state);
        pins[op.index()]
    }

    /// Writes the candidate clusters for `op`, best first, into `out`
    /// (cleared first); the engine tries them in order and keeps the first
    /// with a feasible slot and bus schedule. The engine calls this once
    /// per operation with a scratch buffer it owns, so the hot path
    /// allocates nothing. (This replaces the former allocating
    /// `candidates` hook — removed rather than kept alongside, so a
    /// policy customizing enumeration cannot silently override the wrong
    /// method.)
    fn candidates_into(
        &self,
        op: OpId,
        ctx: &AssignContext<'_>,
        pins: &[Option<usize>],
        state: &AssignState,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        match self.pin(op, ctx, pins, state) {
            Some(c) => out.push(c),
            None => rank_by_communication_balance_into(ctx, out),
        }
    }

    /// Observes that `op` was committed to `cluster`.
    fn commit(&self, op: OpId, cluster: usize, ctx: &AssignContext<'_>, state: &mut AssignState) {
        let _ = (op, cluster, ctx, state);
    }

    /// Whether the policy forces every memory-chain member onto the
    /// cluster of the chain's first-placed member *during* scheduling
    /// (IBC). Policies whose chain constraints are known up front (IPBC,
    /// the ablation) express them through
    /// [`precompute_pins`](ClusterAssign::precompute_pins) instead. Exact
    /// backends mirror this as a hard search constraint so their optimal
    /// II is optimal *for the policy's problem*, not for a relaxation.
    fn constrains_chains_dynamically(&self) -> bool {
        false
    }
}

/// The shared BASE ranking (§4.2): prefer the cluster that (1) needs the
/// fewest new inter-cluster copies, then (2) holds the most register-flow
/// neighbors (affinity), then (3) has the lightest workload, then (4) the
/// lowest index.
pub fn rank_by_communication_balance(ctx: &AssignContext<'_>) -> Vec<usize> {
    let mut out = Vec::new();
    rank_by_communication_balance_into(ctx, &mut out);
    out
}

/// [`rank_by_communication_balance`] writing into a caller-owned buffer
/// (cleared first) — the engine's allocation-free form.
pub fn rank_by_communication_balance_into(ctx: &AssignContext<'_>, cs: &mut Vec<usize>) {
    cs.clear();
    cs.extend(0..ctx.n_clusters);
    let score = |c: usize| -> (usize, isize, usize) {
        // copies needed now if placed in c
        let mut need = 0usize;
        let mut affinity = 0isize;
        for p in ctx.preds {
            if p.regflow {
                if p.cluster != c {
                    if !(ctx.has_copy)(p.other, c) {
                        need += 1;
                    }
                } else {
                    affinity += 1;
                }
            }
        }
        let mut succ_clusters: Vec<usize> = Vec::new();
        for s in ctx.succs {
            if s.regflow {
                if s.cluster != c {
                    if !succ_clusters.contains(&s.cluster) {
                        succ_clusters.push(s.cluster);
                        need += 1;
                    }
                } else {
                    affinity += 1;
                }
            }
        }
        (need, -affinity, ctx.load_count[c])
    };
    // n_clusters is tiny (≤ 8 in every paper machine), so the stable sort
    // stays on its allocation-free insertion path
    cs.sort_by_key(|&c| (score(c), c));
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{ArrayKind, KernelBuilder};

    fn tiny_kernel() -> LoopKernel {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 1024, ArrayKind::Global);
        let (_, v) = b.load("ld", a, 0, 4, 4);
        b.store("st", a, 512, 4, 4, v);
        b.finish(1.0)
    }

    #[test]
    fn ranking_prefers_copy_free_then_affinity_then_balance() {
        let kernel = tiny_kernel();
        let chains = MemChains::build(&kernel);
        let no_copy = |_: OpId, _: usize| false;
        let producer = kernel.ops[0].id;
        let preds = [Neighbor {
            other: producer,
            cluster: 2,
            regflow: true,
        }];
        let load_count = [5usize, 0, 3, 0];
        let ctx = AssignContext {
            kernel: &kernel,
            chains: &chains,
            n_clusters: 4,
            preds: &preds,
            succs: &[],
            has_copy: &no_copy,
            load_count: &load_count,
        };
        let ranked = rank_by_communication_balance(&ctx);
        // cluster 2 holds the producer: no copy needed AND affinity
        assert_eq!(ranked[0], 2);
        // the rest need one copy each; balance then index break the tie
        assert_eq!(ranked[1..], [1, 3, 0]);
    }

    #[test]
    fn existing_copy_removes_the_penalty() {
        let kernel = tiny_kernel();
        let chains = MemChains::build(&kernel);
        let producer = kernel.ops[0].id;
        // a copy of the producer's value already sits in cluster 1
        let has_copy = move |op: OpId, c: usize| op == producer && c == 1;
        let preds = [Neighbor {
            other: producer,
            cluster: 2,
            regflow: true,
        }];
        let load_count = [0usize, 0, 0, 0];
        let ctx = AssignContext {
            kernel: &kernel,
            chains: &chains,
            n_clusters: 4,
            preds: &preds,
            succs: &[],
            has_copy: &has_copy,
            load_count: &load_count,
        };
        let ranked = rank_by_communication_balance(&ctx);
        // cluster 2 wins on affinity; cluster 1 rides the existing copy
        assert_eq!(&ranked[..2], &[2, 1]);
    }
}
