//! The scheduler-backend extension seam.
//!
//! [`SchedulerBackend`] abstracts the *entire* kernel → [`Schedule`]
//! transformation — front-end included — so whole alternative pipeliners
//! (not just cluster-assignment heuristics, which plug in one level lower
//! via [`ClusterAssign`](super::ClusterAssign)) are a single trait
//! implementation plus one [`SchedBackend`] arm. Two backends ship:
//!
//! * [`SwingModulo`] — the paper's §4.3.1 pipeline (latency assignment →
//!   SMS ordering → no-backtracking cluster assignment + slot placement),
//!   extracted verbatim from the historical `schedule_kernel` body; its
//!   output is bit-identical to the pre-seam scheduler.
//! * [`ExactBnB`] — an exact branch-and-bound modulo scheduler used as
//!   the optimality yardstick for the `optgap` study (see the
//!   [`bnb`](super::bnb) module).
//!
//! Backends return a [`ScheduleOutcome`] whose [`SchedQuality`] records
//! what the result *claims*: a heuristic makes no claim, an exact search
//! either proves optimality or reports that a node-budget cutoff limited
//! the proof. Cutoffs are first-class, counted outcomes
//! ([`SchedStats::cutoffs`](super::SchedStats)) — never a silent fallback.

use vliw_ir::LoopKernel;
use vliw_machine::MachineConfig;
use vliw_trace::Trace;

use super::{ExactBnB, SchedStats, ScheduleOptions};
use crate::schedule::{Schedule, ScheduleError};

/// A complete modulo-scheduling pipeline: everything between a profiled
/// kernel and a verified [`Schedule`].
///
/// Implementations must be stateless (`Sync`) — one static instance per
/// backend is handed out by [`SchedBackend::backend`], exactly like the
/// [`ClusterAssign`](super::ClusterAssign) policy objects one seam below.
pub trait SchedulerBackend: std::fmt::Debug + Sync {
    /// Short backend name (reports, memo diagnostics, bench labels).
    fn name(&self) -> &'static str;

    /// Schedules `kernel` for `machine`, discarding counters and quality.
    ///
    /// # Errors
    ///
    /// Same as [`SchedulerBackend::schedule_with_stats`].
    fn schedule(
        &self,
        kernel: &LoopKernel,
        machine: &MachineConfig,
        options: &ScheduleOptions,
    ) -> Result<Schedule, ScheduleError> {
        self.schedule_with_stats(kernel, machine, options)
            .map(|o| o.schedule)
    }

    /// Schedules `kernel` for `machine`, returning the schedule together
    /// with the work counters and the backend's quality claim.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::EmptyKernel`] for empty kernels;
    /// [`ScheduleError::NoSchedule`] when the search space is exhausted up
    /// to the II limit; [`ScheduleError::SearchCutoff`] when an exact
    /// backend ran out of node budget before finding any schedule.
    fn schedule_with_stats(
        &self,
        kernel: &LoopKernel,
        machine: &MachineConfig,
        options: &ScheduleOptions,
    ) -> Result<ScheduleOutcome, ScheduleError>;

    /// [`SchedulerBackend::schedule_with_stats`] with a [`Trace`] handle:
    /// backends that support per-stage attribution (both pipeliners do)
    /// emit their spans and telemetry to it. The default implementation
    /// ignores the handle and delegates, so third-party backends stay
    /// source-compatible; with [`Trace::off`] overriding backends must be
    /// behaviorally identical to `schedule_with_stats` (the
    /// `tests/trace_overhead.rs` digest test pins this).
    ///
    /// # Errors
    ///
    /// Same as [`SchedulerBackend::schedule_with_stats`].
    fn schedule_traced(
        &self,
        kernel: &LoopKernel,
        machine: &MachineConfig,
        options: &ScheduleOptions,
        trace: Trace<'_>,
    ) -> Result<ScheduleOutcome, ScheduleError> {
        let _ = trace;
        self.schedule_with_stats(kernel, machine, options)
    }
}

/// What a backend's result claims about schedule quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedQuality {
    /// Produced by a heuristic pipeline; no optimality claim.
    Heuristic,
    /// The II is proven minimal: every smaller II ≥ MII was exhaustively
    /// refuted (or the II already equals the MII lower bound).
    ProvenOptimal,
    /// A feasible schedule, but the exact search hit its node budget at
    /// some smaller II, so optimality is unproven. The cutoff count is in
    /// [`SchedStats::cutoffs`](super::SchedStats).
    CutoffFeasible,
    /// The exact search exhausted its budget ladder
    /// ([`FallbackPolicy::RetryReducedBudget`]) and the service degraded
    /// to the heuristic incumbent — the [`SwingModulo`] schedule computed
    /// as the search's warm start. A *counted* degradation, never a
    /// silent one: the retry rungs are in
    /// [`SchedStats::fallback_retries`](super::SchedStats) and the
    /// cutoffs that forced them in
    /// [`SchedStats::cutoffs`](super::SchedStats).
    DegradedFallback,
}

impl SchedQuality {
    /// Whether this result carries an optimality proof.
    pub fn is_proven(self) -> bool {
        matches!(self, SchedQuality::ProvenOptimal)
    }
}

/// What an exact backend does when its deterministic deadline — the node
/// budget composed with [`ScheduleOptions::cost_ceiling`] — runs out
/// before the II question is decided.
///
/// The ladder is entirely wall-clock-free: every rung is measured in
/// candidate cells examined, so the same inputs exhaust the same rungs in
/// the same order on any machine, and a degraded answer is bit-identical
/// across runs (the determinism contract the fault-injection harness
/// asserts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum FallbackPolicy {
    /// Exhaustion is an error: return
    /// [`ScheduleError::SearchCutoff`](crate::schedule::ScheduleError)
    /// even when a feasible incumbent exists. For callers that would
    /// rather fail a request than serve an unproven answer.
    Fail,
    /// Exhaustion serves the heuristic incumbent as
    /// [`SchedQuality::CutoffFeasible`] (the historical behavior, and the
    /// default); with no incumbent the cutoff is an error.
    #[default]
    Heuristic,
    /// Exhaustion walks a counted retry ladder before degrading: the
    /// search is re-run up to `max_retries` times, the budget divided by
    /// `factor` at each rung (a deterministic search re-explores a prefix
    /// of the same tree, so each rung is a cheap, bounded confirmation of
    /// the cutoff — the service analogue of retrying at cheaper tiers).
    /// When every rung confirms exhaustion the heuristic incumbent is
    /// served as [`SchedQuality::DegradedFallback`]; with no incumbent
    /// the cutoff is an error. Rungs are counted in
    /// [`SchedStats::fallback_retries`](super::SchedStats).
    RetryReducedBudget {
        /// Budget divisor per rung (clamped to ≥ 2 so the ladder always
        /// descends).
        factor: u32,
        /// Maximum rungs before degrading to the incumbent.
        max_retries: u32,
    },
}

/// A backend's full result: the schedule, the work counters, and the
/// quality claim.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// The schedule produced.
    pub schedule: Schedule,
    /// Work counters (trial cycles, attempts, rollbacks, placements,
    /// cutoffs).
    pub stats: SchedStats,
    /// What the backend claims about the result.
    pub quality: SchedQuality,
    /// Rau's MaxLive ([`crate::pressure::max_live`]) of the returned
    /// schedule, populated by the exact backend — for
    /// [`SchedQuality::ProvenOptimal`] results it is additionally the
    /// minimum over a bounded tie-break enumeration at the optimal II, so
    /// proven-optimal schedules also minimize register lifetimes.
    /// Heuristic backends report `None` (callers can compute it on
    /// demand).
    pub max_live: Option<u32>,
}

/// The scheduler backends, as a value the experiment grid can sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedBackend {
    /// The paper's heuristic pipeline ([`SwingModulo`]).
    SwingModulo,
    /// The exact branch-and-bound pipeliner ([`ExactBnB`]).
    ExactBnB,
    /// The load-delay-tracking pipeliner
    /// ([`DelayTracking`](super::DelayTracking)): swing placement over
    /// measured expected/percentile load latencies instead of the §4.3.3
    /// class latencies.
    DelayTracking,
}

impl SchedBackend {
    /// The [`SchedulerBackend`] implementation behind this value.
    pub fn backend(&self) -> &'static dyn SchedulerBackend {
        match self {
            SchedBackend::SwingModulo => &SwingModulo,
            SchedBackend::ExactBnB => &ExactBnB,
            SchedBackend::DelayTracking => &super::DelayTracking,
        }
    }

    /// Short name (same as the backend object's).
    pub fn name(&self) -> &'static str {
        self.backend().name()
    }

    /// Relative per-cell cost rank, used by the experiment grid to shard
    /// its work queue: heavier backends are dispatched first so their
    /// long-running cells do not become the parallel sweep's tail while
    /// cheap heuristic cells back-fill the workers. Only the order
    /// matters, not the magnitudes.
    pub fn cost_rank(&self) -> u8 {
        match self {
            SchedBackend::SwingModulo => 0,
            SchedBackend::DelayTracking => 1,
            SchedBackend::ExactBnB => 2,
        }
    }

    /// Every backend, the heuristic pipeline first.
    pub const ALL: [SchedBackend; 3] = [
        SchedBackend::SwingModulo,
        SchedBackend::ExactBnB,
        SchedBackend::DelayTracking,
    ];
}

/// The paper's §4.3.1 pipeline as a [`SchedulerBackend`]: the historical
/// `schedule_kernel` body, extracted behind the seam with bit-identical
/// output (guarded by the MRT-equivalence and grid-determinism tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct SwingModulo;

impl SchedulerBackend for SwingModulo {
    fn name(&self) -> &'static str {
        "swing"
    }

    fn schedule_with_stats(
        &self,
        kernel: &LoopKernel,
        machine: &MachineConfig,
        options: &ScheduleOptions,
    ) -> Result<ScheduleOutcome, ScheduleError> {
        self.schedule_traced(kernel, machine, options, Trace::off())
    }

    fn schedule_traced(
        &self,
        kernel: &LoopKernel,
        machine: &MachineConfig,
        options: &ScheduleOptions,
        trace: Trace<'_>,
    ) -> Result<ScheduleOutcome, ScheduleError> {
        super::swing_schedule_traced(kernel, machine, options, trace).map(|(schedule, stats)| {
            ScheduleOutcome {
                schedule,
                stats,
                quality: SchedQuality::Heuristic,
                max_live: None,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{schedule_outcome, ClusterPolicy};
    use vliw_ir::{ArrayKind, KernelBuilder};

    fn kernel() -> LoopKernel {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 1024, ArrayKind::Heap);
        let (_, v) = b.load("ld", a, 0, 4, 4);
        b.store("st", a, 512, 4, 4, v);
        b.finish(16.0)
    }

    #[test]
    fn swing_backend_is_bit_identical_to_direct_entry_point() {
        let k = kernel();
        let m = MachineConfig::word_interleaved_4();
        let opts = ScheduleOptions::new(ClusterPolicy::PreBuildChains);
        let direct = crate::engine::schedule_kernel(&k, &m, opts).unwrap();
        let via_trait = SwingModulo.schedule(&k, &m, &opts).unwrap();
        assert_eq!(direct, via_trait);
    }

    #[test]
    fn heuristic_outcome_makes_no_optimality_claim() {
        let k = kernel();
        let m = MachineConfig::word_interleaved_4();
        let o = schedule_outcome(&k, &m, ScheduleOptions::new(ClusterPolicy::Free)).unwrap();
        assert_eq!(o.quality, SchedQuality::Heuristic);
        assert!(!o.quality.is_proven());
        assert_eq!(o.stats.cutoffs, 0, "heuristics never cut off");
    }

    #[test]
    fn backend_enum_resolves_names() {
        assert_eq!(SchedBackend::SwingModulo.name(), "swing");
        assert_eq!(SchedBackend::ExactBnB.name(), "bnb");
        assert_eq!(SchedBackend::DelayTracking.name(), "delay");
        assert_eq!(SchedBackend::ALL.len(), 3);
        // the exact search outranks both heuristics in the shard order
        assert!(SchedBackend::ExactBnB.cost_rank() > SchedBackend::DelayTracking.cost_rank());
        assert!(SchedBackend::DelayTracking.cost_rank() > SchedBackend::SwingModulo.cost_rank());
    }
}
