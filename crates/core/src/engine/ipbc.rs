//! IPBC — Interleaved Pre-Build Chains (§4.3.2).
//!
//! Chains are computed *before* scheduling and pinned to their average
//! preferred cluster — each member votes with its profiled preferred
//! cluster and the majority wins (ties to the lowest-numbered cluster).
//! Chains with no profile data, and all non-memory operations, fall back
//! to the BASE ranking.

use vliw_ir::LoopKernel;

use super::policy::ClusterAssign;
use crate::chains::MemChains;

/// The IPBC policy (used by `ClusterPolicy::PreBuildChains`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Ipbc;

impl ClusterAssign for Ipbc {
    fn name(&self) -> &'static str {
        "IPBC"
    }

    fn precompute_pins(
        &self,
        kernel: &LoopKernel,
        chains: &MemChains,
        n_clusters: usize,
    ) -> Vec<Option<usize>> {
        let mut pins = vec![None; kernel.ops.len()];
        for (cid, members) in chains.iter() {
            if let Some(c) = chains.preferred_cluster(cid, kernel, n_clusters) {
                for &m in members {
                    pins[m.index()] = Some(c);
                }
            }
        }
        pins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{schedule_kernel, ClusterPolicy, ScheduleOptions};
    use crate::examples_443::{figure3_kernel, figure3_machine};

    /// §4.3.3 worked example under IPBC: the n1–n2–n4 chain (preferences
    /// {0, 0, 1}) is pre-pinned to its average preferred cluster 0, n6 goes
    /// to its preferred cluster 1, and the schedule reaches the MII of 8.
    #[test]
    fn figure3_ipbc_pins_chain_to_average_preferred_cluster() {
        let (k, ops) = figure3_kernel();
        let m = figure3_machine();
        let s = schedule_kernel(&k, &m, ScheduleOptions::new(ClusterPolicy::PreBuildChains))
            .expect("schedulable");
        assert!(s.verify(&k, &m).is_empty(), "legal schedule");
        assert_eq!(s.op(ops.n1).cluster, 0);
        assert_eq!(s.op(ops.n2).cluster, 0);
        assert_eq!(s.op(ops.n4).cluster, 0);
        assert_eq!(
            s.op(ops.n6).cluster,
            1,
            "n6 pinned to its preferred cluster"
        );
        assert_eq!(s.ii, 8, "schedule achieves the MII");
    }

    /// The precomputed pins match the chain votes directly.
    #[test]
    fn figure3_precomputed_pins_follow_the_votes() {
        let (k, ops) = figure3_kernel();
        let chains = MemChains::build(&k);
        let pins = Ipbc.precompute_pins(&k, &chains, 2);
        assert_eq!(pins[ops.n1.index()], Some(0));
        assert_eq!(pins[ops.n2.index()], Some(0));
        assert_eq!(
            pins[ops.n4.index()],
            Some(0),
            "outvoted member follows the chain"
        );
        assert_eq!(pins[ops.n6.index()], Some(1));
        assert_eq!(
            pins[ops.n3.index()],
            None,
            "non-memory ops are never pinned"
        );
    }
}
