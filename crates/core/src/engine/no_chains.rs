//! The chain-less ablation (Figures 4 and 7).
//!
//! Every memory operation is pinned to its *own* profiled preferred
//! cluster, ignoring memory dependent chains entirely. **Not correct for
//! execution** on the interleaved machine — memory serialization is only
//! guaranteed within a cluster — but the paper uses it to quantify what
//! chains cost in local hits and workload balance.

use vliw_ir::LoopKernel;

use super::policy::ClusterAssign;
use crate::chains::MemChains;

/// The analysis-only no-chains policy (used by `ClusterPolicy::NoChains`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoChains;

impl ClusterAssign for NoChains {
    fn name(&self) -> &'static str {
        "no-chains"
    }

    fn precompute_pins(
        &self,
        kernel: &LoopKernel,
        _chains: &MemChains,
        n_clusters: usize,
    ) -> Vec<Option<usize>> {
        let mut pins = vec![None; kernel.ops.len()];
        for op in kernel.mem_ops() {
            if let Some(c) = op.mem.as_ref().and_then(|m| m.preferred_cluster()) {
                pins[op.id.index()] = Some(c.min(n_clusters - 1));
            }
        }
        pins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{schedule_kernel, ClusterPolicy, ScheduleOptions};
    use crate::examples_443::{figure3_kernel, figure3_machine};

    /// §4.3.3 worked example under the ablation: chain membership is
    /// ignored, so n4 (preference 1) splits away from n1/n2 (preference 0)
    /// — exactly the split the chain constraint exists to forbid.
    #[test]
    fn figure3_no_chains_splits_the_chain_to_preferences() {
        let (k, ops) = figure3_kernel();
        let m = figure3_machine();
        let s = schedule_kernel(&k, &m, ScheduleOptions::new(ClusterPolicy::NoChains))
            .expect("schedulable");
        assert!(s.verify(&k, &m).is_empty(), "resource/dependence legal");
        assert_eq!(s.op(ops.n1).cluster, 0);
        assert_eq!(s.op(ops.n2).cluster, 0);
        assert_eq!(s.op(ops.n4).cluster, 1, "n4 follows its own preference");
        assert_eq!(s.op(ops.n6).cluster, 1);
    }

    /// Pins come from per-op preferences, clamped to the machine.
    #[test]
    fn pins_are_per_op_preferences() {
        let (k, ops) = figure3_kernel();
        let chains = MemChains::build(&k);
        let pins = NoChains.precompute_pins(&k, &chains, 2);
        assert_eq!(pins[ops.n1.index()], Some(0));
        assert_eq!(pins[ops.n2.index()], Some(0));
        assert_eq!(pins[ops.n4.index()], Some(1), "chain membership ignored");
        assert_eq!(pins[ops.n6.index()], Some(1));
    }
}
