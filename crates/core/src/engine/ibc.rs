//! IBC — Interleaved Build Chains (§4.3.2).
//!
//! Memory operations use the BASE communication/balance ranking, but all
//! members of a memory dependent chain follow the cluster chosen for the
//! chain's *first-scheduled* member: the first placement pins the chain,
//! and every later member inherits the pin. Profile information is not
//! consulted — IBC is the "build the chains as you go" heuristic.

use vliw_ir::OpId;

use super::policy::{AssignContext, AssignState, ClusterAssign};

/// The IBC policy (used by `ClusterPolicy::BuildChains`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Ibc;

impl ClusterAssign for Ibc {
    fn name(&self) -> &'static str {
        "IBC"
    }

    fn constrains_chains_dynamically(&self) -> bool {
        true
    }

    fn pin(
        &self,
        op: OpId,
        ctx: &AssignContext<'_>,
        _pins: &[Option<usize>],
        state: &AssignState,
    ) -> Option<usize> {
        if ctx.kernel.op(op).is_mem() {
            ctx.chains
                .chain_id(op)
                .and_then(|c| state.chain_pin.get(&c).copied())
        } else {
            None
        }
    }

    fn commit(&self, op: OpId, cluster: usize, ctx: &AssignContext<'_>, state: &mut AssignState) {
        if ctx.kernel.op(op).is_mem() {
            if let Some(cid) = ctx.chains.chain_id(op) {
                state.chain_pin.entry(cid).or_insert(cluster);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{schedule_kernel, ClusterPolicy, ScheduleOptions};
    use crate::examples_443::{figure3_kernel, figure3_machine};

    /// §4.3.3 worked example under IBC: the n1–n2–n4 chain stays together
    /// in whichever cluster its first-scheduled member landed, REC2's load
    /// n6 lands in the other cluster purely for balance, and the schedule
    /// reaches the MII of 8.
    #[test]
    fn figure3_ibc_keeps_chain_together_at_mii() {
        let (k, ops) = figure3_kernel();
        let m = figure3_machine();
        let s = schedule_kernel(&k, &m, ScheduleOptions::new(ClusterPolicy::BuildChains))
            .expect("schedulable");
        assert!(s.verify(&k, &m).is_empty(), "legal schedule");
        let c = s.op(ops.n1).cluster;
        assert_eq!(s.op(ops.n2).cluster, c, "chain member n2 follows n1");
        assert_eq!(s.op(ops.n4).cluster, c, "chain member n4 follows n1");
        assert_ne!(
            s.op(ops.n6).cluster,
            c,
            "n6 balances into the other cluster"
        );
        assert_eq!(s.ii, 8, "schedule achieves the MII");
    }
}
