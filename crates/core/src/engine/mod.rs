//! The scheduling engine: cluster assignment and slot placement in a single
//! step (§4.2 and §4.3.1 step 4), with no backtracking — any failure bumps
//! the II and restarts, exactly as the paper describes.
//!
//! Cluster-assignment heuristics are pluggable: the engine drives a
//! [`ClusterAssign`] trait object, one implementation per policy module
//! ([`base`], [`ibc`], [`ipbc`], [`no_chains`]). [`ClusterPolicy`] is the
//! thin enum mapping the paper's names onto those implementations; adding a
//! heuristic is one new module plus one enum arm.
//!
//! # Hot-loop data layout
//!
//! The II loop restarts the whole placement pipeline on every bump, so the
//! engine is built for zero steady-state allocation: every trial
//! reservation goes through the [`Mrt`] transaction journal (no table
//! clones), candidate cycles come from the table's word-parallel free-mask
//! walk ([`ReservationTable::next_free_fu_cycle`] — occupied stretches are
//! skipped a `u64` word at a time and never counted as trial work), and
//! all per-attempt / per-op vectors live in one private `Scratch`
//! workspace that is cleared — never reallocated — across attempts. A
//! clone-based reference trial path is retained behind
//! [`TrialMode::CloneBased`], and the whole placement loop is generic over
//! [`ReservationTable`] so the legacy scalar-probe table
//! ([`crate::mrt::ScalarMrt`], selected by [`MrtImpl::ScalarReference`])
//! can drive the identical code path in equivalence tests.

pub mod backend;
pub mod base;
pub mod bnb;
pub mod delay;
pub mod ibc;
pub mod ipbc;
pub mod no_chains;
pub mod policy;

use std::collections::HashMap;

use vliw_ir::{Ddg, DepKind, LoopKernel, OpId};
use vliw_machine::MachineConfig;
use vliw_trace::Trace;

use crate::chains::MemChains;
use crate::circuits::{elementary_circuits, EnumLimits};
use crate::latency::LatencyAssignment;
use crate::mii;
use crate::mrt::{Mrt, MrtImpl, ReservationTable, ScalarMrt};
use crate::order::sms_order;
use crate::schedule::{Schedule, ScheduleError, ScheduledCopy, ScheduledOp};

pub use backend::{
    FallbackPolicy, SchedBackend, SchedQuality, ScheduleOutcome, SchedulerBackend, SwingModulo,
};
pub use bnb::{ExactBnB, DEFAULT_NODE_BUDGET};
pub use delay::DelayTracking;
pub use policy::{AssignContext, AssignState, ClusterAssign, Neighbor};

/// How memory instructions are assigned to clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterPolicy {
    /// BASE (§4.2): memory ops are placed like any other op — best
    /// communication/balance trade-off, no chain constraint. Used for the
    /// unified-cache and multiVLIW machines.
    Free,
    /// IBC — Interleaved Build Chains: memory ops use the communication/
    /// balance heuristic, but all members of a memory dependent chain
    /// follow the cluster chosen for the chain's first-scheduled member.
    BuildChains,
    /// IPBC — Interleaved Pre-Build Chains: chains are computed before
    /// scheduling and pinned to their average preferred cluster.
    PreBuildChains,
    /// Analysis-only ablation (Figures 4 and 7, fourth/third bars): every
    /// memory op goes to its own preferred cluster, ignoring chains.
    /// **Not correct for execution** — used to quantify the cost of chains.
    NoChains,
}

impl ClusterPolicy {
    /// The [`ClusterAssign`] implementation behind this policy.
    pub fn assigner(&self) -> &'static dyn ClusterAssign {
        match self {
            ClusterPolicy::Free => &base::Base,
            ClusterPolicy::BuildChains => &ibc::Ibc,
            ClusterPolicy::PreBuildChains => &ipbc::Ipbc,
            ClusterPolicy::NoChains => &no_chains::NoChains,
        }
    }

    /// All four paper policies, in the paper's presentation order.
    pub const ALL: [ClusterPolicy; 4] = [
        ClusterPolicy::Free,
        ClusterPolicy::BuildChains,
        ClusterPolicy::PreBuildChains,
        ClusterPolicy::NoChains,
    ];
}

/// How trial reservations are isolated while a candidate slot is probed.
///
/// Both modes make identical placement decisions; they differ only in how
/// a failed probe's reservations are discarded. The clone-based mode is
/// retained as the reference implementation the equivalence tests compare
/// the journal against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrialMode {
    /// Journal reservations in the [`Mrt`] and unwind on failure
    /// (the default: O(reservations) per failed probe, no allocation).
    Journaled,
    /// Snapshot the whole table before the probe and restore it on failure
    /// (O(table) per probe — the pre-journal behavior).
    CloneBased,
}

/// Counters describing how much work one [`schedule_kernel`] call did —
/// the scheduler's throughput denominators (see the `sched` bench and the
/// `repro … sched` target).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Candidate `(cluster, cycle)` slots examined across all attempts —
    /// the innermost unit of scheduling work.
    pub trial_cycles: u64,
    /// Placement attempts run (II bumps × retry reorderings).
    pub attempts: u64,
    /// Trial probes that failed and were unwound.
    pub rollbacks: u64,
    /// Operations successfully placed (committed probes), summed over all
    /// attempts including abandoned ones.
    pub placements: u64,
    /// II levels at which an exact search hit its node budget and stopped
    /// without an infeasibility proof. Always 0 for heuristic backends;
    /// nonzero means the result's [`SchedQuality`] cannot claim
    /// optimality. Surfaced (never silently absorbed) by the `optgap`
    /// report.
    pub cutoffs: u64,
    /// Retry rungs walked by [`FallbackPolicy::RetryReducedBudget`] after
    /// a budget cutoff, before the result degraded to the heuristic
    /// incumbent. Always 0 under the other policies.
    pub fallback_retries: u64,
}

impl SchedStats {
    /// Accumulates another call's counters.
    pub fn merge(&mut self, other: &SchedStats) {
        self.trial_cycles += other.trial_cycles;
        self.attempts += other.attempts;
        self.rollbacks += other.rollbacks;
        self.placements += other.placements;
        self.cutoffs += other.cutoffs;
        self.fallback_retries += other.fallback_retries;
    }
}

/// Options for [`schedule_kernel`].
#[derive(Debug, Clone, Copy)]
pub struct ScheduleOptions {
    /// Cluster-assignment policy.
    pub policy: ClusterPolicy,
    /// Hard II limit; `None` = `2 × MII + 96`.
    pub max_ii: Option<u32>,
    /// Circuit-enumeration safety caps.
    pub enum_limits: EnumLimits,
    /// Trial-reservation isolation (default [`TrialMode::Journaled`];
    /// [`TrialMode::CloneBased`] is the reference path for equivalence
    /// testing).
    pub trial: TrialMode,
    /// Which [`SchedulerBackend`] runs the kernel → [`Schedule`]
    /// transformation (default [`SchedBackend::SwingModulo`], the paper's
    /// pipeline).
    pub backend: SchedBackend,
    /// Base node budget for the exact backend: candidate placements it
    /// may explore across all II levels of one call before reporting a
    /// cutoff. With [`ScheduleOptions::adaptive_budget`] set (the
    /// default) this base is scaled by kernel size; see
    /// [`ExactBnB::resolved_node_budget`]. Ignored by heuristic backends.
    pub node_budget: u64,
    /// Scale [`ScheduleOptions::node_budget`] by kernel size
    /// (`ops × II search range`, the ROADMAP's adaptive-budget item) so
    /// big unrolled kernels get proportional search effort instead of the
    /// flat default. Kernels at or below the reference size keep the base
    /// budget exactly, so small-suite results are unchanged.
    pub adaptive_budget: bool,
    /// Deterministic per-call deadline for the exact backend: a hard
    /// ceiling on candidate cells examined, composed by `min` with the
    /// resolved node budget (so a caller-supplied deadline can only
    /// tighten the search, never extend it). Node counts, not wall-clock:
    /// the same request hits the same deadline on any machine. `None`
    /// (the default) leaves the node budget alone. Ignored by heuristic
    /// backends.
    pub cost_ceiling: Option<u64>,
    /// What the exact backend does when the deadline runs out before the
    /// II question is decided (default [`FallbackPolicy::Heuristic`], the
    /// historical serve-the-incumbent behavior). Ignored by heuristic
    /// backends.
    pub fallback: FallbackPolicy,
    /// The [`DelayTracking`] backend's latency knob: `None` schedules
    /// each load at the *expectation* of its measured latency
    /// distribution, `Some(p)` at the p-th percentile (`p ∈ [0, 1]`;
    /// higher = more conservative, fewer broken promises, larger II).
    /// Ignored by the other backends.
    pub delay_percentile: Option<f64>,
    /// Which reservation-table implementation backs the placement loop
    /// (default [`MrtImpl::Masked`]; [`MrtImpl::ScalarReference`] is the
    /// legacy scalar-probe table retained for equivalence testing).
    pub mrt_impl: MrtImpl,
}

impl ScheduleOptions {
    /// Options for the given policy with default limits.
    pub fn new(policy: ClusterPolicy) -> Self {
        ScheduleOptions {
            policy,
            max_ii: None,
            enum_limits: EnumLimits::default(),
            trial: TrialMode::Journaled,
            backend: SchedBackend::SwingModulo,
            node_budget: DEFAULT_NODE_BUDGET,
            adaptive_budget: true,
            cost_ceiling: None,
            fallback: FallbackPolicy::Heuristic,
            delay_percentile: None,
            mrt_impl: MrtImpl::default(),
        }
    }

    /// The same options routed through a different backend.
    pub fn with_backend(mut self, backend: SchedBackend) -> Self {
        self.backend = backend;
        self
    }
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions::new(ClusterPolicy::Free)
    }
}

/// Modulo-schedules `kernel` for `machine`.
///
/// Dispatches to the backend selected by [`ScheduleOptions::backend`]
/// (default: [`SwingModulo`], the paper's §4.3.1 pipeline of latency
/// assignment, SMS node ordering, then cluster assignment + scheduling at
/// increasing II). The cluster-assignment policy is resolved through
/// [`ClusterPolicy::assigner`] — see [`ClusterAssign`] for that extension
/// seam, and [`SchedulerBackend`] for the whole-pipeline seam.
///
/// # Errors
///
/// [`ScheduleError::EmptyKernel`] for empty kernels,
/// [`ScheduleError::NoSchedule`] if no legal schedule exists up to the II
/// limit (pathological resource pressure), and
/// [`ScheduleError::SearchCutoff`] when an exact backend exhausts its node
/// budget with no schedule at all.
pub fn schedule_kernel(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    options: ScheduleOptions,
) -> Result<Schedule, ScheduleError> {
    schedule_kernel_with_stats(kernel, machine, options).map(|(s, _)| s)
}

/// [`schedule_kernel`] returning the work counters alongside the schedule.
///
/// # Errors
///
/// Same as [`schedule_kernel`].
pub fn schedule_kernel_with_stats(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    options: ScheduleOptions,
) -> Result<(Schedule, SchedStats), ScheduleError> {
    schedule_outcome(kernel, machine, options).map(|o| (o.schedule, o.stats))
}

/// [`schedule_kernel`] returning the full [`ScheduleOutcome`] — schedule,
/// work counters and the backend's quality claim (heuristic / proven
/// optimal / cutoff). This is the entry point callers use when the
/// distinction matters; the tuple-returning wrappers discard the claim.
///
/// # Errors
///
/// Same as [`schedule_kernel`].
pub fn schedule_outcome(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    options: ScheduleOptions,
) -> Result<ScheduleOutcome, ScheduleError> {
    schedule_outcome_traced(kernel, machine, options, Trace::off())
}

/// [`schedule_outcome`] with a [`Trace`] handle attached: the backend's
/// per-stage spans and telemetry go to the handle's sink. With
/// [`Trace::off`] (what [`schedule_outcome`] passes) every probe reduces
/// to a skipped branch and the call is behaviorally identical.
///
/// # Errors
///
/// Same as [`schedule_kernel`].
pub fn schedule_outcome_traced(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    options: ScheduleOptions,
    trace: Trace<'_>,
) -> Result<ScheduleOutcome, ScheduleError> {
    // checked at the dispatch point so every backend — current and
    // future — honors the EmptyKernel contract structurally
    if kernel.ops.is_empty() {
        return Err(ScheduleError::EmptyKernel);
    }
    options
        .backend
        .backend()
        .schedule_traced(kernel, machine, &options, trace)
}

/// The front-end's output as a self-contained public snapshot: what an
/// *external* solver needs to restate the placement problem — MII
/// bounds, the policy's cluster pins, and the latency assignment (whose
/// [`LatencyAssignment::edge_latency`](crate::latency::LatencyAssignment)
/// prices every dependence edge). Consumed by the experiments crate's
/// SMT-LIB exporter, which serializes the problem for off-the-shelf
/// SMT solvers as an independent yardstick beside [`ExactBnB`].
#[derive(Debug, Clone)]
pub struct ScheduleProblem {
    /// Resource-constrained MII component.
    pub res_mii: u32,
    /// Recurrence-constrained MII component.
    pub rec_mii: u32,
    /// `max(res, rec, 1)` — the II search floor.
    pub mii: u32,
    /// The II search ceiling (`options.max_ii` or `2 × MII + 96`).
    pub max_ii: u32,
    /// Per-op cluster pins known before scheduling (IPBC / NoChains).
    pub pins: Vec<Option<usize>>,
    /// The §4.3.3 latency assignment the backends schedule against.
    pub latencies: LatencyAssignment,
    /// SMS placement order (documentation of the heuristic's search
    /// order; an external solver is free to ignore it).
    pub order: Vec<OpId>,
}

/// Runs the shared front-end and returns its output as a public
/// [`ScheduleProblem`] snapshot (see there).
pub fn schedule_problem(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    options: &ScheduleOptions,
) -> ScheduleProblem {
    let (_, prep) = prepare(kernel, machine, options);
    ScheduleProblem {
        res_mii: prep.res,
        rec_mii: prep.rec,
        mii: prep.mii0,
        max_ii: prep.max_ii,
        pins: prep.pins,
        latencies: prep.latencies,
        order: prep.order,
    }
}

/// The shared §4.3.1 front-end every backend runs before placement:
/// circuits → policy pins → latency assignment → MII bounds → SMS node
/// ordering. Extracted so [`SwingModulo`] and [`ExactBnB`] prepare
/// bit-identically (same latencies, same MII, same order) and differ only
/// in how they search the placement space. `Clone` so the exact backend
/// runs its heuristic incumbent off the same preparation instead of
/// recomputing it.
#[derive(Clone)]
pub(crate) struct Prep {
    /// Memory dependent chains (§4.3.2).
    pub chains: MemChains,
    /// Per-op cluster pins known before scheduling (IPBC / NoChains).
    pub pins: Vec<Option<usize>>,
    /// The latency assignment (§4.3.3) computed against those pins.
    pub latencies: LatencyAssignment,
    /// Resource-constrained MII component.
    pub res: u32,
    /// Recurrence-constrained MII component.
    pub rec: u32,
    /// `max(res, rec, 1)` — the II search floor.
    pub mii0: u32,
    /// The II search ceiling (`options.max_ii` or `2 × MII + 96`).
    pub max_ii: u32,
    /// SMS placement order.
    pub order: Vec<OpId>,
}

/// Runs the front-end for `kernel`. The returned [`Ddg`] borrows the
/// kernel's edge list.
pub(crate) fn prepare<'k>(
    kernel: &'k LoopKernel,
    machine: &MachineConfig,
    options: &ScheduleOptions,
) -> (Ddg<'k>, Prep) {
    prepare_traced(kernel, machine, options, Trace::off())
}

/// [`prepare`] with per-stage spans: `prepare.ddg`, `prepare.circuits`,
/// `prepare.chains`, `prepare.pins`, `prepare.latency`, `prepare.mii`
/// (whose close carries the resolved bounds) and `prepare.order`. With
/// [`Trace::off`] each span is two skipped branches.
pub(crate) fn prepare_traced<'k>(
    kernel: &'k LoopKernel,
    machine: &MachineConfig,
    options: &ScheduleOptions,
    trace: Trace<'_>,
) -> (Ddg<'k>, Prep) {
    let ddg = {
        let _s = trace.span("prepare.ddg");
        Ddg::build(kernel)
    };
    let circuits = {
        let _s = trace.span("prepare.circuits");
        elementary_circuits(&ddg, options.enum_limits)
    };
    let chains = {
        let _s = trace.span("prepare.chains");
        MemChains::build(kernel)
    };
    let assigner = options.policy.assigner();

    // pre-computed pins (IPBC / NoChains) — known before scheduling, so
    // the latency assignment can estimate stall against the real cluster
    let n = machine.clusters.n_clusters;
    let pins = {
        let _s = trace.span("prepare.pins");
        assigner.precompute_pins(kernel, &chains, n)
    };

    // the latency model is the one front-end stage backends may replace:
    // the delay-tracking backend schedules loads at measured expected /
    // percentile latencies instead of running the §4.3.3 class reduction
    let latencies = {
        let _s = trace.span("prepare.latency");
        match options.backend {
            SchedBackend::DelayTracking => crate::latency::assign_profiled_latencies(
                kernel,
                &ddg,
                machine,
                &pins,
                options.delay_percentile,
            ),
            _ => {
                crate::latency::assign_latencies_with_pins(kernel, &ddg, machine, &circuits, &pins)
            }
        }
    };

    let _mii_span = trace.span("prepare.mii");
    let res = mii::res_mii(kernel, machine);
    let rec = mii::rec_mii(&ddg, |op| latencies.latency_of(op));
    let mii0 = res.max(rec).max(1);
    let max_ii = options.max_ii.unwrap_or(2 * mii0 + 96);
    if trace.on() {
        trace.instant(
            "prepare.mii.bounds",
            &[
                ("res", res as f64),
                ("rec", rec as f64),
                ("mii", mii0 as f64),
                ("max_ii", max_ii as f64),
            ],
        );
    }
    drop(_mii_span);

    let order = {
        let _s = trace.span("prepare.order");
        sms_order(&ddg, &circuits, |op| latencies.latency_of(op))
    };
    (
        ddg,
        Prep {
            chains,
            pins,
            latencies,
            res,
            rec,
            mii0,
            max_ii,
            order,
        },
    )
}

/// The Swing-Modulo-Scheduling pipeline body behind the [`SwingModulo`]
/// backend: front-end, then one no-backtracking placement pass per II,
/// with up to six hoist-and-retry reorderings per II.
///
/// # Errors
///
/// Same as [`schedule_kernel`].
pub(crate) fn swing_schedule_traced(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    options: &ScheduleOptions,
    trace: Trace<'_>,
) -> Result<(Schedule, SchedStats), ScheduleError> {
    if kernel.ops.is_empty() {
        return Err(ScheduleError::EmptyKernel);
    }
    let (ddg, prep) = prepare_traced(kernel, machine, options, trace);
    swing_with_prep(kernel, machine, options, &ddg, prep, trace)
}

/// [`swing_schedule_with_stats`] over an already-computed front-end —
/// the entry the exact backend uses for its incumbent, so preparation
/// runs once per call, not once per backend.
pub(crate) fn swing_with_prep(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    options: &ScheduleOptions,
    ddg: &Ddg<'_>,
    prep: Prep,
    trace: Trace<'_>,
) -> Result<(Schedule, SchedStats), ScheduleError> {
    // one placement loop, two occupancy representations: the table type is
    // the only thing the dispatch changes, so the scalar reference drives
    // byte-for-byte the same decision code as the masked production table
    match options.mrt_impl {
        MrtImpl::Masked => swing_with_prep_impl::<Mrt>(kernel, machine, options, ddg, prep, trace),
        MrtImpl::ScalarReference => {
            swing_with_prep_impl::<ScalarMrt>(kernel, machine, options, ddg, prep, trace)
        }
    }
}

fn swing_with_prep_impl<T: ReservationTable>(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    options: &ScheduleOptions,
    ddg: &Ddg<'_>,
    prep: Prep,
    trace: Trace<'_>,
) -> Result<(Schedule, SchedStats), ScheduleError> {
    let mut stats = SchedStats::default();
    let Prep {
        chains,
        pins,
        latencies,
        res,
        rec,
        mii0,
        max_ii,
        order,
    } = prep;
    let assigner = options.policy.assigner();

    // Span granularity stops here: probes wrap whole placement attempts,
    // never the inside of `TryState::run`, so the zero-allocation hot loop
    // is byte-identical with or without a sink attached.
    let _backend_span = if trace.on() {
        Some(trace.span_with(
            "backend.swing",
            &[("mii", mii0 as f64), ("max_ii", max_ii as f64)],
        ))
    } else {
        None
    };

    let mut scratch = Scratch::<T>::new(kernel.ops.len(), machine);
    let mut attempt_order: Vec<OpId> = Vec::with_capacity(order.len());
    for ii in mii0..=max_ii {
        // Up to six placement attempts per II: when an op cannot be
        // placed (its window was squeezed shut by loosely-connected
        // neighbors anchored earlier), hoist it to the front of the order
        // and retry — the constraint then lands on the neighbors, whose
        // loop-carried edges leave II-wide slack. This keeps the scheduler
        // backtracking-free per attempt while avoiding the pathological
        // II inflation of a single rigid order.
        attempt_order.clear();
        attempt_order.extend_from_slice(&order);
        for _retry in 0..6 {
            stats.attempts += 1;
            if trace.on() {
                trace.instant(
                    "swing.attempt",
                    &[("ii", ii as f64), ("retry", _retry as f64)],
                );
            }
            let attempt = TryState {
                kernel,
                ddg,
                machine,
                latencies: &latencies,
                chains: &chains,
                assigner,
                pins: &pins,
                order: &attempt_order,
            };
            match attempt.run(ii, options.trial, &mut scratch, &mut stats) {
                Ok((ops, copies)) => {
                    if trace.on() {
                        trace.instant(
                            "swing.found",
                            &[
                                ("ii", ii as f64),
                                ("placements", stats.placements as f64),
                                ("trial_cycles", stats.trial_cycles as f64),
                            ],
                        );
                    }
                    return Ok((
                        Schedule {
                            ii,
                            ops,
                            copies,
                            mii: mii0,
                            res_mii: res,
                            rec_mii: rec,
                            latencies,
                        },
                        stats,
                    ));
                }
                Err(failed) => {
                    let pos = attempt_order
                        .iter()
                        .position(|&o| o == failed)
                        .expect("in order");
                    if pos == 0 {
                        break; // already first: retries cannot help
                    }
                    attempt_order.remove(pos);
                    attempt_order.insert(0, failed);
                }
            }
        }
    }
    Err(ScheduleError::NoSchedule {
        loop_name: kernel.name.clone(),
        max_ii,
    })
}

struct TryState<'a> {
    kernel: &'a LoopKernel,
    ddg: &'a Ddg<'a>,
    machine: &'a MachineConfig,
    latencies: &'a LatencyAssignment,
    chains: &'a MemChains,
    assigner: &'a dyn ClusterAssign,
    pins: &'a [Option<usize>],
    order: &'a [OpId],
}

#[derive(Debug, Clone, Copy)]
struct Placement {
    cluster: usize,
    cycle: i64,
}

/// An already-placed dependence neighbor of the op being placed, with the
/// timing fields the window computation needs.
struct Nbr {
    other_cluster: usize,
    other_cycle: i64,
    lat: i64,
    dist: i64,
    regflow: bool,
    other: OpId,
}

/// The engine's reusable workspace: every vector the placement loop needs,
/// owned across attempts and II bumps. Buffers are cleared (`clear`) but
/// never shrunk, so after the first attempt the steady state allocates
/// nothing.
struct Scratch<T: ReservationTable> {
    /// The live reservation table, reset per attempt.
    mrt: T,
    /// Whole-table snapshot used by [`TrialMode::CloneBased`] only.
    mrt_backup: Option<T>,
    placed: Vec<Option<Placement>>,
    copies: Vec<ScheduledCopy>,
    /// Parallel to `copies`: raw (pre-normalization) cycles.
    copy_cycles: Vec<i64>,
    copy_map: HashMap<(OpId, usize), usize>,
    assign_state: AssignState,
    load_count: Vec<usize>,
    // per-op buffers
    preds: Vec<Nbr>,
    succs: Vec<Nbr>,
    nbr_preds: Vec<Neighbor>,
    nbr_succs: Vec<Neighbor>,
    candidates: Vec<usize>,
    // per-trial buffers
    new_copies: Vec<(OpId, usize, usize, i64, usize)>,
    seen_pred: Vec<OpId>,
    dest_bounds: Vec<(usize, i64)>,
}

impl<T: ReservationTable> Scratch<T> {
    fn new(n_ops: usize, machine: &MachineConfig) -> Self {
        Scratch {
            mrt: T::new(1, machine),
            mrt_backup: None,
            placed: Vec::with_capacity(n_ops),
            copies: Vec::new(),
            copy_cycles: Vec::new(),
            copy_map: HashMap::new(),
            assign_state: AssignState::default(),
            load_count: Vec::new(),
            preds: Vec::new(),
            succs: Vec::new(),
            nbr_preds: Vec::new(),
            nbr_succs: Vec::new(),
            candidates: Vec::new(),
            new_copies: Vec::new(),
            seen_pred: Vec::new(),
            dest_bounds: Vec::new(),
        }
    }

    /// Resets the attempt-lifetime state for a fresh placement attempt.
    fn reset_attempt(&mut self, ii: u32, n_ops: usize, machine: &MachineConfig) {
        self.mrt.reset(ii, machine);
        self.placed.clear();
        self.placed.resize(n_ops, None);
        self.copies.clear();
        self.copy_cycles.clear();
        self.copy_map.clear();
        self.assign_state.chain_pin.clear();
        self.load_count.clear();
        self.load_count.resize(machine.clusters.n_clusters, 0);
    }
}

impl TryState<'_> {
    /// One no-backtracking placement attempt; `Err` carries the op that
    /// could not be placed.
    fn run<T: ReservationTable>(
        &self,
        ii: u32,
        trial_mode: TrialMode,
        scratch: &mut Scratch<T>,
        stats: &mut SchedStats,
    ) -> Result<(Vec<ScheduledOp>, Vec<ScheduledCopy>), OpId> {
        let n_ops = self.kernel.ops.len();
        let n = self.machine.clusters.n_clusters;
        let transfer = self.machine.buses.transfer_cycles as i64;
        let iii = ii as i64;

        scratch.reset_attempt(ii, n_ops, self.machine);

        for &op_id in self.order {
            let op = self.kernel.op(op_id);
            let kind = op.fu_kind();
            let lat_self = self.latencies.latency_of(op_id) as i64;

            // gather placed neighbors
            scratch.preds.clear();
            scratch.succs.clear();
            for e in self.ddg.pred_edges(op_id) {
                if e.from == op_id {
                    continue; // self-edge constrains nothing within an II
                }
                if let Some(p) = scratch.placed[e.from.index()] {
                    scratch.preds.push(Nbr {
                        other_cluster: p.cluster,
                        other_cycle: p.cycle,
                        lat: self.latencies.edge_latency(e, self.kernel) as i64,
                        dist: e.distance as i64,
                        regflow: e.kind == DepKind::RegFlow,
                        other: e.from,
                    });
                }
            }
            for e in self.ddg.succ_edges(op_id) {
                if e.to == op_id {
                    continue;
                }
                if let Some(s) = scratch.placed[e.to.index()] {
                    scratch.succs.push(Nbr {
                        other_cluster: s.cluster,
                        other_cycle: s.cycle,
                        lat: self.latencies.edge_latency(e, self.kernel) as i64,
                        dist: e.distance as i64,
                        regflow: e.kind == DepKind::RegFlow,
                        other: e.to,
                    });
                }
            }

            // candidate clusters, chosen by the policy
            scratch.nbr_preds.clear();
            scratch
                .nbr_preds
                .extend(scratch.preds.iter().map(|p| Neighbor {
                    other: p.other,
                    cluster: p.other_cluster,
                    regflow: p.regflow,
                }));
            scratch.nbr_succs.clear();
            scratch
                .nbr_succs
                .extend(scratch.succs.iter().map(|s| Neighbor {
                    other: s.other,
                    cluster: s.other_cluster,
                    regflow: s.regflow,
                }));
            // the context borrows the mutable bookkeeping immutably, so it
            // is rebuilt at each policy call site instead of held across
            // the placement scan
            macro_rules! assign_ctx {
                ($has_copy:ident) => {
                    AssignContext {
                        kernel: self.kernel,
                        chains: self.chains,
                        n_clusters: n,
                        preds: &scratch.nbr_preds,
                        succs: &scratch.nbr_succs,
                        has_copy: &$has_copy,
                        load_count: &scratch.load_count,
                    }
                };
            }
            {
                let copy_map = &scratch.copy_map;
                let has_copy =
                    |producer: OpId, cluster: usize| copy_map.contains_key(&(producer, cluster));
                let ctx = assign_ctx!(has_copy);
                self.assigner.candidates_into(
                    op_id,
                    &ctx,
                    self.pins,
                    &scratch.assign_state,
                    &mut scratch.candidates,
                );
            }

            // compute placement window per cluster and scan
            let mut done = false;
            for ci in 0..scratch.candidates.len() {
                let cluster = scratch.candidates[ci];
                let mut estart: Option<i64> = None;
                for p in &scratch.preds {
                    let extra = if p.regflow && p.other_cluster != cluster {
                        transfer
                    } else {
                        0
                    };
                    let e = p.other_cycle + p.lat + extra - iii * p.dist;
                    estart = Some(estart.map_or(e, |x: i64| x.max(e)));
                }
                let mut lstart: Option<i64> = None;
                for s in &scratch.succs {
                    let extra = if s.regflow && s.other_cluster != cluster {
                        transfer
                    } else {
                        0
                    };
                    // s.lat already accounts for edge kind (flow edges carry
                    // this op's latency, since this op is the producer)
                    let l = s.other_cycle - s.lat - extra + iii * s.dist;
                    lstart = Some(lstart.map_or(l, |x: i64| x.min(l)));
                }

                // The candidate window, iterated lazily (no materialized
                // range). `descending` scans from `hi` down to `lo`.
                let (lo, hi, descending) = match (estart, lstart) {
                    (Some(e), Some(l)) => {
                        if e > l {
                            continue;
                        }
                        // Both sides constrained: place as close to the
                        // consumers as possible (descending). The window can
                        // be II-wide when the pred side connects through a
                        // loop-carried edge; placing at its bottom would
                        // stretch the value's lifetime by up to a whole II
                        // and starve the (pred-side) ops ordered after this
                        // one of their windows.
                        (e, l.min(e + iii - 1), true)
                    }
                    (Some(e), None) => (e, e + iii - 1, false),
                    (None, Some(l)) => (l - iii + 1, l, true),
                    (None, None) => (0, iii - 1, false),
                };

                // walk the window over the row's free-mask: occupied
                // stretches are skipped a word at a time and cost no trial
                // work — `trial_cycles` counts free cells actually probed
                let limit = if descending { lo } else { hi };
                let mut cursor = if descending { hi } else { lo };
                'cycle: while let Some(cycle) = scratch
                    .mrt
                    .next_free_fu_cycle(cluster, kind, cursor, limit, descending)
                {
                    cursor = if descending { cycle - 1 } else { cycle + 1 };
                    stats.trial_cycles += 1;
                    // open a trial: reservations are provisional until the
                    // whole op (slot + every needed copy) fits
                    match trial_mode {
                        TrialMode::Journaled => scratch.mrt.begin(),
                        TrialMode::CloneBased => match &mut scratch.mrt_backup {
                            Some(b) => b.clone_from(&scratch.mrt),
                            none => *none = Some(scratch.mrt.clone()),
                        },
                    }
                    macro_rules! trial_fail {
                        () => {{
                            stats.rollbacks += 1;
                            match trial_mode {
                                TrialMode::Journaled => scratch.mrt.rollback(),
                                TrialMode::CloneBased => scratch
                                    .mrt
                                    .clone_from(scratch.mrt_backup.as_ref().expect("backup")),
                            }
                            continue 'cycle;
                        }};
                    }
                    scratch.mrt.fu_reserve(cluster, kind, cycle);
                    scratch.new_copies.clear();

                    // copies for cross-cluster flow predecessors
                    scratch.seen_pred.clear();
                    for pi in 0..scratch.preds.len() {
                        let p = &scratch.preds[pi];
                        if !(p.regflow && p.other_cluster != cluster) {
                            continue;
                        }
                        if scratch.seen_pred.contains(&p.other) {
                            continue;
                        }
                        scratch.seen_pred.push(p.other);
                        // all edges from this producer to op in this cluster:
                        // bound = min over them
                        let bound = scratch
                            .preds
                            .iter()
                            .filter(|q| q.regflow && q.other == p.other)
                            .map(|q| cycle + iii * q.dist - transfer)
                            .min()
                            .unwrap();
                        if let Some(&idx) = scratch.copy_map.get(&(p.other, cluster)) {
                            if scratch.copy_cycles[idx] <= bound {
                                continue; // reuse existing copy
                            }
                            trial_fail!(); // existing copy too late
                        }
                        let ready = p.other_cycle + p.lat; // producer completion
                        let (other, other_cluster) = (p.other, p.other_cluster);
                        let mut found = false;
                        let mut tc = ready;
                        while tc <= bound {
                            if let Some(bus) = scratch.mrt.bus_find(tc) {
                                scratch.mrt.bus_reserve(bus, tc);
                                scratch
                                    .new_copies
                                    .push((other, other_cluster, cluster, tc, bus));
                                found = true;
                                break;
                            }
                            tc += 1;
                        }
                        if !found {
                            trial_fail!();
                        }
                    }

                    // copies for cross-cluster flow successors (op is the
                    // producer): one copy per destination cluster
                    scratch.dest_bounds.clear();
                    for s in scratch
                        .succs
                        .iter()
                        .filter(|s| s.regflow && s.other_cluster != cluster)
                    {
                        let b = s.other_cycle + iii * s.dist - transfer;
                        match scratch
                            .dest_bounds
                            .iter_mut()
                            .find(|(c, _)| *c == s.other_cluster)
                        {
                            Some((_, bound)) => *bound = (*bound).min(b),
                            None => scratch.dest_bounds.push((s.other_cluster, b)),
                        }
                    }
                    for di in 0..scratch.dest_bounds.len() {
                        let (dest, bound) = scratch.dest_bounds[di];
                        let ready = cycle + lat_self;
                        let mut found = false;
                        let mut tc = ready;
                        while tc <= bound {
                            if let Some(bus) = scratch.mrt.bus_find(tc) {
                                scratch.mrt.bus_reserve(bus, tc);
                                scratch.new_copies.push((op_id, cluster, dest, tc, bus));
                                found = true;
                                break;
                            }
                            tc += 1;
                        }
                        if !found {
                            trial_fail!();
                        }
                    }

                    // success: commit
                    if std::env::var_os("VLIW_SCHED_TRACE").is_some() {
                        eprintln!(
                            "II {ii}: place {op_id} ({}) cl {cluster} cyc {cycle}",
                            op.name
                        );
                    }
                    match trial_mode {
                        TrialMode::Journaled => scratch.mrt.commit(),
                        TrialMode::CloneBased => {} // mutations already live
                    }
                    stats.placements += 1;
                    scratch.placed[op_id.index()] = Some(Placement { cluster, cycle });
                    scratch.load_count[cluster] += 1;
                    for (prod, from, to, tc, bus) in scratch.new_copies.drain(..) {
                        scratch.copy_map.insert((prod, to), scratch.copies.len());
                        scratch.copy_cycles.push(tc);
                        // real cycle is fixed after normalization below
                        scratch.copies.push(ScheduledCopy {
                            producer: prod,
                            from,
                            to,
                            cycle: 0,
                            bus,
                        });
                    }
                    {
                        let copy_map = &scratch.copy_map;
                        let has_copy = |producer: OpId, cluster: usize| {
                            copy_map.contains_key(&(producer, cluster))
                        };
                        let ctx = assign_ctx!(has_copy);
                        self.assigner
                            .commit(op_id, cluster, &ctx, &mut scratch.assign_state);
                    }
                    done = true;
                    break;
                }
                if done {
                    break;
                }
            }
            if !done {
                if std::env::var_os("VLIW_SCHED_DEBUG").is_some() {
                    let copy_map = &scratch.copy_map;
                    let has_copy = |producer: OpId, cluster: usize| {
                        copy_map.contains_key(&(producer, cluster))
                    };
                    let ctx = assign_ctx!(has_copy);
                    let pin = self
                        .assigner
                        .pin(op_id, &ctx, self.pins, &scratch.assign_state);
                    eprintln!(
                        "II {ii}: failed to place {op_id} ({}) pin {pin:?} preds {} succs {}",
                        op.name,
                        scratch.preds.len(),
                        scratch.succs.len()
                    );
                    for p in &scratch.preds {
                        eprintln!(
                            "  pred {} cl {} cyc {} lat {} d {}",
                            p.other, p.other_cluster, p.other_cycle, p.lat, p.dist
                        );
                    }
                    for s in &scratch.succs {
                        eprintln!(
                            "  succ {} cl {} cyc {} lat {} d {}",
                            s.other, s.other_cluster, s.other_cycle, s.lat, s.dist
                        );
                    }
                    for &cluster in &scratch.candidates {
                        let e = scratch
                            .preds
                            .iter()
                            .map(|p| {
                                let x = if p.regflow && p.other_cluster != cluster {
                                    transfer
                                } else {
                                    0
                                };
                                p.other_cycle + p.lat + x - iii * p.dist
                            })
                            .max();
                        let l = scratch
                            .succs
                            .iter()
                            .map(|s| {
                                let x = if s.regflow && s.other_cluster != cluster {
                                    transfer
                                } else {
                                    0
                                };
                                s.other_cycle - s.lat - x + iii * s.dist
                            })
                            .min();
                        eprintln!("  cluster {cluster}: estart {e:?} lstart {l:?}");
                    }
                }
                return Err(op_id);
            }
        }

        // normalize cycles to start at 0
        let min_cycle = scratch
            .placed
            .iter()
            .map(|p| p.unwrap().cycle)
            .chain(scratch.copy_cycles.iter().copied())
            .min()
            .unwrap_or(0);
        let ops: Vec<ScheduledOp> = scratch
            .placed
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let p = p.expect("all ops placed");
                ScheduledOp {
                    cluster: p.cluster,
                    cycle: (p.cycle - min_cycle) as u32,
                    assumed_latency: self.latencies.latency_of(OpId::new(i)),
                }
            })
            .collect();
        let copies: Vec<ScheduledCopy> = scratch
            .copies
            .drain(..)
            .zip(scratch.copy_cycles.drain(..))
            .map(|(mut c, raw)| {
                c.cycle = (raw - min_cycle) as u32;
                c
            })
            .collect();
        Ok((ops, copies))
    }
}
