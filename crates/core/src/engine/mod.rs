//! The scheduling engine: cluster assignment and slot placement in a single
//! step (§4.2 and §4.3.1 step 4), with no backtracking — any failure bumps
//! the II and restarts, exactly as the paper describes.
//!
//! Cluster-assignment heuristics are pluggable: the engine drives a
//! [`ClusterAssign`] trait object, one implementation per policy module
//! ([`base`], [`ibc`], [`ipbc`], [`no_chains`]). [`ClusterPolicy`] is the
//! thin enum mapping the paper's names onto those implementations; adding a
//! heuristic is one new module plus one enum arm.

pub mod base;
pub mod ibc;
pub mod ipbc;
pub mod no_chains;
pub mod policy;

use std::collections::HashMap;

use vliw_ir::{Ddg, DepKind, LoopKernel, OpId};
use vliw_machine::MachineConfig;

use crate::chains::MemChains;
use crate::circuits::{elementary_circuits, EnumLimits};
use crate::latency::LatencyAssignment;
use crate::mii;
use crate::mrt::Mrt;
use crate::order::sms_order;
use crate::schedule::{Schedule, ScheduleError, ScheduledCopy, ScheduledOp};

pub use policy::{AssignContext, AssignState, ClusterAssign, Neighbor};

/// How memory instructions are assigned to clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterPolicy {
    /// BASE (§4.2): memory ops are placed like any other op — best
    /// communication/balance trade-off, no chain constraint. Used for the
    /// unified-cache and multiVLIW machines.
    Free,
    /// IBC — Interleaved Build Chains: memory ops use the communication/
    /// balance heuristic, but all members of a memory dependent chain
    /// follow the cluster chosen for the chain's first-scheduled member.
    BuildChains,
    /// IPBC — Interleaved Pre-Build Chains: chains are computed before
    /// scheduling and pinned to their average preferred cluster.
    PreBuildChains,
    /// Analysis-only ablation (Figures 4 and 7, fourth/third bars): every
    /// memory op goes to its own preferred cluster, ignoring chains.
    /// **Not correct for execution** — used to quantify the cost of chains.
    NoChains,
}

impl ClusterPolicy {
    /// The [`ClusterAssign`] implementation behind this policy.
    pub fn assigner(&self) -> &'static dyn ClusterAssign {
        match self {
            ClusterPolicy::Free => &base::Base,
            ClusterPolicy::BuildChains => &ibc::Ibc,
            ClusterPolicy::PreBuildChains => &ipbc::Ipbc,
            ClusterPolicy::NoChains => &no_chains::NoChains,
        }
    }

    /// All four paper policies, in the paper's presentation order.
    pub const ALL: [ClusterPolicy; 4] = [
        ClusterPolicy::Free,
        ClusterPolicy::BuildChains,
        ClusterPolicy::PreBuildChains,
        ClusterPolicy::NoChains,
    ];
}

/// Options for [`schedule_kernel`].
#[derive(Debug, Clone, Copy)]
pub struct ScheduleOptions {
    /// Cluster-assignment policy.
    pub policy: ClusterPolicy,
    /// Hard II limit; `None` = `2 × MII + 96`.
    pub max_ii: Option<u32>,
    /// Circuit-enumeration safety caps.
    pub enum_limits: EnumLimits,
}

impl ScheduleOptions {
    /// Options for the given policy with default limits.
    pub fn new(policy: ClusterPolicy) -> Self {
        ScheduleOptions {
            policy,
            max_ii: None,
            enum_limits: EnumLimits::default(),
        }
    }
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions::new(ClusterPolicy::Free)
    }
}

/// Modulo-schedules `kernel` for `machine`.
///
/// Runs the full pipeline of §4.3.1 (except unrolling, which is a kernel
/// transformation — see `unroll_select`): latency assignment, node
/// ordering, then cluster assignment + scheduling at increasing II. The
/// cluster-assignment policy is resolved through
/// [`ClusterPolicy::assigner`] — see [`ClusterAssign`] for the extension
/// seam.
///
/// # Errors
///
/// [`ScheduleError::EmptyKernel`] for empty kernels and
/// [`ScheduleError::NoSchedule`] if no legal schedule exists up to the II
/// limit (pathological resource pressure).
pub fn schedule_kernel(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    options: ScheduleOptions,
) -> Result<Schedule, ScheduleError> {
    if kernel.ops.is_empty() {
        return Err(ScheduleError::EmptyKernel);
    }
    let ddg = Ddg::build(kernel);
    let circuits = elementary_circuits(&ddg, options.enum_limits);
    let chains = MemChains::build(kernel);
    let assigner = options.policy.assigner();

    // pre-computed pins (IPBC / NoChains) — known before scheduling, so
    // the latency assignment can estimate stall against the real cluster
    let n = machine.clusters.n_clusters;
    let pins = assigner.precompute_pins(kernel, &chains, n);

    let latencies =
        crate::latency::assign_latencies_with_pins(kernel, &ddg, machine, &circuits, &pins);

    let res = mii::res_mii(kernel, machine);
    let rec = mii::rec_mii(&ddg, |op| latencies.latency_of(op));
    let mii0 = res.max(rec).max(1);
    let max_ii = options.max_ii.unwrap_or(2 * mii0 + 96);

    let order = sms_order(&ddg, &circuits, |op| latencies.latency_of(op));

    for ii in mii0..=max_ii {
        // Up to six placement attempts per II: when an op cannot be
        // placed (its window was squeezed shut by loosely-connected
        // neighbors anchored earlier), hoist it to the front of the order
        // and retry — the constraint then lands on the neighbors, whose
        // loop-carried edges leave II-wide slack. This keeps the scheduler
        // backtracking-free per attempt while avoiding the pathological
        // II inflation of a single rigid order.
        let mut attempt_order = order.clone();
        for _retry in 0..6 {
            let attempt = TryState {
                kernel,
                ddg: &ddg,
                machine,
                latencies: &latencies,
                chains: &chains,
                assigner,
                pins: &pins,
                order: &attempt_order,
            };
            match attempt.run(ii) {
                Ok((ops, copies)) => {
                    return Ok(Schedule {
                        ii,
                        ops,
                        copies,
                        mii: mii0,
                        res_mii: res,
                        rec_mii: rec,
                        latencies,
                    });
                }
                Err(failed) => {
                    let pos = attempt_order
                        .iter()
                        .position(|&o| o == failed)
                        .expect("in order");
                    if pos == 0 {
                        break; // already first: retries cannot help
                    }
                    attempt_order.remove(pos);
                    attempt_order.insert(0, failed);
                }
            }
        }
    }
    Err(ScheduleError::NoSchedule {
        loop_name: kernel.name.clone(),
        max_ii,
    })
}

struct TryState<'a> {
    kernel: &'a LoopKernel,
    ddg: &'a Ddg,
    machine: &'a MachineConfig,
    latencies: &'a LatencyAssignment,
    chains: &'a MemChains,
    assigner: &'a dyn ClusterAssign,
    pins: &'a [Option<usize>],
    order: &'a [OpId],
}

#[derive(Debug, Clone, Copy)]
struct Placement {
    cluster: usize,
    cycle: i64,
}

impl TryState<'_> {
    /// One no-backtracking placement attempt; `Err` carries the op that
    /// could not be placed.
    fn run(&self, ii: u32) -> Result<(Vec<ScheduledOp>, Vec<ScheduledCopy>), OpId> {
        let n_ops = self.kernel.ops.len();
        let n = self.machine.clusters.n_clusters;
        let transfer = self.machine.buses.transfer_cycles as i64;
        let iii = ii as i64;

        let mut mrt = Mrt::new(ii, self.machine);
        let mut placed: Vec<Option<Placement>> = vec![None; n_ops];
        let mut copies: Vec<ScheduledCopy> = Vec::new();
        let mut copy_cycles: Vec<i64> = Vec::new(); // parallel to `copies`
        let mut copy_map: HashMap<(OpId, usize), usize> = HashMap::new();
        let mut assign_state = AssignState::default();
        let mut load_count = vec![0usize; n];

        for &op_id in self.order {
            let op = self.kernel.op(op_id);
            let kind = op.fu_kind();
            let lat_self = self.latencies.latency_of(op_id) as i64;

            // gather placed neighbors
            struct Nbr {
                other_cluster: usize,
                other_cycle: i64,
                lat: i64,
                dist: i64,
                regflow: bool,
                other: OpId,
            }
            let mut preds: Vec<Nbr> = Vec::new();
            let mut succs: Vec<Nbr> = Vec::new();
            for e in self.ddg.pred_edges(op_id) {
                if e.from == op_id {
                    continue; // self-edge constrains nothing within an II
                }
                if let Some(p) = placed[e.from.index()] {
                    preds.push(Nbr {
                        other_cluster: p.cluster,
                        other_cycle: p.cycle,
                        lat: self.latencies.edge_latency(e, self.kernel) as i64,
                        dist: e.distance as i64,
                        regflow: e.kind == DepKind::RegFlow,
                        other: e.from,
                    });
                }
            }
            for e in self.ddg.succ_edges(op_id) {
                if e.to == op_id {
                    continue;
                }
                if let Some(s) = placed[e.to.index()] {
                    succs.push(Nbr {
                        other_cluster: s.cluster,
                        other_cycle: s.cycle,
                        lat: self.latencies.edge_latency(e, self.kernel) as i64,
                        dist: e.distance as i64,
                        regflow: e.kind == DepKind::RegFlow,
                        other: e.to,
                    });
                }
            }

            // candidate clusters, chosen by the policy
            let nbr_preds: Vec<Neighbor> = preds
                .iter()
                .map(|p| Neighbor {
                    other: p.other,
                    cluster: p.other_cluster,
                    regflow: p.regflow,
                })
                .collect();
            let nbr_succs: Vec<Neighbor> = succs
                .iter()
                .map(|s| Neighbor {
                    other: s.other,
                    cluster: s.other_cluster,
                    regflow: s.regflow,
                })
                .collect();
            // the context borrows the mutable bookkeeping immutably, so it
            // is rebuilt at each policy call site instead of held across
            // the placement scan
            macro_rules! assign_ctx {
                ($has_copy:ident) => {
                    AssignContext {
                        kernel: self.kernel,
                        chains: self.chains,
                        n_clusters: n,
                        preds: &nbr_preds,
                        succs: &nbr_succs,
                        has_copy: &$has_copy,
                        load_count: &load_count,
                    }
                };
            }
            let candidates = {
                let has_copy =
                    |producer: OpId, cluster: usize| copy_map.contains_key(&(producer, cluster));
                let ctx = assign_ctx!(has_copy);
                self.assigner
                    .candidates(op_id, &ctx, self.pins, &assign_state)
            };

            // compute placement window per cluster and scan
            let mut done = false;
            for &cluster in &candidates {
                let mut estart: Option<i64> = None;
                for p in &preds {
                    let extra = if p.regflow && p.other_cluster != cluster {
                        transfer
                    } else {
                        0
                    };
                    let e = p.other_cycle + p.lat + extra - iii * p.dist;
                    estart = Some(estart.map_or(e, |x: i64| x.max(e)));
                }
                let mut lstart: Option<i64> = None;
                for s in &succs {
                    let extra = if s.regflow && s.other_cluster != cluster {
                        transfer
                    } else {
                        0
                    };
                    // s.lat already accounts for edge kind (flow edges carry
                    // this op's latency, since this op is the producer)
                    let l = s.other_cycle - s.lat - extra + iii * s.dist;
                    lstart = Some(lstart.map_or(l, |x: i64| x.min(l)));
                }

                let range: Vec<i64> = match (estart, lstart) {
                    (Some(e), Some(l)) => {
                        if e > l {
                            continue;
                        }
                        // Both sides constrained: place as close to the
                        // consumers as possible (descending). The window can
                        // be II-wide when the pred side connects through a
                        // loop-carried edge; placing at its bottom would
                        // stretch the value's lifetime by up to a whole II
                        // and starve the (pred-side) ops ordered after this
                        // one of their windows.
                        let top = l.min(e + iii - 1);
                        (e..=top).rev().collect()
                    }
                    (Some(e), None) => (e..=(e + iii - 1)).collect(),
                    (None, Some(l)) => ((l - iii + 1)..=l).rev().collect(),
                    (None, None) => (0..iii).collect(),
                };

                'cycle: for cycle in range {
                    if !mrt.fu_free(cluster, kind, cycle) {
                        continue;
                    }
                    // trial resource state
                    let mut trial = mrt.clone();
                    trial.fu_reserve(cluster, kind, cycle);
                    let mut new_copies: Vec<(OpId, usize, usize, i64, usize)> = Vec::new();

                    // copies for cross-cluster flow predecessors
                    let mut seen_pred: Vec<OpId> = Vec::new();
                    for p in preds
                        .iter()
                        .filter(|p| p.regflow && p.other_cluster != cluster)
                    {
                        if seen_pred.contains(&p.other) {
                            continue;
                        }
                        seen_pred.push(p.other);
                        // all edges from this producer to op in this cluster:
                        // bound = min over them
                        let bound = preds
                            .iter()
                            .filter(|q| q.regflow && q.other == p.other)
                            .map(|q| cycle + iii * q.dist - transfer)
                            .min()
                            .unwrap();
                        if let Some(&idx) = copy_map.get(&(p.other, cluster)) {
                            if copy_cycles[idx] <= bound {
                                continue; // reuse existing copy
                            }
                            continue 'cycle; // existing copy too late
                        }
                        let ready = p.other_cycle + p.lat; // producer completion
                        let mut found = false;
                        let mut tc = ready;
                        while tc <= bound {
                            if let Some(bus) = trial.bus_find(tc) {
                                trial.bus_reserve(bus, tc);
                                new_copies.push((p.other, p.other_cluster, cluster, tc, bus));
                                found = true;
                                break;
                            }
                            tc += 1;
                        }
                        if !found {
                            continue 'cycle;
                        }
                    }

                    // copies for cross-cluster flow successors (op is the
                    // producer): one copy per destination cluster
                    let mut dest_bounds: Vec<(usize, i64)> = Vec::new();
                    for s in succs
                        .iter()
                        .filter(|s| s.regflow && s.other_cluster != cluster)
                    {
                        let b = s.other_cycle + iii * s.dist - transfer;
                        match dest_bounds.iter_mut().find(|(c, _)| *c == s.other_cluster) {
                            Some((_, bound)) => *bound = (*bound).min(b),
                            None => dest_bounds.push((s.other_cluster, b)),
                        }
                    }
                    for (dest, bound) in dest_bounds {
                        let ready = cycle + lat_self;
                        let mut found = false;
                        let mut tc = ready;
                        while tc <= bound {
                            if let Some(bus) = trial.bus_find(tc) {
                                trial.bus_reserve(bus, tc);
                                new_copies.push((op_id, cluster, dest, tc, bus));
                                found = true;
                                break;
                            }
                            tc += 1;
                        }
                        if !found {
                            continue 'cycle;
                        }
                    }

                    // success: commit
                    if std::env::var_os("VLIW_SCHED_TRACE").is_some() {
                        eprintln!(
                            "II {ii}: place {op_id} ({}) cl {cluster} cyc {cycle}",
                            op.name
                        );
                    }
                    mrt = trial;
                    placed[op_id.index()] = Some(Placement { cluster, cycle });
                    load_count[cluster] += 1;
                    for (prod, from, to, tc, bus) in new_copies {
                        copy_map.insert((prod, to), copies.len());
                        copy_cycles.push(tc);
                        // real cycle is fixed after normalization below
                        copies.push(ScheduledCopy {
                            producer: prod,
                            from,
                            to,
                            cycle: 0,
                            bus,
                        });
                    }
                    {
                        let has_copy = |producer: OpId, cluster: usize| {
                            copy_map.contains_key(&(producer, cluster))
                        };
                        let ctx = assign_ctx!(has_copy);
                        self.assigner
                            .commit(op_id, cluster, &ctx, &mut assign_state);
                    }
                    done = true;
                    break;
                }
                if done {
                    break;
                }
            }
            if !done {
                if std::env::var_os("VLIW_SCHED_DEBUG").is_some() {
                    let has_copy = |producer: OpId, cluster: usize| {
                        copy_map.contains_key(&(producer, cluster))
                    };
                    let ctx = assign_ctx!(has_copy);
                    let pin = self.assigner.pin(op_id, &ctx, self.pins, &assign_state);
                    eprintln!(
                        "II {ii}: failed to place {op_id} ({}) pin {pin:?} preds {} succs {}",
                        op.name,
                        preds.len(),
                        succs.len()
                    );
                    for p in &preds {
                        eprintln!(
                            "  pred {} cl {} cyc {} lat {} d {}",
                            p.other, p.other_cluster, p.other_cycle, p.lat, p.dist
                        );
                    }
                    for s in &succs {
                        eprintln!(
                            "  succ {} cl {} cyc {} lat {} d {}",
                            s.other, s.other_cluster, s.other_cycle, s.lat, s.dist
                        );
                    }
                    for &cluster in &candidates {
                        let e = preds
                            .iter()
                            .map(|p| {
                                let x = if p.regflow && p.other_cluster != cluster {
                                    transfer
                                } else {
                                    0
                                };
                                p.other_cycle + p.lat + x - iii * p.dist
                            })
                            .max();
                        let l = succs
                            .iter()
                            .map(|s| {
                                let x = if s.regflow && s.other_cluster != cluster {
                                    transfer
                                } else {
                                    0
                                };
                                s.other_cycle - s.lat - x + iii * s.dist
                            })
                            .min();
                        eprintln!("  cluster {cluster}: estart {e:?} lstart {l:?}");
                    }
                }
                return Err(op_id);
            }
        }

        // normalize cycles to start at 0
        let min_cycle = placed
            .iter()
            .map(|p| p.unwrap().cycle)
            .chain(copy_cycles.iter().copied())
            .min()
            .unwrap_or(0);
        let ops: Vec<ScheduledOp> = placed
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let p = p.expect("all ops placed");
                ScheduledOp {
                    cluster: p.cluster,
                    cycle: (p.cycle - min_cycle) as u32,
                    assumed_latency: self.latencies.latency_of(OpId::new(i)),
                }
            })
            .collect();
        let copies: Vec<ScheduledCopy> = copies
            .into_iter()
            .zip(copy_cycles)
            .map(|(mut c, raw)| {
                c.cycle = (raw - min_cycle) as u32;
                c
            })
            .collect();
        Ok((ops, copies))
    }
}
