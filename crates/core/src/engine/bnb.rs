//! `ExactBnB` — an exact branch-and-bound modulo scheduler, the
//! optimality yardstick behind the `optgap` study.
//!
//! The heuristic pipeline commits to one placement per op and bumps the II
//! on any failure; how much II that greed costs is exactly what this
//! backend measures. `ExactBnB` shares the whole front-end with
//! [`SwingModulo`](super::SwingModulo) — same pins, same latency
//! assignment, same MII bounds, same SMS order (the crate-private
//! `engine::prepare` step) — then replaces the no-backtracking pass
//! with a depth-first search over `(cluster, cycle)` placements:
//!
//! * **MII lower-bounding.** The II search starts at
//!   `MII = max(ResMII, RecMII)`; a schedule found there is optimal by
//!   construction.
//! * **Incumbent seeding.** The heuristic schedule is computed first
//!   (off the same preparation — the front-end runs once per call) and
//!   bounds the search from above: only IIs *strictly below* the
//!   incumbent's are searched, so the exact result can never be worse
//!   than any heuristic policy run under the same front-end (the
//!   invariant `tests/backend_optimality.rs` pins).
//! * **Policy constraints, not a relaxation.** The search enforces the
//!   same hard constraints the heuristic does: precomputed cluster pins
//!   (IPBC's chain pins, the ablation's per-op preferences) restrict a
//!   pinned op to its pinned cluster, and under IBC
//!   ([`ClusterAssign::constrains_chains_dynamically`](super::ClusterAssign::constrains_chains_dynamically))
//!   every chain member must share the cluster of its first-placed
//!   member. "Optimal" therefore means optimal *for the policy's
//!   problem*; only the heuristic's soft preferences (rankings,
//!   tie-breaks, greedy first-fit) are relaxed.
//! * **Empty-cluster symmetry.** When no precomputed pin names a
//!   specific cluster, clusters holding no operation are interchangeable
//!   (the machine is homogeneous, copies only ever touch occupied
//!   clusters, and IBC's dynamic constraint references placed clusters
//!   only), so at each decision level at most one empty cluster is
//!   branched into — on a 4-cluster machine this cuts the first
//!   placement's branching factor from 4 to 1. Pins disable this rule
//!   (a pinned op distinguishes its cluster even while it is empty).
//! * **Dominance memoization.** Two branches that placed the same op
//!   prefix differently can still leave *equivalent* residual problems:
//!   everything the remaining search reads is the packed MRT occupancy,
//!   the placements of ops with edges to unplaced ops, the routed
//!   copies, and the dynamic chain pins. States are fingerprinted over
//!   exactly those feeds (two independent 64-bit hash chains) and
//!   subtrees refuted without finding any completion are memoized, so
//!   revisiting an equivalent state prunes instantly. Unlike the
//!   symmetry rule this works *under pins too* — interchangeable
//!   same-kind interior ops are the common source of duplicate states —
//!   which is where the IPBC and no-chain proof rates gain the most.
//! * **Mask-walk candidate scan.** Candidate cycles come from
//!   [`Mrt::next_free_fu_cycle`] — a trailing-/leading-zeros walk over
//!   the row's free-mask — so fully occupied stretches are skipped a
//!   word at a time and only *free* cells consume node budget. At a
//!   fixed budget the search therefore reaches strictly deeper than the
//!   historical scalar probe-every-cell scan.
//! * **Node-budget cutoff.** The search examines at most
//!   [`ScheduleOptions::node_budget`](super::ScheduleOptions) candidate
//!   cells per call. Exhausting the budget is a *counted, surfaced*
//!   outcome — [`SchedStats::cutoffs`](super::SchedStats) and
//!   [`SchedQuality::CutoffFeasible`](super::SchedQuality) — never a
//!   silent fallback to the heuristic result.
//! * **MaxLive tie-break.** Once the II is proven optimal, a bounded
//!   re-search at that II ([`TIEBREAK_NODE_BUDGET`]) enumerates further
//!   completions and keeps the one minimizing Rau's MaxLive
//!   ([`crate::pressure::max_live`]) — reported in
//!   [`ScheduleOutcome::max_live`]. The tie-break never perturbs the
//!   optimality claim or the cutoff counters: running out of its budget
//!   just keeps the incumbent completion.
//!
//! Undo is the [`Mrt`] transaction journal from the zero-clone scheduler
//! core: one transaction spans the whole search, one
//! [savepoint](Mrt::savepoint) per decision level, and backtracking is
//! [`Mrt::rollback_to`] — O(reservations since the savepoint), no table
//! clones.
//!
//! # Exactness, precisely
//!
//! The search is exhaustive over the *anchored-window* schedule space:
//! each op starts within `II` cycles of the earliest start its placed
//! neighbors imply (the same window shape the heuristic engine scans,
//! here explored completely, over every policy-permitted cluster, with
//! backtracking), and inter-cluster copies take the earliest free bus
//! slot. "Proven optimal" therefore means: no schedule in that space — a
//! superset of everything the heuristic pass can reach under the same
//! order and constraints — has a smaller II. An II equal to the MII is
//! optimal unconditionally.

use std::collections::{HashMap, HashSet};

use vliw_ir::{Ddg, DepKind, LoopKernel, OpId};
use vliw_machine::MachineConfig;
use vliw_trace::Trace;

use super::backend::{SchedQuality, ScheduleOutcome, SchedulerBackend};
use super::{prepare_traced, swing_with_prep, Prep, SchedStats, ScheduleOptions};
use crate::mrt::Mrt;
use crate::schedule::{Schedule, ScheduleError, ScheduledCopy, ScheduledOp};

/// Default total node budget per [`ExactBnB`] call: candidate
/// `(cluster, cycle)` cells examined across all II levels before the
/// search reports a cutoff. Sized so every small (factor-1) suite kernel
/// is decided exactly while deeply unrolled kernels cut off in
/// milliseconds rather than minutes.
pub const DEFAULT_NODE_BUDGET: u64 = 200_000;

/// Reference problem size of the adaptive node budget: a kernel of
/// `ops × II levels ≤ ADAPTIVE_REF_CELLS` runs under the base budget
/// unchanged (the whole factor-1 suite sits below this), larger kernels
/// scale linearly.
pub const ADAPTIVE_REF_CELLS: u64 = 512;

/// Upper bound on the adaptive scale factor, so pathological unrolled
/// kernels cut off in bounded time instead of searching for minutes.
pub const ADAPTIVE_MAX_SCALE: u64 = 16;

/// Node budget of the MaxLive tie-break re-search at the proven-optimal
/// II (capped further by whatever remains of the call's main budget).
/// The tie-break is best-effort by construction: exhausting this budget
/// keeps the incumbent completion and touches neither the quality claim
/// nor [`SchedStats::cutoffs`](super::SchedStats).
pub const TIEBREAK_NODE_BUDGET: u64 = 32_000;

/// Sampling stride of the budget-consumption curve: with a sink attached
/// the search emits a `bnb.nodes` counter sample every this many expanded
/// nodes. With tracing off the sample threshold is parked at `u64::MAX`,
/// so the per-node cost is one always-false compare.
pub const NODE_SAMPLE_EVERY: u64 = 1_024;

/// The exact branch-and-bound pipeliner (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactBnB;

impl ExactBnB {
    /// The node budget one call actually runs under.
    ///
    /// With [`ScheduleOptions::adaptive_budget`] unset this is the flat
    /// [`ScheduleOptions::node_budget`]. With it set (the default), the
    /// base is scaled by the problem size `n_ops × ii_levels` relative to
    /// [`ADAPTIVE_REF_CELLS`] — big unrolled kernels get proportionally
    /// more search effort, small kernels keep the base exactly — capped
    /// at [`ADAPTIVE_MAX_SCALE`]× the base. A zero base stays zero under
    /// either policy (budget exhaustion stays testable).
    pub fn resolved_node_budget(options: &ScheduleOptions, n_ops: usize, ii_levels: u32) -> u64 {
        if !options.adaptive_budget {
            return options.node_budget;
        }
        let cells = (n_ops as u64).saturating_mul(u64::from(ii_levels.max(1)));
        let scale = (cells / ADAPTIVE_REF_CELLS).clamp(1, ADAPTIVE_MAX_SCALE);
        options.node_budget.saturating_mul(scale)
    }
}

impl SchedulerBackend for ExactBnB {
    fn name(&self) -> &'static str {
        "bnb"
    }

    fn schedule_with_stats(
        &self,
        kernel: &LoopKernel,
        machine: &MachineConfig,
        options: &ScheduleOptions,
    ) -> Result<ScheduleOutcome, ScheduleError> {
        self.schedule_traced(kernel, machine, options, Trace::off())
    }

    fn schedule_traced(
        &self,
        kernel: &LoopKernel,
        machine: &MachineConfig,
        options: &ScheduleOptions,
        trace: Trace<'_>,
    ) -> Result<ScheduleOutcome, ScheduleError> {
        if kernel.ops.is_empty() {
            return Err(ScheduleError::EmptyKernel);
        }
        let _backend_span = if trace.on() {
            Some(trace.span("backend.bnb"))
        } else {
            None
        };
        let mut stats = SchedStats::default();
        let (ddg, prep) = prepare_traced(kernel, machine, options, trace);

        // Incumbent: the heuristic result bounds the II search from above
        // (standard warm-started B&B), run off the same preparation so
        // the front-end executes once per call. Its work counters fold
        // into ours.
        let incumbent = match swing_with_prep(kernel, machine, options, &ddg, prep.clone(), trace) {
            Ok((s, st)) => {
                stats.merge(&st);
                Some(s)
            }
            Err(_) => None,
        };
        let upper = incumbent.as_ref().map_or(prep.max_ii + 1, |s| s.ii);
        if trace.on() {
            if let Some(s) = &incumbent {
                trace.instant("bnb.incumbent", &[("ii", s.ii as f64)]);
            }
        }

        // the budget policy resolves here, where the real problem size
        // (ops × II levels left to decide) is known; a caller-supplied
        // cost ceiling composes by `min` — a deadline can only tighten
        // the search, never extend it
        let resolved = ExactBnB::resolved_node_budget(
            options,
            kernel.ops.len(),
            upper.saturating_sub(prep.mii0),
        );
        let node_budget = match options.cost_ceiling {
            Some(ceiling) => resolved.min(ceiling),
            None => resolved,
        };

        let colocate_chains = options.policy.assigner().constrains_chains_dynamically();
        let mut search = Search::new(
            kernel,
            &ddg,
            machine,
            &prep,
            node_budget,
            colocate_chains,
            trace,
        );
        let mut cutoff = false;
        let mut found: Option<Schedule> = None;
        for ii in prep.mii0..upper {
            stats.attempts += 1;
            let out = search.solve(ii, &mut stats);
            if trace.on() {
                let verdict = match &out {
                    Solve::Feasible(_) => 1.0,
                    Solve::Infeasible => 0.0,
                    Solve::Cutoff => -1.0,
                };
                trace.instant(
                    "bnb.solve",
                    &[
                        ("ii", ii as f64),
                        ("nodes", search.nodes as f64),
                        ("feasible", verdict),
                    ],
                );
            }
            match out {
                Solve::Feasible(s) => {
                    found = Some(s);
                    break;
                }
                Solve::Infeasible => {}
                Solve::Cutoff => {
                    // budget is global: once it is gone, no smaller II can
                    // be refuted, so stop and report
                    stats.cutoffs += 1;
                    cutoff = true;
                    break;
                }
            }
        }

        // the degradation ladder: a cutoff under `RetryReducedBudget`
        // re-runs the search with the budget divided per rung. The search
        // is deterministic, so each rung re-explores a prefix of the same
        // tree — a cheap, bounded confirmation of the exhaustion (the
        // service analogue of retrying at cheaper tiers) — and every rung
        // is counted before the result degrades to the incumbent.
        let mut degraded = false;
        if cutoff {
            if let super::FallbackPolicy::RetryReducedBudget {
                factor,
                max_retries,
            } = options.fallback
            {
                let factor = u64::from(factor.max(2));
                let mut rung_budget = node_budget;
                for rung in 0..max_retries {
                    rung_budget /= factor;
                    stats.fallback_retries += 1;
                    if trace.on() {
                        trace.instant(
                            "bnb.retry",
                            &[("rung", rung as f64), ("budget", rung_budget as f64)],
                        );
                    }
                    let mut retry = Search::new(
                        kernel,
                        &ddg,
                        machine,
                        &prep,
                        rung_budget,
                        colocate_chains,
                        trace,
                    );
                    let mut undecided = false;
                    for ii in prep.mii0..upper {
                        stats.attempts += 1;
                        match retry.solve(ii, &mut stats) {
                            Solve::Feasible(s) => {
                                found = Some(s);
                                break;
                            }
                            Solve::Infeasible => {}
                            Solve::Cutoff => {
                                stats.cutoffs += 1;
                                undecided = true;
                                break;
                            }
                        }
                    }
                    if found.is_some() || !undecided {
                        cutoff = false;
                        break;
                    }
                    if rung_budget == 0 {
                        break; // the ladder has bottomed out
                    }
                }
                degraded = cutoff;
            }
        }

        // under `Fail`, an undecided search is an error even when a
        // feasible incumbent exists
        if cutoff && options.fallback == super::FallbackPolicy::Fail {
            return Err(ScheduleError::SearchCutoff {
                loop_name: kernel.name.clone(),
                node_budget,
            });
        }

        let quality = if degraded {
            SchedQuality::DegradedFallback
        } else if cutoff {
            SchedQuality::CutoffFeasible
        } else {
            SchedQuality::ProvenOptimal
        };
        match found.or(incumbent) {
            Some(schedule) => {
                let live = crate::pressure::max_live(kernel, &schedule) as u32;
                // with the II proven minimal, spend a bounded slice of the
                // leftover budget minimizing MaxLive among the optimal-II
                // completions; a cutoff result skips this (the remaining
                // budget belongs to nothing — it is already exhausted)
                let (schedule, live) = if quality == SchedQuality::ProvenOptimal {
                    search.minimize_live(schedule.ii, (schedule, live), &mut stats)
                } else {
                    (schedule, live)
                };
                Ok(ScheduleOutcome {
                    schedule,
                    stats,
                    quality,
                    max_live: Some(live),
                })
            }
            None if cutoff => Err(ScheduleError::SearchCutoff {
                loop_name: kernel.name.clone(),
                node_budget,
            }),
            None => Err(ScheduleError::NoSchedule {
                loop_name: kernel.name.clone(),
                max_ii: prep.max_ii,
            }),
        }
    }
}

/// Outcome of one II level's depth-first search.
enum Solve {
    /// A complete placement was found (the schedule is already built).
    Feasible(Schedule),
    /// The whole anchored-window space was refuted at this II.
    Infeasible,
    /// The node budget ran out before the space was decided.
    Cutoff,
}

/// Outcome of the recursive placement of `order[depth..]`.
enum Place {
    Found(Schedule),
    Exhausted,
    Cutoff,
}

/// What a complete placement means to the search.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Decide the II level: the first completion short-circuits the
    /// search ([`Place::Found`]).
    Decide,
    /// Tie-break at a decided II: every completion is scored by MaxLive,
    /// the running minimum is kept, and the search continues as if the
    /// subtree were exhausted.
    MinimizeLive,
}

/// First chain of the two-chain state fingerprint (the splitmix64
/// finalizer).
fn mix_a(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Second, independent chain (the murmur3 64-bit finalizer) — two chains
/// push the collision probability of the dominance memo far below any
/// realistic node count.
fn mix_b(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51afd7ed558ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ceb9fe1a85ec53);
    x ^ (x >> 33)
}

/// An already-placed dependence neighbor, with the fields the window
/// computation needs (mirror of the engine's `Nbr`).
struct Nbr {
    other: OpId,
    other_cluster: usize,
    other_cycle: i64,
    lat: i64,
    dist: i64,
    regflow: bool,
}

/// The search state: reservation table (one open transaction, savepoint
/// per decision level), placements, and the copy bookkeeping shared with
/// the schedule builder.
struct Search<'a> {
    kernel: &'a LoopKernel,
    ddg: &'a Ddg<'a>,
    machine: &'a MachineConfig,
    prep: &'a Prep,
    budget: u64,
    nodes: u64,
    /// The II level currently being decided (set by [`Search::solve`]).
    ii: i64,
    /// Whether chain members must share their first-placed member's
    /// cluster (IBC's dynamic constraint; IPBC and the ablation express
    /// theirs through `prep.pins`).
    colocate_chains: bool,
    /// Empty-cluster symmetry is only sound when no constraint names a
    /// specific cluster — i.e. when there are no precomputed pins.
    symmetry_ok: bool,
    /// The dominance memo is keyed on packed `fu_full` words, which only
    /// equal the exact occupancy when every FU capacity is 1 (true of
    /// every shipped configuration); wider units disable it.
    memo_ok: bool,
    /// What a completion means right now (see [`Mode`]).
    mode: Mode,
    /// Refuted-without-completion states: `(depth, chain-a, chain-b)`
    /// fingerprints from [`Search::state_sig`], cleared per II level.
    memo: HashSet<(u32, u64, u64)>,
    /// Completions reached so far this II level — the memo-soundness
    /// gate: a subtree is only memoized as dead when exploring it found
    /// *no* completion (in [`Mode::MinimizeLive`] completions return
    /// [`Place::Exhausted`], so the counter is the only witness).
    found_count: u64,
    /// Running `(schedule, MaxLive)` minimum of the tie-break re-search.
    best_live: Option<(Schedule, u32)>,
    /// Per-op: the largest order-position over its dependence neighbors.
    /// An op placed at depth `d` is *interior* (invisible to every
    /// remaining window computation) iff this bound is `< d`.
    last_nbr_pos: Vec<usize>,
    mrt: Mrt,
    /// Per-op `(cluster, cycle)`, indexed by `OpId`.
    placed: Vec<Option<(usize, i64)>>,
    /// Ops placed per cluster (the empty-cluster symmetry test).
    placed_count: Vec<usize>,
    copies: Vec<ScheduledCopy>,
    /// Parallel to `copies`: raw (pre-normalization) cycles.
    copy_cycles: Vec<i64>,
    copy_map: HashMap<(OpId, usize), usize>,
    /// Per-depth neighbor buffers, taken out while a level is active and
    /// put back on unwind — cleared, never reallocated.
    nbr_pool: Vec<(Vec<Nbr>, Vec<Nbr>)>,
    /// Per-probe scratch for [`Search::reserve_copies`].
    seen_pred: Vec<OpId>,
    dest_bounds: Vec<(usize, i64)>,
    /// Telemetry handle. With no sink attached every probe below is a
    /// skipped branch and `next_sample` is parked at `u64::MAX`.
    trace: Trace<'a>,
    /// Node count at which the next `bnb.nodes` budget-curve sample fires.
    next_sample: u64,
    /// Dominance-memo hits per decision depth (allocated only under
    /// tracing; drained into `bnb.memo_depth` instants per II level).
    memo_hits: Vec<u64>,
    /// Dominance-memo misses (fingerprints looked up and not found) per
    /// decision depth.
    memo_misses: Vec<u64>,
}

impl<'a> Search<'a> {
    fn new(
        kernel: &'a LoopKernel,
        ddg: &'a Ddg<'a>,
        machine: &'a MachineConfig,
        prep: &'a Prep,
        budget: u64,
        colocate_chains: bool,
        trace: Trace<'a>,
    ) -> Self {
        let mut order_pos = vec![0usize; kernel.ops.len()];
        for (pos, &op) in prep.order.iter().enumerate() {
            order_pos[op.index()] = pos;
        }
        let mut last_nbr_pos = vec![0usize; kernel.ops.len()];
        for (i, last_pos) in last_nbr_pos.iter_mut().enumerate() {
            let op = OpId::new(i);
            let mut last = 0usize;
            for e in ddg.incident_edges(op) {
                if e.from == e.to {
                    continue;
                }
                let other = if e.to == op { e.from } else { e.to };
                last = last.max(order_pos[other.index()]);
            }
            *last_pos = last;
        }
        let c = &machine.clusters;
        Search {
            kernel,
            ddg,
            machine,
            prep,
            budget,
            nodes: 0,
            ii: 1,
            colocate_chains,
            symmetry_ok: prep.pins.iter().all(Option::is_none),
            memo_ok: c.int_units == 1 && c.fp_units == 1 && c.mem_units == 1,
            mode: Mode::Decide,
            memo: HashSet::new(),
            found_count: 0,
            best_live: None,
            last_nbr_pos,
            mrt: Mrt::new(1, machine),
            placed: vec![None; kernel.ops.len()],
            placed_count: vec![0; machine.clusters.n_clusters],
            copies: Vec::new(),
            copy_cycles: Vec::new(),
            copy_map: HashMap::new(),
            nbr_pool: (0..kernel.ops.len()).map(|_| Default::default()).collect(),
            seen_pred: Vec::new(),
            dest_bounds: Vec::new(),
            trace,
            next_sample: if trace.on() {
                NODE_SAMPLE_EVERY
            } else {
                u64::MAX
            },
            memo_hits: if trace.on() {
                vec![0; kernel.ops.len() + 1]
            } else {
                Vec::new()
            },
            memo_misses: if trace.on() {
                vec![0; kernel.ops.len() + 1]
            } else {
                Vec::new()
            },
        }
    }

    /// Decides one II level. The node budget persists across levels.
    fn solve(&mut self, ii: u32, stats: &mut SchedStats) -> Solve {
        self.mode = Mode::Decide;
        let out = self.solve_inner(ii, stats);
        self.emit_memo_profile(ii);
        out
    }

    /// Drains the per-depth dominance-memo counters into one
    /// `bnb.memo_depth` instant per touched depth (then resets them, since
    /// the memo itself is cleared per II level). No-op without a sink.
    fn emit_memo_profile(&mut self, ii: u32) {
        if !self.trace.on() {
            return;
        }
        for depth in 0..self.memo_hits.len() {
            let (h, m) = (self.memo_hits[depth], self.memo_misses[depth]);
            if h == 0 && m == 0 {
                continue;
            }
            self.trace.instant(
                "bnb.memo_depth",
                &[
                    ("ii", ii as f64),
                    ("depth", depth as f64),
                    ("hits", h as f64),
                    ("misses", m as f64),
                ],
            );
        }
        self.memo_hits.iter_mut().for_each(|h| *h = 0);
        self.memo_misses.iter_mut().for_each(|m| *m = 0);
    }

    /// One full depth-first pass at `ii` under the current [`Mode`].
    fn solve_inner(&mut self, ii: u32, stats: &mut SchedStats) -> Solve {
        self.ii = ii as i64;
        self.mrt.reset(ii, self.machine);
        self.placed.iter_mut().for_each(|p| *p = None);
        self.placed_count.iter_mut().for_each(|c| *c = 0);
        self.copies.clear();
        self.copy_cycles.clear();
        self.copy_map.clear();
        self.memo.clear();
        self.found_count = 0;
        self.mrt.begin();
        let out = self.place(0, stats);
        self.mrt.rollback(); // the schedule, if any, is already extracted
        match out {
            Place::Found(s) => Solve::Feasible(s),
            Place::Exhausted => Solve::Infeasible,
            Place::Cutoff => Solve::Cutoff,
        }
    }

    /// The MaxLive tie-break: re-search the proven-optimal `ii`, keeping
    /// the completion with the smallest MaxLive, seeded with (and never
    /// worse than) `incumbent`. Budget: whatever remains of the call's
    /// main budget, capped at [`TIEBREAK_NODE_BUDGET`]; exhausting it is
    /// *not* a counted cutoff — the proof already stands, this pass only
    /// refines which optimal-II schedule is reported.
    fn minimize_live(
        &mut self,
        ii: u32,
        incumbent: (Schedule, u32),
        stats: &mut SchedStats,
    ) -> (Schedule, u32) {
        let slice = self
            .budget
            .saturating_sub(self.nodes)
            .min(TIEBREAK_NODE_BUDGET);
        if slice == 0 {
            return incumbent;
        }
        self.budget = self.nodes + slice;
        self.mode = Mode::MinimizeLive;
        self.best_live = Some(incumbent);
        let _ = self.solve_inner(ii, stats); // Cutoff here is benign: keep the best so far
        self.best_live.take().expect("seeded above")
    }

    /// Fingerprints the residual problem at `depth` for the dominance
    /// memo. Feeds — exactly what the remaining search can observe:
    ///
    /// * the depth (fixes *which* ops are placed: `order[..depth]`);
    /// * `(op, cluster, cycle)` of every placed op that still has a
    ///   dependence neighbor among the unplaced ops (interior ops
    ///   constrain no remaining window; their resource footprint is
    ///   covered by the occupancy words);
    /// * the packed MRT occupancy (`fu_full` + bus words);
    /// * the routed copies, XOR-combined so the fingerprint is
    ///   independent of routing order;
    /// * under IBC, the dynamic cluster pin of every unplaced chain
    ///   member (an interior placed member still pins its chain).
    ///
    /// Static facts (precomputed pins, latencies, the order itself) need
    /// no hashing — they are equal across all states of one solve.
    fn state_sig(&self, depth: usize) -> (u32, u64, u64) {
        let d = depth as u64;
        let mut h1 = mix_a(d ^ 0x9e37_79b9_7f4a_7c15);
        let mut h2 = mix_b(d ^ 0x2545_f491_4f6c_dd1d);
        for &op in &self.prep.order[..depth] {
            if self.last_nbr_pos[op.index()] < depth {
                continue; // interior: no unplaced neighbor reads it
            }
            let (cl, cy) = self.placed[op.index()].expect("order prefix is placed");
            let key = (op.index() as u64) << 40 | (cl as u64) << 32 | (cy as u64 & 0xffff_ffff);
            h1 = mix_a(h1 ^ key);
            h2 = mix_b(h2 ^ key);
        }
        let (fu, bus) = self.mrt.occupancy_words();
        for &w in fu.iter().chain(bus) {
            h1 = mix_a(h1 ^ w);
            h2 = mix_b(h2 ^ w);
        }
        let (mut x1, mut x2) = (0u64, 0u64);
        for (c, &raw) in self.copies.iter().zip(&self.copy_cycles) {
            let key = (c.producer.index() as u64) << 40
                | (c.to as u64) << 32
                | (raw as u64 & 0xffff_ffff);
            x1 ^= mix_a(key ^ 0xd6e8_feb8_6659_fd93);
            x2 ^= mix_b(key ^ 0xa076_1d64_78bd_642f);
        }
        h1 = mix_a(h1 ^ x1);
        h2 = mix_b(h2 ^ x2);
        if self.colocate_chains {
            for &op in &self.prep.order[depth..] {
                let Some(cid) = self.prep.chains.chain_id(op) else {
                    continue;
                };
                let pin = self
                    .prep
                    .chains
                    .members(cid)
                    .iter()
                    .find(|&&m| m != op && self.placed[m.index()].is_some())
                    .map(|&m| self.placed[m.index()].expect("just checked").0);
                if let Some(p) = pin {
                    let key = (op.index() as u64) << 8 | p as u64;
                    h1 = mix_a(h1 ^ key);
                    h2 = mix_b(h2 ^ key);
                }
            }
        }
        (depth as u32, h1, h2)
    }

    /// Recursively places `order[depth..]`, backtracking through the MRT
    /// journal. Neighbor buffers come from a per-depth pool so the
    /// steady-state search allocates nothing (the engine's `Scratch`
    /// discipline, adapted to recursion).
    fn place(&mut self, depth: usize, stats: &mut SchedStats) -> Place {
        if depth == self.prep.order.len() {
            self.found_count += 1;
            match self.mode {
                Mode::Decide => return Place::Found(self.build_schedule()),
                Mode::MinimizeLive => {
                    let s = self.build_schedule();
                    let live = crate::pressure::max_live(self.kernel, &s) as u32;
                    if self.best_live.as_ref().is_none_or(|(_, b)| live < *b) {
                        self.best_live = Some((s, live));
                    }
                    return Place::Exhausted; // keep enumerating completions
                }
            }
        }
        let sig = if self.memo_ok {
            let sig = self.state_sig(depth);
            if self.memo.contains(&sig) {
                if self.trace.on() {
                    self.memo_hits[depth] += 1;
                }
                return Place::Exhausted; // dominated: a refuted twin state
            }
            if self.trace.on() {
                self.memo_misses[depth] += 1;
            }
            Some(sig)
        } else {
            None
        };
        let completions_before = self.found_count;
        let op_id = self.prep.order[depth];

        // placed neighbors, walked through the incident-edge view
        // (incoming first, then outgoing; self-edges constrain nothing
        // within an II)
        let (mut preds, mut succs) = std::mem::take(&mut self.nbr_pool[depth]);
        preds.clear();
        succs.clear();
        for e in self.ddg.incident_edges(op_id) {
            if e.from == e.to {
                continue;
            }
            let other = if e.to == op_id { e.from } else { e.to };
            if let Some((cl, cy)) = self.placed[other.index()] {
                let nbr = Nbr {
                    other,
                    other_cluster: cl,
                    other_cycle: cy,
                    lat: self.prep.latencies.edge_latency(e, self.kernel) as i64,
                    dist: e.distance as i64,
                    regflow: e.kind == DepKind::RegFlow,
                };
                if e.to == op_id {
                    preds.push(nbr);
                } else {
                    succs.push(nbr);
                }
            }
        }

        let out = self.try_clusters(depth, op_id, &preds, &succs, stats);
        self.nbr_pool[depth] = (preds, succs);
        // memoize only subtrees proven dead: fully exhausted (no cutoff
        // truncation) and — the MinimizeLive soundness gate — containing
        // no completion at all
        if let Some(sig) = sig {
            if matches!(out, Place::Exhausted) && self.found_count == completions_before {
                self.memo.insert(sig);
            }
        }
        out
    }

    /// Tries every policy-permitted `(cluster, cycle)` placement for
    /// `op_id` at decision level `depth`, recursing on each success.
    fn try_clusters(
        &mut self,
        depth: usize,
        op_id: OpId,
        preds: &[Nbr],
        succs: &[Nbr],
        stats: &mut SchedStats,
    ) -> Place {
        let ii = self.ii;
        let kind = self.kernel.op(op_id).fu_kind();
        let lat_self = self.prep.latencies.latency_of(op_id) as i64;
        let transfer = self.machine.buses.transfer_cycles as i64;

        // hard policy constraints, mirrored from the heuristic so the
        // exact II is optimal for the *policy's* problem, not for a
        // relaxation: precomputed pins (IPBC / the ablation), plus
        // dynamic chain co-location under IBC
        let pinned = self.prep.pins[op_id.index()].or_else(|| {
            if !self.colocate_chains {
                return None;
            }
            let cid = self.prep.chains.chain_id(op_id)?;
            self.prep
                .chains
                .members(cid)
                .iter()
                .find(|&&m| m != op_id && self.placed[m.index()].is_some())
                .map(|&m| self.placed[m.index()].expect("just checked").0)
        });

        let n = self.machine.clusters.n_clusters;
        let mut tried_empty = false;
        for cluster in 0..n {
            if let Some(p) = pinned {
                if cluster != p {
                    continue;
                }
            } else if self.symmetry_ok && self.placed_count[cluster] == 0 {
                // symmetry: with no cluster named by any constraint,
                // unoccupied clusters are interchangeable — branch into
                // at most one of them per level
                if tried_empty {
                    continue;
                }
                tried_empty = true;
            }

            let mut estart: Option<i64> = None;
            for p in preds {
                let extra = if p.regflow && p.other_cluster != cluster {
                    transfer
                } else {
                    0
                };
                let e = p.other_cycle + p.lat + extra - ii * p.dist;
                estart = Some(estart.map_or(e, |x: i64| x.max(e)));
            }
            let mut lstart: Option<i64> = None;
            for s in succs {
                let extra = if s.regflow && s.other_cluster != cluster {
                    transfer
                } else {
                    0
                };
                let l = s.other_cycle - s.lat - extra + ii * s.dist;
                lstart = Some(lstart.map_or(l, |x: i64| x.min(l)));
            }
            // the anchored window (same shape and scan direction as the
            // engine's, but every cell is explored, not just the first fit)
            let (lo, hi, descending) = match (estart, lstart) {
                (Some(e), Some(l)) => {
                    if e > l {
                        continue;
                    }
                    (e, l.min(e + ii - 1), true)
                }
                (Some(e), None) => (e, e + ii - 1, false),
                (None, Some(l)) => (l - ii + 1, l, true),
                (None, None) => (0, ii - 1, false),
            };

            // mask walk: only *free* cells surface, so occupied stretches
            // cost neither time nor node budget
            let limit = if descending { lo } else { hi };
            let mut cursor = if descending { hi } else { lo };
            while let Some(cycle) = self
                .mrt
                .next_free_fu_cycle(cluster, kind, cursor, limit, descending)
            {
                cursor = if descending { cycle - 1 } else { cycle + 1 };
                if self.nodes >= self.budget {
                    return Place::Cutoff;
                }
                self.nodes += 1;
                stats.trial_cycles += 1;
                // budget-consumption curve: with tracing off `next_sample`
                // is u64::MAX, so this is one always-false compare
                if self.nodes >= self.next_sample {
                    self.trace.counter("bnb.nodes", self.nodes as f64);
                    self.next_sample = self.nodes + NODE_SAMPLE_EVERY;
                }
                let sp = self.mrt.savepoint();
                let copies_mark = self.copies.len();
                self.mrt.fu_reserve(cluster, kind, cycle);
                if self.reserve_copies(op_id, cluster, cycle, lat_self, preds, succs) {
                    stats.placements += 1;
                    self.placed[op_id.index()] = Some((cluster, cycle));
                    self.placed_count[cluster] += 1;
                    let deeper = self.place(depth + 1, stats);
                    self.placed[op_id.index()] = None;
                    self.placed_count[cluster] -= 1;
                    self.undo_copies(copies_mark);
                    self.mrt.rollback_to(sp);
                    match deeper {
                        Place::Found(s) => return Place::Found(s),
                        Place::Cutoff => return Place::Cutoff,
                        Place::Exhausted => {}
                    }
                } else {
                    stats.rollbacks += 1;
                    self.undo_copies(copies_mark);
                    self.mrt.rollback_to(sp);
                }
            }
        }
        Place::Exhausted
    }

    /// Reserves every inter-cluster copy placing `op_id` at
    /// `(cluster, cycle)` needs, with the engine's canonical
    /// earliest-free-bus rule. Returns false when any copy cannot be
    /// routed in time (the caller unwinds to its savepoint).
    fn reserve_copies(
        &mut self,
        op_id: OpId,
        cluster: usize,
        cycle: i64,
        lat_self: i64,
        preds: &[Nbr],
        succs: &[Nbr],
    ) -> bool {
        let ii = self.ii;
        let transfer = self.machine.buses.transfer_cycles as i64;

        // copies for cross-cluster flow predecessors (dedup by producer;
        // the bound is the tightest over all of that producer's edges)
        self.seen_pred.clear();
        for p in preds {
            if !(p.regflow && p.other_cluster != cluster) {
                continue;
            }
            if self.seen_pred.contains(&p.other) {
                continue;
            }
            self.seen_pred.push(p.other);
            let bound = preds
                .iter()
                .filter(|q| q.regflow && q.other == p.other)
                .map(|q| cycle + ii * q.dist - transfer)
                .min()
                .expect("at least p itself");
            if let Some(&idx) = self.copy_map.get(&(p.other, cluster)) {
                if self.copy_cycles[idx] <= bound {
                    continue; // reuse the existing copy
                }
                return false; // existing copy arrives too late
            }
            let ready = p.other_cycle + p.lat; // producer completion
            if !self.route_copy(p.other, p.other_cluster, cluster, ready, bound) {
                return false;
            }
        }

        // copies for cross-cluster flow successors (this op produces):
        // one copy per destination cluster, at the tightest bound
        self.dest_bounds.clear();
        for s in succs
            .iter()
            .filter(|s| s.regflow && s.other_cluster != cluster)
        {
            let b = s.other_cycle + ii * s.dist - transfer;
            match self
                .dest_bounds
                .iter_mut()
                .find(|(c, _)| *c == s.other_cluster)
            {
                Some((_, bound)) => *bound = (*bound).min(b),
                None => self.dest_bounds.push((s.other_cluster, b)),
            }
        }
        for di in 0..self.dest_bounds.len() {
            let (dest, bound) = self.dest_bounds[di];
            if !self.route_copy(op_id, cluster, dest, cycle + lat_self, bound) {
                return false;
            }
        }
        true
    }

    /// Books the earliest free bus slot in `[ready, bound]` for a copy of
    /// `producer` from `from` to `to`, recording it in the copy table.
    fn route_copy(
        &mut self,
        producer: OpId,
        from: usize,
        to: usize,
        ready: i64,
        bound: i64,
    ) -> bool {
        let mut tc = ready;
        while tc <= bound {
            if let Some(bus) = self.mrt.bus_find(tc) {
                self.mrt.bus_reserve(bus, tc);
                self.copy_map.insert((producer, to), self.copies.len());
                self.copy_cycles.push(tc);
                self.copies.push(ScheduledCopy {
                    producer,
                    from,
                    to,
                    cycle: 0, // fixed at normalization
                    bus,
                });
                return true;
            }
            tc += 1;
        }
        false
    }

    /// Drops every copy recorded since `mark` (MRT unwinding is the
    /// caller's savepoint rollback). O(copies dropped): each dropped
    /// copy's key is removed individually — keys are unique per
    /// `(producer, destination)` because a copy is only routed when no
    /// entry exists.
    fn undo_copies(&mut self, mark: usize) {
        for c in self.copies.drain(mark..) {
            self.copy_map.remove(&(c.producer, c.to));
        }
        self.copy_cycles.truncate(mark);
    }

    /// Builds the normalized schedule from the complete placement.
    fn build_schedule(&self) -> Schedule {
        let ii = self.ii as u32;
        let min_cycle = self
            .placed
            .iter()
            .map(|p| p.expect("all ops placed").1)
            .chain(self.copy_cycles.iter().copied())
            .min()
            .unwrap_or(0);
        let ops: Vec<ScheduledOp> = self
            .placed
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let (cluster, cycle) = p.expect("all ops placed");
                ScheduledOp {
                    cluster,
                    cycle: (cycle - min_cycle) as u32,
                    assumed_latency: self.prep.latencies.latency_of(OpId::new(i)),
                }
            })
            .collect();
        let copies: Vec<ScheduledCopy> = self
            .copies
            .iter()
            .zip(&self.copy_cycles)
            .map(|(c, &raw)| ScheduledCopy {
                cycle: (raw - min_cycle) as u32,
                ..*c
            })
            .collect();
        Schedule {
            ii,
            ops,
            copies,
            mii: self.prep.mii0,
            res_mii: self.prep.res,
            rec_mii: self.prep.rec,
            latencies: self.prep.latencies.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{schedule_outcome, ClusterPolicy, SchedBackend};
    use vliw_ir::{ArrayKind, KernelBuilder, Opcode};

    fn opts(policy: ClusterPolicy) -> ScheduleOptions {
        ScheduleOptions::new(policy).with_backend(SchedBackend::ExactBnB)
    }

    fn saxpy() -> LoopKernel {
        let mut b = KernelBuilder::new("saxpy");
        let x = b.array("x", 4096, ArrayKind::Heap);
        let y = b.array("y", 4096, ArrayKind::Heap);
        let (_, xv) = b.load("ld_x", x, 0, 4, 4);
        let (_, yv) = b.load("ld_y", y, 0, 4, 4);
        let (_, p) = b.int_op("mul", Opcode::Mul, &[xv.into()]);
        let (_, s) = b.int_op("add", Opcode::Add, &[p.into(), yv.into()]);
        b.store("st_y", y, 0, 4, 4, s);
        b.finish(1024.0)
    }

    #[test]
    fn exact_result_is_verified_and_no_worse_than_heuristic() {
        let k = saxpy();
        let m = MachineConfig::word_interleaved_4();
        for policy in ClusterPolicy::ALL {
            let h = crate::engine::schedule_kernel(&k, &m, ScheduleOptions::new(policy)).unwrap();
            let o = schedule_outcome(&k, &m, opts(policy)).unwrap();
            assert!(o.schedule.ii <= h.ii, "{policy:?}");
            assert!(o.schedule.ii >= o.schedule.mii, "{policy:?}");
            let errs = o.schedule.verify(&k, &m);
            assert!(errs.is_empty(), "{policy:?}: {errs:?}");
        }
    }

    #[test]
    fn mii_match_is_proven_without_search() {
        // the heuristic already schedules saxpy at the MII, so the exact
        // backend proves optimality with an empty search range
        let k = saxpy();
        let m = MachineConfig::word_interleaved_4();
        let o = schedule_outcome(&k, &m, opts(ClusterPolicy::PreBuildChains)).unwrap();
        assert_eq!(o.quality, SchedQuality::ProvenOptimal);
        assert_eq!(o.stats.cutoffs, 0);
    }

    /// Dense all-to-all int dataflow: five producers each feeding five
    /// consumers. The copy pressure pushes the heuristic to II 4 against
    /// a ResMII of 3, so the exact search has a nonempty range to decide.
    fn dense() -> LoopKernel {
        let mut b = KernelBuilder::new("dense");
        let mut prods = Vec::new();
        for i in 0..5 {
            let (_, v) = b.int_op(format!("p{i}"), Opcode::Add, &[]);
            prods.push(v);
        }
        for j in 0..5 {
            let srcs: Vec<vliw_ir::SrcOperand> = prods.iter().map(|&v| v.into()).collect();
            let _ = b.int_op(format!("c{j}"), Opcode::Add, &srcs);
        }
        b.finish(64.0)
    }

    #[test]
    fn adaptive_budget_scales_with_problem_size() {
        let o = opts(ClusterPolicy::Free);
        assert!(o.adaptive_budget, "adaptive is the default policy");
        // at or below the reference size the base budget is untouched
        assert_eq!(
            ExactBnB::resolved_node_budget(&o, 16, 4),
            DEFAULT_NODE_BUDGET
        );
        assert_eq!(
            ExactBnB::resolved_node_budget(&o, 128, 4),
            DEFAULT_NODE_BUDGET
        );
        // beyond it the budget scales linearly…
        assert_eq!(
            ExactBnB::resolved_node_budget(&o, 256, 8),
            4 * DEFAULT_NODE_BUDGET
        );
        // …up to the cap
        assert_eq!(
            ExactBnB::resolved_node_budget(&o, 4096, 64),
            ADAPTIVE_MAX_SCALE * DEFAULT_NODE_BUDGET
        );
        // zero II levels still count as one (the proof at the MII)
        assert_eq!(
            ExactBnB::resolved_node_budget(&o, 64, 0),
            DEFAULT_NODE_BUDGET
        );
        // a zero base stays zero, and the flat policy ignores size
        let mut flat = o;
        flat.node_budget = 0;
        assert_eq!(ExactBnB::resolved_node_budget(&flat, 4096, 64), 0);
        flat.node_budget = 7;
        flat.adaptive_budget = false;
        assert_eq!(ExactBnB::resolved_node_budget(&flat, 4096, 64), 7);
    }

    #[test]
    fn zero_budget_surfaces_cutoff_not_silent_fallback() {
        let k = dense();
        let m = MachineConfig::word_interleaved_4();
        let heuristic =
            crate::engine::schedule_kernel(&k, &m, ScheduleOptions::new(ClusterPolicy::Free))
                .unwrap();
        assert!(heuristic.ii > heuristic.mii, "kernel must have a gap");
        let mut o = opts(ClusterPolicy::Free);
        o.node_budget = 0;
        let out = schedule_outcome(&k, &m, o).unwrap();
        // the zero budget must be a *reported* cutoff: the result falls
        // back to the incumbent schedule, visibly, with the cutoff counted
        assert_eq!(out.quality, SchedQuality::CutoffFeasible);
        assert_eq!(out.stats.cutoffs, 1);
        assert_eq!(out.schedule.ii, heuristic.ii);
    }

    #[test]
    fn gap_kernel_is_decided_under_the_default_budget() {
        // under the default budget the search must *decide* the II-3
        // question for the dense kernel — either a better-than-heuristic
        // schedule or a proof that II 4 is optimal — and the result must
        // stay legal
        let k = dense();
        let m = MachineConfig::word_interleaved_4();
        let out = schedule_outcome(&k, &m, opts(ClusterPolicy::Free)).unwrap();
        assert!(out.schedule.verify(&k, &m).is_empty());
        match out.quality {
            SchedQuality::ProvenOptimal => assert!(out.schedule.ii <= 4),
            SchedQuality::CutoffFeasible => assert_eq!(out.stats.cutoffs, 1),
            SchedQuality::Heuristic => panic!("exact backend cannot claim Heuristic"),
            SchedQuality::DegradedFallback => {
                panic!("default policy never degrades")
            }
        }
    }

    #[test]
    fn cost_ceiling_composes_by_min() {
        let k = dense();
        let m = MachineConfig::word_interleaved_4();
        // a zero ceiling is a zero budget: the cutoff path, counted
        let mut o = opts(ClusterPolicy::Free);
        o.cost_ceiling = Some(0);
        let out = schedule_outcome(&k, &m, o).unwrap();
        assert_eq!(out.quality, SchedQuality::CutoffFeasible);
        assert_eq!(out.stats.cutoffs, 1);
        // a huge ceiling changes nothing: min picks the resolved budget
        let base = schedule_outcome(&k, &m, opts(ClusterPolicy::Free)).unwrap();
        let mut o2 = opts(ClusterPolicy::Free);
        o2.cost_ceiling = Some(u64::MAX);
        let out2 = schedule_outcome(&k, &m, o2).unwrap();
        assert_eq!(out2.schedule, base.schedule);
        assert_eq!(out2.quality, base.quality);
        assert_eq!(out2.stats, base.stats);
    }

    #[test]
    fn fail_policy_turns_cutoff_into_error() {
        let k = dense();
        let m = MachineConfig::word_interleaved_4();
        let mut o = opts(ClusterPolicy::Free);
        o.node_budget = 0;
        o.fallback = crate::engine::FallbackPolicy::Fail;
        // the incumbent exists, but `Fail` refuses to serve it
        let err = schedule_outcome(&k, &m, o).unwrap_err();
        assert!(
            matches!(err, ScheduleError::SearchCutoff { .. }),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn retry_ladder_degrades_to_counted_fallback() {
        let k = dense();
        let m = MachineConfig::word_interleaved_4();
        let heuristic =
            crate::engine::schedule_kernel(&k, &m, ScheduleOptions::new(ClusterPolicy::Free))
                .unwrap();
        let mut o = opts(ClusterPolicy::Free);
        o.cost_ceiling = Some(4);
        o.fallback = crate::engine::FallbackPolicy::RetryReducedBudget {
            factor: 2,
            max_retries: 3,
        };
        let out = schedule_outcome(&k, &m, o).unwrap();
        // rungs 2, 1, 0 all confirm the exhaustion, then the heuristic
        // incumbent is served — visibly degraded, every rung counted
        assert_eq!(out.quality, SchedQuality::DegradedFallback);
        assert_eq!(out.stats.fallback_retries, 3);
        assert_eq!(out.stats.cutoffs, 4, "the initial cutoff plus one per rung");
        assert_eq!(out.schedule, heuristic, "degrades to the swing schedule");
        assert!(!out.quality.is_proven());
        // determinism: the same starved request degrades identically
        let rerun = schedule_outcome(&k, &m, o).unwrap();
        assert_eq!(rerun.schedule, out.schedule);
        assert_eq!(rerun.stats, out.stats);
    }

    #[test]
    fn empty_kernel_is_rejected() {
        let k = KernelBuilder::new("empty").finish(1.0);
        let m = MachineConfig::word_interleaved_4();
        let err = schedule_outcome(&k, &m, opts(ClusterPolicy::Free)).unwrap_err();
        assert_eq!(err, ScheduleError::EmptyKernel);
    }

    #[test]
    fn exact_outcomes_carry_max_live_heuristics_do_not() {
        let k = saxpy();
        let m = MachineConfig::word_interleaved_4();
        for policy in ClusterPolicy::ALL {
            let o = schedule_outcome(&k, &m, opts(policy)).unwrap();
            // the reported MaxLive is the *returned* schedule's, whatever
            // the tie-break selected
            let live = o.max_live.expect("exact backend reports MaxLive");
            assert_eq!(
                live,
                crate::pressure::max_live(&k, &o.schedule) as u32,
                "{policy:?}"
            );
            let h = schedule_outcome(&k, &m, ScheduleOptions::new(policy)).unwrap();
            assert_eq!(h.max_live, None, "{policy:?}: heuristics make no claim");
        }
    }

    #[test]
    fn tie_break_never_perturbs_the_proof() {
        // the dense kernel exercises a real search range; whatever the
        // tie-break explores, the optimality claim and cutoff counters
        // must match a run that decided the same problem
        let k = dense();
        let m = MachineConfig::word_interleaved_4();
        let out = schedule_outcome(&k, &m, opts(ClusterPolicy::Free)).unwrap();
        if out.quality == SchedQuality::ProvenOptimal {
            assert_eq!(out.stats.cutoffs, 0, "a proof admits no cutoff");
        }
        assert!(out.schedule.verify(&k, &m).is_empty());
        let live = out.max_live.expect("exact backend reports MaxLive");
        assert_eq!(live, crate::pressure::max_live(&k, &out.schedule) as u32);
    }

    #[test]
    fn zero_budget_skips_the_tie_break_but_still_reports_max_live() {
        let k = dense();
        let m = MachineConfig::word_interleaved_4();
        let mut o = opts(ClusterPolicy::Free);
        o.node_budget = 0;
        let out = schedule_outcome(&k, &m, o).unwrap();
        assert_eq!(out.quality, SchedQuality::CutoffFeasible);
        assert_eq!(
            out.max_live,
            Some(crate::pressure::max_live(&k, &out.schedule) as u32)
        );
    }
}
