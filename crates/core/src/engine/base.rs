//! BASE (§4.2): the plain communication/balance heuristic.
//!
//! Memory operations are placed like any other operation — the candidate
//! ranking minimizes new inter-cluster copies, then maximizes affinity,
//! then balances workload. No chain constraint and no preferred-cluster
//! pins, so this is only *memory-correct* on machines whose cache serializes
//! accesses globally: the unified-cache and multiVLIW configurations.

use super::policy::ClusterAssign;

/// The BASE policy (used by `ClusterPolicy::Free`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Base;

impl ClusterAssign for Base {
    fn name(&self) -> &'static str {
        "BASE"
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{schedule_kernel, ClusterPolicy, ScheduleOptions};
    use crate::examples_443::{figure3_kernel, figure3_machine};

    /// §4.3.3 worked example under BASE: the schedule is legal and reaches
    /// the MII of 8, but nothing keeps the n1–n2–n4 memory chain together —
    /// BASE is the unified/multiVLIW policy, where chains need no pinning.
    #[test]
    fn figure3_base_reaches_mii_with_no_chain_guarantee() {
        let (k, _ops, m) = {
            let (k, ops) = figure3_kernel();
            (k, ops, figure3_machine())
        };
        let s = schedule_kernel(&k, &m, ScheduleOptions::new(ClusterPolicy::Free))
            .expect("schedulable");
        assert!(s.verify(&k, &m).is_empty(), "legal schedule");
        assert_eq!(s.ii, 8, "BASE also achieves the MII on Figure 3");
    }
}
