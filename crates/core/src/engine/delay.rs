//! `DelayTracking` — the load-delay-tracking scheduler backend.
//!
//! The §4.3.3 class model collapses every load's behavior into four
//! latencies and a benefit-driven reduction; the delay-tracking direction
//! of the related work (see `PAPERS.md`) schedules each load at a latency
//! derived from its *measured* per-load latency distribution instead.
//! This backend is that idea behind the [`SchedulerBackend`] seam:
//!
//! * the front-end (`engine::prepare`) runs unchanged — same circuits,
//!   same policy pins, same SMS ordering machinery — except that the
//!   latency-assignment stage is
//!   [`assign_profiled_latencies`](crate::latency::assign_profiled_latencies):
//!   every load is scheduled at the expectation of its measured latency
//!   histogram (or, with
//!   [`ScheduleOptions::delay_percentile`](super::ScheduleOptions), at a
//!   chosen percentile — the risk knob), falling back to the class-mix
//!   expectation when only a synthetic profile is attached;
//! * placement is the standard swing pass (the crate-private
//!   `swing_with_prep`): identical search, identical resource model,
//!   different promises.
//!
//! The measured histograms reach the kernel through
//! [`MemProfile::latency`](vliw_ir::MemProfile) — populated by the
//! `vliw-profile` measurement subsystem, which closes the loop: simulate,
//! measure, re-schedule against what was measured.
//!
//! Like the swing pipeline this is a heuristic: the outcome claims
//! [`SchedQuality::Heuristic`], and the `optgap` study measures what the
//! richer latency model buys against the exact branch-and-bound yardstick.

use vliw_ir::LoopKernel;
use vliw_machine::MachineConfig;
use vliw_trace::Trace;

use super::backend::{SchedQuality, ScheduleOutcome, SchedulerBackend};
use super::{prepare_traced, swing_with_prep, ScheduleOptions};
use crate::schedule::ScheduleError;

/// The delay-tracking pipeliner (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct DelayTracking;

impl SchedulerBackend for DelayTracking {
    fn name(&self) -> &'static str {
        "delay"
    }

    fn schedule_with_stats(
        &self,
        kernel: &LoopKernel,
        machine: &MachineConfig,
        options: &ScheduleOptions,
    ) -> Result<ScheduleOutcome, ScheduleError> {
        self.schedule_traced(kernel, machine, options, Trace::off())
    }

    fn schedule_traced(
        &self,
        kernel: &LoopKernel,
        machine: &MachineConfig,
        options: &ScheduleOptions,
        trace: Trace<'_>,
    ) -> Result<ScheduleOutcome, ScheduleError> {
        if kernel.ops.is_empty() {
            return Err(ScheduleError::EmptyKernel);
        }
        // `prepare` selects the profiled latency assignment when the
        // options name this backend; force that even if a caller built
        // the options by hand with a mismatched backend field
        let opts = ScheduleOptions {
            backend: super::SchedBackend::DelayTracking,
            ..*options
        };
        let (ddg, prep) = prepare_traced(kernel, machine, &opts, trace);
        swing_with_prep(kernel, machine, &opts, &ddg, prep, trace).map(|(schedule, stats)| {
            ScheduleOutcome {
                schedule,
                stats,
                quality: SchedQuality::Heuristic,
                max_live: None,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{schedule_outcome, ClusterPolicy, SchedBackend};
    use vliw_ir::{ArrayKind, DepKind, KernelBuilder, LatencyProfile, MemProfile, OpId, Opcode};

    /// A recurrence kernel whose load carries a measured latency
    /// distribution concentrated at `lat`.
    fn kernel_with_measured(lat: u32, samples: u64) -> LoopKernel {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 1024, ArrayKind::Global);
        let (ld, v) = b.load("ld", a, 0, 4, 4);
        let (_, w) = b.int_op("add", Opcode::Add, &[v.into()]);
        let (st, _) = b.store("st", a, 512, 4, 4, w);
        b.mem_dep(st, ld, DepKind::MemFlow, 1);
        let mut p = MemProfile::with_local_ratio(0.9, 0, 0.9, 4);
        let mut lp = LatencyProfile::default();
        for _ in 0..samples {
            lp.record(lat);
        }
        p.latency = Some(lp);
        b.set_profile(ld, p);
        b.finish(64.0)
    }

    fn opts(policy: ClusterPolicy) -> ScheduleOptions {
        ScheduleOptions::new(policy).with_backend(SchedBackend::DelayTracking)
    }

    #[test]
    fn loads_are_scheduled_at_the_measured_expectation() {
        let k = kernel_with_measured(7, 50);
        let m = vliw_machine::MachineConfig::word_interleaved_4();
        let o = schedule_outcome(&k, &m, opts(ClusterPolicy::Free)).unwrap();
        assert_eq!(o.quality, SchedQuality::Heuristic);
        assert_eq!(o.schedule.op(OpId::new(0)).assumed_latency, 7);
        assert!(o.schedule.verify(&k, &m).is_empty());
    }

    #[test]
    fn percentile_knob_raises_the_promise() {
        let mut k = kernel_with_measured(1, 90);
        // a 10% tail at the remote-miss latency
        if let Some(p) = &mut k.ops[0].mem.as_mut().unwrap().profile {
            let lp = p.latency.as_mut().unwrap();
            for _ in 0..10 {
                lp.record(15);
            }
        }
        let m = vliw_machine::MachineConfig::word_interleaved_4();
        let expected = schedule_outcome(&k, &m, opts(ClusterPolicy::Free)).unwrap();
        // expectation = 0.9·1 + 0.1·15 = 2.4 -> rounds to 2
        assert_eq!(expected.schedule.op(OpId::new(0)).assumed_latency, 2);
        let mut conservative = opts(ClusterPolicy::Free);
        conservative.delay_percentile = Some(0.95);
        let o = schedule_outcome(&k, &m, conservative).unwrap();
        assert_eq!(o.schedule.op(OpId::new(0)).assumed_latency, 15);
        assert!(o.schedule.ii >= expected.schedule.ii);
    }

    #[test]
    fn synthetic_profiles_fall_back_to_the_class_mix_expectation() {
        // no measured histogram: hit 0.9, local 0.9 ->
        // E = .81·1 + .09·5 + .09·10 + .01·15 = 2.31 -> 2
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 1024, ArrayKind::Global);
        let (ld, v) = b.load("ld", a, 0, 4, 4);
        b.store("st", a, 512, 4, 4, v);
        b.set_profile(ld, MemProfile::with_local_ratio(0.9, 0, 0.9, 4));
        let k = b.finish(64.0);
        let m = vliw_machine::MachineConfig::word_interleaved_4();
        let o = schedule_outcome(&k, &m, opts(ClusterPolicy::Free)).unwrap();
        assert_eq!(o.schedule.op(OpId::new(0)).assumed_latency, 2);
    }

    #[test]
    fn unprofiled_loads_keep_the_most_expensive_class() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 1024, ArrayKind::Global);
        let (_, v) = b.load("ld", a, 0, 4, 4);
        b.store("st", a, 512, 4, 4, v);
        let k = b.finish(64.0);
        let m = vliw_machine::MachineConfig::word_interleaved_4();
        let o = schedule_outcome(&k, &m, opts(ClusterPolicy::Free)).unwrap();
        assert_eq!(o.schedule.op(OpId::new(0)).assumed_latency, 15);
    }

    #[test]
    fn empty_kernel_is_rejected() {
        let k = KernelBuilder::new("empty").finish(1.0);
        let m = vliw_machine::MachineConfig::word_interleaved_4();
        let err = schedule_outcome(&k, &m, opts(ClusterPolicy::Free)).unwrap_err();
        assert_eq!(err, ScheduleError::EmptyKernel);
    }
}
