//! The paper's core contribution: modulo-scheduling techniques for an
//! interleaved-cache clustered VLIW processor.
//!
//! This crate implements §4 of *"Effective Instruction Scheduling Techniques
//! for an Interleaved Cache Clustered VLIW Processor"* (Gibert, Sánchez &
//! González, MICRO-35, 2002):
//!
//! 1. **Selective loop unrolling** ([`unroll_select`]) — per-loop optimal
//!    unrolling factors (`Ui = N×I / gcd(N×I, Si mod N×I)`, `OUF = lcm Ui`)
//!    and the three-way selection among no unrolling, unroll×N and OUF by
//!    the execution-time estimate `Texec = (avgiter + SC − 1) × II`.
//! 2. **Latency assignment** ([`latency`]) — loads start at the remote-miss
//!    latency; recurrences are relaxed to the all-local-hit MII by repeatedly
//!    applying the change with the best benefit `B = ΔII / Δstall`, then
//!    de-slacked to sit exactly at the MII.
//! 3. **SMS node ordering** ([`order`]) after Llosa et al.
//! 4. **Cluster assignment + scheduling** ([`engine`]) in a single
//!    no-backtracking pass with explicit inter-cluster copies on
//!    half-frequency register buses, under four policies: BASE (unified /
//!    multiVLIW), IBC, IPBC and the chain-less ablation. The whole
//!    pipeline sits behind the [`SchedulerBackend`] seam: [`SwingModulo`]
//!    is the paper's heuristic, [`ExactBnB`] an exact branch-and-bound
//!    reference that measures its optimality gap.
//! 5. **Memory dependent chains** ([`chains`]) for memory correctness, and
//!    **Attraction-Buffer hints** ([`hints`]) for the §5.2 overflow fix.
//!
//! The [`examples_443`] module rebuilds the paper's Figure 3 worked example;
//! its tests assert every number in §4.3.3 (the MII of 8, recurrence IIs of
//! 5/8/33/22, the benefit table, final latencies of n1 = 4 / n2 = 1 / n6 = 1
//! and the IBC/IPBC placements).
//!
//! # Example
//!
//! Schedule a simple strided loop for the paper's 4-cluster machine with
//! the IPBC heuristic:
//!
//! ```
//! use vliw_ir::{ArrayKind, KernelBuilder, Opcode};
//! use vliw_machine::MachineConfig;
//! use vliw_sched::{schedule_kernel, ClusterPolicy, ScheduleOptions};
//!
//! let mut b = KernelBuilder::new("saxpy");
//! let x = b.array("x", 4096, ArrayKind::Heap);
//! let y = b.array("y", 4096, ArrayKind::Heap);
//! let (_, xv) = b.load("ld_x", x, 0, 4, 4);
//! let (_, yv) = b.load("ld_y", y, 0, 4, 4);
//! let (_, p) = b.int_op("mul", Opcode::Mul, &[xv.into()]);
//! let (_, s) = b.int_op("add", Opcode::Add, &[p.into(), yv.into()]);
//! b.store("st_y", y, 0, 4, 4, s);
//! let kernel = b.finish(1024.0);
//!
//! let machine = MachineConfig::word_interleaved_4();
//! let sched = schedule_kernel(&kernel, &machine, ScheduleOptions::new(ClusterPolicy::PreBuildChains))?;
//! assert!(sched.verify(&kernel, &machine).is_empty());
//! # Ok::<(), vliw_sched::ScheduleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod chains;
pub mod circuits;
pub mod engine;
pub mod examples_443;
pub mod hints;
pub mod latency;
pub mod mii;
pub mod mrt;
pub mod order;
pub mod pressure;
pub mod schedule;
pub mod unroll_select;

pub use balance::weighted_workload_balance;
pub use chains::MemChains;
pub use circuits::{elementary_circuits, Circuit, EnumLimits};
pub use engine::{
    schedule_kernel, schedule_kernel_with_stats, schedule_outcome, schedule_outcome_traced,
    schedule_problem, AssignContext, AssignState, ClusterAssign, ClusterPolicy, DelayTracking,
    ExactBnB, FallbackPolicy, Neighbor, SchedBackend, SchedQuality, SchedStats, ScheduleOptions,
    ScheduleOutcome, ScheduleProblem, SchedulerBackend, SwingModulo, TrialMode,
    DEFAULT_NODE_BUDGET,
};
pub use hints::{attraction_hints, AttractionHints};
pub use latency::{
    assign_latencies, assign_latencies_with_pins, assign_profiled_latencies,
    delay_tracking_latency, BenefitStep, CandidateEval, LatencyAssignment,
};
pub use mii::{edge_latency, rec_mii, res_mii};
pub use mrt::{Mrt, MrtImpl, MrtSavepoint, ReservationTable, ScalarMrt};
pub use order::sms_order;
pub use pressure::{max_live, max_live_per_cluster};
pub use schedule::{Schedule, ScheduleError, ScheduledCopy, ScheduledOp};
pub use unroll_select::{
    individual_unroll_factor, optimal_unroll_factor, select_unrolling, unroll_candidates,
    SelectiveUnroll, UnrollChoice,
};
