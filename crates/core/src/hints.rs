//! Compiler "attractable" hints for Attraction Buffers (§5.2).
//!
//! One epicdec loop schedules 19 memory instructions in a single cluster,
//! overflowing the Attraction Buffer and destroying its benefit. The paper
//! sketches the fix: rank memory instructions by a benefit estimate and mark
//! only the top `K` as *attractable* (allowed to allocate buffer entries),
//! with `K` chosen so the marked instructions cannot overflow the buffer.

use vliw_ir::{LoopKernel, OpId};
use vliw_machine::MachineConfig;

use crate::schedule::Schedule;

/// Per-op attraction hints: `true` = the access may allocate an Attraction
/// Buffer entry, `false` = it bypasses the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttractionHints {
    allowed: Vec<bool>,
}

impl AttractionHints {
    /// Hints that allow every access (the default hardware behaviour).
    pub fn allow_all(kernel: &LoopKernel) -> Self {
        AttractionHints {
            allowed: vec![true; kernel.ops.len()],
        }
    }

    /// Whether `op` may allocate into the Attraction Buffer.
    pub fn is_attractable(&self, op: OpId) -> bool {
        self.allowed.get(op.index()).copied().unwrap_or(true)
    }

    /// Number of attractable memory ops.
    pub fn n_attractable(&self) -> usize {
        self.allowed.iter().filter(|&&a| a).count()
    }
}

/// Computes attraction hints for a scheduled loop: within each cluster, rank
/// the memory instructions by estimated buffer benefit — the expected
/// remote-hit traffic they generate, `(1 − local ratio) × hit rate`, scaled
/// by nothing else since all ops in a loop execute equally often — and mark
/// the top `K = buffer entries` as attractable.
///
/// Instructions with no profile are ranked last (benefit 0); clusters whose
/// memory-instruction count does not exceed the buffer capacity keep all
/// instructions attractable (the paper observes the hints change nothing on
/// benchmarks that never overflow).
pub fn attraction_hints(
    kernel: &LoopKernel,
    schedule: &Schedule,
    machine: &MachineConfig,
) -> AttractionHints {
    let mut allowed = vec![true; kernel.ops.len()];
    let Some(ab) = machine.attraction_buffers else {
        return AttractionHints { allowed };
    };
    let n = machine.clusters.n_clusters;
    for cluster in 0..n {
        let mut mem_ops: Vec<(OpId, f64)> = kernel
            .mem_ops()
            .filter(|o| schedule.op(o.id).cluster == cluster)
            .map(|o| {
                let benefit = o
                    .mem
                    .as_ref()
                    .and_then(|m| m.profile.as_ref())
                    .map(|p| (1.0 - p.local_ratio(cluster)) * p.hit_rate)
                    .unwrap_or(0.0);
                (o.id, benefit)
            })
            .collect();
        if mem_ops.len() <= ab.entries {
            continue;
        }
        mem_ops.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        for &(op, _) in mem_ops.iter().skip(ab.entries) {
            allowed[op.index()] = false;
        }
    }
    AttractionHints { allowed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{schedule_kernel, ClusterPolicy, ScheduleOptions};
    use vliw_ir::{ArrayKind, KernelBuilder, MemProfile};

    /// A loop with `n` loads all preferring cluster 0 (IPBC packs them).
    fn packed_loop(n: usize) -> LoopKernel {
        let mut b = KernelBuilder::new("packed");
        let a = b.array("a", 65536, ArrayKind::Heap);
        for i in 0..n {
            let (ld, _) = b.load(format!("ld{i}"), a, 16 * i as i64, 16, 4);
            b.set_profile(ld, MemProfile::with_local_ratio(0.9, 0, 0.6, 4));
        }
        b.finish(256.0)
    }

    #[test]
    fn no_overflow_keeps_everything_attractable() {
        let m = MachineConfig::word_interleaved_4().with_attraction_buffers(16, 2);
        let k = packed_loop(5);
        let s =
            schedule_kernel(&k, &m, ScheduleOptions::new(ClusterPolicy::PreBuildChains)).unwrap();
        let h = attraction_hints(&k, &s, &m);
        assert_eq!(h.n_attractable(), k.ops.len());
    }

    #[test]
    fn overflowing_cluster_is_capped_at_buffer_entries() {
        let m = MachineConfig::word_interleaved_4().with_attraction_buffers(8, 2);
        let k = packed_loop(19); // the epicdec situation
        let s =
            schedule_kernel(&k, &m, ScheduleOptions::new(ClusterPolicy::PreBuildChains)).unwrap();
        // all 19 loads land in cluster 0 under IPBC
        assert!(k.mem_ops().all(|o| s.op(o.id).cluster == 0));
        let h = attraction_hints(&k, &s, &m);
        let attractable = k.mem_ops().filter(|o| h.is_attractable(o.id)).count();
        assert_eq!(attractable, 8);
    }

    #[test]
    fn machines_without_buffers_allow_all() {
        let m = MachineConfig::word_interleaved_4();
        let k = packed_loop(19);
        let s =
            schedule_kernel(&k, &m, ScheduleOptions::new(ClusterPolicy::PreBuildChains)).unwrap();
        let h = attraction_hints(&k, &s, &m);
        assert_eq!(h.n_attractable(), k.ops.len());
    }
}
